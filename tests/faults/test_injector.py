"""Fault injector mechanics on all pipelines."""

import pytest

from repro.isa import assemble
from repro.machine import Cpu, StopReason
from repro.checking import EdgCF
from repro.dbt import Dbt
from repro.faults import (DbtInjector, DirectionFault, FaultSpec,
                          FlagBitFault, NativeInjector, OffsetBitFault,
                          RedirectFault)

# A loop whose body emits; skipping or duplicating iterations is
# observable in the output.
LOOP_SRC = """
.entry main
main:
    movi r2, 0
loop:
    mov r1, r2
    syscall 4
    addi r2, r2, 1
    cmpi r2, 4
    jl loop
    movi r1, 0
    syscall 0
"""


def native_with_fault(program, spec, max_steps=100_000):
    cpu = Cpu()
    cpu.load_program(program)
    injector = NativeInjector(spec, program)
    injector.install(cpu)
    stop = cpu.run(max_steps=max_steps)
    return cpu, stop, injector


@pytest.fixture
def loop_program():
    return assemble(LOOP_SRC)


def branch_pc(program):
    # loop: mov(+0) syscall(+4) addi(+8) cmpi(+12) jl(+16)
    return program.symbols["loop"] + 16


class TestNativeInjection:
    def test_no_fault_without_hit(self, loop_program):
        spec = FaultSpec(0xDEAD, 1, DirectionFault(taken=None))
        cpu, stop, injector = native_with_fault(loop_program, spec)
        assert not injector.fired
        assert cpu.output_values == [0, 1, 2, 3]

    def test_direction_inversion_first_occurrence(self, loop_program):
        spec = FaultSpec(branch_pc(loop_program), 1,
                         DirectionFault(taken=None))
        cpu, stop, injector = native_with_fault(loop_program, spec)
        assert injector.fired
        # first back-edge suppressed: loop exits after one iteration
        assert cpu.output_values == [0]
        assert stop.reason is StopReason.HALTED

    def test_direction_inversion_last_occurrence(self, loop_program):
        spec = FaultSpec(branch_pc(loop_program), 4,
                         DirectionFault(taken=None))
        cpu, stop, injector = native_with_fault(loop_program, spec)
        assert injector.fired
        # the final not-taken becomes taken: one extra iteration
        assert cpu.output_values == [0, 1, 2, 3, 4]

    def test_occurrence_counting(self, loop_program):
        spec = FaultSpec(branch_pc(loop_program), 3,
                         DirectionFault(taken=None))
        cpu, stop, injector = native_with_fault(loop_program, spec)
        assert injector.count == 3
        assert cpu.output_values == [0, 1, 2]

    def test_fault_is_transient(self, loop_program):
        """Only one execution is affected; later ones behave normally."""
        spec = FaultSpec(branch_pc(loop_program), 2,
                         OffsetBitFault(bit=15))
        cpu, stop, injector = native_with_fault(loop_program, spec)
        assert injector.fired
        # the corrupted branch jumped far away: hardware catches it
        assert stop.reason is StopReason.FAULT

    def test_offset_fault_small_bit(self, loop_program):
        # flipping bit 0 of the backward offset shifts the landing by 4
        spec = FaultSpec(branch_pc(loop_program), 1,
                         OffsetBitFault(bit=0))
        cpu, stop, injector = native_with_fault(loop_program, spec)
        assert injector.fired
        assert cpu.output_values != [0, 1, 2, 3]

    def test_flag_fault_changes_direction(self, loop_program):
        # jl reads SF/OF; flipping SF mid-loop flips the comparison
        spec = FaultSpec(branch_pc(loop_program), 1, FlagBitFault(bit=1))
        cpu, stop, injector = native_with_fault(loop_program, spec)
        assert injector.fired
        assert cpu.output_values == [0]

    def test_flag_fault_on_unread_bit_harmless(self, loop_program):
        spec = FaultSpec(branch_pc(loop_program), 1, FlagBitFault(bit=2))
        cpu, stop, injector = native_with_fault(loop_program, spec)
        assert injector.fired
        assert cpu.output_values == [0, 1, 2, 3]

    def test_redirect(self, loop_program):
        target = loop_program.symbols["main"]
        spec = FaultSpec(branch_pc(loop_program), 2,
                         RedirectFault(target))
        cpu, stop, injector = native_with_fault(loop_program, spec)
        assert injector.fired
        # restarted the loop: r2 reset, output prefix duplicated
        assert cpu.output_values[:3] == [0, 1, 0]

    def test_redirect_to_noncode_faults(self, loop_program):
        spec = FaultSpec(branch_pc(loop_program), 1,
                         RedirectFault(loop_program.data_base))
        cpu, stop, injector = native_with_fault(loop_program, spec)
        assert stop.reason is StopReason.FAULT


class TestDbtInjection:
    def test_detection_by_edgcf(self, loop_program):
        spec = FaultSpec(branch_pc(loop_program), 2,
                         RedirectFault(loop_program.symbols["main"]))
        dbt = Dbt(loop_program, technique=EdgCF())
        injector = DbtInjector(spec, dbt)
        injector.install()
        result = dbt.run(max_steps=100_000)
        assert injector.fired
        # jumping to main's head with the wrong signature -> detected
        assert result.detected_error

    def test_baseline_misses_same_error(self, loop_program):
        spec = FaultSpec(branch_pc(loop_program), 2,
                         RedirectFault(loop_program.symbols["main"]))
        dbt = Dbt(loop_program)
        DbtInjector(spec, dbt).install()
        result = dbt.run(max_steps=100_000)
        assert not result.detected_error
        assert dbt.cpu.output_values != [0, 1, 2, 3]

    def test_direction_fault_detected(self, loop_program):
        spec = FaultSpec(branch_pc(loop_program), 1,
                         DirectionFault(taken=None))
        dbt = Dbt(loop_program, technique=EdgCF())
        injector = DbtInjector(spec, dbt)
        injector.install()
        result = dbt.run(max_steps=100_000)
        assert injector.fired
        assert result.detected_error   # category A caught by EdgCF

    def test_not_taken_offset_fault_harmless(self, loop_program):
        # occurrence 4 of the jl is the final, not-taken execution
        spec = FaultSpec(branch_pc(loop_program), 4,
                         OffsetBitFault(bit=3))
        dbt = Dbt(loop_program, technique=EdgCF())
        injector = DbtInjector(spec, dbt)
        injector.install()
        result = dbt.run(max_steps=100_000)
        assert injector.fired
        assert result.ok
        assert dbt.cpu.output_values == [0, 1, 2, 3]
