"""The campaign journal: record round-trips, entry validation, torn
writes, in-process resume, and the SIGKILL-then---resume acceptance
path (a resumed campaign is byte-identical to an uninterrupted one and
re-runs only the unfinished chunks)."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.faults import (CampaignExecutor, CampaignJournal, Outcome,
                          PipelineConfig, RunRecord, campaign_key,
                          generate_category_faults, infra_error_record,
                          spec_digest)
from repro.faults.journal import record_from_json, record_to_json
from repro.workloads import suite as workload_suite

CONFIG = PipelineConfig("dbt", "edgcf")


@pytest.fixture(scope="module")
def gap():
    return workload_suite.load("254.gap", "test")


@pytest.fixture(scope="module")
def clean_specs(gap):
    faults = generate_category_faults(gap, per_category=4, seed=11)
    return [spec for specs in faults.by_category.values()
            for spec in specs]


class TestRecordRoundTrip:
    def test_full_record(self):
        record = RunRecord(outcome=Outcome.DETECTED_SIGNATURE,
                           stop_reason="halted at pc=0x10 exit=0",
                           outputs=(("55", "x"), (55, 7)),
                           cycles=123, icount=45, detection_latency=9)
        assert record_from_json(record_to_json(record)) == record

    def test_infra_record(self):
        record = infra_error_record("spec", "ValueError: boom")
        restored = record_from_json(record_to_json(record))
        assert restored == record
        assert restored.outcome is Outcome.INFRA_ERROR
        assert "boom" in restored.error

    def test_json_is_a_single_line(self):
        record = RunRecord(outcome=Outcome.BENIGN, stop_reason="ok",
                           outputs=((), ()), cycles=0, icount=0)
        assert "\n" not in json.dumps(record_to_json(record))


class TestJournalReplay:
    def record(self):
        return RunRecord(outcome=Outcome.BENIGN, stop_reason="ok",
                         outputs=(("55",), (55,)), cycles=10, icount=5)

    def test_replay_matches_identity_only(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.append_chunk("prog-a", ("dbt", "rcf"), 0, ["d0", "d1"],
                             [self.record()])
        journal.append_chunk("prog-b", ("dbt", "rcf"), 0, ["d0", "d1"],
                             [self.record()])
        journal.append_chunk("prog-a", ("dbt", "ecf"), 1, ["d2"],
                             [self.record()])
        replayed = journal.replay("prog-a", ("dbt", "rcf"))
        assert set(replayed) == {(0, ("d0", "d1"))}
        assert replayed[(0, ("d0", "d1"))] == [self.record()]

    def test_changed_specs_are_not_replayed(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.append_chunk("p", ("dbt",), 0, ["old"], [self.record()])
        assert journal.replay("p", ("dbt",)).get((0, ("new",))) is None

    def test_torn_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.append_chunk("p", ("dbt",), 0, ["d0"], [self.record()])
        with open(path, "a") as handle:
            handle.write('{"v": 1, "program": "p", "chunk": 1, "spe')
        replayed = journal.replay("p", ("dbt",))
        assert set(replayed) == {(0, ("d0",))}

    def test_missing_file_is_empty(self, tmp_path):
        journal = CampaignJournal(tmp_path / "nope.jsonl")
        assert journal.replay("p", ("dbt",)) == {}


class TestResume:
    def test_resume_is_byte_identical(self, gap, clean_specs, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        full = CampaignExecutor(gap, CONFIG, jobs=2,
                                journal=path).run_specs(clean_specs)
        lines = open(path).readlines()
        assert len(lines) == 3      # 24 specs / chunk_size 8
        # Simulate a campaign killed after one completed chunk.
        open(path, "w").writelines(lines[:1])
        resumed = CampaignExecutor(gap, CONFIG, jobs=2, journal=path,
                                   resume=True).run_specs(clean_specs)
        assert resumed == full
        assert len(open(path).readlines()) == 3

    def test_resume_runs_only_unfinished_chunks(self, gap, clean_specs,
                                                tmp_path, monkeypatch):
        import repro.faults.executor as executor_mod
        path = str(tmp_path / "campaign.jsonl")
        full = CampaignExecutor(gap, CONFIG, jobs=1,
                                journal=path).run_specs(clean_specs)
        lines = open(path).readlines()
        open(path, "w").writelines(lines[:2])
        ran = []
        real = executor_mod._quarantined_run

        def counting(pipeline, spec):
            ran.append(spec)
            return real(pipeline, spec)

        monkeypatch.setattr(executor_mod, "_quarantined_run", counting)
        resumed = CampaignExecutor(gap, CONFIG, jobs=1, journal=path,
                                   resume=True).run_specs(clean_specs)
        assert resumed == full
        assert ran == clean_specs[16:]     # only the third chunk

    def test_fully_journaled_campaign_replays_everything(
            self, gap, clean_specs, tmp_path, monkeypatch):
        import repro.faults.executor as executor_mod
        path = str(tmp_path / "campaign.jsonl")
        full = CampaignExecutor(gap, CONFIG, jobs=1,
                                journal=path).run_specs(clean_specs)
        monkeypatch.setattr(
            executor_mod, "_quarantined_run",
            lambda *a: pytest.fail("nothing should re-run"))
        resumed = CampaignExecutor(gap, CONFIG, jobs=1, journal=path,
                                   resume=True).run_specs(clean_specs)
        assert resumed == full


_KILL_RESUME_SCRIPT = """
import sys
from repro.workloads import suite as workload_suite
from repro.faults import (CampaignExecutor, PipelineConfig,
                          generate_category_faults)
from repro.faults.chaos import SleepSpec

gap = workload_suite.load("254.gap", "test")
faults = generate_category_faults(gap, per_category=4, seed=11)
specs = [s for ss in faults.by_category.values() for s in ss]
# one deliberate slow-down per chunk so the kill lands mid-campaign
padded = []
for index, spec in enumerate(specs):
    if index % 4 == 0:
        padded.append(SleepSpec(0.4))
    padded.append(spec)
CampaignExecutor(gap, PipelineConfig("dbt", "edgcf"), jobs=2,
                 chunk_size=5, journal=sys.argv[1]).run_specs(padded)
"""


class TestKillResume:
    def test_sigkill_then_resume_matches_uninterrupted(self, gap,
                                                       clean_specs,
                                                       tmp_path):
        """The acceptance path: SIGKILL a journaling campaign
        mid-flight, resume from the journal, and get record-for-record
        exactly the uninterrupted campaign's results."""
        from repro.faults.chaos import SleepSpec
        path = str(tmp_path / "killed.jsonl")
        padded = []
        for index, spec in enumerate(clean_specs):
            if index % 4 == 0:
                padded.append(SleepSpec(0.4))
            padded.append(spec)
        total_chunks = (len(padded) + 4) // 5

        env = dict(os.environ)
        env["PYTHONPATH"] = ("src" + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else "src")
        proc = subprocess.Popen([sys.executable, "-c",
                                 _KILL_RESUME_SCRIPT, path],
                                cwd=os.path.dirname(os.path.dirname(
                                    os.path.dirname(__file__))),
                                env=env)
        # Kill once at least one chunk is journaled but several cannot
        # be (each remaining chunk still needs >= 0.4s of sleeping).
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if os.path.exists(path) and \
                    len(open(path).readlines()) >= 1:
                break
            if proc.poll() is not None:
                pytest.fail("campaign finished before it was killed")
            time.sleep(0.02)
        proc.send_signal(signal.SIGKILL)
        proc.wait()

        journaled = len(open(path).readlines())
        assert 1 <= journaled < total_chunks

        resumed = CampaignExecutor(gap, CONFIG, jobs=2, chunk_size=5,
                                   journal=path,
                                   resume=True).run_specs(padded)
        uninterrupted = CampaignExecutor(gap, CONFIG, jobs=1,
                                         chunk_size=5).run_specs(padded)
        assert resumed == uninterrupted
        assert len(open(path).readlines()) == total_chunks


class TestCampaignKey:
    def test_key_pairs_digest_and_config(self, gap):
        digest, key = campaign_key(gap, CONFIG)
        assert len(digest) == 64
        assert key == ("dbt", "edgcf", "allbb", "jcc", False, "interp")

    def test_spec_digest_is_content_addressed(self, clean_specs):
        assert spec_digest(clean_specs[0]) == spec_digest(clean_specs[0])
        assert spec_digest(clean_specs[0]) != spec_digest(clean_specs[1])


class TestTornTail:
    """Regression: a partially-written final line (crash mid-append)
    is truncated away with a warning on resume — including a tear that
    falls inside a multi-byte UTF-8 sequence, which used to raise
    UnicodeDecodeError out of the resume path."""

    def seed_journal(self, path):
        journal = CampaignJournal(path)
        journal.append_header({"tool": "repro-inject", "backend": "x"})
        record = RunRecord(outcome=Outcome.BENIGN, stop_reason="ok",
                           outputs=((), ()), cycles=1, icount=1)
        journal.append_chunk("prog", ("dbt", "edgcf"), 0, ["aa"],
                             [record])
        return journal, record

    def test_torn_ascii_tail_truncated_on_resume(self, tmp_path,
                                                 caplog):
        path = str(tmp_path / "journal.jsonl")
        journal, record = self.seed_journal(path)
        good_size = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b'{"v":1,"program":"pro')
        with caplog.at_level("WARNING", logger="repro.faults.journal"):
            done = journal.replay("prog", ("dbt", "edgcf"))
        assert done == {(0, ("aa",)): [record]}
        assert os.path.getsize(path) == good_size
        assert any("truncating" in message
                   for message in caplog.messages)

    def test_torn_multibyte_tail_truncated_on_resume(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal, record = self.seed_journal(path)
        good_size = os.path.getsize(path)
        with open(path, "ab") as handle:
            # "…" is e2 80 a6; tear after the first two bytes.
            handle.write('{"header": "x…'.encode()[:-2])
        done = journal.replay("prog", ("dbt", "edgcf"))
        assert done == {(0, ("aa",)): [record]}
        assert os.path.getsize(path) == good_size

    def test_resumed_append_lands_on_a_clean_line(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal, record = self.seed_journal(path)
        with open(path, "ab") as handle:
            handle.write(b'{"v":1,"chunk":')
        journal.replay("prog", ("dbt", "edgcf"))
        journal.append_chunk("prog", ("dbt", "edgcf"), 1, ["bb"],
                             [record])
        done = journal.replay("prog", ("dbt", "edgcf"))
        assert set(done) == {(0, ("aa",)), (1, ("bb",))}

    def test_terminated_corrupt_line_is_skipped_not_truncated(
            self, tmp_path, caplog):
        path = str(tmp_path / "journal.jsonl")
        journal, record = self.seed_journal(path)
        with open(path, "ab") as handle:
            handle.write(b"not json at all\n")
        journal.append_chunk("prog", ("dbt", "edgcf"), 1, ["bb"],
                             [record])
        size = os.path.getsize(path)
        with caplog.at_level("WARNING", logger="repro.faults.journal"):
            done = journal.replay("prog", ("dbt", "edgcf"))
        assert set(done) == {(0, ("aa",)), (1, ("bb",))}
        assert os.path.getsize(path) == size
        assert any("corrupt" in message for message in caplog.messages)

    def test_read_header_tolerates_torn_tail(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal, _ = self.seed_journal(path)
        size = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write('{"x": "é'.encode()[:-1])
        assert journal.read_header() == {"tool": "repro-inject",
                                         "backend": "x"}
        # read_header is a pure read: no truncation side effect.
        assert os.path.getsize(path) > size
