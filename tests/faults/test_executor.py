"""The parallel campaign engine: determinism across job counts, the
jobs=1 bypass, and the process-level golden-run/profile caches."""

import pytest

from repro.checking import Policy
from repro.faults import (CampaignExecutor, Pipeline, PipelineConfig,
                          cache_stats, clear_caches,
                          generate_category_faults, parallel_map,
                          program_digest, resolve_jobs, run_campaign)
from repro.workloads import suite as workload_suite


@pytest.fixture(scope="module")
def gap():
    return workload_suite.load("254.gap", "test")


@pytest.fixture(scope="module")
def gap_faults(gap):
    return generate_category_faults(gap, per_category=6, seed=11)


def flat_specs(faults):
    return [spec for specs in faults.by_category.values()
            for spec in specs]


class TestDeterminism:
    """A seeded campaign must produce byte-identical results for every
    worker count — the core contract of the parallel engine."""

    def test_jobs4_matches_jobs1_records_and_order(self, gap, gap_faults):
        config = PipelineConfig("dbt", "rcf")
        specs = flat_specs(gap_faults)
        serial = CampaignExecutor(gap, config, jobs=1).run_specs(specs)
        parallel = CampaignExecutor(gap, config, jobs=4).run_specs(specs)
        assert len(serial) == len(specs)
        assert serial == parallel

    def test_jobs4_matches_jobs1_tallies(self, gap, gap_faults):
        config = PipelineConfig("dbt", "edgcf", Policy.ALLBB)
        serial = run_campaign(gap, config, gap_faults, jobs=1)
        parallel = run_campaign(gap, config, gap_faults, jobs=4)
        assert serial.config_label == parallel.config_label
        assert serial.outcomes == parallel.outcomes

    def test_odd_chunking_preserves_order(self, gap, gap_faults):
        """A chunk size that doesn't divide the spec count still merges
        records back into the serial order."""
        config = PipelineConfig("dbt", "rcf")
        specs = flat_specs(gap_faults)
        serial = CampaignExecutor(gap, config, jobs=1).run_specs(specs)
        odd = CampaignExecutor(gap, config, jobs=3,
                               chunk_size=5).run_specs(specs)
        assert serial == odd


class TestJobsSemantics:
    def test_jobs1_never_spawns_a_pool(self, gap, gap_faults,
                                       monkeypatch):
        import repro.faults.executor as executor_mod
        monkeypatch.setattr(
            executor_mod, "PoolSupervisor",
            lambda *a, **k: pytest.fail("jobs=1 must not build a pool"))
        config = PipelineConfig("dbt", None)
        records = CampaignExecutor(gap, config, jobs=1).run_specs(
            flat_specs(gap_faults))
        assert records

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7
        assert resolve_jobs(-3) == 1
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1

    def test_parallel_map_preserves_order(self):
        items = list(range(23))
        assert parallel_map(str, items, jobs=1) == [str(i) for i in items]
        assert parallel_map(str, items, jobs=4) == [str(i) for i in items]


class TestGoldenRunCache:
    def test_identical_pipelines_share_one_golden(self, gap):
        clear_caches()
        config = PipelineConfig("dbt", "rcf")
        first = Pipeline(gap, config)
        second = Pipeline(gap, config)
        assert second.golden is first.golden
        assert cache_stats()["golden_entries"] == 1

    def test_different_configs_do_not_collide(self, gap):
        clear_caches()
        rcf = Pipeline(gap, PipelineConfig("dbt", "rcf"))
        native = Pipeline(gap, PipelineConfig("native"))
        assert rcf.golden is not native.golden
        assert cache_stats()["golden_entries"] == 2
        # cycle counts differ between pipelines, outputs must not
        assert rcf.golden.outputs == native.golden.outputs

    def test_digest_keyed_on_content_not_identity(self):
        from repro.isa import assemble
        src = ".entry main\nmain:\n    movi r1, 0\n    syscall 0\n"
        first = assemble(src, name="one")
        second = assemble(src, name="two")
        assert first is not second
        assert program_digest(first) == program_digest(second)

    def test_profile_cache_reuses_one_profiling_run(self, gap):
        clear_caches()
        generate_category_faults(gap, per_category=2, seed=1)
        assert cache_stats()["profile_entries"] == 1
        generate_category_faults(gap, per_category=4, seed=9)
        assert cache_stats()["profile_entries"] == 1

    def test_cached_fault_generation_stays_deterministic(self, gap):
        clear_caches()
        cold = generate_category_faults(gap, per_category=4, seed=3)
        warm = generate_category_faults(gap, per_category=4, seed=3)
        assert cold.by_category == warm.by_category
