"""The analytic error model (Figures 2/3)."""

import pytest

from repro.faults import (Category, SDC_CATEGORIES, compute_error_model,
                          compute_suite_error_model)
from repro.workloads import suite as workload_suite


@pytest.fixture(scope="module")
def gap_model():
    return compute_error_model(workload_suite.load("254.gap", "test"))


class TestModelBasics:
    def test_probabilities_sum_to_one(self, gap_model):
        total = sum(gap_model.probability(cat) for cat in Category)
        assert total == pytest.approx(1.0)

    def test_mass_positive(self, gap_model):
        assert gap_model.total > 0
        assert gap_model.dynamic_branches > 0

    def test_not_taken_addr_always_harmless(self, gap_model):
        for category in Category:
            if category is Category.NO_ERROR:
                continue
            assert gap_model.probability(category, taken=False,
                                         kind="addr") == 0.0

    def test_flag_faults_only_category_a(self, gap_model):
        for category in (Category.B, Category.C, Category.D, Category.E,
                         Category.F):
            assert gap_model.probability(category, kind="flags") == 0.0

    def test_category_a_has_flag_component(self, gap_model):
        assert gap_model.probability(Category.A, kind="flags") > 0.0

    def test_category_row_shape(self, gap_model):
        row = gap_model.category_row(Category.A)
        assert set(row) == {"taken_addr", "taken_flags",
                            "not_taken_addr", "not_taken_flags", "total"}
        assert row["total"] == pytest.approx(
            sum(v for k, v in row.items() if k != "total"))

    def test_sdc_distribution_normalized(self, gap_model):
        dist = gap_model.sdc_distribution()
        assert sum(dist.values()) == pytest.approx(1.0)
        assert set(dist) == set(SDC_CATEGORIES)

    def test_merge_accumulates(self, gap_model):
        other = compute_error_model(
            workload_suite.load("197.parser", "test"))
        merged_total = gap_model.total + other.total
        merged = compute_suite_error_model(
            [workload_suite.load("254.gap", "test"),
             workload_suite.load("197.parser", "test")])
        assert merged.total == pytest.approx(merged_total)


class TestPaperShape:
    """The qualitative structure of Figure 2/3 must hold."""

    @pytest.fixture(scope="class")
    def models(self):
        int_programs = [workload_suite.load(name, "test")
                        for name in workload_suite.suite_names("int")]
        fp_programs = [workload_suite.load(name, "test")
                       for name in workload_suite.suite_names("fp")]
        return (compute_suite_error_model(int_programs, "int"),
                compute_suite_error_model(fp_programs, "fp"))

    def test_e_dominates_sdc_categories(self, models):
        for model in models:
            dist = model.sdc_distribution()
            assert dist[Category.E] == max(
                dist[c] for c in (Category.B, Category.C, Category.D,
                                  Category.E))

    def test_b_negligible(self, models):
        for model in models:
            assert model.sdc_distribution()[Category.B] < 0.05

    def test_fp_has_more_c_than_d(self, models):
        """Big fp blocks push errors into category C (paper: 'floating
        point applications have big basic blocks')."""
        _, fp = models
        dist = fp.sdc_distribution()
        assert dist[Category.C] > dist[Category.D]

    def test_int_has_more_d_than_c(self, models):
        int_model, _ = models
        dist = int_model.sdc_distribution()
        assert dist[Category.D] > dist[Category.C]

    def test_f_and_no_error_take_most_mass(self, models):
        for model in models:
            harmless_or_hw = (model.probability(Category.F)
                              + model.probability(Category.NO_ERROR))
            assert harmless_or_hw > 0.5

    def test_no_error_includes_not_taken_addr_mass(self, models):
        for model in models:
            assert model.probability(Category.NO_ERROR, taken=False,
                                     kind="addr") > 0.1
