"""Executor trace sidecar: deterministic spans across worker counts,
journal byte-identity preserved, resume continues the original trace."""

import pytest

from repro.faults import (CampaignExecutor, PipelineConfig,
                          generate_category_faults)
from repro.obs.traceevent import (TraceContext, read_entries,
                                  to_chrome_trace, trace_sidecar_path,
                                  validate_chrome_trace)
from repro.workloads import suite as workload_suite


@pytest.fixture(scope="module")
def gap():
    return workload_suite.load("254.gap", "test")


@pytest.fixture(scope="module")
def specs(gap):
    faults = generate_category_faults(gap, per_category=6, seed=11)
    return [spec for chunk in faults.by_category.values()
            for spec in chunk]


def _run(gap, specs, tmp_path, jobs, trace, name="j"):
    journal = str(tmp_path / f"{name}.jsonl")
    executor = CampaignExecutor(gap, PipelineConfig("dbt", "rcf"),
                                jobs=jobs, chunk_size=5,
                                journal=journal, trace=trace)
    records = executor.run_specs(specs)
    return journal, records


def _span_ids(sidecar):
    entries = read_entries(sidecar)
    top = {e["span_id"] for e in entries}
    runs = {run["span_id"] for e in entries
            for run in e.get("runs", ())}
    return top, runs


class TestSidecar:
    def test_serial_equals_parallel_span_ids(self, gap, specs,
                                             tmp_path):
        trace = TraceContext.root("trace-x")
        serial_journal, serial_records = _run(
            gap, specs, tmp_path, jobs=1, trace=trace, name="s")
        parallel_journal, parallel_records = _run(
            gap, specs, tmp_path, jobs=3, trace=trace, name="p")
        assert serial_records == parallel_records
        assert _span_ids(trace_sidecar_path(serial_journal)) == \
            _span_ids(trace_sidecar_path(parallel_journal))

    def test_sidecar_entries_form_valid_trace(self, gap, specs,
                                              tmp_path):
        trace = TraceContext.root("trace-v")
        journal, _ = _run(gap, specs, tmp_path, jobs=2, trace=trace)
        entries = read_entries(trace_sidecar_path(journal))
        assert entries, "chunks must be traced"
        assert all(e["type"] == "chunk" for e in entries)
        assert all(e["parent_span"] == trace.span_id for e in entries)
        # run count across chunks covers every spec exactly once
        indices = sorted(run["i"] for e in entries
                         for run in e["runs"])
        assert indices == list(range(len(specs)))
        trace_dict = to_chrome_trace(entries)
        assert validate_chrome_trace(trace_dict) == []

    def test_journal_bytes_unaffected_by_tracing(self, gap, specs,
                                                 tmp_path):
        plain, _ = _run(gap, specs, tmp_path, jobs=1, trace=None,
                        name="plain")
        traced, _ = _run(gap, specs, tmp_path, jobs=1,
                         trace=TraceContext.root("t"), name="traced")
        with open(plain, "rb") as a, open(traced, "rb") as b:
            assert a.read() == b.read()

    def test_no_trace_no_sidecar(self, gap, specs, tmp_path):
        journal, _ = _run(gap, specs, tmp_path, jobs=1, trace=None,
                          name="quiet")
        import os
        assert not os.path.exists(trace_sidecar_path(journal))

    def test_resume_continues_original_trace(self, gap, specs,
                                             tmp_path):
        trace = TraceContext.root("trace-r")
        journal = str(tmp_path / "r.jsonl")
        # First leg: only the first chunk's worth of specs.
        first = CampaignExecutor(gap, PipelineConfig("dbt", "rcf"),
                                 jobs=1, chunk_size=5,
                                 journal=journal, trace=trace)
        first.run_specs(specs[:5])
        sidecar = trace_sidecar_path(journal)
        leg_one = read_entries(sidecar)
        assert [e["index"] for e in leg_one] == [0]
        # Second leg: the full spec list, resuming; chunk 0 replays
        # from the journal and must NOT be re-traced.
        second = CampaignExecutor(gap, PipelineConfig("dbt", "rcf"),
                                  jobs=1, chunk_size=5,
                                  journal=journal, resume=True,
                                  trace=trace)
        records = second.run_specs(specs)
        assert len(records) == len(specs)
        entries = read_entries(sidecar)
        assert sorted(e["index"] for e in entries) == \
            sorted(range((len(specs) + 4) // 5))
        assert len(entries) == len({e["index"] for e in entries})
        assert all(e["trace_id"] == trace.trace_id for e in entries)
        trace_dict = to_chrome_trace(entries)
        assert validate_chrome_trace(trace_dict) == []
