"""Model-sampled soft-error campaigns."""

import pytest

from repro.faults import (Category, Outcome, PipelineConfig,
                          compute_error_model,
                          run_effectiveness_campaign,
                          sample_model_faults)
from repro.faults.injector import FlagBitFault, OffsetBitFault
from repro.workloads import load


@pytest.fixture(scope="module")
def gap():
    return load("254.gap", "test")


class TestSampling:
    def test_deterministic(self, gap):
        a = sample_model_faults(gap, 20, seed=1)
        b = sample_model_faults(gap, 20, seed=1)
        assert a == b

    def test_seeds_differ(self, gap):
        assert sample_model_faults(gap, 20, seed=1) != \
            sample_model_faults(gap, 20, seed=2)

    def test_fault_kinds(self, gap):
        specs = sample_model_faults(gap, 200, seed=3)
        kinds = {type(s.fault) for s in specs}
        assert kinds == {OffsetBitFault, FlagBitFault}

    def test_flag_faults_only_on_conditionals(self, gap):
        specs = sample_model_faults(gap, 200, seed=3)
        for spec in specs:
            if isinstance(spec.fault, FlagBitFault):
                instr = gap.instruction_at(spec.branch_pc)
                assert instr.meta.cond is not None

    def test_occurrences_within_execution_counts(self, gap):
        from repro.machine import BranchProfiler, run_native
        profiler = BranchProfiler()
        run_native(gap, profiler=profiler)
        specs = sample_model_faults(gap, 100, seed=5)
        for spec in specs:
            stats = profiler.branches[spec.branch_pc]
            assert 1 <= spec.occurrence <= stats.executions

    def test_bit_ranges(self, gap):
        specs = sample_model_faults(gap, 200, seed=7)
        for spec in specs:
            if isinstance(spec.fault, OffsetBitFault):
                assert 0 <= spec.fault.bit < 16
            else:
                assert 0 <= spec.fault.bit < 4


class TestEffectiveness:
    @pytest.fixture(scope="class")
    def results(self, gap):
        return {
            label: run_effectiveness_campaign(
                gap, PipelineConfig("dbt", tech), count=40, seed=11)
            for label, tech in (("none", None), ("rcf", "rcf"))
        }

    def test_rates_sum_to_one(self, results):
        for result in results.values():
            total = sum(result.rate(outcome) for outcome in Outcome)
            assert total == pytest.approx(1.0)

    def test_protection_removes_unreported_harm(self, results):
        assert results["none"].sdc_rate > 0
        assert results["rcf"].unreported_harm_rate == 0.0

    def test_hardware_rate_stable_across_configs(self, results):
        """Category-F faults are hardware-caught with or without a
        technique; the rates should be close."""
        none_hw = results["none"].rate(Outcome.DETECTED_HARDWARE)
        rcf_hw = results["rcf"].rate(Outcome.DETECTED_HARDWARE)
        assert abs(none_hw - rcf_hw) < 0.15

    def test_model_cross_validation(self, gap, results):
        model = compute_error_model(gap)
        benign = results["none"].rate(Outcome.BENIGN)
        assert abs(benign - model.probability(Category.NO_ERROR)) < 0.25
