"""Campaign machinery: golden runs, outcome classification, the
paper's coverage claims end-to-end."""

import pytest

from repro.checking import Policy
from repro.faults import (Category, DirectionFault, Outcome,
                          Pipeline, PipelineConfig, RedirectFault,
                          generate_category_faults, run_campaign)
from repro.workloads import suite as workload_suite


@pytest.fixture(scope="module")
def gap():
    return workload_suite.load("254.gap", "test")


@pytest.fixture(scope="module")
def gap_faults(gap):
    return generate_category_faults(gap, per_category=6, seed=11)


class TestPipeline:
    def test_golden_run_benign(self, gap):
        pipeline = Pipeline(gap, PipelineConfig("native"))
        assert pipeline.golden.icount > 0
        record = pipeline.run(None)
        assert record.outcome is Outcome.BENIGN

    def test_pipelines_agree_on_golden_output(self, gap):
        outputs = set()
        for config in (PipelineConfig("native"),
                       PipelineConfig("dbt", "edgcf"),
                       PipelineConfig("static", "edgcf")):
            pipeline = Pipeline(gap, config)
            outputs.add(pipeline.golden.outputs)
        assert len(outputs) == 1

    def test_labels(self):
        assert PipelineConfig("dbt", "rcf").label() == "dbt/rcf/allbb"
        assert PipelineConfig(
            "dbt", "rcf", Policy.END).label() == "dbt/rcf/end"


class TestFaultGeneration:
    def test_all_categories_populated(self, gap_faults):
        for category in (Category.A, Category.B, Category.C, Category.D,
                         Category.E, Category.F):
            assert gap_faults.by_category[category]

    def test_deterministic(self, gap):
        first = generate_category_faults(gap, per_category=4, seed=3)
        second = generate_category_faults(gap, per_category=4, seed=3)
        assert first.by_category == second.by_category

    def test_a_faults_are_direction_inversions(self, gap_faults):
        for spec in gap_faults.by_category[Category.A]:
            assert isinstance(spec.fault, DirectionFault)

    def test_f_faults_land_outside_code(self, gap, gap_faults):
        for spec in gap_faults.by_category[Category.F]:
            assert isinstance(spec.fault, RedirectFault)
            assert not gap.contains_code(spec.fault.target)


class TestCoverageClaims:
    """The paper's Section-3 comparison, as executable assertions."""

    @pytest.fixture(scope="class")
    def results(self, gap, gap_faults):
        configs = {
            "none": PipelineConfig("dbt", None),
            "ecf": PipelineConfig("dbt", "ecf"),
            "edgcf": PipelineConfig("dbt", "edgcf"),
            "rcf": PipelineConfig("dbt", "rcf"),
            "cfcss": PipelineConfig("static", "cfcss"),
            "ecca": PipelineConfig("static", "ecca"),
        }
        return {name: run_campaign(gap, config, gap_faults)
                for name, config in configs.items()}

    def test_unprotected_run_suffers_sdc(self, results):
        total_sdc = sum(results["none"].sdc_count(c)
                        for c in Category if c is not Category.NO_ERROR)
        assert total_sdc > 0

    def test_category_f_hardware_detected_everywhere(self, results):
        for name, result in results.items():
            bucket = result.outcomes[Category.F]
            assert bucket[Outcome.SDC] == 0, name
            assert bucket[Outcome.DETECTED_HARDWARE] > 0, name

    @pytest.mark.parametrize("tech", ["edgcf", "rcf"])
    def test_new_techniques_cover_all_categories(self, results, tech):
        """The paper's headline: EdgCF and RCF detect every category."""
        for category in (Category.A, Category.B, Category.C, Category.D,
                         Category.E):
            assert results[tech].covers(category), (tech, category)

    def test_ecf_misses_category_c(self, results):
        assert not results["ecf"].covers(Category.C)
        for category in (Category.A, Category.B, Category.D):
            assert results["ecf"].covers(category)

    def test_cfcss_misses_category_a(self, results):
        assert not results["cfcss"].covers(Category.A)

    def test_cfcss_misses_category_c(self, results):
        assert not results["cfcss"].covers(Category.C)

    def test_ecca_misses_category_a(self, results):
        assert not results["ecca"].covers(Category.A)

    def test_ecca_misses_category_c(self, results):
        assert not results["ecca"].covers(Category.C)

    def test_signature_detection_dominates_for_new_techniques(
            self, results):
        for tech in ("edgcf", "rcf"):
            for category in (Category.A, Category.B, Category.C,
                             Category.D):
                bucket = results[tech].outcomes[category]
                assert bucket[Outcome.DETECTED_SIGNATURE] > 0


class TestPolicyDetectionTradeoff:
    def test_end_policy_may_miss_hangs(self, gap):
        """RET/END cannot report errors that hang the program — the
        failure mode the paper calls out; ALLBB reports everything."""
        faults = generate_category_faults(gap, per_category=8, seed=5)
        allbb = run_campaign(gap, PipelineConfig(
            "dbt", "rcf", Policy.ALLBB), faults)
        end = run_campaign(gap, PipelineConfig(
            "dbt", "rcf", Policy.END), faults)
        for category in (Category.A, Category.B, Category.C, Category.D,
                         Category.E):
            assert allbb.covers(category)
        # END detects strictly no more than ALLBB
        def total_sig(res):
            return sum(res.outcomes[c][Outcome.DETECTED_SIGNATURE]
                       for c in res.outcomes)
        assert total_sig(end) <= total_sig(allbb)
