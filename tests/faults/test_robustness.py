"""Fault tolerance of the campaign runtime itself: per-spec
quarantine, worker supervision (crashes, timeouts, degradation), and
clear initializer errors.  Chaos specs from ``repro.faults.chaos``
stand in for segfaulting, raising, and wall-clock-pathological runs."""

import pytest

from repro.isa import assemble
from repro.faults import (CampaignExecutor, MapError, Outcome,
                          PipelineConfig, PoolSupervisor, SupervisedTask,
                          WorkerInitError, generate_category_faults,
                          parallel_map)
from repro.faults.chaos import CrashSpec, RaisingSpec, SleepSpec
from repro.faults.executor import (_mp_context, _quarantined_run,
                                   _worker_init_state, _worker_run_specs)
from repro.workloads import suite as workload_suite

CONFIG = PipelineConfig("dbt", "rcf")


@pytest.fixture(scope="module")
def gap():
    return workload_suite.load("254.gap", "test")


@pytest.fixture(scope="module")
def clean_specs(gap):
    faults = generate_category_faults(gap, per_category=4, seed=11)
    return [spec for specs in faults.by_category.values()
            for spec in specs]


@pytest.fixture(scope="module")
def serial_records(gap, clean_specs):
    """Ground truth: the clean campaign run serially."""
    return CampaignExecutor(gap, CONFIG, jobs=1).run_specs(clean_specs)


def others(records, skip_positions):
    return [record for index, record in enumerate(records)
            if index not in skip_positions]


class TestQuarantine:
    """A raising spec yields one INFRA_ERROR; neighbours unaffected."""

    def test_raising_spec_serial(self, gap, clean_specs, serial_records):
        specs = clean_specs[:3] + [RaisingSpec("kaboom")] + clean_specs[3:]
        records = CampaignExecutor(gap, CONFIG, jobs=1).run_specs(specs)
        assert records[3].outcome is Outcome.INFRA_ERROR
        assert "RuntimeError" in records[3].error
        assert "kaboom" in records[3].error
        assert "RaisingSpec" in records[3].error
        assert others(records, {3}) == serial_records

    def test_raising_spec_parallel(self, gap, clean_specs,
                                   serial_records):
        specs = clean_specs[:3] + [RaisingSpec()] + clean_specs[3:]
        records = CampaignExecutor(gap, CONFIG, jobs=2).run_specs(specs)
        assert records[3].outcome is Outcome.INFRA_ERROR
        assert others(records, {3}) == serial_records

    def test_infra_errors_outside_detection_denominator(self, gap,
                                                        clean_specs):
        from repro.faults import CategoryFaults, Category
        faults = CategoryFaults(by_category={
            Category.A: clean_specs[:2] + [RaisingSpec()]})
        result = CampaignExecutor(gap, CONFIG, jobs=1).run_campaign(
            faults)
        assert result.infra_count(Category.A) == 1
        assert result.total_infra() == 1
        bucket = result.outcomes[Category.A]
        harmful = (bucket[Outcome.DETECTED_SIGNATURE]
                   + bucket[Outcome.DETECTED_HARDWARE]
                   + bucket[Outcome.SDC] + bucket[Outcome.HANG])
        assert harmful == 2    # the infra error is not counted


class TestWorkerSupervision:
    def test_worker_crash_isolated(self, gap, clean_specs,
                                   serial_records):
        """os._exit in a worker costs exactly the crashing spec."""
        specs = clean_specs[:5] + [CrashSpec()] + clean_specs[5:]
        records = CampaignExecutor(gap, CONFIG, jobs=2,
                                   retries=1).run_specs(specs)
        assert len(records) == len(specs)
        assert records[5].outcome is Outcome.INFRA_ERROR
        assert "worker died" in records[5].error
        assert others(records, {5}) == serial_records

    def test_timeout_isolates_slow_spec(self, gap, clean_specs,
                                        serial_records):
        specs = clean_specs[:5] + [SleepSpec(60)] + clean_specs[5:]
        records = CampaignExecutor(gap, CONFIG, jobs=2, retries=0,
                                   timeout=2.0).run_specs(specs)
        assert records[5].outcome is Outcome.INFRA_ERROR
        assert "timed out" in records[5].error
        assert others(records, {5}) == serial_records

    def test_chaos_campaign(self, gap, clean_specs, serial_records):
        """The acceptance chaos test: one crash, one raise, one hang —
        the campaign completes, flags exactly those three specs as
        INFRA_ERROR, and every other record is byte-identical to the
        clean serial run."""
        specs = list(clean_specs)
        specs.insert(2, RaisingSpec())         # chunk 0
        specs.insert(10, CrashSpec())          # chunk 2
        specs.insert(20, SleepSpec(60))        # chunk 5
        chaos_at = {2, 10, 20}
        records = CampaignExecutor(gap, CONFIG, jobs=2, chunk_size=4,
                                   retries=0,
                                   timeout=3.0).run_specs(specs)
        assert len(records) == len(specs)
        infra = {index for index, record in enumerate(records)
                 if record.outcome is Outcome.INFRA_ERROR}
        assert infra == chaos_at
        assert others(records, chaos_at) == serial_records

    def test_degrades_to_serial_after_repeated_failures(self, gap,
                                                        clean_specs):
        """With a failure budget of one, the first worker death flips
        the supervisor into in-process serial mode; remaining clean
        tasks still complete, and the crasher is never re-run
        in-process."""
        pipeline = CampaignExecutor(gap, CONFIG, jobs=1).pipeline
        serial = [_quarantined_run(pipeline, spec)
                  for spec in clean_specs[:6]]
        tasks = [
            SupervisedTask(key=("crash",), payload=[CrashSpec()],
                           fail=lambda reason: ("failed", reason)),
            SupervisedTask(key=("clean",), payload=clean_specs[:6],
                           fail=lambda reason: ("failed", reason)),
        ]
        supervisor = PoolSupervisor(
            jobs=1, mp_context=_mp_context(),
            init_fn=_worker_init_state, init_args=(gap, CONFIG),
            task_fn=_worker_run_specs,
            serial_fn=lambda specs: _worker_run_specs(pipeline, specs),
            retries=0, max_pool_failures=1)
        results = supervisor.run(tasks)
        assert supervisor.degraded
        assert results[("crash",)][0] == "failed"
        assert results[("clean",)] == serial


class TestInitializerFailure:
    def test_parent_preflight_names_config(self, clean_specs):
        """A config whose golden run fails aborts the campaign with an
        error naming the config label, before any worker spawns."""
        bad = assemble(".entry main\nmain:\n    movi r1, 1\n"
                       "    syscall 0\n", name="bad_exit")
        with pytest.raises(RuntimeError, match=r"dbt/rcf/allbb"):
            CampaignExecutor(bad, CONFIG, jobs=2).run_specs(
                clean_specs[:4])

    def test_worker_init_error_names_config(self, gap, clean_specs):
        """A worker-side initializer failure surfaces as
        WorkerInitError carrying the config label, not an opaque
        broken-pool error."""
        bad = assemble(".entry main\nmain:\n    movi r1, 1\n"
                       "    syscall 0\n", name="bad_exit")
        supervisor = PoolSupervisor(
            jobs=1, mp_context=_mp_context(),
            init_fn=_worker_init_state, init_args=(bad, CONFIG),
            task_fn=_worker_run_specs,
            serial_fn=lambda specs: specs)
        task = SupervisedTask(key=(0,), payload=clean_specs[:1],
                              fail=lambda reason: reason)
        with pytest.raises(WorkerInitError, match=r"dbt/rcf/allbb"):
            supervisor.run([task])


def _double_or_raise(value):
    if value == 3:
        raise ValueError("item three is broken")
    return value * 2


class TestParallelMapQuarantine:
    def test_failure_marks_only_its_item(self):
        for jobs in (1, 4):
            out = parallel_map(_double_or_raise, range(6), jobs=jobs)
            assert out[:3] == [0, 2, 4]
            assert out[4:] == [8, 10]
            assert isinstance(out[3], MapError)
            assert out[3].item == 3
            assert "ValueError" in out[3].error

    def test_all_results_survive_one_failure(self):
        out = parallel_map(_double_or_raise, range(23), jobs=3)
        assert len(out) == 23
        assert sum(isinstance(r, MapError) for r in out) == 1
