"""Edge buckets of the Section-2 taxonomy: Category F and NO_ERROR.

Figure 1's two least-glamorous cells do real work in the coverage
accounting: F is the only category the paper credits to *hardware*
(execute-disable / memory protection), and NO_ERROR is the dominant
harmless cell of Figure 2 (address fault on a not-taken branch; flag
flip the condition does not read).  Misclassifying either skews every
detection-rate denominator downstream.
"""

from repro.isa import assemble
from repro.isa.flags import CF, OF, SF, ZF, evaluate_cond
from repro.cfg import build_cfg
from repro.faults import (Category, classify_flag_fault, classify_landing,
                          classify_offset_fault, corrupted_target)

SRC = """
.entry main
main:                       ; block 1: 0x1000
    movi r1, 0
    cmpi r1, 5
    jl other
mid:                        ; block 2 (fallthrough of the branch)
    addi r1, r1, 1
    jmp main
other:                      ; block 3
    addi r1, r1, 2
    movi r1, 0
    syscall 0
"""


def setup():
    program = assemble(SRC)
    cfg = build_cfg(program)
    branch_pc = program.symbols["mid"] - 4      # the jl
    return program, cfg, branch_pc


class TestCategoryF:
    """Landings in non-code memory: the hardware-detected bucket."""

    def test_data_section_is_f(self):
        program, cfg, branch = setup()
        assert classify_landing(cfg, branch, program.data_base,
                                program.symbols["other"]) is Category.F

    def test_below_text_is_f(self):
        program, cfg, branch = setup()
        assert classify_landing(cfg, branch, program.text_base - 4,
                                program.symbols["other"]) is Category.F

    def test_past_text_end_is_f(self):
        program, cfg, branch = setup()
        assert classify_landing(cfg, branch, program.text_end,
                                program.symbols["other"]) is Category.F

    def test_address_zero_is_f(self):
        program, cfg, branch = setup()
        assert classify_landing(cfg, branch, 0x0,
                                program.symbols["other"]) is Category.F

    def test_high_offset_bit_flip_lands_in_f(self):
        """Flipping the sign bit of a short forward branch throws the
        target ~128KiB backwards — far outside the text section."""
        program, cfg, branch = setup()
        instr = program.instruction_at(branch)
        landing = corrupted_target(branch, instr, 15)
        assert not program.contains_code(landing)
        assert classify_offset_fault(cfg, branch, instr, 15,
                                     taken=True) is Category.F

    def test_f_outranks_a_check_order(self):
        """A non-code landing is F even when ``other_direction`` is
        given: the A check compares addresses, not regions."""
        program, cfg, branch = setup()
        fall = program.symbols["mid"]
        assert classify_landing(
            cfg, branch, program.text_end + 0x40,
            program.symbols["other"],
            other_direction=fall) is Category.F


class TestNoError:
    """Faults that do not change the executed path."""

    def test_offset_fault_on_not_taken_branch(self):
        """The corrupted target of a not-taken conditional is never
        used — Figure 2's dominant harmless cell."""
        program, cfg, branch = setup()
        instr = program.instruction_at(branch)
        for bit in range(16):
            assert classify_offset_fault(cfg, branch, instr, bit,
                                         taken=False) is Category.NO_ERROR

    def test_same_offset_fault_taken_is_an_error(self):
        """Control check: the very same flips classify as errors once
        the branch is taken."""
        program, cfg, branch = setup()
        instr = program.instruction_at(branch)
        taken = {classify_offset_fault(cfg, branch, instr, bit,
                                       taken=True) for bit in range(16)}
        assert Category.NO_ERROR not in taken

    def test_landing_on_correct_target(self):
        program, cfg, branch = setup()
        target = program.symbols["other"]
        assert classify_landing(cfg, branch, target,
                                target) is Category.NO_ERROR

    def test_flag_flip_preserving_condition_value(self):
        """``jl`` reads SF^OF; flipping ZF or CF leaves the evaluated
        direction unchanged — no error."""
        program, cfg, branch = setup()
        instr = program.instruction_at(branch)
        for flags in (0, ZF, SF, SF | ZF | CF):
            for bit_mask in (ZF, CF):
                bit = bit_mask.bit_length() - 1
                assert classify_flag_fault(
                    instr, flags, bit) is Category.NO_ERROR

    def test_flag_flip_changing_condition_is_a(self):
        """Control check: flipping a flag ``jl`` does read (SF with OF
        clear) flips the direction — category A."""
        program, cfg, branch = setup()
        instr = program.instruction_at(branch)
        sf_bit = SF.bit_length() - 1
        assert classify_flag_fault(instr, 0, sf_bit) is Category.A
        cond = instr.meta.cond
        assert evaluate_cond(cond, 0) != evaluate_cond(cond, SF)

    def test_flag_fault_on_unconditional_branch(self):
        """An unconditional ``jmp`` reads no flags at all."""
        program, cfg, _ = setup()
        jmp_pc = program.symbols["other"] - 4
        instr = program.instruction_at(jmp_pc)
        assert instr.meta.cond is None
        for bit in range(4):
            assert classify_flag_fault(
                instr, OF | SF | ZF | CF, bit) is Category.NO_ERROR
