"""Detection latency: the fail-stop discussion of Section 6.

"The signature checking policies presentation is sorted by the
signature checking frequency.  Notice that the less frequently we check
the signature, the more delay it can take to report the error."
"""

import statistics

import pytest

from repro.checking import Policy
from repro.faults import (Category, Outcome, Pipeline, PipelineConfig,
                          generate_category_faults)
from repro.workloads import load


@pytest.fixture(scope="module")
def program():
    return load("254.gap", "test")


@pytest.fixture(scope="module")
def faults(program):
    return generate_category_faults(program, per_category=10, seed=77)


def latencies(program, faults, policy):
    pipeline = Pipeline(program, PipelineConfig("dbt", "rcf", policy))
    values = []
    for category in (Category.D, Category.E):
        for spec in faults.by_category[category]:
            record = pipeline.run(spec)
            if record.outcome is Outcome.DETECTED_SIGNATURE:
                assert record.detection_latency is not None
                values.append(record.detection_latency)
    return values


class TestDetectionLatency:
    def test_latency_recorded_on_detection(self, program, faults):
        values = latencies(program, faults, Policy.ALLBB)
        assert values
        assert all(v >= 0 for v in values)

    def test_allbb_latency_is_short(self, program, faults):
        """With checks in every block, detection happens within a few
        blocks of the error."""
        values = latencies(program, faults, Policy.ALLBB)
        assert statistics.median(values) < 200

    def test_sparser_checks_mean_longer_latency(self, program, faults):
        allbb = latencies(program, faults, Policy.ALLBB)
        end = latencies(program, faults, Policy.END)
        if allbb and end:
            assert statistics.median(end) >= statistics.median(allbb)

    def test_store_policy_detects_before_observable_output(
            self, program, faults):
        """The STORE policy (Reis et al.'s placement, cited in §6)
        checks wherever data can leave the sphere of replication."""
        pipeline = Pipeline(program,
                            PipelineConfig("dbt", "rcf", Policy.STORE))
        for category in (Category.D, Category.E):
            for spec in faults.by_category[category]:
                record = pipeline.run(spec)
                assert record.outcome is not Outcome.SDC, (category,
                                                           spec)


class TestCacheFaultLatency:
    def test_cache_level_detection_records_latency(self, program):
        """Regression: CacheFaultSpec runs must carry detection_latency
        just like guest-level injections — CacheLevelInjector plumbs
        fired_icount through Pipeline._run_dbt."""
        from repro.faults import (CacheFaultSpec,
                                  enumerate_instrumentation_branch_sites)
        config = PipelineConfig("dbt", "rcf")
        sites = enumerate_instrumentation_branch_sites(program, config)
        assert sites
        pipeline = Pipeline(program, config)
        detected = []
        for site in sites[:12]:
            for bit in (0, 1, 2, 4, 9):
                record = pipeline.run(CacheFaultSpec(
                    cache_addr=site, occurrence=1, bit=bit,
                    force_taken=True))
                if record.outcome is Outcome.DETECTED_SIGNATURE:
                    detected.append(record)
        assert detected, "no cache-level fault was signature-detected"
        for record in detected:
            assert record.detection_latency is not None
            assert record.detection_latency >= 0


class TestStorePolicy:
    def test_store_policy_checks_store_blocks(self, program):
        from repro.cfg import build_cfg
        from repro.checking.policies import block_has_store
        cfg = build_cfg(program)
        checked = [b for b in cfg if Policy.STORE.should_check(b)]
        assert checked
        for block in checked:
            from repro.cfg.basic_block import ExitKind
            assert (block_has_store(block)
                    or block.exit_kind in (ExitKind.HALT, ExitKind.EXIT))

    def test_store_policy_cheaper_than_allbb(self, program):
        from repro.dbt import Dbt
        from repro.checking import make_technique
        costs = {}
        for policy in (Policy.ALLBB, Policy.STORE):
            dbt = Dbt(program, technique=make_technique("rcf"),
                      policy=policy)
            result = dbt.run()
            assert result.ok
            costs[policy] = dbt.cpu.cycles
        assert costs[Policy.STORE] <= costs[Policy.ALLBB]
