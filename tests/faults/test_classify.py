"""Branch-error classification tests (paper Section 2 taxonomy)."""

from hypothesis import given, strategies as st

from repro.isa import assemble
from repro.isa.flags import ZF
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.cfg import build_cfg
from repro.faults import (Category, classify_flag_fault, classify_landing,
                          classify_offset_fault, corrupted_target)

SRC = """
.entry main
main:                       ; block 1: 0x1000
    movi r1, 0
    cmpi r1, 5
    jl other
mid:                        ; block 2 (fallthrough of the branch)
    addi r1, r1, 1
    jmp main
other:                      ; block 3
    addi r1, r1, 2
    movi r1, 0
    syscall 0
"""


def setup():
    program = assemble(SRC)
    cfg = build_cfg(program)
    branch_pc = program.symbols["mid"] - 4      # the jl
    return program, cfg, branch_pc


class TestClassifyLanding:
    def test_correct_target_no_error(self):
        program, cfg, branch = setup()
        target = program.symbols["other"]
        assert classify_landing(cfg, branch, target, target) is \
            Category.NO_ERROR

    def test_other_direction_is_a(self):
        program, cfg, branch = setup()
        fall = program.symbols["mid"]
        assert classify_landing(cfg, branch, fall,
                                program.symbols["other"],
                                other_direction=fall) is Category.A

    def test_own_block_start_is_b(self):
        program, cfg, branch = setup()
        assert classify_landing(cfg, branch, program.symbols["main"],
                                program.symbols["other"]) is Category.B

    def test_own_block_middle_is_c(self):
        program, cfg, branch = setup()
        middle = program.symbols["main"] + 4
        assert classify_landing(cfg, branch, middle,
                                program.symbols["other"]) is Category.C

    def test_landing_on_branch_itself_is_c(self):
        program, cfg, branch = setup()
        assert classify_landing(cfg, branch, branch,
                                program.symbols["other"]) is Category.C

    def test_other_block_start_is_d(self):
        program, cfg, branch = setup()
        assert classify_landing(cfg, branch, program.symbols["mid"],
                                program.symbols["other"]) is Category.D

    def test_other_block_middle_is_e(self):
        program, cfg, branch = setup()
        middle = program.symbols["other"] + 4
        assert classify_landing(cfg, branch, middle,
                                program.symbols["other"] + 0x100
                                ) is Category.E

    def test_noncode_is_f(self):
        program, cfg, branch = setup()
        for landing in (0x0, program.data_base, program.text_end + 64):
            assert classify_landing(cfg, branch, landing,
                                    program.symbols["other"]) is \
                Category.F


class TestOffsetFaults:
    def test_not_taken_is_harmless(self):
        program, cfg, branch = setup()
        instr = program.instruction_at(branch)
        for bit in range(16):
            assert classify_offset_fault(cfg, branch, instr, bit,
                                         taken=False) is \
                Category.NO_ERROR

    def test_taken_produces_some_errors(self):
        program, cfg, branch = setup()
        instr = program.instruction_at(branch)
        cats = {classify_offset_fault(cfg, branch, instr, bit, True)
                for bit in range(16)}
        assert Category.F in cats
        assert cats - {Category.NO_ERROR}

    def test_corrupted_target_negative_offsets(self):
        # -3 encodes as 0xFFFD; flipping bit 0 gives 0xFFFC == -4.
        instr = Instruction(op=Op.JMP, imm=-3)
        pc = 0x1010
        base = instr.branch_target(pc)
        assert corrupted_target(pc, instr, 0) == base - 4

    @given(st.integers(0, 15))
    def test_corruption_involutive(self, bit):
        instr = Instruction(op=Op.JZ, imm=-100)
        pc = 0x2000
        once = corrupted_target(pc, instr, bit)
        # re-flipping the same bit of the corrupted offset recovers it
        imm_once = (once - pc - 4) // 4
        twice = corrupted_target(
            pc, Instruction(op=Op.JZ, imm=imm_once), bit)
        assert twice == instr.branch_target(pc)


class TestFlagFaults:
    def test_direction_flip_is_a(self):
        instr = Instruction(op=Op.JZ, imm=2)
        assert classify_flag_fault(instr, ZF, 0) is Category.A
        assert classify_flag_fault(instr, 0, 0) is Category.A

    def test_unread_flag_harmless(self):
        instr = Instruction(op=Op.JZ, imm=2)
        # CF (bit 2) is not read by jz
        assert classify_flag_fault(instr, 0, 2) is Category.NO_ERROR

    def test_masked_flag_harmless(self):
        # jle with ZF set: SF flip cannot change the outcome
        instr = Instruction(op=Op.JLE, imm=2)
        assert classify_flag_fault(instr, ZF, 1) is Category.NO_ERROR

    def test_unconditional_immune(self):
        instr = Instruction(op=Op.JMP, imm=2)
        for bit in range(4):
            assert classify_flag_fault(instr, 0xF, bit) is \
                Category.NO_ERROR
