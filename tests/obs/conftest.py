"""Obs tests must never leak an installed registry into other tests."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def obs_off_after():
    yield
    obs.uninstall()
