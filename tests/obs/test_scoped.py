"""Thread-local obs scoping: per-job registries in one process.

The campaign service runs several jobs concurrently on threads of one
process; ``obs.scoped`` routes each thread's telemetry to its own
registry without touching the other threads or the installed global.
"""

import threading

from repro import obs
from repro.obs.metrics import MetricsRegistry


def counter_value(registry, name, **labels):
    for entry in registry.snapshot()["counters"]:
        if entry["name"] == name and entry.get("labels", {}) == labels:
            return entry["value"]
    return 0


class TestScoped:
    def test_scope_captures_while_global_off(self):
        registry = MetricsRegistry()
        assert not obs.enabled()
        with obs.scoped(registry):
            assert obs.enabled()
            obs.counter("scoped_total").inc()
        assert not obs.enabled()
        assert counter_value(registry, "scoped_total") == 1

    def test_scope_shadows_installed_global(self):
        obs.install(MetricsRegistry())
        global_registry = obs.get_registry()
        scoped_registry = MetricsRegistry()
        obs.counter("outside_total").inc()
        with obs.scoped(scoped_registry):
            obs.counter("inside_total").inc()
        obs.counter("outside_total").inc()
        assert counter_value(global_registry, "outside_total") == 2
        assert counter_value(global_registry, "inside_total") == 0
        assert counter_value(scoped_registry, "inside_total") == 1

    def test_nested_scopes_restore(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with obs.scoped(outer):
            with obs.scoped(inner):
                obs.counter("deep_total").inc()
            obs.counter("shallow_total").inc()
        assert counter_value(inner, "deep_total") == 1
        assert counter_value(outer, "shallow_total") == 1
        assert counter_value(outer, "deep_total") == 0

    def test_scopes_are_thread_local(self):
        registries = [MetricsRegistry() for _ in range(2)]
        barrier = threading.Barrier(2)

        def work(index):
            with obs.scoped(registries[index]):
                barrier.wait()
                obs.counter("thread_total", index=str(index)).inc()

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter_value(registries[0], "thread_total",
                             index="0") == 1
        assert counter_value(registries[0], "thread_total",
                             index="1") == 0
        assert counter_value(registries[1], "thread_total",
                             index="1") == 1

    def test_install_clears_the_active_scope(self):
        """Fork safety: a campaign worker forked from a scoped service
        thread installs its own worker registry, which must win over
        the inherited scope (worker telemetry rides the result pipe)."""
        scoped_registry = MetricsRegistry()
        with obs.scoped(scoped_registry):
            obs.install(MetricsRegistry())
            obs.counter("after_install_total").inc()
            installed = obs.get_registry()
        assert counter_value(scoped_registry,
                             "after_install_total") == 0
        assert counter_value(installed, "after_install_total") == 1
