"""RollingWindow / TimeSeriesHub: wrap-around, modes, snapshot diffs."""

from repro.obs.timeseries import (DEFAULT_WINDOW_SECONDS, RollingWindow,
                                  TimeSeriesHub, _series_key)


class TestRollingWindow:
    def test_record_and_series(self):
        window = RollingWindow(seconds=10)
        window.record(3, now=100.2)
        window.record(2, now=100.9)   # same second: summed
        window.record(5, now=101.0)
        series = window.series(now=101)
        assert series[-2:] == [[100, 5.0], [101, 5.0]]
        assert all(value == 0.0 for _, value in series[:-2])

    def test_wraparound_reuses_buckets(self):
        window = RollingWindow(seconds=5)
        window.record(1, now=7)        # bucket 7 % 5 == 2
        window.record(9, now=12)       # same bucket index, new second
        series = dict(
            (sec, val) for sec, val in window.series(now=12))
        assert series[12] == 9.0
        assert 7 not in series         # rolled out of the window

    def test_stale_buckets_read_zero_after_idle_gap(self):
        window = RollingWindow(seconds=5)
        window.record(4, now=100)
        # Idle for longer than the span: second 100's bucket (index 0)
        # would be re-served for second 105 without the stamp check.
        series = dict(window.series(now=105))
        assert series[105] == 0.0
        assert window.total(now=105) == 0.0

    def test_modes(self):
        for mode, expected in (("sum", 7.0), ("max", 5.0), ("last", 2.0)):
            window = RollingWindow(seconds=4, mode=mode)
            window.record(5, now=50)
            window.record(2, now=50.7)
            assert dict(window.series(now=50))[50] == expected

    def test_rate_excludes_current_second(self):
        window = RollingWindow(seconds=60)
        for t in range(100, 110):
            window.record(10, now=t)
        window.record(3, now=110.1)    # still-filling second
        assert window.rate(now=110.1, seconds=10) == 10.0

    def test_default_span(self):
        assert RollingWindow().capacity == DEFAULT_WINDOW_SECONDS

    def test_bad_mode_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            RollingWindow(mode="avg")


def _counter(name, value, **labels):
    return {"name": name, "labels": labels, "value": value}


class TestTimeSeriesHub:
    def test_sample_diffs_counters(self):
        hub = TimeSeriesHub(seconds=30)
        hub.sample({"counters": [_counter("runs", 10)]}, now=100)
        hub.sample({"counters": [_counter("runs", 17)]}, now=101)
        series = hub.series(now=101)
        assert dict(series["runs"])[101] == 7.0
        assert dict(series["runs"])[100] == 0.0  # first sight: baseline

    def test_labelled_counters_also_feed_aggregate(self):
        hub = TimeSeriesHub(seconds=30)
        first = [_counter("runs", 5, outcome="sdc"),
                 _counter("runs", 5, outcome="benign")]
        second = [_counter("runs", 8, outcome="sdc"),
                  _counter("runs", 6, outcome="benign")]
        hub.sample({"counters": first}, now=200)
        hub.sample({"counters": second}, now=201)
        series = hub.series(now=201)
        assert dict(series["runs{outcome=sdc}"])[201] == 3.0
        assert dict(series["runs{outcome=benign}"])[201] == 1.0
        assert dict(series["runs"])[201] == 4.0

    def test_unlabelled_counter_not_double_counted(self):
        hub = TimeSeriesHub(seconds=30)
        hub.sample({"counters": [_counter("runs", 0)]}, now=300)
        hub.sample({"counters": [_counter("runs", 6)]}, now=301)
        assert dict(hub.series(now=301)["runs"])[301] == 6.0

    def test_counter_reset_rebaselines(self):
        hub = TimeSeriesHub(seconds=30)
        hub.sample({"counters": [_counter("runs", 50)]}, now=400)
        hub.sample({"counters": [_counter("runs", 2)]}, now=401)
        hub.sample({"counters": [_counter("runs", 5)]}, now=402)
        series = dict(hub.series(now=402)["runs"])
        assert series[401] == 0.0      # negative delta swallowed
        assert series[402] == 3.0

    def test_gauges_record_last_value(self):
        hub = TimeSeriesHub(seconds=30)
        hub.sample({"gauges": [{"name": "depth", "labels": {},
                                "value": 4}]}, now=500)
        hub.sample({"gauges": [{"name": "depth", "labels": {},
                                "value": 2}]}, now=500.6)
        assert dict(hub.series(now=500)["depth"])[500] == 2.0

    def test_series_key(self):
        assert _series_key("x", {}) == "x"
        assert _series_key("x", {"b": 1, "a": 2}) == "x{a=2,b=1}"
