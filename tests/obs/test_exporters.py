"""Exporters: Prometheus text, JSONL, the stats report, file round-trips."""

import json

import pytest

from repro.obs.exporters import (jsonl_text, load_snapshot,
                                 prometheus_text, render_stats,
                                 write_metrics)
from repro.obs.metrics import MetricsRegistry, bucket_index


@pytest.fixture
def snapshot():
    registry = MetricsRegistry()
    registry.counter("runs_total", help="runs", outcome="sdc").inc(3)
    registry.counter("runs_total", outcome="benign").inc(7)
    registry.gauge("cache_bytes").set(4096)
    histogram = registry.histogram("translate_seconds")
    histogram.observe(0.001)
    histogram.observe(0.002)
    histogram.observe(1.5)
    snap = registry.snapshot()
    snap["spans"] = [{"name": "dbt.run", "count": 2, "total": 0.5,
                      "max": 0.3}]
    return snap


class TestPrometheus:
    def test_type_headers_once_per_metric(self, snapshot):
        text = prometheus_text(snapshot)
        assert text.count("# TYPE runs_total counter") == 1
        assert "# TYPE cache_bytes gauge" in text
        assert "# TYPE translate_seconds histogram" in text

    def test_label_rendering(self, snapshot):
        text = prometheus_text(snapshot)
        assert 'runs_total{outcome="sdc"} 3' in text
        assert 'runs_total{outcome="benign"} 7' in text

    def test_histogram_series_cumulative(self, snapshot):
        text = prometheus_text(snapshot)
        assert 'translate_seconds_bucket{le="+Inf"} 3' in text
        assert "translate_seconds_sum" in text
        assert "translate_seconds_count 3" in text
        # cumulative counts never decrease down the bucket series
        counts = [int(line.rsplit(" ", 1)[1])
                  for line in text.splitlines()
                  if line.startswith("translate_seconds_bucket")]
        assert counts == sorted(counts)

    def test_span_summary(self, snapshot):
        text = prometheus_text(snapshot)
        assert 'span_seconds_sum{span="dbt.run"} 0.5' in text
        assert 'span_seconds_count{span="dbt.run"} 2' in text

    def test_ends_with_newline(self, snapshot):
        assert prometheus_text(snapshot).endswith("\n")


class TestJsonl:
    def test_one_object_per_line_with_type(self, snapshot):
        lines = [json.loads(line)
                 for line in jsonl_text(snapshot).splitlines()]
        kinds = {line["type"] for line in lines}
        assert kinds == {"counter", "gauge", "histogram", "span"}
        counter = next(line for line in lines
                       if line["type"] == "counter"
                       and line["labels"] == {"outcome": "sdc"})
        assert counter["value"] == 3

    def test_empty_snapshot_is_empty(self):
        assert jsonl_text({}) == ""


class TestRenderStats:
    def test_sections_present(self, snapshot):
        text = render_stats(snapshot)
        assert "Counters" in text
        assert "Gauges" in text
        assert "Histograms" in text
        assert "Spans" in text

    def test_histogram_percentile_columns(self, snapshot):
        text = render_stats(snapshot)
        header = next(line for line in text.splitlines()
                      if "p50" in line)
        assert "p90" in header and "p99" in header

    def test_labels_flattened(self, snapshot):
        assert "outcome=sdc" in render_stats(snapshot)

    def test_empty_snapshot_message(self):
        assert render_stats({}) == "(no metrics recorded)"


class TestFiles:
    def test_suffix_dispatch(self, tmp_path, snapshot):
        prom = tmp_path / "m.prom"
        jsonl = tmp_path / "m.jsonl"
        plain = tmp_path / "m.json"
        for path in (prom, jsonl, plain):
            write_metrics(str(path), snapshot)
        assert prom.read_text().startswith("# TYPE")
        assert json.loads(jsonl.read_text().splitlines()[0])
        assert load_snapshot(str(plain)) == snapshot

    def test_load_snapshot_rejects_non_json(self, tmp_path, snapshot):
        path = tmp_path / "m.prom"
        write_metrics(str(path), snapshot)
        with pytest.raises(ValueError, match="not a JSON"):
            load_snapshot(str(path))


def test_bucket_boundary_render_consistency():
    # the le= rendered for a bucket must be >= any value binned into it
    from repro.obs.metrics import bucket_upper_bound
    for value in (0.0001, 0.5, 1.0, 3.0, 1000.0):
        assert value <= bucket_upper_bound(bucket_index(value))


class TestLabelEscaping:
    def test_escape_label_value(self):
        from repro.obs.exporters import escape_label_value
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        assert escape_label_value("plain") == "plain"

    def test_hostile_labels_round_trip_the_exposition_format(self):
        from repro.obs.metrics import MetricsRegistry
        registry = MetricsRegistry()
        hostile = 'quote:" slash:\\ newline:\nend'
        registry.counter("runs_total", source=hostile).inc(2)
        text = prometheus_text(registry.snapshot())
        line = next(row for row in text.splitlines()
                    if row.startswith("runs_total{"))
        # one physical line (the newline was escaped) ...
        assert "\n" not in line
        # ... that decodes back to the original value
        body = line[line.index("{") + 1:line.rindex("}")]
        value = body.split("=", 1)[1]
        assert value.startswith('"') and value.endswith('"')
        decoded = (value[1:-1].replace("\\n", "\n")
                   .replace('\\"', '"').replace("\\\\", "\\"))
        assert decoded == hostile
