"""Span recorder: nesting, bounded buffer, aggregates, JSONL sink."""

import json

import pytest

from repro.obs.spans import NULL_SPAN, SpanRecorder


class TestNesting:
    def test_parent_child_and_depth(self):
        recorder = SpanRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        inner, outer = None, None
        for record in recorder.buffer:
            if record.name == "inner":
                inner = record
            else:
                outer = record
        assert outer.parent_id is None and outer.depth == 0
        assert inner.parent_id == outer.span_id and inner.depth == 1

    def test_children_finish_first(self):
        recorder = SpanRecorder()
        with recorder.span("a"):
            with recorder.span("b"):
                pass
        names = [record.name for record in recorder.buffer]
        assert names == ["b", "a"]

    def test_attrs_recorded(self):
        recorder = SpanRecorder()
        with recorder.span("translate", block=0x1000):
            pass
        assert recorder.buffer[0].attrs == {"block": 0x1000}

    def test_durations_nest(self):
        recorder = SpanRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        by_name = {r.name: r for r in recorder.buffer}
        assert by_name["outer"].duration >= by_name["inner"].duration


class TestBoundedBuffer:
    def test_capacity_evicts_oldest_and_counts_drops(self):
        recorder = SpanRecorder(capacity=3)
        for index in range(5):
            with recorder.span(f"s{index}"):
                pass
        assert len(recorder.buffer) == 3
        assert [r.name for r in recorder.buffer] == ["s2", "s3", "s4"]
        assert recorder.dropped == 2

    def test_aggregates_survive_wraparound(self):
        recorder = SpanRecorder(capacity=2)
        for _ in range(10):
            with recorder.span("hot"):
                pass
        assert recorder.aggregates["hot"][0] == 10


class TestAggregates:
    def test_snapshot_shape_and_order(self):
        recorder = SpanRecorder()
        with recorder.span("zeta"):
            pass
        with recorder.span("alpha"):
            pass
        snap = recorder.snapshot_aggregates()
        assert [entry["name"] for entry in snap] == ["alpha", "zeta"]
        assert snap[0]["count"] == 1
        assert snap[0]["total"] == pytest.approx(snap[0]["max"])

    def test_merge(self):
        first = SpanRecorder()
        with first.span("x"):
            pass
        second = SpanRecorder()
        with second.span("x"):
            pass
        with second.span("y"):
            pass
        first.merge_aggregates(second.snapshot_aggregates())
        assert first.aggregates["x"][0] == 2
        assert first.aggregates["y"][0] == 1

    def test_drain_clears(self):
        recorder = SpanRecorder()
        with recorder.span("x"):
            pass
        entries = recorder.drain_aggregates()
        assert entries and not recorder.aggregates
        assert not recorder.buffer


class TestSink:
    def test_jsonl_sink_streams_finished_spans(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder = SpanRecorder(sink_path=str(path))
        with recorder.span("outer", k="v"):
            with recorder.span("inner"):
                pass
        recorder.close()
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [line["name"] for line in lines] == ["inner", "outer"]
        assert lines[1]["attrs"] == {"k": "v"}
        assert lines[0]["parent_id"] == lines[1]["span_id"]

    def test_close_idempotent(self, tmp_path):
        recorder = SpanRecorder(sink_path=str(tmp_path / "t.jsonl"))
        recorder.close()
        recorder.close()


def test_null_span_is_reusable():
    with NULL_SPAN:
        with NULL_SPAN:
            pass
