"""Observability wired through the stack: interpreter, DBT, campaigns.

The acceptance contract: **off means free** (no instrumentation state
is touched without an installed registry), and a parallel campaign's
merged registry matches a serial run's totals exactly.
"""

from repro import obs
from repro.checking import EdgCF
from repro.dbt import Dbt
from repro.isa import assemble
from repro.machine import Cpu, run_native
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder


LOOP = """
.entry main
main:
    movi r1, 0
    movi r2, 1
loop:
    add r1, r1, r2
    addi r2, r2, 1
    cmpi r2, 11
    jl loop
    syscall 1
    movi r1, 0
    syscall 0
"""


def install():
    registry = MetricsRegistry()
    recorder = SpanRecorder()
    obs.install(registry, recorder)
    return registry, recorder


def counter_value(registry, name, **labels):
    return registry.counter(name, **labels).value


class TestHelpersOff:
    def test_helpers_return_nulls_when_off(self):
        assert obs.get_registry() is None
        assert obs.counter("x") is obs.NULL_COUNTER
        assert obs.gauge("x") is obs.NULL_GAUGE
        assert obs.histogram("x") is obs.NULL_HISTOGRAM
        assert obs.span("x") is obs.NULL_SPAN
        assert obs.snapshot() == {}
        assert obs.drain_worker_snapshot() is None

    def test_merge_snapshot_noop_when_off(self):
        obs.merge_snapshot({"counters": [{"name": "x", "value": 1}]})
        assert obs.get_registry() is None


class TestInterpreter:
    def test_off_leaves_cpu_hooks_alone(self):
        cpu = Cpu()
        cpu.load_program(assemble(LOOP))
        cpu.run()
        assert cpu.branch_profiler is None

    def test_instruction_and_cycle_counters_exact(self):
        registry, _ = install()
        cpu, stop = run_native(assemble(LOOP))
        assert counter_value(
            registry, "interp_instructions_total") == cpu.icount
        assert counter_value(
            registry, "interp_cycles_total") == cpu.cycles

    def test_branch_mix_recorded(self):
        registry, _ = install()
        run_native(assemble(LOOP))
        taken = counter_value(registry, "interp_branches_total",
                              direction="taken")
        not_taken = counter_value(registry, "interp_branches_total",
                                  direction="not_taken")
        assert taken == 9      # jl loop taken 9 times
        assert not_taken == 1  # final fall-through

    def test_observed_run_restores_profiler_slot(self):
        install()
        cpu, _ = run_native(assemble(LOOP))
        assert cpu.branch_profiler is None

    def test_existing_profiler_not_displaced(self):
        from repro.machine.profile import BranchProfiler
        registry, _ = install()
        profiler = BranchProfiler()
        cpu, _ = run_native(assemble(LOOP), profiler=profiler)
        assert cpu.branch_profiler is profiler
        assert sum(stats.executions
                   for stats in profiler.branches.values()) == 10
        # branch-mix counters are unavailable, but instructions are not
        assert counter_value(
            registry, "interp_instructions_total") == cpu.icount

    def test_interp_span_recorded(self):
        _, recorder = install()
        run_native(assemble(LOOP))
        assert recorder.aggregates["interp.run"][0] == 1


class TestDbt:
    def test_translation_and_cache_metrics(self):
        registry, recorder = install()
        dbt = Dbt(assemble(LOOP), technique=EdgCF())
        result = dbt.run()
        assert result.ok
        translated = counter_value(registry,
                                   "dbt_blocks_translated_total")
        assert translated == len(dbt.blocks)
        assert counter_value(registry, "dbt_cache_lookup_total",
                             result="miss") == translated
        assert counter_value(registry, "dbt_cache_lookup_total",
                             result="hit") >= 1
        assert registry.gauge("dbt_cache_bytes_used").value > 0
        assert recorder.aggregates["dbt.translate"][0] == translated
        assert recorder.aggregates["dbt.run"][0] == 1
        assert registry.histogram(
            "dbt_translate_seconds").count == translated

    def test_signature_checks_executed_counted(self):
        registry, _ = install()
        dbt = Dbt(assemble(LOOP), technique=EdgCF())
        dbt.run()
        # every block body executes its CHECK_SIG each time through
        assert counter_value(registry,
                             "dbt_checks_executed_total") > 0

    def test_detection_event_counted(self):
        from repro.faults import DbtInjector, FaultSpec, RedirectFault
        registry, _ = install()
        program = assemble(LOOP)
        dbt = Dbt(program, technique=EdgCF())
        # redirect the loop's jl back to main's head: arriving with the
        # wrong signature must fire a check, counted as a detection
        DbtInjector(FaultSpec(0x1014, 2,
                              RedirectFault(program.symbols["main"])),
                    dbt).install()
        result = dbt.run(max_steps=100_000)
        assert result.detected_error
        assert counter_value(registry, "dbt_detections_total",
                             kind="signature") == 1

    def test_off_means_no_check_site_instrumentation_on_cpu_path(self):
        dbt = Dbt(assemble(LOOP), technique=EdgCF())
        result = dbt.run()
        assert result.ok


class TestWorkerProtocol:
    def test_drain_roundtrip_matches_direct_counts(self):
        worker = MetricsRegistry(worker=True)
        worker_recorder = SpanRecorder()
        obs.install(worker, worker_recorder)
        run_native(assemble(LOOP))
        icount = counter_value(worker, "interp_instructions_total")
        snap = obs.drain_worker_snapshot()
        assert counter_value(worker, "interp_instructions_total") == 0

        parent = MetricsRegistry()
        parent_recorder = SpanRecorder()
        obs.install(parent, parent_recorder)
        obs.merge_snapshot(snap)
        assert counter_value(
            parent, "interp_instructions_total") == icount
        assert parent_recorder.aggregates["interp.run"][0] == 1

    def test_parent_registry_never_drains(self):
        registry, _ = install()
        registry.counter("x").inc()
        assert obs.drain_worker_snapshot() is None
        assert registry.counter("x").value == 1


class TestSession:
    def test_session_noop_without_paths(self):
        with obs.session(None, None):
            assert obs.get_registry() is None

    def test_session_writes_snapshot(self, tmp_path):
        path = tmp_path / "metrics.json"
        with obs.session(str(path), None):
            obs.counter("events_total").inc(2)
        assert obs.get_registry() is None
        from repro.obs.exporters import load_snapshot
        snap = load_snapshot(str(path))
        assert snap["counters"][0] == {"name": "events_total",
                                       "labels": {}, "value": 2}

    def test_session_trace_sink(self, tmp_path):
        import json
        path = tmp_path / "trace.jsonl"
        with obs.session(None, str(path)):
            with obs.span("unit.test"):
                pass
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["name"] == "unit.test"


class TestCampaignExactMatch:
    """Acceptance: a parallel campaign's merged registry reports the
    same instruction total as the serial run — per-worker snapshots sum
    exactly."""

    def test_parallel_merge_equals_serial(self):
        from repro.faults import (CampaignExecutor, PipelineConfig,
                                  clear_caches, generate_category_faults)
        from repro.workloads import suite as workload_suite
        program = workload_suite.load("254.gap", "test")
        faults = generate_category_faults(program, per_category=2,
                                          seed=7)
        specs = [spec for specs in faults.by_category.values()
                 for spec in specs]
        config = PipelineConfig("dbt", "rcf")

        def run(jobs):
            clear_caches()
            registry, recorder = install()
            records = CampaignExecutor(program, config,
                                       jobs=jobs).run_specs(specs)
            snap = obs.snapshot()
            obs.uninstall()
            return records, snap

        serial_records, serial_snap = run(1)
        parallel_records, parallel_snap = run(2)
        assert serial_records == parallel_records

        def total(snap, name):
            return sum(entry["value"]
                       for entry in snap["counters"]
                       if entry["name"] == name)

        for name in ("interp_instructions_total",
                     "dbt_checks_executed_total",
                     "interp_branches_total"):
            assert total(serial_snap, name) == total(
                parallel_snap, name), name
        outcomes_serial = {
            (entry["labels"]["outcome"], entry["value"])
            for entry in serial_snap["counters"]
            if entry["name"] == "campaign_runs_total"}
        outcomes_parallel = {
            (entry["labels"]["outcome"], entry["value"])
            for entry in parallel_snap["counters"]
            if entry["name"] == "campaign_runs_total"}
        assert outcomes_serial == outcomes_parallel

    def test_parallel_map_merges_worker_metrics(self):
        from repro.faults import parallel_map
        registry, _ = install()
        results = parallel_map(_observed_square, [1, 2, 3, 4], jobs=2)
        assert results == [1, 4, 9, 16]
        assert counter_value(registry, "map_calls_total") == 4


def _observed_square(value):
    obs.counter("map_calls_total").inc()
    return value * value
