"""Metrics instruments: bucket math, registry keying, snapshot/merge."""

import pytest

from repro.obs.metrics import (BUCKETS, Counter, Gauge, Histogram,
                               MetricsRegistry, NULL_COUNTER, NULL_GAUGE,
                               NULL_HISTOGRAM, bucket_index,
                               bucket_upper_bound)


class TestBucketMath:
    def test_bounds_are_powers_of_two(self):
        assert bucket_upper_bound(20) == 1.0
        assert bucket_upper_bound(21) == 2.0
        assert bucket_upper_bound(19) == 0.5

    def test_index_of_exact_boundary(self):
        # a value equal to a bucket's upper bound lands in that bucket
        assert bucket_index(1.0) == 20
        assert bucket_index(2.0) == 21
        assert bucket_index(0.5) == 19

    def test_index_between_boundaries(self):
        assert bucket_index(1.5) == 21
        assert bucket_index(0.75) == 20

    def test_nonpositive_and_tiny_clamp_to_zero(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(-3.0) == 0
        assert bucket_index(1e-30) == 0

    def test_huge_clamps_to_last(self):
        assert bucket_index(1e30) == BUCKETS - 1

    def test_every_bucket_consistent_with_bounds(self):
        for index in range(1, BUCKETS - 1):
            upper = bucket_upper_bound(index)
            assert bucket_index(upper) == index
            assert bucket_index(upper * 1.01) == index + 1


class TestInstruments:
    def test_counter(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0

    def test_gauge(self):
        gauge = Gauge("g")
        gauge.set(7)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 8

    def test_histogram_mean_and_count(self):
        histogram = Histogram("h")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(2.0)

    def test_histogram_percentile_interpolates(self):
        histogram = Histogram("h")
        # 100 observations of 1.0: every percentile within (0.5, 1.0]
        for _ in range(100):
            histogram.observe(1.0)
        assert 0.5 < histogram.percentile(0.50) <= 1.0
        assert histogram.percentile(0.99) <= 1.0
        assert histogram.percentile(0.50) < histogram.percentile(0.99)

    def test_histogram_percentile_orders_buckets(self):
        histogram = Histogram("h")
        for _ in range(90):
            histogram.observe(0.001)
        for _ in range(10):
            histogram.observe(10.0)
        assert histogram.percentile(0.5) < 0.01
        assert histogram.percentile(0.99) > 1.0

    def test_histogram_empty_percentile(self):
        assert Histogram("h").percentile(0.99) == 0.0
        assert Histogram("h").mean == 0.0

    def test_timer_observes_elapsed(self):
        histogram = Histogram("h")
        with histogram.time():
            pass
        assert histogram.count == 1
        assert histogram.sum >= 0.0

    def test_null_instruments_are_inert(self):
        NULL_COUNTER.inc()
        NULL_GAUGE.set(3)
        NULL_GAUGE.inc()
        NULL_GAUGE.dec()
        NULL_HISTOGRAM.observe(1.0)
        with NULL_HISTOGRAM.time():
            pass


class TestRegistry:
    def test_same_name_and_labels_is_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("x", result="hit")
        second = registry.counter("x", result="hit")
        assert first is second

    def test_labels_distinguish(self):
        registry = MetricsRegistry()
        hit = registry.counter("x", result="hit")
        miss = registry.counter("x", result="miss")
        assert hit is not miss

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")

    def test_instruments_deterministic_order(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a", z="1")
        registry.counter("a", q="1")
        names = [(i.name, i.labels) for i in registry.instruments()]
        assert names == sorted(names)

    def test_snapshot_roundtrip_through_merge(self):
        source = MetricsRegistry(worker=True)
        source.counter("runs", outcome="sdc").inc(3)
        source.gauge("bytes").set(128)
        source.histogram("secs").observe(0.25)
        source.histogram("secs").observe(4.0)

        target = MetricsRegistry()
        target.counter("runs", outcome="sdc").inc(1)
        target.merge_snapshot(source.snapshot())
        assert target.counter("runs", outcome="sdc").value == 4
        assert target.gauge("bytes").value == 128
        assert target.histogram("secs").count == 2
        assert target.histogram("secs").sum == pytest.approx(4.25)

    def test_merge_gauges_keep_max(self):
        target = MetricsRegistry()
        target.gauge("bytes").set(100)
        worker = MetricsRegistry(worker=True)
        worker.gauge("bytes").set(64)
        target.merge_snapshot(worker.snapshot())
        assert target.gauge("bytes").value == 100

    def test_drain_resets_but_keeps_identity(self):
        registry = MetricsRegistry(worker=True)
        counter = registry.counter("c")
        counter.inc(5)
        snap = registry.drain()
        assert snap["counters"][0]["value"] == 5
        assert counter.value == 0
        assert registry.counter("c") is counter

    def test_snapshot_is_jsonable(self):
        import json
        registry = MetricsRegistry()
        registry.counter("c", a="b").inc()
        registry.histogram("h").observe(1.0)
        text = json.dumps(registry.snapshot())
        assert "bucket" in text


class TestPercentileLogLinear:
    """Regression pins for the log-linear (geometric) interpolation:
    power-of-two buckets model observations as uniform in log space,
    so the mid-bucket quantile is the geometric midpoint, and bucket
    boundaries are exact."""

    def test_mid_bucket_is_geometric_midpoint(self):
        histogram = Histogram("h")
        for _ in range(100):
            histogram.observe(1.0)   # all in bucket (0.5, 1.0]
        # p50 = 0.5 * (1.0/0.5)**0.5 = 0.5 * sqrt(2)
        assert histogram.percentile(0.50) == \
            pytest.approx(0.5 * 2 ** 0.5)

    def test_bucket_boundary_is_exact(self):
        histogram = Histogram("h")
        for _ in range(100):
            histogram.observe(1.0)
        assert histogram.percentile(1.0) == pytest.approx(1.0)

    def test_quantiles_monotonic_within_bucket(self):
        histogram = Histogram("h")
        for _ in range(100):
            histogram.observe(8.0)
        values = [histogram.percentile(q)
                  for q in (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)]
        assert values == sorted(values)
        assert all(4.0 < v <= 8.0 for v in values)

    def test_bucket_zero_stays_linear_from_zero(self):
        histogram = Histogram("h")
        tiny = bucket_upper_bound(0)
        for _ in range(10):
            histogram.observe(tiny / 2)
        assert histogram.percentile(0.5) == pytest.approx(tiny * 0.5)
        assert histogram.percentile(1.0) == pytest.approx(tiny)

    def test_never_exceeds_linear_estimate(self):
        # geometric mean <= arithmetic mean: log-linear must sit at or
        # below what linear interpolation would have produced
        histogram = Histogram("h")
        for _ in range(100):
            histogram.observe(1000.0)
        upper = bucket_upper_bound(bucket_index(1000.0))
        lower = bucket_upper_bound(bucket_index(1000.0) - 1)
        linear_p50 = lower + 0.5 * (upper - lower)
        assert histogram.percentile(0.5) <= linear_p50

    def test_multi_bucket_quantile_picks_right_bucket(self):
        histogram = Histogram("h")
        for _ in range(50):
            histogram.observe(0.25)
        for _ in range(50):
            histogram.observe(64.0)
        assert histogram.percentile(0.50) <= 0.25
        assert 32.0 < histogram.percentile(0.99) <= 64.0
