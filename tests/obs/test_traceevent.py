"""Trace contexts, sidecar I/O, and Chrome trace-event export."""

import json

from repro.obs.traceevent import (TraceContext, append_entry,
                                  chunk_entry, derive_span_id,
                                  export_chrome_trace, job_entry,
                                  read_entries, to_chrome_trace,
                                  trace_sidecar_path,
                                  validate_chrome_trace)


class TestTraceContext:
    def test_span_ids_are_deterministic(self):
        a = derive_span_id("t", "p", "chunk", 3)
        b = derive_span_id("t", "p", "chunk", 3)
        assert a == b and len(a) == 16

    def test_distinct_inputs_distinct_ids(self):
        ids = {derive_span_id("t", "p", "chunk", i) for i in range(8)}
        assert len(ids) == 8

    def test_child_links_parent(self):
        root = TraceContext.root("abc")
        child = root.child("chunk", 0)
        assert child.trace_id == "abc"
        assert child.parent_span == root.span_id
        assert child.span_id != root.span_id

    def test_for_campaign_is_stable(self):
        a = TraceContext.for_campaign("digest", "key")
        b = TraceContext.for_campaign("digest", "key")
        assert a == b
        assert TraceContext.for_campaign("digest", "other") != a

    def test_json_round_trip(self):
        ctx = TraceContext.root("t").child("run", 5)
        assert TraceContext.from_json(ctx.to_json()) == ctx


class TestSidecar:
    def test_suffix(self):
        assert trace_sidecar_path("/x/journal.jsonl").endswith(
            "journal.jsonl.trace.jsonl")

    def test_append_and_read(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        append_entry(path, {"type": "job", "name": "a"})
        append_entry(path, {"type": "chunk", "index": 0})
        assert [e["type"] for e in read_entries(path)] == \
            ["job", "chunk"]

    def test_read_skips_torn_tail(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        append_entry(path, {"type": "job", "name": "a"})
        with open(path, "a") as handle:
            handle.write('{"type": "chunk", "ind')  # killed mid-append
        entries = read_entries(path)
        assert len(entries) == 1 and entries[0]["type"] == "job"


def _entries():
    job = TraceContext.root("trace1")
    runs0 = [{"i": 0, "t0": 10.001, "dur": 0.002, "outcome": "benign"},
             {"i": 1, "t0": 10.004, "dur": 0.001}]
    runs1 = [{"i": 2, "t0": 10.010, "dur": 0.003}]
    return [
        job_entry(job, "prog.s", 10.0, 10.02, kind="inject"),
        chunk_entry(job, 0, 10.0005, 10.006, pid=111, runs=runs0),
        chunk_entry(job, 1, 10.009, 10.014, pid=222, runs=runs1),
    ]


class TestChromeExport:
    def test_valid_trace(self):
        trace = to_chrome_trace(_entries())
        assert validate_chrome_trace(trace) == []

    def test_span_counts_and_processes(self):
        trace = to_chrome_trace(_entries())
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert len(spans) == 6  # 1 job + 2 chunks + 3 runs
        assert {e["pid"] for e in meta} == {__import__("os").getpid(),
                                            111, 222}

    def test_runs_nest_under_their_chunk(self):
        trace = to_chrome_trace(_entries())
        spans = {e["args"]["span_id"]: e
                 for e in trace["traceEvents"] if e["ph"] == "X"}
        chunks = [e for e in spans.values() if e["cat"] == "chunk"]
        runs = [e for e in spans.values() if e["cat"] == "run"]
        assert len(runs) == 3
        for run in runs:
            parent = spans[run["args"]["parent_span"]]
            assert parent["cat"] == "chunk"
            assert parent["pid"] == run["pid"]
        job = next(e for e in spans.values() if e["cat"] == "job")
        for chunk in chunks:
            assert chunk["args"]["parent_span"] == \
                job["args"]["span_id"]

    def test_integer_microseconds(self):
        trace = to_chrome_trace(_entries())
        for event in trace["traceEvents"]:
            if event["ph"] != "X":
                continue
            assert isinstance(event["ts"], int)
            assert isinstance(event["dur"], int) and event["dur"] >= 1

    def test_dedupe_keeps_last_attempt(self):
        # A requeued job appends a second line under the same span id.
        entries = _entries()
        job = TraceContext.root("trace1")
        entries.append(job_entry(job, "prog.s", 10.0, 10.05,
                                 kind="inject", status="done"))
        trace = to_chrome_trace(entries)
        assert validate_chrome_trace(trace) == []
        jobs = [e for e in trace["traceEvents"]
                if e["ph"] == "X" and e["cat"] == "job"]
        assert len(jobs) == 1
        assert jobs[0]["args"]["status"] == "done"

    def test_parents_widened_over_children(self):
        # The surviving job line only covers the final attempt; the
        # first attempt's chunks must still fit inside it.
        entries = _entries()
        job = TraceContext.root("trace1")
        entries.append(job_entry(job, "prog.s", 10.012, 10.02,
                                 kind="inject"))
        trace = to_chrome_trace(entries)
        assert validate_chrome_trace(trace) == []
        jobs = [e for e in trace["traceEvents"]
                if e["ph"] == "X" and e["cat"] == "job"]
        assert jobs[0]["ts"] <= 10_000_500  # stretched to chunk 0

    def test_validate_catches_escaping_child(self):
        trace = to_chrome_trace(_entries())
        run = next(e for e in trace["traceEvents"]
                   if e["ph"] == "X" and e["cat"] == "run")
        run["ts"] += 60_000_000  # push it far outside the chunk
        problems = validate_chrome_trace(trace)
        assert any("escapes parent" in p for p in problems)

    def test_validate_catches_duplicate_span(self):
        trace = to_chrome_trace(_entries())
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        trace["traceEvents"].append(dict(spans[0]))
        problems = validate_chrome_trace(trace)
        assert any("duplicate span_id" in p for p in problems)

    def test_validate_catches_float_ts(self):
        trace = to_chrome_trace(_entries())
        span = next(e for e in trace["traceEvents"] if e["ph"] == "X")
        span["ts"] = float(span["ts"]) + 0.5
        problems = validate_chrome_trace(trace)
        assert any("integer microseconds" in p for p in problems)

    def test_validate_empty(self):
        assert validate_chrome_trace({}) == \
            ["traceEvents missing or empty"]

    def test_export_writes_loadable_json(self, tmp_path):
        out = tmp_path / "trace.json"
        trace = export_chrome_trace(_entries(), str(out))
        on_disk = json.loads(out.read_text())
        assert on_disk == json.loads(json.dumps(trace))
        assert on_disk["displayTimeUnit"] == "ms"


class TestSerialParallelIdentity:
    def test_span_ids_independent_of_chunk_completion_order(self):
        job = TraceContext.root("t")
        runs = [{"i": 4, "t0": 1.0, "dur": 0.1}]
        early = chunk_entry(job, 2, 1.0, 2.0, pid=1, runs=runs)
        late = chunk_entry(job, 2, 5.0, 6.0, pid=9, runs=[
            {"i": 4, "t0": 5.0, "dur": 0.1}])
        assert early["span_id"] == late["span_id"]
        assert early["runs"][0]["span_id"] == \
            late["runs"][0]["span_id"]
