"""Submission validation: bad payloads fail fast with clear messages."""

import pytest

from repro.service import JobSpec, validate_spec


@pytest.fixture
def good_inject(sum_loop_src):
    def build():
        return {"kind": "inject", "program": sum_loop_src,
                "params": {"technique": "edgcf",
                           "faults": ["direction"],
                           "branch": "loop"}}
    return build


class TestValidateSpec:
    def test_good_inject_payload(self, good_inject):
        spec = validate_spec(good_inject())
        assert isinstance(spec, JobSpec)
        assert spec.kind == "inject"
        assert spec.tenant == "default"

    def test_non_object_payload(self, good_inject):
        with pytest.raises(ValueError, match="JSON object"):
            validate_spec(["inject"])

    def test_unknown_kind(self, good_inject):
        with pytest.raises(ValueError, match="kind must be one of"):
            validate_spec({"kind": "meditate"})

    def test_missing_program(self, good_inject):
        payload = good_inject()
        del payload["program"]
        with pytest.raises(ValueError, match="need 'program'"):
            validate_spec(payload)

    def test_unassemblable_program(self, good_inject, sum_loop_src):
        payload = good_inject()
        payload["program"] = "this is not assembly"
        with pytest.raises(ValueError, match="does not assemble"):
            validate_spec(payload)

    def test_fuzz_rejects_a_program(self, good_inject, sum_loop_src):
        with pytest.raises(ValueError, match="generate their own"):
            validate_spec({"kind": "fuzz", "program": sum_loop_src})

    def test_bad_fault_token(self, good_inject):
        payload = good_inject()
        payload["params"]["faults"] = ["teleport:3"]
        with pytest.raises(ValueError, match="bad fault token"):
            validate_spec(payload)

    def test_unknown_branch_symbol(self, good_inject):
        payload = good_inject()
        payload["params"]["branch"] = "nowhere"
        with pytest.raises(ValueError, match="bad fault token"):
            validate_spec(payload)

    def test_empty_fault_list(self, good_inject):
        payload = good_inject()
        payload["params"]["faults"] = []
        with pytest.raises(ValueError, match="non-empty list"):
            validate_spec(payload)

    def test_unknown_technique(self, good_inject):
        payload = good_inject()
        payload["params"]["technique"] = "prayer"
        with pytest.raises(ValueError, match="unknown technique"):
            validate_spec(payload)

    def test_unknown_policy(self, good_inject):
        payload = good_inject()
        payload["params"]["policy"] = "sometimes"
        with pytest.raises(ValueError):
            validate_spec(payload)

    def test_unknown_backend(self, good_inject):
        payload = good_inject()
        payload["params"]["backend"] = "gpu"
        with pytest.raises(ValueError, match="unknown backend"):
            validate_spec(payload)

    def test_bad_tenant(self, good_inject):
        payload = good_inject()
        payload["tenant"] = "../../etc"
        with pytest.raises(ValueError, match="tenant"):
            validate_spec(payload)

    def test_bad_priority(self, good_inject):
        payload = good_inject()
        payload["priority"] = 10_000
        with pytest.raises(ValueError, match="priority"):
            validate_spec(payload)

    def test_name_with_path_separator(self, good_inject):
        payload = good_inject()
        payload["name"] = "../escape.s"
        with pytest.raises(ValueError, match="name"):
            validate_spec(payload)

    def test_jobs_bound(self, good_inject):
        payload = good_inject()
        payload["params"]["jobs"] = 1000
        with pytest.raises(ValueError, match="params.jobs"):
            validate_spec(payload)

    def test_fuzz_policy_validation(self, good_inject, sum_loop_src):
        with pytest.raises(ValueError):
            validate_spec({"kind": "fuzz",
                           "params": {"policies": ["whenever"]}})

    def test_verify_technique_validation(self, good_inject, sum_loop_src):
        with pytest.raises(ValueError, match="techniques"):
            validate_spec({"kind": "verify", "program": sum_loop_src,
                           "params": {"techniques": ["edgcf-naive"]}})

    def test_spec_json_roundtrip(self, good_inject):
        spec = validate_spec(good_inject())
        assert JobSpec.from_json(spec.to_json()) == spec
