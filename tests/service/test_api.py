"""End-to-end over HTTP: submit, stream SSE, fetch artifacts.

The acceptance path: a campaign submitted over the REST API produces
a journal byte-identical to the same campaign run via the CLI — for
serial and parallel execution — and resubmitting the identical
workload hits the content-addressed cache.
"""

import json

import pytest

from repro.service import JobStatus, ServiceError


def inject_payload(src, faults, jobs=1, tenant="default"):
    return {"kind": "inject", "program": src, "tenant": tenant,
            "name": "sum_loop.s",
            "params": {"technique": "edgcf", "faults": list(faults),
                       "branch": "loop", "jobs": jobs}}


def cli_inject_journal(tmp_path, src, faults, jobs=1):
    """Run the same campaign via the CLI; return the journal bytes."""
    from repro.cli import main
    source = tmp_path / "cli-prog.s"
    source.write_text(src)
    journal = tmp_path / f"cli-{jobs}.jsonl"
    argv = ["inject", str(source), "-t", "edgcf", "--branch", "loop",
            "--journal", str(journal), "--jobs", str(jobs)]
    for token in faults:
        argv += ["--fault", token]
    assert main(argv) == 0
    return journal.read_bytes()


class TestEndToEnd:
    def test_submit_stream_and_journal_byte_identity(
            self, service, tmp_path, sum_loop_src, ten_faults):
        server, client = service
        job = client.submit(inject_payload(sum_loop_src, ten_faults))
        assert job["status"] in ("queued", "running")

        events = []
        for event in client.events(job["id"]):
            events.append(event)
            if event["event"] == "end":
                break
        kinds = [event["event"] for event in events]
        assert kinds[-1] == "end"
        assert "progress" in kinds
        final = client.job(job["id"])
        assert final["status"] == "done"
        assert final["completed"] == final["total"] == 10

        service_journal = client.journal(job["id"])
        assert service_journal == cli_inject_journal(
            tmp_path, sum_loop_src, ten_faults)

    def test_parallel_campaign_matches_cli_parallel(
            self, service, tmp_path, sum_loop_src, ten_faults):
        """--jobs 2: chunk completion order may differ run to run, so
        compare the sorted line sets (which the resume machinery — and
        every tally — is insensitive to)."""
        server, client = service
        job = client.submit(
            inject_payload(sum_loop_src, ten_faults, jobs=2))
        client.wait(job["id"])
        service_lines = sorted(
            client.journal(job["id"]).splitlines())
        cli_lines = sorted(cli_inject_journal(
            tmp_path, sum_loop_src, ten_faults, jobs=2).splitlines())
        assert service_lines == cli_lines

    def test_resubmission_hits_the_cache(self, service, sum_loop_src):
        server, client = service
        payload = inject_payload(sum_loop_src, ["direction", "flag:0"])
        first = client.submit(payload)
        client.wait(first["id"])
        second = client.submit(payload)
        client.wait(second["id"])
        job = server.orchestrator.get(second["id"])
        counters = {
            (entry["name"], tuple(sorted(
                entry.get("labels", {}).items()))): entry["value"]
            for entry in job.registry.snapshot()["counters"]}
        assert counters.get(("campaign_golden_cache_total",
                             (("result", "hit"),))) == 1
        assert ("campaign_golden_cache_total",
                (("result", "miss"),)) not in counters
        # The aggregate /metrics endpoint shows both cache tiers.
        text = client.metrics_text()
        assert 'campaign_golden_cache_total{result="hit"} 1' in text
        assert 'service_disk_cache_total{kind="golden",' \
               'result="store"} 1' in text

    def test_fuzz_job_journal_matches_cli(self, service, tmp_path):
        from repro.cli import main
        server, client = service
        params = {"seed": 99, "count": 3, "statements": 8,
                  "detect_every": 0}
        job = client.submit({"kind": "fuzz", "params": params})
        final = client.wait(job["id"])
        assert final["status"] == "done"
        assert final["result"]["passed"] is True

        cli_journal = tmp_path / "fuzz.jsonl"
        assert main(["fuzz", "--seed", "99", "--count", "3",
                     "--statements", "8", "--detect-every", "0",
                     "--journal", str(cli_journal)]) == 0
        assert client.journal(job["id"]) == cli_journal.read_bytes()


class TestApiSurface:
    def test_listing_and_detail(self, service, sum_loop_src):
        server, client = service
        job = client.submit(inject_payload(sum_loop_src, ["direction"],
                                           tenant="alpha"))
        client.wait(job["id"])
        listed = client.jobs()
        assert any(entry["id"] == job["id"] for entry in listed)
        assert client.jobs(tenant="alpha")[0]["tenant"] == "alpha"
        assert client.jobs(tenant="nobody") == []
        detail = client.job(job["id"])
        assert detail["result"]["config"] == "dbt/edgcf/allbb"

    def test_bad_payload_is_400(self, service):
        server, client = service
        with pytest.raises(ServiceError) as err:
            client.submit({"kind": "inject"})
        assert err.value.status == 400
        assert "program" in str(err.value)

    def test_quota_is_429(self, service, sum_loop_src):
        server, client = service
        server.orchestrator.max_active_per_tenant = 0
        with pytest.raises(ServiceError) as err:
            client.submit(inject_payload(sum_loop_src, ["direction"]))
        assert err.value.status == 429

    def test_unknown_job_is_404(self, service):
        server, client = service
        with pytest.raises(ServiceError) as err:
            client.job("feedbeef0000")
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client.cancel("feedbeef0000")
        assert err.value.status == 404

    def test_cancel_conflict_is_409(self, service, sum_loop_src):
        server, client = service
        job = client.submit(inject_payload(sum_loop_src,
                                           ["direction"]))
        client.wait(job["id"])
        with pytest.raises(ServiceError) as err:
            client.cancel(job["id"])
        assert err.value.status == 409

    def test_artifact_listing_and_traversal_guard(self, service,
                                                  sum_loop_src):
        server, client = service
        job = client.submit(inject_payload(sum_loop_src,
                                           ["direction"]))
        client.wait(job["id"])
        artifacts = client.artifacts(job["id"])
        paths = [entry["path"] for entry in artifacts]
        assert "journal.jsonl" in paths
        assert "job.json" in paths
        assert client.artifact(job["id"], "journal.jsonl") == \
            client.journal(job["id"])
        with pytest.raises(ServiceError) as err:
            client.artifact(job["id"], "../../../etc/passwd")
        assert err.value.status in (400, 404)

    def test_healthz_counts(self, service, sum_loop_src):
        server, client = service
        job = client.submit(inject_payload(sum_loop_src,
                                           ["direction"]))
        client.wait(job["id"])
        health = client.health()
        assert health["status"] == "ok"
        assert health["jobs"].get("done", 0) >= 1

    def test_metrics_json_matches_snapshot_schema(self, service,
                                                  sum_loop_src):
        server, client = service
        job = client.submit(inject_payload(sum_loop_src,
                                           ["direction"]))
        client.wait(job["id"])
        snap = client.metrics()
        assert {"counters", "gauges", "histograms"} <= set(snap)
        names = {entry["name"] for entry in snap["counters"]}
        assert "service_jobs_finished_total" in names

    def test_sse_resumes_from_since(self, service, sum_loop_src):
        server, client = service
        job = client.submit(inject_payload(sum_loop_src,
                                           ["direction"]))
        client.wait(job["id"])
        all_events = list(client.events(job["id"]))
        tail = list(client.events(job["id"], since=2))
        assert tail == all_events[2:]


class TestCliFrontend:
    def test_submit_jobs_and_stats_url(self, service, tmp_path,
                                       sum_loop_src, capsys):
        from repro.cli import main
        server, client = service
        url = client.base_url
        payload = tmp_path / "job.json"
        payload.write_text(json.dumps(
            {"kind": "inject",
             "params": {"technique": "edgcf", "branch": "loop",
                        "faults": ["direction", "flag:0"]}}))
        program = tmp_path / "prog.s"
        program.write_text(sum_loop_src)

        assert main(["submit", str(payload), "--url", url,
                     "--program", str(program), "--wait"]) == 0
        out = capsys.readouterr().out
        assert "done" in out

        assert main(["jobs", "--url", url]) == 0
        out = capsys.readouterr().out
        assert "inject" in out and "done" in out

        job_id = client.jobs()[0]["id"]
        assert main(["jobs", "--url", url, "--job", job_id]) == 0
        assert json.loads(capsys.readouterr().out)["id"] == job_id

        assert main(["jobs", "--url", url, "--journal", job_id]) == 0
        assert capsys.readouterr().out.encode() == \
            client.journal(job_id)

        assert main(["stats", "--url", url]) == 0
        assert "service_jobs_finished_total" in \
            capsys.readouterr().out
        assert main(["stats", "--url", url, "--format", "prom"]) == 0
        assert "# TYPE service_jobs_finished_total counter" in \
            capsys.readouterr().out

    def test_stats_requires_file_or_url(self, capsys):
        from repro.cli import main
        assert main(["stats"]) == 1
        assert "file or --url" in capsys.readouterr().err

    def test_submit_error_paths(self, service, tmp_path, capsys):
        from repro.cli import main
        server, client = service
        payload = tmp_path / "bad.json"
        payload.write_text(json.dumps({"kind": "inject"}))
        assert main(["submit", str(payload),
                     "--url", client.base_url]) == 1
        assert "program" in capsys.readouterr().err


class TestCancelRunning:
    def test_cancel_a_running_job_over_http(self, service,
                                            sum_loop_src):
        """A running campaign stops between chunks and ends CANCELLED
        with its completed chunks journaled."""
        import time
        server, client = service
        # 3 chunks of slow-ish work: plenty of time to cancel.
        faults = [f"offset:{bit}" for bit in range(12)] + \
                 [f"flag:{bit}" for bit in range(6)] + ["direction"]
        job = client.submit(inject_payload(sum_loop_src, faults))
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if client.job(job["id"])["status"] == "running":
                break
            time.sleep(0.01)
        client.cancel(job["id"])
        for event in client.events(job["id"]):
            if event["event"] == "end":
                break
        final = client.job(job["id"])
        assert final["status"] in ("cancelled", "done")
        if final["status"] == "cancelled":
            runtime_job = server.orchestrator.get(job["id"])
            assert runtime_job.status is JobStatus.CANCELLED
