"""Dashboard routes, time-series sampling, the profile job kind, and
trace artifacts served over the API."""

import json
import urllib.request

from repro.obs.traceevent import to_chrome_trace, validate_chrome_trace
from tests.service.test_api import inject_payload


def _get(client, path):
    with urllib.request.urlopen(client.base_url + path,
                                timeout=30) as response:
        return (response.status,
                response.headers.get("Content-Type", ""),
                response.read())


def profile_payload(src, top=5, dbt=False):
    return {"kind": "profile", "program": src, "tenant": "default",
            "name": "sum_loop.s",
            "params": {"top": top, "dbt": dbt}}


class TestDashboardRoutes:
    def test_html_page_served(self, service):
        _, client = service
        status, ctype, body = _get(client, "/dashboard")
        assert status == 200
        assert ctype.startswith("text/html")
        text = body.decode()
        assert "control tower" in text
        assert "/dashboard/data.json" in text  # self-polling page

    def test_data_json_schema(self, service, sum_loop_src,
                              ten_faults, wait_terminal):
        server, client = service
        job = client.submit(inject_payload(sum_loop_src, ten_faults))
        wait_terminal(server.orchestrator, job["id"])
        status, ctype, body = _get(client, "/dashboard/data.json")
        assert status == 200
        assert ctype.startswith("application/json")
        data = json.loads(body)
        assert set(data) >= {"now", "tiles", "series", "rates",
                             "jobs", "latency", "recovery",
                             "profiles"}
        assert any(row["id"] == job["id"] for row in data["jobs"])
        keys = [tile["key"] for tile in data["tiles"]]
        assert len(keys) == len(set(keys)) >= 4
        for tile in data["tiles"]:
            assert set(tile) == {"key", "label", "mode"}
            assert tile["mode"] in ("rate", "last")
        for row in data["latency"]:
            assert set(row) >= {"name", "unit", "policy", "count",
                                "p50", "p90", "p99"}
        job_row = next(r for r in data["jobs"]
                       if r["id"] == job["id"])
        assert job_row["status"] == "done"
        assert job_row["completed"] == job_row["total"] == 10

    def test_sampled_activity_feeds_series(self, service,
                                           sum_loop_src, ten_faults,
                                           wait_terminal):
        """Counter movement between samples lands in the window as
        per-second deltas.  The first campaign guarantees the runs
        counter is baselined; the second (a different workload, so the
        job cache cannot satisfy it) must then show up as a delta."""
        import time
        server, client = service
        orchestrator = server.orchestrator
        first = client.submit(inject_payload(sum_loop_src, ten_faults))
        wait_terminal(orchestrator, first["id"])
        orchestrator.sample_timeseries()  # counter now baselined
        second = client.submit(
            inject_payload(sum_loop_src, ["direction", "flag:0"]))
        wait_terminal(orchestrator, second["id"])
        orchestrator.sample_timeseries()
        series = orchestrator.timeseries.series(now=time.time())
        total = sum(v for _, v in series["campaign_runs_total"])
        assert total >= 2.0  # at least the second campaign's runs
        assert "service_queue_depth" in series

    def test_data_json_tolerates_idle_service(self, service):
        _, client = service
        status, _, body = _get(client, "/dashboard/data.json")
        assert status == 200
        data = json.loads(body)
        assert data["jobs"] == []


class TestProfileJobKind:
    def test_profile_job_end_to_end(self, service, sum_loop_src,
                                    wait_terminal):
        server, client = service
        job = client.submit(profile_payload(sum_loop_src, top=5))
        final = wait_terminal(server.orchestrator, job["id"])
        assert final.status.value == "done"
        result = client.job(job["id"])["result"]
        assert result["mode"] == "interp"
        assert result["stop"] == "HALTED"
        assert result["total_icount"] > 0
        assert result["blocks"], "hot blocks reported"
        shares = sum(b["share"] for b in result["blocks"])
        assert 0.0 < shares <= 1.0 + 1e-9
        names = [a["path"] for a in client.artifacts(job["id"])]
        assert "profile.txt" in names
        report = client.artifact(job["id"], "profile.txt").decode()
        assert "hot blocks" in report

    def test_profile_job_dbt_mode(self, service, sum_loop_src,
                                  wait_terminal):
        server, client = service
        job = client.submit(profile_payload(sum_loop_src, dbt=True))
        wait_terminal(server.orchestrator, job["id"])
        result = client.job(job["id"])["result"]
        assert result["mode"] == "dbt"
        assert result["total_icount"] > 0

    def test_profile_validation(self, service):
        from repro.service import ServiceError
        _, client = service
        import pytest
        with pytest.raises(ServiceError):
            client.submit({"kind": "profile", "tenant": "default",
                           "name": "x.s", "params": {}})  # no program

    def test_done_profiles_surface_on_dashboard(
            self, service, sum_loop_src, wait_terminal):
        server, client = service
        job = client.submit(profile_payload(sum_loop_src))
        wait_terminal(server.orchestrator, job["id"])
        _, _, body = _get(client, "/dashboard/data.json")
        profiles = json.loads(body)["profiles"]
        assert any(p["job"] == job["id"] for p in profiles)


class TestTraceArtifact:
    def test_job_trace_validates_with_nesting(
            self, service, sum_loop_src, ten_faults, wait_terminal):
        server, client = service
        job = client.submit(
            inject_payload(sum_loop_src, ten_faults, jobs=2))
        wait_terminal(server.orchestrator, job["id"])
        raw = client.artifact(job["id"],
                              "journal.jsonl.trace.jsonl").decode()
        entries = [json.loads(line) for line in raw.splitlines()
                   if line.strip()]
        kinds = sorted(e["type"] for e in entries)
        assert kinds.count("job") == 1
        assert kinds.count("chunk") == 2  # 10 faults, chunk size 8
        job_line = next(e for e in entries if e["type"] == "job")
        assert job_line["job"] == job["id"]
        assert job_line["trace_id"] == job["id"]
        runs = [run for e in entries for run in e.get("runs", ())]
        assert sorted(run["i"] for run in runs) == list(range(10))
        trace = to_chrome_trace(entries)
        assert validate_chrome_trace(trace) == []
        # job -> chunk -> run chain
        spans = {e["args"]["span_id"]: e
                 for e in trace["traceEvents"] if e["ph"] == "X"}
        for event in spans.values():
            if event["cat"] == "run":
                chunk = spans[event["args"]["parent_span"]]
                assert chunk["cat"] == "chunk"
                assert spans[chunk["args"]["parent_span"]]["cat"] == \
                    "job"
