"""ServiceClient.events(): SSE resume over torn streams.

A scripted stdlib HTTP server tears the stream mid-flight (advertised
Content-Length never satisfied, so the read raises instead of hitting
a clean EOF); the client must reconnect with the ``since`` cursor the
server's ``id:`` lines advertised and deliver every event exactly
once.  Client errors (4xx) must fail immediately — retrying a 404
cannot help.
"""

import json
import socket
import struct
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

import pytest

from repro.service import ServiceClient, ServiceError

EVENTS = [{"seq": i, "event": "progress", "completed": i + 1,
           "total": 5} for i in range(4)]
EVENTS.append({"seq": 4, "event": "end", "status": "done"})


def _frames(events):
    return "".join(
        f"id: {event['seq'] + 1}\n"
        f"event: {event['event']}\n"
        f"data: {json.dumps(event)}\n\n"
        for event in events).encode()


class ScriptedHandler(BaseHTTPRequestHandler):
    """Serves /jobs/j1/events; behaviour scripted per test via class
    attributes (``tear_after``: events delivered before the tear on
    the first attempt; -1 = never tear)."""

    tear_after = -1
    sinces: list = []

    def log_message(self, *args):
        pass

    def do_GET(self):
        url = urlparse(self.path)
        if url.path == "/jobs/missing/events":
            body = json.dumps({"error": "no such job"}).encode()
            self.send_response(404)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        since = int(parse_qs(url.query).get("since", ["0"])[0])
        type(self).sinces.append(since)
        remaining = [e for e in EVENTS if e["seq"] >= since]
        tearing = type(self).tear_after >= 0 and \
            len(type(self).sinces) == 1
        if tearing:
            remaining = remaining[:type(self).tear_after]
        payload = _frames(remaining)
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        if not tearing:
            self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)
        self.wfile.flush()
        if tearing:
            _abort(self.connection)


def _abort(connection) -> None:
    """Close with an RST so the client's read *raises* — a graceful
    FIN reads as clean EOF, which is not a tear."""
    connection.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                          struct.pack("ii", 1, 0))
    connection.close()


@pytest.fixture
def scripted_server():
    server = ThreadingHTTPServer(("127.0.0.1", 0), ScriptedHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    ScriptedHandler.sinces = []
    ScriptedHandler.tear_after = -1
    host, port = server.server_address[:2]
    yield ServiceClient(f"http://{host}:{port}", timeout=10.0)
    server.shutdown()
    server.server_close()


class TestReconnect:
    def test_unbroken_stream_needs_one_attempt(self, scripted_server):
        events = list(scripted_server.events("j1", backoff=0.01))
        assert [e["seq"] for e in events] == [0, 1, 2, 3, 4]
        assert ScriptedHandler.sinces == [0]

    def test_torn_stream_resumes_without_loss_or_dupes(
            self, scripted_server):
        ScriptedHandler.tear_after = 2
        events = list(scripted_server.events("j1", backoff=0.01))
        assert [e["seq"] for e in events] == [0, 1, 2, 3, 4]
        assert [e["event"] for e in events][-1] == "end"
        # Second attempt resumed from the advertised cursor, so the
        # replay started exactly after the last delivered event.
        assert ScriptedHandler.sinces == [0, 2]

    def test_tear_before_any_event_retries_from_start(
            self, scripted_server):
        ScriptedHandler.tear_after = 0
        events = list(scripted_server.events("j1", backoff=0.01))
        assert [e["seq"] for e in events] == [0, 1, 2, 3, 4]
        assert ScriptedHandler.sinces == [0, 0]

    def test_4xx_fails_immediately(self, scripted_server):
        with pytest.raises(ServiceError) as exc_info:
            list(scripted_server.events("missing", backoff=0.01))
        assert exc_info.value.status == 404
        assert ScriptedHandler.sinces == []  # no retry happened

    def test_reconnect_budget_exhausts(self, scripted_server):
        # Every attempt tears: sinces keeps length 1 only for the
        # first, so make all attempts tear by resetting the log.
        class AlwaysTear(ScriptedHandler):
            def do_GET(self):
                type(self).sinces.append(0)
                self.send_response(200)
                self.send_header("Content-Type", "text/event-stream")
                self.end_headers()
                self.wfile.write(b": keepalive\n\n")
                self.wfile.flush()
                _abort(self.connection)

        server = ThreadingHTTPServer(("127.0.0.1", 0), AlwaysTear)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        AlwaysTear.sinces = []
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}", timeout=10.0)
        try:
            with pytest.raises(ServiceError) as exc_info:
                list(client.events("j1", max_reconnects=2,
                                   backoff=0.01))
            assert "reconnect" in str(exc_info.value)
            assert len(AlwaysTear.sinces) == 3  # initial + 2 retries
        finally:
            server.shutdown()
            server.server_close()
