"""Orchestrator: scheduling, quotas, cancel, drain/resume, caching."""

import os

import pytest

from repro.faults import CampaignExecutor, PipelineConfig, cache
from repro.service import (JobStatus, Orchestrator, QuotaError,
                           validate_spec)
from repro.service.jobs import Job, JobSpec


def counter_value(registry, name, **labels):
    for entry in registry.snapshot()["counters"]:
        if entry["name"] == name and entry.get("labels", {}) == labels:
            return entry["value"]
    return 0


def inject_payload(src, faults, tenant="default", priority=0, jobs=1):
    return {"kind": "inject", "program": src, "tenant": tenant,
            "priority": priority,
            "params": {"technique": "edgcf", "faults": list(faults),
                       "branch": "loop", "jobs": jobs}}


class TestLifecycle:
    def test_inject_job_runs_to_done(self, wait_terminal, tmp_path, sum_loop_src,
                                     ten_faults):
        orch = Orchestrator(str(tmp_path), workers=1)
        job = orch.submit(validate_spec(
            inject_payload(sum_loop_src, ten_faults)))
        job = wait_terminal(orch, job.id)
        assert job.status is JobStatus.DONE
        assert job.result["outcomes"]
        assert job.completed == job.total == 10
        assert os.path.exists(job.journal_path)
        # job.json persisted the terminal state.
        reloaded = Job.load(job.workspace)
        assert reloaded.status is JobStatus.DONE
        orch.drain(timeout=5)

    def test_verify_job(self, wait_terminal, tmp_path, sum_loop_src):
        orch = Orchestrator(str(tmp_path), workers=1)
        job = orch.submit(validate_spec(
            {"kind": "verify", "program": sum_loop_src,
             "params": {"techniques": ["edgcf", "rcf"]}}))
        job = wait_terminal(orch, job.id)
        assert job.status is JobStatus.DONE
        assert set(job.result["techniques"]) == {"edgcf", "rcf"}
        orch.drain(timeout=5)

    def test_coverage_job(self, wait_terminal, tmp_path, sum_loop_src):
        orch = Orchestrator(str(tmp_path), workers=1)
        job = orch.submit(validate_spec(
            {"kind": "coverage", "program": sum_loop_src,
             "params": {"per_category": 1, "seed": 7,
                        "no_cache_level": True}}))
        job = wait_terminal(orch, job.id)
        assert job.status is JobStatus.DONE
        assert "Coverage matrix" in job.result["table"]
        orch.drain(timeout=5)

    def test_failed_job_keeps_the_error(self, wait_terminal, tmp_path, sum_loop_src):
        orch = Orchestrator(str(tmp_path), workers=1)
        # Valid at submit time, dies in the runner: occurrence on a
        # branch that never executes is fine, but an unknown redirect
        # target must be caught at submit — so instead break the
        # program *after* validation via a spec built by hand.
        spec = JobSpec(kind="inject", program="broken (",
                       params={"faults": ["direction"]})
        job = orch.submit(spec)
        job = wait_terminal(orch, job.id)
        assert job.status is JobStatus.FAILED
        assert "assemble" in job.error
        orch.drain(timeout=5)


class TestScheduling:
    def make_idle_orchestrator(self, tmp_path):
        """Workers that can never claim (per-tenant cap 0): the queue
        is inspectable without races."""
        return Orchestrator(str(tmp_path), workers=1,
                            max_running_per_tenant=0)

    def submit(self, orch, src, tenant="default", priority=0):
        return orch.submit(validate_spec(
            inject_payload(src, ["direction"], tenant=tenant,
                           priority=priority)))

    def test_priority_beats_fifo(self, tmp_path, sum_loop_src):
        orch = self.make_idle_orchestrator(tmp_path)
        first = self.submit(orch, sum_loop_src, priority=0)
        urgent = self.submit(orch, sum_loop_src, priority=5)
        with orch._cond:
            orch.max_running_per_tenant = 1
            claimed = orch._claim()
            orch.max_running_per_tenant = 0
        assert claimed.id == urgent.id
        assert first.status is JobStatus.QUEUED
        orch.drain(timeout=5)

    def test_fifo_within_equal_priority(self, tmp_path, sum_loop_src):
        orch = self.make_idle_orchestrator(tmp_path)
        first = self.submit(orch, sum_loop_src)
        self.submit(orch, sum_loop_src)
        with orch._cond:
            orch.max_running_per_tenant = 1
            claimed = orch._claim()
            orch.max_running_per_tenant = 0
        assert claimed.id == first.id
        orch.drain(timeout=5)

    def test_tenant_running_cap_skips_but_other_tenants_run(
            self, tmp_path, sum_loop_src):
        orch = self.make_idle_orchestrator(tmp_path)
        blocked = self.submit(orch, sum_loop_src, tenant="alpha")
        other = self.submit(orch, sum_loop_src, tenant="beta")
        # Simulate alpha already running a job.
        running = Job("fake", JobSpec(kind="inject", tenant="alpha",
                                      program="x",
                                      params={"faults": ["d"]}),
                      str(tmp_path / "fake"))
        running.status = JobStatus.RUNNING
        orch._jobs["fake"] = running
        with orch._cond:
            orch.max_running_per_tenant = 1
            claimed = orch._claim()
            orch.max_running_per_tenant = 0
        assert claimed.id == other.id
        assert blocked.status is JobStatus.QUEUED
        orch.drain(timeout=5)

    def test_active_quota_rejects_submission(self, tmp_path,
                                             sum_loop_src):
        orch = Orchestrator(str(tmp_path), workers=1,
                            max_active_per_tenant=2,
                            max_running_per_tenant=0)
        self.submit(orch, sum_loop_src)
        self.submit(orch, sum_loop_src)
        with pytest.raises(QuotaError, match="quota"):
            self.submit(orch, sum_loop_src)
        # Another tenant is unaffected.
        self.submit(orch, sum_loop_src, tenant="other")
        orch.drain(timeout=5)

    def test_cancel_queued_job_is_immediate(self, tmp_path,
                                            sum_loop_src):
        orch = self.make_idle_orchestrator(tmp_path)
        job = self.submit(orch, sum_loop_src)
        assert orch.cancel(job.id) is True
        assert job.status is JobStatus.CANCELLED
        assert orch.cancel(job.id) is False  # already terminal
        with pytest.raises(KeyError):
            orch.cancel("nope")
        orch.drain(timeout=5)


class TestDrainResume:
    def test_drain_requeues_and_restart_completes(
            self, wait_terminal, tmp_path, sum_loop_src, ten_faults):
        # Cap 0: the job can never start, so drain sees it QUEUED.
        orch = Orchestrator(str(tmp_path), workers=1,
                            max_running_per_tenant=0)
        job = orch.submit(validate_spec(
            inject_payload(sum_loop_src, ten_faults)))
        orch.drain(timeout=5)
        assert job.status is JobStatus.REQUEUED
        assert Job.load(job.workspace).status is JobStatus.REQUEUED
        with pytest.raises(QuotaError, match="draining"):
            orch.submit(validate_spec(
                inject_payload(sum_loop_src, ["direction"])))

        restarted = Orchestrator(str(tmp_path), workers=1)
        done = wait_terminal(restarted, job.id)
        assert done.status is JobStatus.DONE
        assert done.result["outcomes"]
        restarted.drain(timeout=5)

    def test_restart_resumes_from_a_partial_journal(
            self, wait_terminal, tmp_path, sum_loop_src, ten_faults):
        """A job interrupted mid-campaign resumes from its journal and
        the final file is byte-identical to an uninterrupted run."""
        from repro.cli import main, parse_fault_token
        from repro.faults.executor import CampaignStopped
        from repro.faults.journal import CampaignJournal, inject_header
        from repro.isa import assemble

        orch = Orchestrator(str(tmp_path), workers=1,
                            max_running_per_tenant=0)
        job = orch.submit(validate_spec(
            inject_payload(sum_loop_src, ten_faults)))
        orch.drain(timeout=5)
        assert job.status is JobStatus.REQUEUED

        # Simulate the drained job having completed its first chunk:
        # run chunk 1 into the job's journal, exactly as the runner
        # would have before the stop flag fired.
        program = assemble(sum_loop_src, name=job.spec.name)
        specs = [parse_fault_token(program, token, branch="loop")
                 for token in ten_faults]
        CampaignJournal(job.journal_path).append_header(
            inject_header("edgcf", "allbb", "interp"))
        checks = [0]

        def stop_after_first_chunk():
            checks[0] += 1
            return checks[0] > 1

        with pytest.raises(CampaignStopped) as stopped:
            CampaignExecutor(program, PipelineConfig("dbt", "edgcf"),
                             journal=job.journal_path,
                             stop_check=stop_after_first_chunk
                             ).run_specs(specs)
        assert stopped.value.completed == 8
        partial_lines = len(open(job.journal_path).readlines())
        assert partial_lines == 2  # header + chunk 1

        cache.clear_caches()
        restarted = Orchestrator(str(tmp_path), workers=1)
        done = wait_terminal(restarted, job.id)
        assert done.status is JobStatus.DONE
        restarted.drain(timeout=5)

        # Byte-identity with an uninterrupted CLI campaign.
        source = tmp_path / "prog.s"
        source.write_text(sum_loop_src)
        cli_journal = tmp_path / "cli.jsonl"
        argv = ["inject", str(source), "-t", "edgcf",
                "--branch", "loop", "--journal", str(cli_journal)]
        for token in ten_faults:
            argv += ["--fault", token]
        assert main(argv) == 0
        assert cli_journal.read_bytes() == \
            open(done.journal_path, "rb").read()


class TestCaching:
    def test_resubmission_hits_the_golden_cache(self, wait_terminal, tmp_path,
                                                sum_loop_src):
        orch = Orchestrator(str(tmp_path), workers=1)
        payload = inject_payload(sum_loop_src, ["direction", "flag:0"])
        first = wait_terminal(
            orch, orch.submit(validate_spec(payload)).id)
        second = wait_terminal(
            orch, orch.submit(validate_spec(payload)).id)
        assert first.status is second.status is JobStatus.DONE
        assert counter_value(first.registry,
                             "campaign_golden_cache_total",
                             result="miss") == 1
        assert counter_value(second.registry,
                             "campaign_golden_cache_total",
                             result="hit") == 1
        assert counter_value(second.registry,
                             "campaign_golden_cache_total",
                             result="miss") == 0
        orch.drain(timeout=5)

    def test_disk_cache_survives_a_restart(self, wait_terminal, tmp_path,
                                           sum_loop_src):
        """Fresh process simulation: clear the in-memory tier, build a
        new orchestrator over the same root — the golden run must come
        from the content-addressed disk store."""
        payload = inject_payload(sum_loop_src, ["direction"])
        orch = Orchestrator(str(tmp_path), workers=1)
        wait_terminal(orch, orch.submit(validate_spec(payload)).id)
        orch.drain(timeout=5)

        cache.clear_caches()  # what a process restart would do
        restarted = Orchestrator(str(tmp_path), workers=1)
        job = wait_terminal(
            restarted, restarted.submit(validate_spec(payload)).id)
        assert job.status is JobStatus.DONE
        assert counter_value(job.registry,
                             "campaign_golden_cache_total",
                             result="hit") == 1
        assert counter_value(job.registry,
                             "service_disk_cache_total",
                             kind="golden", result="hit") == 1
        restarted.drain(timeout=5)

    def test_store_stats_surface_in_cache_stats(self, tmp_path):
        orch = Orchestrator(str(tmp_path), workers=1)
        assert "disk" in cache.cache_stats()
        orch.drain(timeout=5)
