"""Artifact store: round-trips, integrity, eviction, disk tier."""

import json
import os

import pytest

from repro import obs
from repro.faults import cache
from repro.faults.campaign import Golden
from repro.obs.metrics import MetricsRegistry
from repro.service import ArtifactStore


def golden(n=1):
    return Golden(outputs=(("55",), (55,)), exit_code=0, icount=n,
                  cycles=n * 2)


def counter_value(registry, name, **labels):
    for entry in registry.snapshot()["counters"]:
        if entry["name"] == name and entry.get("labels", {}) == labels:
            return entry["value"]
    return 0


class TestRoundTrip:
    def test_golden_roundtrip(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        key = ("dbt", "edgcf", "allbb", "jcc", False, "interp")
        assert store.get_golden("digest", key) is None
        store.put_golden("digest", key, golden())
        assert store.get_golden("digest", key) == golden()
        # A different key is a different entry.
        assert store.get_golden("other", key) is None

    def test_profile_roundtrip(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_profile("digest", 1000, {"sites": [1, 2, 3]})
        assert store.get_profile("digest", 1000) == {"sites": [1, 2, 3]}
        assert store.get_profile("digest", 2000) is None

    def test_blob_is_content_addressed(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        digest = store.put_blob(b"hello campaign")
        assert store.put_blob(b"hello campaign") == digest
        assert store.get_blob(digest) == b"hello campaign"

    def test_entries_survive_a_new_store_instance(self, tmp_path):
        ArtifactStore(str(tmp_path)).put_golden("d", ("k",), golden())
        reopened = ArtifactStore(str(tmp_path))
        assert reopened.get_golden("d", ("k",)) == golden()


class TestIntegrity:
    def corrupt_one_entry(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_golden("d", ("k",), golden())
        (path,) = [os.path.join(tmp_path, "golden", name)
                   for name in os.listdir(tmp_path / "golden")]
        return store, path

    def test_flipped_payload_is_rejected_and_removed(self, tmp_path):
        store, path = self.corrupt_one_entry(tmp_path)
        envelope = json.load(open(path))
        envelope["payload"] = "QQ==" + envelope["payload"][4:]
        json.dump(envelope, open(path, "w"))
        assert store.get_golden("d", ("k",)) is None
        assert not os.path.exists(path)

    def test_truncated_file_is_rejected_and_removed(self, tmp_path):
        store, path = self.corrupt_one_entry(tmp_path)
        with open(path, "r+") as handle:
            handle.truncate(20)
        assert store.get_golden("d", ("k",)) is None
        assert not os.path.exists(path)

    def test_corruption_is_counted(self, tmp_path):
        registry = MetricsRegistry()
        with obs.scoped(registry):
            store, path = self.corrupt_one_entry(tmp_path)
            with open(path, "r+") as handle:
                handle.truncate(5)
            store.get_golden("d", ("k",))
        assert counter_value(registry, "service_disk_cache_total",
                             kind="golden", result="corrupt") == 1


class TestEviction:
    def test_lru_eviction_by_entry_count(self, tmp_path):
        store = ArtifactStore(str(tmp_path), max_entries=3)
        aged: set[str] = set()
        for index in range(5):
            store.put_golden(f"d{index}", ("k",), golden(index))
            # Pin each file's mtime to its insertion index so the LRU
            # order is deterministic regardless of filesystem clock
            # granularity.
            for name in os.listdir(tmp_path / "golden"):
                if name not in aged:
                    aged.add(name)
                    os.utime(os.path.join(tmp_path, "golden", name),
                             (index, index))
        assert store.stats()["entries"] == 3
        # The oldest entries were evicted, the newest survive.
        assert store.get_golden("d0", ("k",)) is None
        assert store.get_golden("d4", ("k",)) == golden(4)

    def test_eviction_by_total_bytes(self, tmp_path):
        store = ArtifactStore(str(tmp_path), max_bytes=1)
        store.put_blob(b"x" * 100)
        store.put_blob(b"y" * 100)
        # Each write evicts everything older once the budget is blown.
        assert store.stats()["entries"] <= 1


class TestDiskTier:
    def test_memory_miss_falls_through_to_disk(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        cache.set_disk_tier(store)
        cache.put_golden("d", ("k",), golden())
        cache.clear_caches()  # drop the in-memory tier only
        assert cache.get_golden("d", ("k",)) == golden()
        # ... and the hit was promoted back into memory.
        cache.set_disk_tier(None)
        assert cache.get_golden("d", ("k",)) == golden()

    def test_disk_tier_appears_in_cache_stats(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        cache.set_disk_tier(store)
        cache.put_golden("d", ("k",), golden())
        stats = cache.cache_stats()
        assert stats["disk"]["per_kind"] == {"golden": 1}

    def test_disabled_cache_skips_the_disk_tier(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_golden("d", ("k",), golden())
        cache.set_disk_tier(store)
        cache.set_cache_enabled(False)
        try:
            assert cache.get_golden("d", ("k",)) is None
        finally:
            cache.set_cache_enabled(True)
