"""Service tests: keep the process-global cache/obs state clean."""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.faults import cache

SUM_LOOP_SRC = """
.entry main
main:
    movi r1, 0
    movi r2, 1
loop:
    add r1, r1, r2
    addi r2, r2, 1
    cmpi r2, 11
    jl loop
    syscall 4
    movi r1, 0
    syscall 0
"""

#: ten distinct fault tokens -> two executor chunks (chunk size 8)
TEN_FAULTS = ["offset:0", "offset:1", "offset:2", "offset:3",
              "offset:4", "offset:5", "flag:0", "flag:1", "flag:2",
              "direction"]


@pytest.fixture
def sum_loop_src():
    return SUM_LOOP_SRC


@pytest.fixture
def ten_faults():
    return list(TEN_FAULTS)


@pytest.fixture(autouse=True)
def clean_global_tiers():
    """The orchestrator installs a process-wide disk tier; drop it."""
    yield
    cache.set_disk_tier(None)
    cache.clear_caches()
    obs.uninstall()


@pytest.fixture
def service(tmp_path):
    """A live server on an ephemeral port, drained on teardown."""
    from repro.service import ServiceClient, create_server
    server = create_server(str(tmp_path / "state"), port=0, workers=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    yield server, client
    server.orchestrator.drain(timeout=10.0)
    server.shutdown()
    server.server_close()


def _wait_terminal(orchestrator, job_id, timeout=120.0):
    """Poll until the job leaves the queue/running states."""
    import time

    from repro.service import JobStatus
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = orchestrator.get(job_id)
        if job.status not in (JobStatus.QUEUED, JobStatus.RUNNING):
            return job
        time.sleep(0.02)
    raise AssertionError(
        f"job {job_id} still {orchestrator.get(job_id).status}")


@pytest.fixture
def wait_terminal():
    return _wait_terminal
