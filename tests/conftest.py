"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.isa import assemble
from repro.workloads import suite as workload_suite

SUM_LOOP_SRC = """
.entry main
main:
    movi r1, 0
    movi r2, 1
loop:
    add r1, r1, r2
    addi r2, r2, 1
    cmpi r2, 11
    jl loop
    syscall 4
    movi r1, 0
    syscall 0
"""

CALL_SRC = """
.entry main
main:
    movi r1, 5
    call square
    syscall 4
    movi r1, 0
    syscall 0
square:
    mul r1, r1, r1
    ret
"""

DIAMOND_SRC = """
.entry main
main:
    movi r1, 7
    cmpi r1, 5
    jl small
    muli r1, r1, 3
    jmp join
small:
    addi r1, r1, 100
join:
    syscall 4
    movi r1, 0
    syscall 0
"""


@pytest.fixture
def sum_loop():
    """A tiny counted loop: output ['55']."""
    return assemble(SUM_LOOP_SRC, name="sum_loop")


@pytest.fixture
def call_program():
    """A program with call/ret: output [25]."""
    return assemble(CALL_SRC, name="call_program")


@pytest.fixture
def diamond_program():
    """An if/else diamond: output [21]."""
    return assemble(DIAMOND_SRC, name="diamond")


@pytest.fixture(scope="session")
def tiny_suite_programs():
    """A few suite benchmarks at test scale (cached for the session)."""
    names = ["254.gap", "197.parser", "171.swim", "164.gzip"]
    return {name: workload_suite.load(name, "test") for name in names}
