"""Tests for the transparency and detection oracles.

The "broken technique" variants below are deliberate regressions:
``SkipGenSigEdgCF`` forgets the GEN_SIG update on direct exits (a
transparency/detection bug the differential oracle must catch), and
``NoCheckEdgCF`` keeps updating signatures but never branches to the
error handler (errors become escapes).
"""

import pytest
from _broken import NoCheckEdgCF, SkipGenSigEdgCF, edgcf_factory

from repro.checking import Policy
from repro.faults.classify import Category
from repro.fuzz.generator import FuzzKnobs, generate_program
from repro.fuzz.oracle import (OracleError,
                               check_detection, check_transparency,
                               claimed_categories, run_oracles,
                               transparency_configs,
                               uses_dynamic_exits,
                               uses_indirect_branches)
from repro.isa import assemble

TINY = FuzzKnobs.tiny()


class TestClaimedCategories:
    def test_edgcf_and_rcf_claim_the_paper_categories(self):
        full = frozenset({Category.B, Category.C, Category.D,
                          Category.E, Category.F})
        assert claimed_categories("edgcf") == full
        assert claimed_categories("rcf") == full

    def test_weaker_baselines_claim_only_hardware(self):
        # the formal sufficient condition fails for ECF/CFCSS/ECCA, so
        # the oracle only holds them to the hardware-detected category
        for technique in ("ecf", "cfcss", "ecca"):
            assert claimed_categories(technique) == frozenset(
                {Category.F})


class TestConfigMatrix:
    def test_indirect_program_drops_static_side(self):
        program = generate_program(0)  # default knobs emit jmpr tables
        assert uses_indirect_branches(program)
        configs = transparency_configs(program)
        assert all(c.pipeline == "dbt" for c in configs)

    def test_intraprocedural_program_gets_whole_cfg_baselines(self):
        program = generate_program(
            1, FuzzKnobs(indirect=False, functions=0))
        assert not uses_indirect_branches(program)
        assert not uses_dynamic_exits(program)
        techniques = {(c.pipeline, c.technique)
                      for c in transparency_configs(program)}
        assert ("static", "cfcss") in techniques
        assert ("static", "ecca") in techniques


class TestTransparency:
    def test_stock_tree_is_transparent(self):
        for seed in (0, 1):
            program = generate_program(seed, TINY)
            failures = check_transparency(program)
            assert failures == [], [f.describe() for f in failures]

    def test_golden_must_halt(self):
        program = assemble("main: jmp main", name="loop")
        with pytest.raises(OracleError):
            check_transparency(program, max_steps=1000)

    def test_skipped_gensig_is_caught(self):
        program = generate_program(0, TINY)
        configs = [c for c in transparency_configs(program)
                   if c.technique == "edgcf"]
        failures = check_transparency(
            program, configs=configs,
            technique_factory=edgcf_factory(SkipGenSigEdgCF))
        assert failures, "broken edgcf must diverge from golden"


class TestDetection:
    def test_stock_edgcf_has_no_escapes(self):
        program = generate_program(1, TINY)
        escapes, runs = check_detection(program, "edgcf", max_sites=6)
        assert runs > 0
        assert escapes == []

    def test_missing_check_produces_escapes(self):
        program = generate_program(1, TINY)
        escapes, runs = check_detection(
            program, "edgcf", max_sites=8,
            technique_factory=edgcf_factory(NoCheckEdgCF))
        assert runs > 0
        assert escapes, "unchecked edgcf must leak branch errors"
        assert all(e.category in ("B", "C", "D", "E", "F")
                   for e in escapes)


class TestRunOracles:
    def test_combined_report_on_stock_tree(self):
        program = generate_program(2, TINY)
        report = run_oracles(program, policies=(Policy.ALLBB,),
                             detect=True,
                             detect_techniques=("edgcf",),
                             max_sites=4, seed=2)
        assert report.ok
        assert report.seed == 2
        assert report.transparency_configs > 0
        assert report.detection_runs > 0
