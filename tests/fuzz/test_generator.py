"""Tests for the seeded guest-program generator."""

from repro.fuzz.generator import (FuzzKnobs, ProgramGenerator,
                                  generate_program, generate_source)
from repro.machine import StopReason, run_native


class TestDeterminism:
    def test_same_seed_same_source(self):
        assert generate_source(42) == generate_source(42)

    def test_different_seed_different_source(self):
        assert generate_source(42) != generate_source(43)

    def test_knobs_change_output(self):
        tiny = FuzzKnobs.tiny()
        assert generate_source(42, tiny) != generate_source(42)

    def test_program_name_carries_seed(self):
        assert generate_program(7).source_name == "fuzz-7"


class TestCleanExecution:
    def test_default_programs_halt_cleanly(self):
        for seed in range(6):
            program = generate_program(seed)
            cpu, stop = run_native(program, max_steps=2_000_000)
            assert stop.reason is StopReason.HALTED, f"seed {seed}"
            assert cpu.exit_code == 0, f"seed {seed}"
            # the XOR-fold epilogue always reports a checksum
            assert cpu.output_values, f"seed {seed}"

    def test_tiny_programs_halt_cleanly(self):
        tiny = FuzzKnobs.tiny()
        for seed in range(6):
            program = generate_program(seed, tiny)
            cpu, stop = run_native(program, max_steps=500_000)
            assert stop.reason is StopReason.HALTED, f"seed {seed}"
            assert cpu.exit_code == 0, f"seed {seed}"


class TestShapeCoverage:
    def test_union_covers_every_branch_shape(self):
        """A handful of seeds exercises every branch shape."""
        shapes: set[str] = set()
        for seed in range(12):
            gen = ProgramGenerator(seed)
            gen.generate_source()
            shapes |= gen.shapes
        assert {"jcc_fwd", "jcc_back", "jrz", "jrnz", "indirect",
                "call", "ret", "cmov", "mem", "push_pop",
                "div_guard"} <= shapes

    def test_gauntlet_emits_all_fourteen_conditions(self):
        source = generate_source(0)
        for jcc in ("jz", "jnz", "jl", "jge", "jle", "jg", "jb",
                    "jae", "jbe", "ja", "js", "jns", "jo", "jno"):
            assert f"{jcc} " in source


class TestKnobs:
    def test_indirect_false_removes_register_branches(self):
        knobs = FuzzKnobs(indirect=False)
        for seed in range(8):
            source = generate_source(seed, knobs)
            assert "jmpr" not in source
            assert "callr" not in source

    def test_functions_zero_removes_calls(self):
        knobs = FuzzKnobs(indirect=False, functions=0)
        for seed in range(8):
            mnemonics = {line.split()[0]
                         for line in generate_source(seed, knobs).splitlines()
                         if line.strip()}
            assert not {"call", "callr", "ret"} & mnemonics

    def test_tiny_is_smaller(self):
        big = generate_source(3)
        small = generate_source(3, FuzzKnobs.tiny())
        assert len(small.splitlines()) < len(big.splitlines())
