"""Tests for the fuzzing campaign runner and its CLI surface."""

import dataclasses
import json
import os

from _broken import skip_gensig_factory

from repro.cli import build_parser, cmd_fuzz
from repro.faults.journal import CampaignJournal
from repro.fuzz import FuzzConfig, run_fuzz
from repro.fuzz.generator import FuzzKnobs

SMALL = FuzzConfig(seed=1234, count=3, knobs=FuzzKnobs.tiny(),
                   detect_every=3, detect_techniques=("edgcf",),
                   max_sites=4)


class TestDeterminism:
    def test_serial_equals_parallel(self):
        """Acceptance: identical summary whatever --jobs is."""
        serial = run_fuzz(SMALL, jobs=1)
        parallel = run_fuzz(SMALL, jobs=4)
        assert serial.summary() == parallel.summary()
        assert serial.passed and parallel.passed

    def test_seed_changes_campaign(self):
        other = dataclasses.replace(SMALL, seed=99, detect_every=0)
        base = dataclasses.replace(SMALL, detect_every=0)
        assert run_fuzz(other).summary() != run_fuzz(base).summary()


class TestJournal:
    def test_header_records_effective_seed(self, tmp_path):
        path = str(tmp_path / "fuzz.jsonl")
        config = dataclasses.replace(SMALL, count=1, detect_every=0)
        run_fuzz(config, journal=path)
        header = CampaignJournal(path).read_header()
        assert header is not None
        assert header["tool"] == "repro-fuzz"
        assert header["seed"] == 1234

    def test_verdict_lines_are_json(self, tmp_path):
        path = str(tmp_path / "fuzz.jsonl")
        config = dataclasses.replace(SMALL, count=2, detect_every=0)
        run_fuzz(config, journal=path)
        with open(path, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        verdicts = [entry for entry in lines if entry.get("fuzz")]
        assert len(verdicts) == 2


class TestFailurePath:
    def test_injected_regression_is_caught_and_persisted(self, tmp_path):
        """Acceptance: a skipped GEN_SIG update is caught, minimized
        to a tiny reproducer, and written to the corpus."""
        corpus = str(tmp_path / "corpus")
        config = FuzzConfig(seed=1, count=1, knobs=FuzzKnobs.tiny(),
                            techniques=("edgcf",), detect_every=0,
                            max_minimize_tests=400,
                            technique_factory=skip_gensig_factory)
        report = run_fuzz(config, corpus=corpus)
        assert not report.passed
        assert report.transparency_failures == 1
        failure = report.failures[0]
        assert failure.kind == "transparency"
        assert failure.minimized is not None
        from repro.fuzz.minimizer import instruction_count
        assert instruction_count(failure.minimized) <= 10
        assert failure.corpus_dir is not None
        names = set(os.listdir(failure.corpus_dir))
        assert {"original.s", "minimized.s", "report.json"} <= names
        with open(os.path.join(failure.corpus_dir, "report.json"),
                  encoding="utf-8") as handle:
            persisted = json.load(handle)
        assert persisted["seed"] == 1
        assert "repro fuzz --seed 1" in persisted["repro"]


class TestCli:
    def test_parser_registers_fuzz(self):
        args = build_parser().parse_args(
            ["fuzz", "--seed", "5", "--count", "2", "-j", "2",
             "--corpus", "/tmp/c"])
        assert args.func is cmd_fuzz
        assert args.seed == 5
        assert args.count == 2

    def test_coverage_has_seed_flag(self):
        args = build_parser().parse_args(
            ["coverage", "prog.s", "--seed", "17"])
        assert args.seed == 17

    def test_cli_prints_effective_seed(self, tmp_path, capsys):
        args = build_parser().parse_args(
            ["fuzz", "--seed", "2", "--count", "1", "--statements",
             "8", "--loop-depth", "1", "--mem-words", "4",
             "--detect-every", "0", "-t", "edgcf"])
        code = cmd_fuzz(args)
        out = capsys.readouterr().out
        assert code == 0
        assert "effective seed: 2" in out
        assert "seed 2: 1 programs" in out
