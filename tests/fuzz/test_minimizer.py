"""Tests for the delta-debugging minimizer."""

import pytest

from repro.fuzz.generator import FuzzKnobs, generate_source
from repro.fuzz.minimizer import instruction_count, minimize_source
from repro.fuzz.oracle import check_transparency, transparency_configs
from repro.isa import assemble
from _broken import SkipGenSigEdgCF, edgcf_factory

TINY = FuzzKnobs.tiny()


def _gensig_predicate(source):
    """True when edgcf-with-missing-GEN_SIG still diverges."""
    try:
        program = assemble(source, name="candidate")
        configs = [c for c in transparency_configs(program)
                   if c.technique == "edgcf"]
        if not configs:
            return False
        failures = check_transparency(
            program, configs=configs, max_steps=200_000,
            technique_factory=edgcf_factory(SkipGenSigEdgCF))
    except Exception:
        return False
    return bool(failures)


class TestMechanics:
    def test_rejects_non_failing_input(self):
        with pytest.raises(ValueError):
            minimize_source("main: nop\n", lambda s: False)

    def test_instruction_count_ignores_labels_and_directives(self):
        source = ".text\n.entry main\nmain:\n    nop\n    ret\n"
        assert instruction_count(source) == 2

    def test_shrinks_to_needed_lines(self):
        source = "\n".join(f"line{i}" for i in range(16)) + "\n"

        def predicate(candidate):
            return "line7" in candidate

        result = minimize_source(source, predicate)
        assert result.source.strip() == "line7"
        assert result.steps > 0


class TestRegressionShrinking:
    def test_injected_regression_minimizes_small(self):
        """Acceptance: a skipped GEN_SIG update shrinks to a tiny,
        still-failing reproducer."""
        source = generate_source(0, TINY)
        assert _gensig_predicate(source)
        result = minimize_source(source, _gensig_predicate,
                                 max_tests=600)
        assert result.instructions <= 10
        # the minimal reproducer still trips the same oracle
        assert _gensig_predicate(result.source)

    def test_minimization_is_deterministic(self):
        """Same failing seed -> byte-identical minimal reproducer."""
        source = generate_source(0, TINY)
        first = minimize_source(source, _gensig_predicate,
                                max_tests=600)
        second = minimize_source(source, _gensig_predicate,
                                 max_tests=600)
        assert first.source == second.source
        assert first.steps == second.steps
        assert first.tests == second.tests
