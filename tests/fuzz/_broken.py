"""Deliberately broken EdgCF variants shared by the fuzz tests.

``SkipGenSigEdgCF`` drops the GEN_SIG update on direct block exits (a
transparency bug the differential oracle must catch);
``NoCheckEdgCF`` keeps updating signatures but never branches to the
error handler (branch errors become detection escapes).
"""

from repro.checking.base import ErrorBranch
from repro.checking.edgcf import EdgCF


class SkipGenSigEdgCF(EdgCF):
    """Regression: GEN_SIG missing on direct block exits."""

    def exit_items_direct(self, block, target):
        return []


class NoCheckEdgCF(EdgCF):
    """Regression: signatures updated but never checked."""

    def entry_items(self, block, check):
        items = super().entry_items(block, check=check)
        return [item for item in items
                if not isinstance(item, ErrorBranch)]


def skip_gensig_factory(config, cfg):
    """``FuzzConfig.technique_factory`` injecting ``SkipGenSigEdgCF``."""
    if config.technique == "edgcf":
        return SkipGenSigEdgCF(update_style=config.update_style)
    from repro.checking import make_technique
    from repro.fuzz.oracle import STATIC_TECHNIQUES
    needs_cfg = config.technique in STATIC_TECHNIQUES
    return make_technique(config.technique,
                          update_style=config.update_style,
                          cfg=cfg if needs_cfg else None)


def edgcf_factory(cls):
    """A factory for edgcf-only oracle calls."""
    def factory(config, cfg):
        if config.technique == "edgcf":
            return cls(update_style=config.update_style)
        raise AssertionError("factory restricted to edgcf")
    return factory
