"""DeterministicScheduler unit tests: policies, seeding, snapshots."""

import pytest

from repro.threads import DEFAULT_QUANTUM, POLICIES
from repro.threads.scheduler import DeterministicScheduler


class TestRoundRobin:
    def test_fifo_order(self):
        sched = DeterministicScheduler(policy="rr")
        for tid in (3, 1, 2):
            sched.enqueue(tid)
        picks = [sched.pick(lambda tid: 0) for _ in range(3)]
        assert picks == [3, 1, 2]
        assert sched.pick(lambda tid: 0) is None

    def test_remove(self):
        sched = DeterministicScheduler()
        for tid in (1, 2, 3):
            sched.enqueue(tid)
        sched.remove(2)
        assert sched.ready_tids() == (1, 3)
        sched.remove(99)                        # absent tid is a no-op
        assert sched.ready_count() == 2

    def test_rotate_moves_head_to_tail(self):
        sched = DeterministicScheduler()
        for tid in (1, 2, 3):
            sched.enqueue(tid)
        sched.rotate()
        assert sched.ready_tids() == (2, 3, 1)

    def test_rotate_single_entry_is_noop(self):
        sched = DeterministicScheduler()
        sched.enqueue(7)
        sched.rotate()
        assert sched.ready_tids() == (7,)


class TestPriority:
    def test_highest_priority_wins(self):
        sched = DeterministicScheduler(policy="priority")
        for tid in (1, 2, 3):
            sched.enqueue(tid)
        prio = {1: 0, 2: 9, 3: 4}
        assert sched.pick(prio.__getitem__) == 2
        assert sched.pick(prio.__getitem__) == 3

    def test_tie_break_is_seed_deterministic(self):
        def drain(seed):
            sched = DeterministicScheduler(policy="priority", seed=seed)
            for tid in range(6):
                sched.enqueue(tid)
            return [sched.pick(lambda tid: 0) for _ in range(6)]

        assert drain(42) == drain(42)
        # Different seeds explore different (reproducible) orders; with
        # 6! permutations a collision would be remarkable.
        assert drain(1) != drain(2) or drain(3) != drain(4)

    def test_rng_only_advances_on_actual_ties(self):
        sched = DeterministicScheduler(policy="priority", seed=5)
        prio = {1: 3, 2: 7}
        sched.enqueue(1)
        sched.enqueue(2)
        state = sched.snapshot()[1]
        assert sched.pick(prio.__getitem__) == 2
        assert sched.snapshot()[1] == state     # no tie, no draw


class TestConstruction:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            DeterministicScheduler(policy="lottery")

    def test_quantum_floor(self):
        assert DeterministicScheduler(quantum=0).quantum == 1
        assert DeterministicScheduler(quantum=-5).quantum == 1

    def test_exports(self):
        assert DEFAULT_QUANTUM == 500
        assert POLICIES == ("rr", "priority")


class TestSnapshot:
    def test_round_trip_restores_queue_and_rng(self):
        sched = DeterministicScheduler(policy="priority", seed=9)
        for tid in (4, 5, 6):
            sched.enqueue(tid)
        snap = sched.snapshot()
        first = [sched.pick(lambda tid: 0) for _ in range(3)]
        sched.restore(snap)
        assert sched.ready_tids() == (4, 5, 6)
        assert [sched.pick(lambda tid: 0) for _ in range(3)] == first
