"""Fault injection on the multithreaded machine: thread-targeted
specs, scheduler-state faults, cross-context attribution, and the
order-independent per-thread sampling streams."""

from repro.faults import FaultSpec, Outcome, PipelineConfig
from repro.faults.campaign import (Pipeline, generate_sched_faults,
                                   generate_thread_faults)
from repro.faults.injector import DirectionFault, SchedFaultSpec
from repro.forensics import explain_spec
from repro.forensics.attribution import EscapeReason
from repro.forensics.bundle import spec_from_json, spec_to_json
from repro.isa import assemble
from repro.workloads import BY_NAME

PROGRAM = assemble(BY_NAME["mt.counters4"].generator(threads=4,
                                                     iters=40, spin=4),
                   name="mt-faults")
MT = dict(threads=True, quantum=97)

#: The canonical cross-context experiment: at context switch #9 flip
#: bit 10 of thread 1's *saved* PCP (r16, ECF signature state).
CTX_SPEC = SchedFaultSpec(switch=9, kind="ctx-bit", tid=1, reg=16,
                          bit=10)


class TestSchedFaults:
    def test_ctx_bit_on_sig_reg_detected_with_swap(self):
        config = PipelineConfig("static", "ecf", **MT)
        record = Pipeline(PROGRAM, config).run(CTX_SPEC)
        assert record.outcome is Outcome.DETECTED_SIGNATURE

    def test_ctx_bit_escapes_without_swap(self):
        config = PipelineConfig("static", "ecf", sig_swap=False, **MT)
        record = Pipeline(PROGRAM, config).run(CTX_SPEC)
        assert record.outcome is Outcome.BENIGN

    def test_queue_rotate_is_benign_with_divergent_schedule(self):
        config = PipelineConfig("native", None, **MT)
        pipe = Pipeline(PROGRAM, config)
        spec = SchedFaultSpec(switch=5, kind="queue-rotate")
        record = pipe.run(spec)
        assert record.outcome is Outcome.BENIGN

    def test_describe(self):
        assert CTX_SPEC.describe() == "sched ctx t1 r16b10@sw9"
        rot = SchedFaultSpec(switch=5, kind="queue-rotate")
        assert rot.describe() == "sched rotate@sw5"


class TestCrossContextAttribution:
    def test_escape_attributed_as_cross_context(self):
        config = PipelineConfig("static", "ecf", sig_swap=False, **MT)
        divergence, attribution, text = explain_spec(PROGRAM, config,
                                                     CTX_SPEC)
        assert attribution.reason is EscapeReason.CROSS_CONTEXT
        assert "cross-context-escape" in text
        assert "signature" in attribution.detail

    def test_detected_run_is_not_an_escape(self):
        config = PipelineConfig("static", "ecf", **MT)
        divergence, attribution, _text = explain_spec(PROGRAM, config,
                                                      CTX_SPEC)
        assert attribution is None or \
            attribution.reason is not EscapeReason.CROSS_CONTEXT

    def test_guest_reg_ctx_bit_not_cross_context(self):
        """Flipping a guest computation register in a saved context is
        an ordinary data fault, not a signature-protocol escape."""
        spec = SchedFaultSpec(switch=9, kind="ctx-bit", tid=1, reg=4,
                              bit=10)
        config = PipelineConfig("static", "ecf", sig_swap=False, **MT)
        divergence, attribution, _text = explain_spec(PROGRAM, config,
                                                      spec)
        if attribution is not None:
            assert attribution.reason is not EscapeReason.CROSS_CONTEXT


class TestThreadTargetedSpecs:
    def test_thread_field_round_trips_through_bundle(self):
        spec = FaultSpec(0x1000, 2, DirectionFault(taken=None),
                         thread=3)
        again = spec_from_json(spec_to_json(spec))
        assert repr(again) == repr(spec)
        assert again.thread == 3

    def test_thread_none_stays_absent_in_json(self):
        spec = FaultSpec(0x1000, 1, DirectionFault(taken=None))
        data = spec_to_json(spec)
        assert "thread" not in data
        assert spec_from_json(data).thread is None

    def test_sched_spec_round_trips_through_bundle(self):
        data = spec_to_json(CTX_SPEC)
        assert data["kind"] == "sched"
        again = spec_from_json(data)
        assert isinstance(again, SchedFaultSpec)
        assert again == CTX_SPEC


class TestPerThreadSeedStreams:
    def test_specs_are_order_and_subset_independent(self):
        mt = PipelineConfig("native", None, **MT)
        full = generate_thread_faults(PROGRAM, mt, tids=(1, 2, 3),
                                      per_thread=4, seed=7)
        reordered = generate_thread_faults(PROGRAM, mt, tids=(3, 1, 2),
                                           per_thread=4, seed=7)
        assert [repr(s) for s in full] == [repr(s) for s in reordered]
        only_two = generate_thread_faults(PROGRAM, mt, tids=(2,),
                                          per_thread=4, seed=7)
        by_tid = [s for s in full if s.thread == 2]
        assert [repr(s) for s in only_two] == [repr(s) for s in by_tid]

    def test_specs_carry_their_thread(self):
        mt = PipelineConfig("native", None, **MT)
        specs = generate_thread_faults(PROGRAM, mt, tids=(1, 2),
                                       per_thread=3, seed=7)
        assert specs and {s.thread for s in specs} == {1, 2}

    def test_sched_fault_stream_deterministic(self):
        a = generate_sched_faults(count=8, seed=3, sig_regs=(16, 17))
        b = generate_sched_faults(count=8, seed=3, sig_regs=(16, 17))
        assert a == b
        kinds = {spec.kind for spec in a}
        assert kinds == {"ctx-bit", "queue-rotate"}
        assert all(spec.reg in (16, 17) for spec in a
                   if spec.kind == "ctx-bit")


class TestThreadGatedInjection:
    def test_occurrence_counts_only_in_victim_thread(self):
        """The same (branch, occurrence) spec lands at different
        dynamic sites depending on the victim thread, so outcomes may
        differ — but each victim's run is deterministic."""
        worker_pc = PROGRAM.symbols["worker"] + 28
        config = PipelineConfig("static", "ecf", **MT)
        pipe = Pipeline(PROGRAM, config)
        outcomes = {}
        for tid in (1, 2):
            spec = FaultSpec(worker_pc, 2, DirectionFault(taken=None),
                             thread=tid)
            outcomes[tid] = [pipe.run(spec).outcome for _ in range(2)]
        for tid, pair in outcomes.items():
            assert pair[0] == pair[1], (tid, pair)
