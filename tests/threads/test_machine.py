"""ThreadedMachine semantics: syscalls, determinism, backend parity."""

import pytest

from repro.exec import BACKEND_NAMES, install_backend
from repro.isa import assemble
from repro.machine import Cpu
from repro.machine.faults import StopReason
from repro.threads import (INVALID_TID, MAX_THREADS, ThreadedMachine)
from repro.workloads import BY_NAME

SPAWN_JOIN_SRC = """
.entry main
main:
    const r1, worker
    movi r2, 21
    movi r3, 0
    syscall 16          ; spawn(worker, 21) -> r0 = tid
    mov r1, r0
    syscall 17          ; join -> r0 = retval
    mov r1, r0
    syscall 4
    movi r1, 0
    syscall 0
worker:
    add r1, r1, r1      ; retval = 2 * arg
    syscall 22
"""

TID_SRC = """
.entry main
main:
    syscall 21          ; r0 = own tid (main == 0)
    mov r1, r0
    syscall 4
    const r1, worker
    movi r2, 0
    movi r3, 0
    syscall 16
    mov r1, r0
    syscall 17
    mov r1, r0
    syscall 4
    movi r1, 0
    syscall 0
worker:
    syscall 21
    mov r1, r0          ; retval = own tid
    syscall 22
"""

CROSS_DEADLOCK_SRC = """
.entry main
main:
    movi r1, 0
    syscall 19          ; main takes mutex 0
    const r1, worker
    movi r2, 0
    movi r3, 0
    syscall 16
    mov r1, r0
    syscall 17          ; join worker: blocks...
    movi r1, 0
    syscall 0
worker:
    movi r1, 0
    syscall 19          ; ...while the worker blocks on mutex 0
    movi r1, 0
    syscall 22
"""

SELF_EDGES_SRC = """
.entry main
main:
    movi r1, 0
    syscall 17          ; join(self) fails fast with INVALID_TID
    mov r1, r0
    syscall 4
    movi r1, 5
    syscall 19          ; lock mutex 5
    movi r1, 5
    syscall 19          ; re-lock by the owner: deterministic no-op
    movi r1, 5
    syscall 20
    movi r1, 0
    syscall 0
"""


def run_machine(source, *, backend="interp", quantum=50, policy="rr",
                seed=0, sig_swap=True, max_steps=2_000_000):
    cpu = Cpu()
    install_backend(cpu, backend)
    cpu.load_program(assemble(source), executable_text=True)
    machine = ThreadedMachine(cpu, quantum=quantum, policy=policy,
                              seed=seed, sig_swap=sig_swap)
    stop = machine.run(max_steps=max_steps)
    return cpu, stop, machine


class TestSyscalls:
    def test_spawn_join_delivers_retval(self):
        cpu, stop, machine = run_machine(SPAWN_JOIN_SRC)
        assert stop.reason is StopReason.HALTED and stop.exit_code == 0
        assert list(cpu.output_values) == [42]
        assert machine.thread_count() == 2

    def test_tid_service(self):
        cpu, stop, _machine = run_machine(TID_SRC)
        assert stop.exit_code == 0
        assert list(cpu.output_values) == [0, 1]

    def test_cross_deadlock_detected(self):
        _cpu, stop, machine = run_machine(CROSS_DEADLOCK_SRC)
        assert stop.reason is StopReason.STEP_LIMIT
        assert machine.deadlocked

    def test_self_join_and_relock_edge_cases(self):
        cpu, stop, machine = run_machine(SELF_EDGES_SRC)
        assert stop.exit_code == 0 and not machine.deadlocked
        assert list(cpu.output_values) == [INVALID_TID]

    def test_spawn_beyond_max_threads_fails(self):
        # MAX_THREADS spawns: the last ones must return INVALID_TID and
        # the program still terminates cleanly (workers spin-exit).
        source = f"""
.entry main
main:
    movi r5, 0
    movi r6, 0          ; INVALID_TID observations
spawnloop:
    const r1, worker
    movi r2, 0
    movi r3, 0
    syscall 16
    addi r7, r0, 1      ; INVALID_TID (0xFFFFFFFF) + 1 wraps to 0
    cmpi r7, 0
    jnz valid
    addi r6, r6, 1
valid:
    addi r5, r5, 1
    cmpi r5, {MAX_THREADS + 2}
    jl spawnloop
    mov r1, r6
    syscall 4
    movi r1, 0
    syscall 0
worker:
    movi r1, 0
    syscall 22
"""
        cpu, stop, machine = run_machine(source, quantum=500)
        assert stop.exit_code == 0
        # main + (MAX_THREADS - 1) workers fit; the rest are refused.
        assert list(cpu.output_values) == [3]
        assert machine.thread_count() == MAX_THREADS
        assert INVALID_TID == 0xFFFFFFFF


class TestDeterminism:
    def test_same_config_same_trace(self):
        program = BY_NAME["mt.ledger"].generator(threads=3, deposits=8)
        first = run_machine(program, quantum=61)
        second = run_machine(program, quantum=61)
        assert first[2].trace == second[2].trace
        assert first[2].trace_digest() == second[2].trace_digest()
        assert list(first[0].output_values) == \
            list(second[0].output_values)

    def test_quantum_changes_schedule_not_result(self):
        program = BY_NAME["mt.counters4"].generator(threads=3, iters=20,
                                                    spin=3)
        a = run_machine(program, quantum=40)
        b = run_machine(program, quantum=97)
        assert a[2].trace_digest() != b[2].trace_digest()
        assert list(a[0].output_values) == list(b[0].output_values)

    def test_priority_seed_changes_schedule_not_result(self):
        program = BY_NAME["mt.ledger"].generator(threads=4, deposits=6)
        a = run_machine(program, policy="priority", seed=1)
        b = run_machine(program, policy="priority", seed=2)
        assert a[2].trace_digest() != b[2].trace_digest()
        assert list(a[0].output_values) == list(b[0].output_values)

    @pytest.mark.parametrize("kernel,params", [
        ("mt.counters4", dict(threads=4, iters=20, spin=3)),
        ("mt.ledger", dict(threads=3, deposits=8)),
        ("mt.relay", dict(stages=3, rounds=6)),
    ])
    def test_cross_backend_schedule_parity(self, kernel, params):
        program = BY_NAME[kernel].generator(**params)
        runs = {backend: run_machine(program, backend=backend,
                                     quantum=83)
                for backend in BACKEND_NAMES}
        digests = {backend: run[2].trace_digest()
                   for backend, run in runs.items()}
        assert len(set(digests.values())) == 1, digests
        icounts = {backend: run[0].icount
                   for backend, run in runs.items()}
        assert len(set(icounts.values())) == 1, icounts
        for _cpu, stop, _machine in runs.values():
            assert stop.exit_code == 0


class TestSoloFastPath:
    SINGLE_SRC = """
.entry main
main:
    movi r1, 0
    movi r2, 1
loop:
    add r1, r1, r2
    addi r2, r2, 1
    cmpi r2, 2001
    jl loop
    syscall 4
    movi r1, 0
    syscall 0
"""

    def test_single_thread_matches_bare_run(self):
        """A never-spawning program under the machine commits exactly
        the bare run's result and retired-instruction count (the solo
        fast path skips self-switch preemptions entirely)."""
        cpu = Cpu()
        cpu.load_program(assemble(self.SINGLE_SRC),
                         executable_text=True)
        bare_stop = cpu.run(max_steps=2_000_000)
        mt_cpu, stop, machine = run_machine(self.SINGLE_SRC, quantum=50)
        assert stop.reason is bare_stop.reason is StopReason.HALTED
        assert mt_cpu.icount == cpu.icount
        assert list(mt_cpu.output_values) == list(cpu.output_values)
        assert machine.switches == 0
        events = [event for _ic, _tid, event in machine.trace]
        assert "preempt" not in events

    def test_no_sig_swap_keeps_chunked_preemption(self):
        """Without signature swapping a self-switch resynchronizes
        signature registers — observable behaviour — so the solo fast
        path must stay off."""
        _cpu, stop, machine = run_machine(self.SINGLE_SRC, quantum=50,
                                          sig_swap=False)
        assert stop.reason is StopReason.HALTED
        events = [event for _ic, _tid, event in machine.trace]
        assert "preempt" in events


class TestSchedSnapshot:
    def test_round_trip_restores_everything(self):
        program = BY_NAME["mt.relay"].generator(stages=3, rounds=6)
        cpu = Cpu()
        cpu.load_program(assemble(program), executable_text=True)
        machine = ThreadedMachine(cpu, quantum=37)
        machine.run(max_steps=400)              # mid-flight
        snap = machine.snapshot_sched_state()
        contexts = {tid: ctx.snapshot()
                    for tid, ctx in machine.contexts.items()}
        queue = machine.scheduler.ready_tids()
        trace_len = len(machine.trace)
        machine.run(max_steps=800)              # mutate further
        machine.restore_sched_state(snap)
        assert {tid: ctx.snapshot()
                for tid, ctx in machine.contexts.items()} == contexts
        assert machine.scheduler.ready_tids() == queue
        assert len(machine.trace) == trace_len
