"""Journaled MT campaigns: scheduler parameters in the header, resume
refusal on mismatch, and jobs-independence of the journal."""

import json

import pytest

from repro.cli import main
from repro.workloads import BY_NAME


@pytest.fixture
def mt_file(tmp_path):
    path = tmp_path / "mt.s"
    path.write_text(BY_NAME["mt.counters4"].generator(threads=3,
                                                      iters=15, spin=3))
    return str(path)


MT_FLAGS = ["--threads", "--quantum", "97", "--sched-seed", "3"]


def inject(mt_file, journal, *extra):
    return main(["inject", mt_file, "-t", "ecf", "--branch",
                 "worker+28", "--fault", "direction", "--journal",
                 journal, *MT_FLAGS, *extra])


class TestJournalHeader:
    def test_header_records_scheduler_parameters(self, mt_file,
                                                 tmp_path, capsys):
        journal = str(tmp_path / "mt.jsonl")
        assert inject(mt_file, journal) == 0
        header = json.loads(open(journal).readline())["header"]
        assert header["threads"] is True
        assert header["quantum"] == 97
        assert header["sched_policy"] == "rr"
        assert header["sched_seed"] == 3
        assert header["sig_swap"] is True

    def test_single_threaded_header_untouched(self, mt_file, tmp_path,
                                              capsys):
        journal = str(tmp_path / "st.jsonl")
        assert main(["inject", mt_file, "-t", "ecf", "--branch",
                     "worker+28", "--fault", "direction",
                     "--journal", journal]) == 0
        header = json.loads(open(journal).readline())["header"]
        assert "threads" not in header
        assert "quantum" not in header


class TestResumeGuard:
    def test_resume_with_matching_flags_replays(self, mt_file,
                                                tmp_path, capsys):
        journal = str(tmp_path / "mt.jsonl")
        assert inject(mt_file, journal) == 0
        first = capsys.readouterr().out
        assert inject(mt_file, journal, "--resume") == 0
        second = capsys.readouterr().out
        assert "outcome:" in first and "outcome:" in second

    @pytest.mark.parametrize("mismatch", [
        ["--quantum", "500"],
        ["--sched-policy", "priority"],
        ["--sched-seed", "9"],
        ["--no-sig-swap"],
    ])
    def test_resume_with_mismatched_scheduler_refused(
            self, mt_file, tmp_path, capsys, mismatch):
        journal = str(tmp_path / "mt.jsonl")
        assert inject(mt_file, journal) == 0
        capsys.readouterr()
        argv = (["inject", mt_file, "-t", "ecf", "--branch",
                 "worker+28", "--fault", "direction", "--journal",
                 journal, "--resume", "--threads"]
                + _merge(mismatch))
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "different scheduler parameters" in err

    def test_resume_without_threads_on_mt_journal_refused(
            self, mt_file, tmp_path, capsys):
        journal = str(tmp_path / "mt.jsonl")
        assert inject(mt_file, journal) == 0
        capsys.readouterr()
        assert main(["inject", mt_file, "-t", "ecf", "--branch",
                     "worker+28", "--fault", "direction", "--journal",
                     journal, "--resume"]) == 2
        assert "different scheduler parameters" in \
            capsys.readouterr().err


def _merge(mismatch):
    """MT_FLAGS with one knob overridden by the mismatch flags."""
    flags = dict(zip(["--quantum", "--sched-seed"], ["97", "3"]))
    out = []
    if mismatch[0] in flags:
        flags[mismatch[0]] = mismatch[1]
    else:
        out = mismatch
    for flag, value in flags.items():
        out += [flag, value]
    return out


class TestJobsIndependence:
    def test_journal_identical_jobs_1_vs_2(self, mt_file, tmp_path,
                                           capsys):
        bodies = {}
        for jobs in (1, 2):
            journal = str(tmp_path / f"j{jobs}.jsonl")
            assert main(["inject", mt_file, "-t", "ecf", "--branch",
                         "worker+28", "--fault", "direction",
                         "--fault", "offset:3", "--fault", "flag:1",
                         "--journal", journal, "--jobs", str(jobs),
                         *MT_FLAGS]) in (0, 1)
            lines = open(journal).read().splitlines()
            # Drop the header's jobs field; records must be identical.
            header = json.loads(lines[0])["header"]
            header.pop("jobs", None)
            bodies[jobs] = (header, lines[1:])
        assert bodies[1] == bodies[2]
