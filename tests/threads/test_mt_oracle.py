"""The MT differential oracle and its fuzz-runner integration."""

from repro.checking import Policy
from repro.fuzz import (FuzzConfig, capture_threaded,
                        check_mt_transparency, run_fuzz)
from repro.fuzz.generator import FuzzKnobs
from repro.fuzz.oracle import MT_INSTRUMENTED_IGNORE
from repro.isa import assemble
from repro.workloads import BY_NAME

SMALL = assemble(BY_NAME["mt.counters4"].generator(threads=3, iters=15,
                                                   spin=3),
                 name="mt-small")


class TestCaptureThreaded:
    def test_backend_digests_fully_identical(self):
        interp = capture_threaded(SMALL, quantum=53)
        block = capture_threaded(SMALL, quantum=53, backend="block")
        assert interp.diff(block) == []
        assert interp.schedule != "-"

    def test_schedule_field_tracks_quantum(self):
        a = capture_threaded(SMALL, quantum=53)
        b = capture_threaded(SMALL, quantum=101)
        diff = a.diff(b)
        assert "schedule" in diff
        assert a.diff(b, ignore=("schedule", "icount", "cycles",
                                 "syscalls")) == []

    def test_instrumented_matches_golden_modulo_schedule(self):
        golden = capture_threaded(SMALL, quantum=53)
        ecf = capture_threaded(SMALL, technique="ecf", quantum=53)
        # Instrumentation shifts preemption points (the quantum counts
        # retired instructions), so schedule/syscall interleavings and
        # instruction counts legitimately differ; committed results
        # must not.
        assert ecf.diff(golden, ignore=MT_INSTRUMENTED_IGNORE
                        + ("icount", "cycles")) == []


class TestCheckMtTransparency:
    def test_clean_kernels_have_no_failures(self):
        assert check_mt_transparency(SMALL, techniques=("ecf",),
                                     quantum=53) == []

    def test_priority_policy_and_seed(self):
        program = assemble(
            BY_NAME["mt.relay"].generator(stages=3, rounds=6),
            name="mt-relay-small")
        assert check_mt_transparency(program, techniques=("cfcss",),
                                     policy=Policy.ALLBB, quantum=61,
                                     sched_policy="priority",
                                     sched_seed=7) == []


class TestFuzzMtMode:
    def test_mt_every_runs_and_passes(self):
        config = FuzzConfig(seed=11, count=2, detect_every=0,
                            mt_every=2, minimize=False,
                            knobs=FuzzKnobs.tiny(),
                            techniques=("ecf",))
        report = run_fuzz(config, jobs=1)
        assert report.mt_runs == 1
        assert report.mt_failures == 0
        assert report.passed
        assert "MT" in report.summary_line()

    def test_mt_disabled_by_default(self):
        config = FuzzConfig(seed=11, count=1, detect_every=0,
                            minimize=False, knobs=FuzzKnobs.tiny(),
                            techniques=("ecf",))
        report = run_fuzz(config, jobs=1)
        assert report.mt_runs == 0
