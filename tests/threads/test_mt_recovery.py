"""Checkpoint/rollback recovery on threaded programs.

The satellite contract: checkpoints capture *every* thread context
plus the run queue (not just the thread occupying the CPU), a
detected fault re-executes to the correct committed result, and the
recovered run is byte-identical across execution backends.
"""

from repro.exec import BACKEND_NAMES
from repro.faults import Outcome, PipelineConfig
from repro.faults.campaign import Pipeline
from repro.faults.injector import SchedFaultSpec
from repro.isa import assemble
from repro.workloads import BY_NAME

PROGRAM = assemble(BY_NAME["mt.counters4"].generator(threads=4,
                                                     iters=40, spin=4),
                   name="mt-recovery")
CTX_SPEC = SchedFaultSpec(switch=9, kind="ctx-bit", tid=1, reg=16,
                          bit=10)


def recovery_config(backend="interp"):
    return PipelineConfig("static", "ecf", threads=True, quantum=97,
                          recover=True, checkpoint_interval=512,
                          backend=backend)


class TestMtRecovery:
    def test_detected_sched_fault_recovers_to_golden_output(self):
        config = recovery_config()
        pipe = Pipeline(PROGRAM, config)
        record = pipe.run(CTX_SPEC)
        assert record.outcome is Outcome.RECOVERED
        assert record.outputs == pipe.golden.outputs
        assert record.attempts >= 1
        assert record.rollback_distance_icount is not None

    def test_rollback_restores_all_threads_and_run_queue(self):
        """Roll back across context switches: the re-executed schedule
        must replay exactly, which is only possible if the checkpoint
        restored every saved context, the ready queue and the
        scheduler RNG — a divergent replay would commit different
        output or deadlock."""

        class MachineProbe:
            def __init__(self):
                self.machine = None

            def bind(self, cpu, **_kwargs):
                self.cpu = cpu

        probe = MachineProbe()
        config = recovery_config()
        pipe = Pipeline(PROGRAM, config)
        clean = pipe.run(None)
        probe_record = pipe.run(CTX_SPEC, probe=probe)
        assert probe_record.outcome is Outcome.RECOVERED
        machine = probe.machine
        assert machine is not None
        # The recovered machine ends in the same terminal shape as a
        # clean run: the kernels exit via the whole-machine EXIT in
        # main, so every *worker* has reached THREAD_EXIT and nothing
        # is left on the ready queue.
        from repro.threads.context import EXITED
        assert machine.live_threads() == 1      # main, at EXIT
        workers = [ctx for tid, ctx in machine.contexts.items()
                   if tid != 0]
        assert workers and all(ctx.state == EXITED for ctx in workers)
        assert machine.scheduler.ready_count() == 0
        assert not machine.deadlocked
        assert machine.thread_count() == 5      # main + 4 workers
        assert probe_record.outputs == clean.outputs

    def test_recovered_run_byte_identical_across_backends(self):
        records = {}
        for backend in BACKEND_NAMES:
            pipe = Pipeline(PROGRAM, recovery_config(backend))
            records[backend] = pipe.run(CTX_SPEC)
        interp, block = (records["interp"], records["block"])
        assert interp.outcome is block.outcome is Outcome.RECOVERED
        assert interp.outputs == block.outputs
        assert interp.icount == block.icount
        assert interp.stop_reason == block.stop_reason

    def test_clean_threaded_run_under_recovery_pays_no_rollback(self):
        config = recovery_config()
        record = Pipeline(PROGRAM, config).run(None)
        assert record.outcome is Outcome.BENIGN
        assert not record.rollback_distance_icount
