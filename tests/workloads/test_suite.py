"""Workload suite: all 26 benchmarks assemble, run, and have the
structural profiles the reproduction depends on."""

import pytest

from repro.cfg import build_cfg
from repro.machine import StopReason, run_native
from repro.workloads import (BY_NAME, FP_SUITE, INT_SUITE, SUITE, load,
                             suite_names)


class TestRegistry:
    def test_26_benchmarks(self):
        assert len(SUITE) == 26
        assert len(INT_SUITE) == 12
        assert len(FP_SUITE) == 14

    def test_spec2000_names(self):
        assert "164.gzip" in BY_NAME
        assert "171.swim" in BY_NAME
        assert "300.twolf" in BY_NAME

    def test_order_fp_first(self):
        names = suite_names()
        assert names[0].startswith("168")
        assert names[14 - 1].startswith("301")
        assert names[14].startswith("164")

    def test_scales_present(self):
        for spec in SUITE:
            assert set(spec.params) == {"test", "small", "ref"}

    def test_load_caches(self):
        assert load("254.gap", "test") is load("254.gap", "test")

    def test_indirect_flagged(self):
        assert BY_NAME["176.gcc"].uses_indirect
        assert not BY_NAME["176.gcc"].static_rewritable

    def test_whole_cfg_candidates_exist(self):
        candidates = [s for s in SUITE if s.whole_cfg_ok]
        assert len(candidates) >= 6


@pytest.mark.parametrize("name", suite_names())
class TestEveryBenchmark:
    def test_runs_and_emits(self, name):
        program = load(name, "test")
        cpu, stop = run_native(program, max_steps=3_000_000)
        assert stop.reason is StopReason.HALTED
        assert stop.exit_code == 0
        assert cpu.output_values, "benchmark must emit a checksum"

    def test_deterministic(self, name):
        outputs = []
        for _ in range(2):
            cpu, _ = run_native(load(name, "test"), max_steps=3_000_000)
            outputs.append((tuple(cpu.output_values), cpu.cycles))
        assert outputs[0] == outputs[1]

    def test_scales_increase_work(self, name):
        cpu_test, _ = run_native(load(name, "test"),
                                 max_steps=10_000_000)
        cpu_small, _ = run_native(load(name, "small"),
                                  max_steps=10_000_000)
        assert cpu_small.icount > cpu_test.icount


class TestStructuralProfiles:
    def test_fp_blocks_bigger_than_int(self):
        """The property behind every fp-vs-int difference in the
        paper."""
        def mean_block(specs):
            sizes = [build_cfg(spec.assemble("test")).average_block_size()
                     for spec in specs]
            return sum(sizes) / len(sizes)
        assert mean_block(FP_SUITE) > 1.5 * mean_block(INT_SUITE)

    def test_fp_uses_expensive_ops(self):
        from repro.isa.opcodes import Op
        fp_ops = {Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV}
        for spec in FP_SUITE:
            program = spec.assemble("test")
            ops = {instr.op for _, instr in program.instructions()}
            assert ops & fp_ops, spec.name

    def test_int_suite_is_branchy(self):
        for spec in INT_SUITE:
            if spec.uses_indirect:
                continue  # gcc's branchiness is indirect dispatch
            cfg = build_cfg(spec.assemble("test"))
            stats = cfg.stats()
            cond = stats.get("exit_cond", 0)
            assert cond / stats["blocks"] > 0.2, spec.name


class TestSynthetic:
    def test_source_deterministic(self):
        from repro.workloads import generate_program_source
        assert generate_program_source(7) == generate_program_source(7)

    def test_different_seeds_differ(self):
        from repro.workloads import generate_program_source
        assert generate_program_source(1) != generate_program_source(2)

    @pytest.mark.parametrize("seed", [0, 5, 9])
    def test_generated_programs_terminate(self, seed):
        from repro.workloads import generate_program
        program = generate_program(seed, with_calls=True)
        cpu, stop = run_native(program, max_steps=500_000)
        assert stop.reason is StopReason.HALTED
        assert cpu.output_values
