"""Per-kernel generator tests: parameterization and behaviour."""

import pytest

from repro.isa import assemble
from repro.machine import StopReason, run_native
from repro.workloads.kernels import (compress, dots, graph, linalg,
                                     particles, route, search, stencil,
                                     text, vm)


def run_kernel(source: str, max_steps: int = 5_000_000):
    cpu, stop = run_native(assemble(source), max_steps=max_steps)
    assert stop.reason is StopReason.HALTED
    assert stop.exit_code == 0
    return cpu


class TestParameterization:
    def test_rle_scales_with_buffer(self):
        small = run_kernel(compress.rle_compress(buffer_bytes=128))
        big = run_kernel(compress.rle_compress(buffer_bytes=512))
        assert big.icount > small.icount

    def test_shell_sort_actually_sorts(self):
        cpu = run_kernel(compress.shell_sort(elements=64))
        # the verify pass returns 0xBAD only on unsorted output
        assert cpu.output_values[0] != 0xBAD

    def test_vm_dispatch_variants_agree(self):
        table = run_kernel(vm.stack_vm(loop_count=30, jump_table=True))
        cascade = run_kernel(vm.stack_vm(loop_count=30,
                                         jump_table=False))
        assert table.output_values == cascade.output_values

    def test_matmul_repeats(self):
        once = run_kernel(linalg.matmul(n=8, repeats=1))
        twice = run_kernel(linalg.matmul(n=8, repeats=2))
        assert twice.icount > once.icount

    def test_stencil_unroll_preserves_instruction_ratio(self):
        u2 = assemble(stencil.stencil1d(points=64, sweeps=1, unroll=2))
        u8 = assemble(stencil.stencil1d(points=64, sweeps=1, unroll=8))
        from repro.cfg import build_cfg
        assert build_cfg(u8).average_block_size() > \
            build_cfg(u2).average_block_size()

    def test_negamax_depth_scales_exponentially(self):
        d3 = run_kernel(search.negamax(depth=3, branching=3))
        d5 = run_kernel(search.negamax(depth=5, branching=3))
        assert d5.icount > d3.icount * 4

    def test_hash_table_hits(self):
        cpu = run_kernel(graph.hash_table(operations=200, buckets=64))
        assert cpu.output_values[0] != 0   # lookups actually hit

    def test_tokenizer_output_depends_on_text(self):
        a = run_kernel(text.tokenizer(text_length=100))
        b = run_kernel(text.tokenizer(text_length=300))
        assert a.output_values != b.output_values

    def test_matcher_counts_matches(self):
        cpu = run_kernel(text.matcher(text_length=200))
        assert cpu.output_values[0] > 0

    @pytest.mark.parametrize("generator,kwargs", [
        (route.grid_route, dict(width=6, height=6, routes=3)),
        (route.anneal, dict(cells=16, moves=40)),
        (graph.edge_relax, dict(nodes=12, rounds=3)),
        (search.fixed_ray, dict(rays=5, max_steps=10)),
        (search.modmath, dict(iterations=15)),
        (stencil.stencil2d, dict(width=8, height=6, sweeps=1)),
        (stencil.trisolve, dict(size=10, systems=1)),
        (linalg.transform4, dict(vertices=10)),
        (linalg.gauss_step, dict(n=8, repeats=1)),
        (dots.neural_layer, dict(inputs=16, neurons=4, repeats=1)),
        (dots.correlate, dict(signal=30, window=6, repeats=1)),
        (particles.nbody_forces, dict(particles=6, steps=1)),
        (particles.particle_track, dict(particles=8, turns=3)),
        (particles.spmv, dict(rows=12, nnz_per_row=3, repeats=1)),
        (particles.butterfly, dict(size_log2=5, repeats=1)),
    ])
    def test_every_generator_at_custom_params(self, generator, kwargs):
        cpu = run_kernel(generator(**kwargs))
        assert cpu.output_values


class TestDeterminism:
    @pytest.mark.parametrize("source_fn", [
        lambda: compress.rle_compress(buffer_bytes=128),
        lambda: vm.stack_vm(loop_count=20),
        lambda: particles.butterfly(size_log2=5, repeats=1),
    ])
    def test_generator_source_stable(self, source_fn):
        assert source_fn() == source_fn()
