"""Forensics bundle: spec round-trips and index stability.

The acceptance bar for the bundle is *determinism*: the sampled escape
set — and therefore the written JSONL — must be identical whether the
campaign ran serially, fanned out over workers, or resumed from a
journal.  These tests drive :class:`CampaignExecutor` directly with a
spec list whose escapes are known.
"""

import pytest

from repro.faults import (DirectionFault, FaultSpec, FlagBitFault,
                          OffsetBitFault, Outcome, PipelineConfig,
                          RedirectFault, RegisterFaultSpec)
from repro.faults.executor import CampaignExecutor
from repro.faults.injector import CacheFaultSpec
from repro.forensics import (bundle_path_for, fault_from_json,
                             fault_to_json, read_bundle, spec_from_json,
                             spec_to_json, write_campaign_forensics)

pytestmark = pytest.mark.forensics


class TestSpecRoundTrips:
    @pytest.mark.parametrize("fault", [
        OffsetBitFault(bit=7),
        FlagBitFault(bit=1),
        DirectionFault(taken=None),
        DirectionFault(taken=True),
        RedirectFault(target=0x1040),
    ])
    def test_fault_round_trip(self, fault):
        assert fault_from_json(fault_to_json(fault)) == fault

    @pytest.mark.parametrize("spec", [
        FaultSpec(0x1014, 3, RedirectFault(target=0x1000)),
        RegisterFaultSpec(icount=42, reg=5, bit=12),
        CacheFaultSpec(cache_addr=0x100020, occurrence=2, bit=4,
                       force_taken=True),
    ])
    def test_spec_round_trip(self, spec):
        copy = spec_from_json(spec_to_json(spec))
        assert type(copy) is type(spec)
        assert copy == spec

    def test_unknown_kinds_rejected(self):
        with pytest.raises(ValueError):
            fault_from_json({"kind": "cosmic-ray"})
        with pytest.raises(ValueError):
            spec_from_json({"kind": "cosmic-ray"})


def escape_workload(program):
    """Specs with known outcomes under dbt/no-technique: three SDC
    escapes at campaign indices 1, 2 and 4, padded with benign runs."""
    branch = program.symbols["loop"] + 12
    return [
        FaultSpec(branch, 500, DirectionFault(None)),   # never fires
        FaultSpec(branch, 1, DirectionFault(None)),     # SDC
        FaultSpec(branch, 1, OffsetBitFault(0)),        # SDC
        FaultSpec(branch, 400, FlagBitFault(1)),        # never fires
        FaultSpec(branch, 1, FlagBitFault(1)),          # SDC
    ]


class TestEscapeIndexStability:
    def test_serial_escape_indices(self, sum_loop):
        config = PipelineConfig("dbt", None)
        executor = CampaignExecutor(sum_loop, config, jobs=1,
                                    chunk_size=2)
        records = executor.run_specs(escape_workload(sum_loop))
        escaped = [i for i, r in enumerate(records)
                   if r.outcome in (Outcome.SDC, Outcome.HANG)]
        assert escaped == [1, 2, 4]
        assert [i for i, _ in executor.escape_specs()] == escaped

    def test_parallel_matches_serial(self, sum_loop):
        """--jobs 2 and --jobs 1 must sample the very same escapes."""
        config = PipelineConfig("dbt", None)
        specs = escape_workload(sum_loop)
        serial = CampaignExecutor(sum_loop, config, jobs=1,
                                  chunk_size=2)
        serial.run_specs(specs)
        pooled = CampaignExecutor(sum_loop, config, jobs=2,
                                  chunk_size=2)
        pooled.run_specs(specs)
        assert pooled.escape_specs() == serial.escape_specs()

    def test_resume_recovers_escapes(self, sum_loop, tmp_path):
        """A journal-resumed campaign replays chunks without touching a
        worker pipe; its escapes must still match the fresh run's."""
        config = PipelineConfig("dbt", None)
        specs = escape_workload(sum_loop)
        journal = str(tmp_path / "journal.jsonl")
        fresh = CampaignExecutor(sum_loop, config, jobs=1, chunk_size=2,
                                 journal=journal)
        fresh.run_specs(specs)
        resumed = CampaignExecutor(sum_loop, config, jobs=1,
                                   chunk_size=2, journal=journal,
                                   resume=True)
        resumed.run_specs(specs)
        assert resumed.escape_specs() == fresh.escape_specs()


class TestBundleFile:
    def test_write_and_read_round_trip(self, sum_loop, tmp_path):
        config = PipelineConfig("dbt", None)
        executor = CampaignExecutor(sum_loop, config, jobs=1,
                                    chunk_size=2)
        executor.run_specs(escape_workload(sum_loop))
        path = tmp_path / "forensics.jsonl"
        entries = write_campaign_forensics(
            sum_loop, config, executor.escape_specs(), max_samples=2,
            path=path)
        assert len(entries) == 2           # sampling cap honored
        assert read_bundle(path) == entries
        for entry in entries:
            spec = spec_from_json(entry["spec"])
            assert isinstance(spec, FaultSpec)
            assert entry["outcome"] == "sdc"
            assert entry["attribution"]["reason"]
            assert entry["divergence"]["spec"] == spec.describe()

    def test_parallel_bundle_equals_serial(self, sum_loop, tmp_path):
        """The acceptance criterion: byte-identical bundles for any
        job count."""
        config = PipelineConfig("dbt", None)
        specs = escape_workload(sum_loop)
        bundles = {}
        for jobs in (1, 2):
            executor = CampaignExecutor(sum_loop, config, jobs=jobs,
                                        chunk_size=2)
            executor.run_specs(specs)
            path = tmp_path / f"jobs{jobs}.forensics.jsonl"
            write_campaign_forensics(sum_loop, config,
                                     executor.escape_specs(), path=path)
            bundles[jobs] = path.read_bytes()
        assert bundles[1] == bundles[2]

    def test_bundle_path_is_journal_sibling(self, tmp_path):
        journal = tmp_path / "run" / "campaign.jsonl"
        assert bundle_path_for(journal) == (
            tmp_path / "run" / "campaign.jsonl.forensics.jsonl")
        assert bundle_path_for(None).name == "forensics.jsonl"
