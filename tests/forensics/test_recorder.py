"""Flight-recorder unit tests: hook discipline, events, checkpoints."""

from repro.isa.registers import PCP, RTS
from repro.machine import Cpu, StopReason
from repro.forensics import FlightRecorder


def run_recorded(program, **kwargs) -> tuple[Cpu, FlightRecorder]:
    cpu = Cpu()
    cpu.load_program(program)
    recorder = FlightRecorder(**kwargs)
    recorder.attach(cpu)
    stop = cpu.run(max_steps=100_000)
    assert stop.reason is StopReason.HALTED
    return cpu, recorder


class TestHookDiscipline:
    def test_attach_installs_in_branch_profiler_slot(self, sum_loop):
        cpu = Cpu()
        cpu.load_program(sum_loop)
        assert cpu.branch_profiler is None  # off means free
        recorder = FlightRecorder()
        recorder.attach(cpu)
        assert cpu.branch_profiler is recorder

    def test_detach_restores_previous_occupant(self, sum_loop):
        cpu = Cpu()
        cpu.load_program(sum_loop)
        recorder = FlightRecorder()
        recorder.attach(cpu)
        recorder.detach()
        assert cpu.branch_profiler is None

    def test_chains_existing_profiler(self, sum_loop):
        from repro.machine.profile import BranchProfiler
        cpu = Cpu()
        cpu.load_program(sum_loop)
        profiler = BranchProfiler()
        cpu.branch_profiler = profiler
        recorder = FlightRecorder()
        recorder.attach(cpu)
        cpu.run(max_steps=100_000)
        # both observers saw the same branch stream
        assert len(recorder.events) == sum(
            stats.executions for stats in profiler.branches.values())
        recorder.detach()
        assert cpu.branch_profiler is profiler


class TestEvents:
    def test_records_every_direct_branch(self, sum_loop):
        cpu, recorder = run_recorded(sum_loop, capacity=None)
        # the sum loop executes its jl 10 times (9 taken + 1 fallthrough)
        branch_pc = sum_loop.symbols["loop"] + 12
        at_branch = [e for e in recorder.events if e.pc == branch_pc]
        assert len(at_branch) == 10
        assert sum(e.taken for e in at_branch) == 9

    def test_events_carry_monotonic_icount_and_cycles(self, sum_loop):
        _, recorder = run_recorded(sum_loop, capacity=None)
        events = recorder.event_list()
        icounts = [e.icount for e in events]
        cycles = [e.cycles for e in events]
        assert icounts == sorted(icounts)
        assert cycles == sorted(cycles)

    def test_ring_capacity_bounds_memory(self, sum_loop):
        _, unbounded = run_recorded(sum_loop, capacity=None)
        _, bounded = run_recorded(sum_loop, capacity=4)
        assert len(bounded) == 4
        # the ring keeps the *latest* events
        assert (bounded.event_list()
                == unbounded.event_list()[-4:])


class TestCheckpoints:
    def test_checkpoint_interval(self, sum_loop):
        _, recorder = run_recorded(sum_loop, capacity=None,
                                   checkpoint_interval=3)
        total = len(recorder.events)
        assert len(recorder.checkpoints) == total // 3

    def test_checkpoint_contents(self, sum_loop):
        cpu, recorder = run_recorded(sum_loop, capacity=None,
                                     checkpoint_interval=2,
                                     signature_regs=(PCP, RTS))
        assert recorder.checkpoints
        checkpoint = recorder.checkpoints[-1]
        assert checkpoint.ordinal == len(recorder.checkpoints) - 1
        assert len(checkpoint.regs) == 16
        assert len(checkpoint.signatures) == 2
        assert checkpoint.icount <= cpu.icount

    def test_checkpoint_state_is_a_copy(self, sum_loop):
        """Registers keep mutating after the snapshot; a checkpoint
        must not alias live CPU state."""
        _, recorder = run_recorded(sum_loop, capacity=None,
                                   checkpoint_interval=1)
        first, last = recorder.checkpoints[0], recorder.checkpoints[-1]
        assert first.regs != last.regs  # r1/r2 advanced between them
