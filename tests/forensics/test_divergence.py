"""Golden-divergence analyzer and escape attribution tests."""

import pytest

from repro.checking import Policy
from repro.faults import (DirectionFault, FaultSpec, Outcome,
                          PipelineConfig, RedirectFault,
                          RegisterFaultSpec)
from repro.forensics import (GoldenDivergenceAnalyzer, attribute_escape,
                             explain_spec)
from repro.forensics.attribution import EscapeReason

pytestmark = pytest.mark.forensics


def branch_of(program) -> int:
    return program.symbols["loop"] + 12      # the jl


class TestDetectedRun:
    def test_latency_matches_runrecord(self, sum_loop):
        """The acceptance bar: explain reports the same latency, in
        both instructions and cycles, that the campaign records."""
        config = PipelineConfig("dbt", "rcf", Policy.END)
        spec = FaultSpec(branch_of(sum_loop), 1,
                         RedirectFault(sum_loop.symbols["main"] + 4))
        analyzer = GoldenDivergenceAnalyzer(sum_loop, config)
        record = analyzer.pipeline.run(spec)
        assert record.outcome is Outcome.DETECTED_SIGNATURE
        assert record.detection_latency is not None
        assert record.detection_latency_cycles is not None
        divergence = analyzer.analyze(spec)
        assert divergence.detection_latency == record.detection_latency
        assert (divergence.detection_latency_cycles
                == record.detection_latency_cycles)

    def test_detected_is_not_an_escape(self, sum_loop):
        config = PipelineConfig("dbt", "rcf", Policy.ALLBB)
        spec = FaultSpec(branch_of(sum_loop), 1,
                         RedirectFault(sum_loop.symbols["main"] + 4))
        analyzer = GoldenDivergenceAnalyzer(sum_loop, config)
        divergence = analyzer.analyze(spec)
        attribution = attribute_escape(divergence, config)
        assert attribution.reason is EscapeReason.NOT_AN_ESCAPE


class TestEscapes:
    def test_mistaken_branch_attribution(self, sum_loop):
        """A direction flip with no technique: category A, SDC."""
        config = PipelineConfig("dbt", None)
        spec = FaultSpec(branch_of(sum_loop), 1, DirectionFault(None))
        analyzer = GoldenDivergenceAnalyzer(sum_loop, config)
        divergence = analyzer.analyze(spec)
        assert divergence.outcome is Outcome.SDC
        assert divergence.category.value == "A"
        assert divergence.diverged
        attribution = attribute_escape(divergence, config)
        assert attribution.reason is EscapeReason.MISTAKEN_BRANCH
        assert attribution.detail
        assert attribution.condition_note

    def test_no_check_reached_attribution(self, sum_loop):
        """Redirect into the middle of the exit block under END: the
        run terminates without crossing a single CHECK_SIG — the
        Assumption-2 gap the sparse policies trade on."""
        config = PipelineConfig("dbt", "rcf", Policy.END)
        landing = sum_loop.symbols["loop"] + 20   # skips the output
        spec = FaultSpec(branch_of(sum_loop), 1, RedirectFault(landing))
        analyzer = GoldenDivergenceAnalyzer(sum_loop, config)
        divergence = analyzer.analyze(spec)
        assert divergence.outcome is Outcome.SDC
        assert divergence.checks_crossed == 0
        attribution = attribute_escape(divergence, config)
        assert attribution.reason is EscapeReason.NO_CHECK_REACHED
        assert "Assumption 2" in attribution.condition_note

    def test_data_fault_blindspot(self, sum_loop):
        config = PipelineConfig("dbt", "rcf", Policy.ALLBB)
        analyzer = GoldenDivergenceAnalyzer(sum_loop, config)
        escape = None
        for icount in (12, 20, 28):
            spec = RegisterFaultSpec(icount=icount, reg=1, bit=4)
            divergence = analyzer.analyze(spec)
            if divergence.outcome is Outcome.SDC:
                escape = divergence
                break
        assert escape is not None
        assert escape.injection_site is None      # data, not branch
        attribution = attribute_escape(escape, config)
        assert attribution.reason is EscapeReason.DATA_FAULT_BLINDSPOT


class TestDivergenceGeometry:
    def test_divergence_after_injection(self, sum_loop):
        config = PipelineConfig("dbt", "rcf", Policy.END)
        spec = FaultSpec(branch_of(sum_loop), 2,
                         RedirectFault(sum_loop.symbols["main"] + 4))
        divergence = GoldenDivergenceAnalyzer(sum_loop, config).analyze(
            spec)
        assert divergence.diverged
        assert divergence.fired_icount is not None
        assert divergence.to_stop_instructions >= 0
        if divergence.to_divergence_instructions is not None:
            assert (divergence.to_divergence_instructions
                    <= divergence.to_stop_instructions)

    def test_benign_identical_trace_never_diverges(self, sum_loop):
        """An occurrence past the branch's dynamic count never fires:
        the trace matches the golden run event for event."""
        config = PipelineConfig("dbt", "rcf", Policy.ALLBB)
        spec = FaultSpec(branch_of(sum_loop), 500, DirectionFault(None))
        divergence = GoldenDivergenceAnalyzer(sum_loop, config).analyze(
            spec)
        assert divergence.outcome is Outcome.BENIGN
        assert not divergence.diverged
        assert divergence.fired_icount is None
        attribution = attribute_escape(divergence, config)
        assert attribution.reason is EscapeReason.MASKED_BEFORE_UPDATE

    def test_state_delta_names_corrupted_registers(self, sum_loop):
        """A register fault corrupts state *within* the common trace
        prefix, so a later checkpoint pair disagrees and the delta
        names the register."""
        config = PipelineConfig("dbt", None)
        spec = RegisterFaultSpec(icount=5, reg=1, bit=4)
        analyzer = GoldenDivergenceAnalyzer(sum_loop, config,
                                            checkpoint_interval=1)
        divergence = analyzer.analyze(spec)
        assert divergence.state_delta is not None
        names = [name for name, _, _ in divergence.state_delta.regs]
        assert "r1" in names


class TestExplainRendering:
    def test_report_has_all_required_sections(self, sum_loop):
        """Acceptance: injection site, first divergent block, landing
        category, state delta, crossed-but-silent check sites."""
        config = PipelineConfig("dbt", "rcf", Policy.END)
        spec = FaultSpec(branch_of(sum_loop), 1,
                         RedirectFault(sum_loop.symbols["main"] + 4))
        _, _, text = explain_spec(sum_loop, config, spec)
        assert "injected" in text
        assert "diverged" in text
        assert "category" in text
        assert "checks crossed without firing" in text
        assert "escape attribution" in text
        assert "disassembly around injection site" in text
        assert f"{branch_of(sum_loop):#x}" in text

    def test_detected_report_shows_both_latency_units(self, sum_loop):
        config = PipelineConfig("dbt", "rcf", Policy.END)
        spec = FaultSpec(branch_of(sum_loop), 1,
                         RedirectFault(sum_loop.symbols["main"] + 4))
        divergence, _, text = explain_spec(sum_loop, config, spec)
        assert (f"{divergence.detection_latency} instructions"
                in text)
        assert (f"{divergence.detection_latency_cycles} cycles"
                in text)
