"""The recovery oracle: every detected single-bit branch-offset fault
on a generated program must end RECOVERED with a run digest
byte-identical to the uninstrumented golden run — on both backends."""

import pytest

from repro.fuzz.generator import FuzzKnobs, generate_source
from repro.fuzz.oracle import check_recovery, run_oracles
from repro.isa import assemble


@pytest.fixture(scope="module")
def tiny_program():
    return assemble(generate_source(7, FuzzKnobs.tiny()),
                    name="fuzz-tiny-7")


@pytest.mark.parametrize("backend", ["interp", "block"])
@pytest.mark.parametrize("technique", ["rcf", "edgcf"])
def test_detected_faults_all_recover(tiny_program, technique, backend):
    failures, runs = check_recovery(tiny_program, technique,
                                    backend=backend, max_sites=6)
    assert runs > 0
    assert failures == []


def test_run_oracles_recovery_lane(tiny_program):
    report = run_oracles(tiny_program, detect=True, recover=True,
                         max_sites=4)
    assert report.recovery_runs > 0
    assert report.recovery == []
    assert report.ok
