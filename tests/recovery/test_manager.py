"""RecoveryManager behaviour: retry budget, escalation, watchdog,
interval adaptation.  These tests drive the manager directly with a
scripted ``classify`` — the campaign-integration tests cover the real
detection paths."""

import pytest

from repro.exec import install_backend
from repro.isa import assemble
from repro.machine import Cpu
from repro.machine.faults import StopReason
from repro.recovery import MIN_INTERVAL, RecoveryManager

LONG_LOOP_SRC = """
.entry main
main:
    movi r1, 0
    movi r2, 1
loop:
    add r1, r1, r2
    addi r2, r2, 1
    cmpi r2, 2001
    jl loop
    syscall 4
    movi r1, 0
    syscall 0
"""

HANG_SRC = """
.entry main
main:
    movi r1, 0
spin:
    addi r1, r1, 1
    jmp spin
"""


def _cpu(program, backend="interp"):
    cpu = Cpu()
    install_backend(cpu, backend)
    cpu.load_program(program, executable_text=True)
    return cpu


def _classify_scripted(cpu, detect_at, budget_holder):
    """Detect once per icount threshold in ``detect_at`` (consumed in
    order); otherwise halt -> done, budget stops -> limit."""

    def classify(stop):
        if detect_at and cpu.icount >= detect_at[0]:
            detect_at.pop(0)
            return "detected"
        if stop.reason is StopReason.HALTED:
            return "done"
        return "limit"

    return classify


class TestRollbackAndEscalation:
    @pytest.mark.parametrize("backend", ["interp", "block"])
    def test_single_rollback_completes(self, sum_loop, backend):
        golden = _cpu(sum_loop, backend)
        golden.run(max_steps=100_000)

        cpu = _cpu(sum_loop, backend)
        detect_at = [20]
        manager = RecoveryManager(
            cpu, step=lambda n: cpu.run(max_steps=n),
            classify=_classify_scripted(cpu, detect_at, None),
            budget=100_000, interval=8)
        stop = manager.execute()
        assert stop.reason is StopReason.HALTED
        assert cpu.output == golden.output
        assert cpu.icount == golden.icount
        report = manager.report
        assert report.triggers == 1
        assert report.attempts == 1
        assert report.rollback_icount > 0
        assert report.reexec_cycles > 0
        assert not report.gave_up
        # First rollback goes to the newest mid-run checkpoint, not
        # all the way back to entry.
        kinds = [e["event"] for e in report.events]
        assert kinds == ["detected", "rollback"]
        assert cpu.memory.cow is None   # disarmed on exit

    def test_redetection_escalates_to_entry(self, sum_loop):
        cpu = _cpu(sum_loop, "interp")
        detect_at = [20, 20]   # fires again right after the rollback
        manager = RecoveryManager(
            cpu, step=lambda n: cpu.run(max_steps=n),
            classify=_classify_scripted(cpu, detect_at, None),
            budget=100_000, interval=8)
        stop = manager.execute()
        assert stop.reason is StopReason.HALTED
        assert cpu.output_values == [55]
        report = manager.report
        assert report.attempts == 2
        assert report.restarts == 1
        events = [e["event"] for e in report.events]
        assert events == ["detected", "rollback", "detected", "restart"]
        restart = report.events[-1]
        assert restart["target"] == 0
        assert restart["target_icount"] == 0

    def test_retry_budget_gives_up(self, sum_loop):
        cpu = _cpu(sum_loop, "interp")
        detect_at = [20] * 10   # incurable
        manager = RecoveryManager(
            cpu, step=lambda n: cpu.run(max_steps=n),
            classify=_classify_scripted(cpu, detect_at, None),
            budget=100_000, interval=8, max_retries=2)
        stop = manager.execute()
        assert stop is not None
        report = manager.report
        assert report.gave_up
        assert report.attempts == 2       # bounded by max_retries
        assert report.triggers == 3       # the third trigger gave up
        assert report.events[-1]["event"] == "gave-up"


class TestWatchdog:
    def test_hang_trips_watchdog_then_gives_up(self):
        program = assemble(HANG_SRC)
        cpu = _cpu(program, "interp")

        def classify(stop):
            if stop.reason is StopReason.HALTED:
                return "done"
            return "limit"

        manager = RecoveryManager(
            cpu, step=lambda n: cpu.run(max_steps=n),
            classify=classify, budget=200, interval=64, max_retries=2)
        stop = manager.execute()
        assert stop.reason is StopReason.STEP_LIMIT
        report = manager.report
        assert report.gave_up
        triggers = [e for e in report.events
                    if e["event"] == "watchdog"]
        assert len(triggers) == 3
        # Every re-execution got a fresh budget from its rollback
        # target, so the run retired more instructions than one
        # budget's worth in total.
        assert cpu.icount <= 200 * 3


class TestIntervalAdaptation:
    def test_interval_grows_over_clean_run(self):
        program = assemble(LONG_LOOP_SRC)
        cpu = _cpu(program, "interp")

        def classify(stop):
            return ("done" if stop.reason is StopReason.HALTED
                    else "limit")

        manager = RecoveryManager(
            cpu, step=lambda n: cpu.run(max_steps=n),
            classify=classify, budget=1_000_000, interval=MIN_INTERVAL)
        stop = manager.execute()
        assert stop.reason is StopReason.HALTED
        report = manager.report
        assert report.triggers == 0
        # Growth: far fewer checkpoints than icount/MIN_INTERVAL, but
        # the run was still segmented.
        naive = cpu.icount // MIN_INTERVAL
        assert 0 < report.checkpoints < naive // 2

    def test_checkpoint_chain_is_bounded(self):
        program = assemble(LONG_LOOP_SRC)
        cpu = _cpu(program, "interp")
        manager = RecoveryManager(
            cpu, step=lambda n: cpu.run(max_steps=n),
            classify=lambda stop: (
                "done" if stop.reason is StopReason.HALTED else "limit"),
            budget=1_000_000, interval=MIN_INTERVAL, max_live=4)
        manager.execute()
        assert len(manager.checkpoints) <= 4
