"""Checkpoint capture/restore identity across both execution backends.

The contract under test: restoring a checkpoint puts the machine in a
state byte-identical to the one captured — registers, FLAGS, counters,
every architectural memory byte below RECOVERABLE_BOUND, and the
externally visible output logs — on the interpreter *and* on the
block-compiling backend (including a rollback that lands inside an
already-compiled loop closure), and restores fire the write watchers
so stale compiled/decoded state is invalidated.
"""

import pytest

from repro.exec import install_backend
from repro.isa import assemble
from repro.machine import Cpu
from repro.machine.memory import PAGE_SHIFT, PAGE_SIZE
from repro.recovery import (RECOVERABLE_BOUND, capture_checkpoint,
                            prune_checkpoints, restore_checkpoint)

BACKENDS = ["interp", "block"]


def _fresh_cpu(program, backend):
    cpu = Cpu()
    install_backend(cpu, backend)
    cpu.load_program(program, executable_text=True)
    cpu.memory.cow = {}
    cpu.memory.cow_bound = RECOVERABLE_BOUND
    return cpu


def _state(cpu):
    """Everything a checkpoint promises to restore."""
    return (cpu.pc, cpu.icount, cpu.cycles, tuple(cpu.regs), cpu.flags,
            cpu.exit_code, list(cpu.output), list(cpu.output_values),
            bytes(cpu.memory.data[:RECOVERABLE_BOUND]))


class TestCopyOnWrite:
    def test_preimage_captured_once_per_page(self, sum_loop):
        cpu = _fresh_cpu(sum_loop, "interp")
        addr = sum_loop.data_base
        page = addr >> PAGE_SHIFT
        original = bytes(cpu.memory.data[page << PAGE_SHIFT:
                                         (page << PAGE_SHIFT) + PAGE_SIZE])
        cpu.memory.store_word(addr, 0xDEAD)
        cpu.memory.store_word(addr + 4, 0xBEEF)
        assert set(cpu.memory.cow) == {page}
        assert cpu.memory.cow[page] == original

    def test_writes_above_bound_not_journalled(self, sum_loop):
        cpu = _fresh_cpu(sum_loop, "interp")
        cpu.memory.write_raw(RECOVERABLE_BOUND + 64, b"\x01\x02")
        assert cpu.memory.cow == {}

    def test_cow_disabled_by_default(self, sum_loop):
        cpu = Cpu()
        cpu.load_program(sum_loop)
        assert cpu.memory.cow is None
        cpu.memory.store_word(sum_loop.data_base, 7)  # must not raise


@pytest.mark.parametrize("backend", BACKENDS)
class TestRestoreIdentity:
    def test_mid_run_roundtrip(self, sum_loop, backend):
        cpu = _fresh_cpu(sum_loop, backend)
        cpu.run(max_steps=10)
        checkpoints = [capture_checkpoint(cpu, ordinal=0)]
        saved = _state(cpu)
        cpu.run(max_steps=20)
        assert _state(cpu) != saved
        restore_checkpoint(cpu, checkpoints, 0)
        assert _state(cpu) == saved

    def test_resume_after_restore_matches_golden(self, sum_loop,
                                                 backend):
        golden = _fresh_cpu(sum_loop, backend)
        golden.run(max_steps=100_000)

        cpu = _fresh_cpu(sum_loop, backend)
        # Land mid-trace, inside iterations of the (compiled) loop.
        cpu.run(max_steps=15)
        checkpoints = [capture_checkpoint(cpu, ordinal=0)]
        cpu.run(max_steps=9)   # further into the loop closure
        restore_checkpoint(cpu, checkpoints, 0)
        stop = cpu.run(max_steps=100_000)
        assert stop.reason.value == "halted"
        assert cpu.output == golden.output
        assert cpu.output_values == golden.output_values
        assert cpu.icount == golden.icount
        assert cpu.cycles == golden.cycles
        assert (bytes(cpu.memory.data[:RECOVERABLE_BOUND])
                == bytes(golden.memory.data[:RECOVERABLE_BOUND]))

    def test_output_truncated_to_checkpoint(self, sum_loop, backend):
        cpu = _fresh_cpu(sum_loop, backend)
        cpu.syscall_trace = []
        checkpoints = [capture_checkpoint(cpu, ordinal=0)]
        cpu.run(max_steps=100_000)
        assert cpu.output_values == [55]
        restore_checkpoint(cpu, checkpoints, 0)
        assert cpu.output == []
        assert cpu.output_values == []
        assert cpu.syscall_trace == []


class TestMergeOrder:
    """A page dirtied across several intervals must come back as the
    value it held at the *target* checkpoint (oldest pre-image wins)."""

    @pytest.fixture(autouse=True)
    def _cpu(self, sum_loop):
        self.cpu = _fresh_cpu(sum_loop, "interp")
        self.addr = sum_loop.data_base

    def _value(self):
        return self.cpu.memory.load_word(self.addr)

    def test_restore_middle_then_entry(self):
        cpu = self.cpu
        cpu.memory.store_word(self.addr, 0xA)
        chain = [capture_checkpoint(cpu, 0)]
        cpu.memory.store_word(self.addr, 0xB)
        chain.append(capture_checkpoint(cpu, 1))
        cpu.memory.store_word(self.addr, 0xC)
        chain.append(capture_checkpoint(cpu, 2))
        cpu.memory.store_word(self.addr, 0xD)

        restore_checkpoint(cpu, chain, 1)
        assert self._value() == 0xB      # value held at checkpoint 1
        assert len(chain) == 2           # later checkpoints dropped

        cpu.memory.store_word(self.addr, 0xE)
        restore_checkpoint(cpu, chain, 0)
        assert self._value() == 0xA      # value held at checkpoint 0

    def test_prune_preserves_entry_restore(self):
        cpu = self.cpu
        original = self._value()
        chain = [capture_checkpoint(cpu, 0)]
        for ordinal in range(1, 8):
            cpu.memory.store_word(self.addr, ordinal)
            chain.append(capture_checkpoint(cpu, ordinal))
        prune_checkpoints(chain, max_live=3)
        assert len(chain) == 3
        restore_checkpoint(cpu, chain, 0)
        assert self._value() == original


# Patches its own code inside a loop, so under the DBT the patched
# block is translated, executed, invalidated, and retranslated.
SMC_LOOP_SRC = """
.entry main
main:
    movi r5, 0
again:
    cmpi r5, 1
    jnz skip_patch
    const r1, site
    const r2, 0x21100063      ; movi r2, 99
    st r2, r1, 0
skip_patch:
site:
    movi r2, 1
    mov r1, r2
    syscall 4
    addi r5, r5, 1
    cmpi r5, 3
    jl again
    movi r1, 0
    syscall 0
"""


@pytest.mark.parametrize("backend", BACKENDS)
class TestSelfModifiedPages:
    """Text pages dirtied by guest stores roll back like data pages,
    and the restore invalidates whatever was compiled from them."""

    def _smc_cpu(self, program, backend):
        from repro.machine.memory import PERM_RWX
        cpu = _fresh_cpu(program, backend)
        cpu.memory.set_perms(program.text_base, len(program.text),
                             PERM_RWX)
        return cpu

    def test_rollback_unpatches_code(self, backend):
        program = assemble(SMC_LOOP_SRC)
        golden = self._smc_cpu(program, backend)
        golden.run(max_steps=100_000)

        cpu = self._smc_cpu(program, backend)
        checkpoints = [capture_checkpoint(cpu, ordinal=0)]
        cpu.run(max_steps=100_000)
        site = program.symbols["site"]
        assert cpu.memory.load_word(site) == 0x21100063  # patched
        restore_checkpoint(cpu, checkpoints, 0)
        assert cpu.memory.load_word(site) != 0x21100063  # unpatched
        stop = cpu.run(max_steps=100_000)
        assert stop.reason.value == "halted"
        assert cpu.output_values == golden.output_values
        assert cpu.icount == golden.icount
