"""Recovery through the campaign engine: outcomes, accounting,
journal persistence, parallel/resume determinism, and the reporting
surfaces (stats section, explain timeline, escape attribution)."""

import pytest

from repro.checking import Policy
from repro.faults import (CampaignExecutor, CampaignResult, Category,
                          FaultSpec, Outcome, OffsetBitFault, Pipeline,
                          PipelineConfig, RedirectFault)
from repro.faults.cache import config_key
from repro.faults.journal import (record_from_json, record_to_json,
                                  spec_digest)
from repro.faults.campaign import RunRecord

BACKENDS = ["interp", "block"]


def _loop_branch(program):
    return program.symbols["loop"] + 12      # the jl back-edge


def _spec(program, bit=3, occurrence=1, persistent=False):
    return FaultSpec(_loop_branch(program), occurrence,
                     OffsetBitFault(bit=bit), persistent=persistent)


def _config(recover=True, technique="rcf", pipeline="dbt", **kw):
    return PipelineConfig(pipeline, technique, Policy("allbb"),
                          recover=recover,
                          checkpoint_interval=kw.pop("interval", 32),
                          **kw)


class TestPipelineRecovery:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dbt_detection_becomes_recovered(self, sum_loop, backend):
        pipeline = Pipeline(sum_loop, _config(backend=backend))
        golden = pipeline.run(None)
        record = pipeline.run(_spec(sum_loop))
        assert record.outcome is Outcome.RECOVERED
        assert record.outputs == golden.outputs
        assert record.attempts >= 1
        assert record.rollback_distance_icount > 0
        assert record.reexec_cycles > 0
        assert record.detection_latency is None   # not meaningful here

    def test_static_detection_becomes_recovered(self, sum_loop):
        pipeline = Pipeline(
            sum_loop, _config(technique="cfcss", pipeline="static"))
        golden = pipeline.run(None)
        record = pipeline.run(_spec(sum_loop, bit=5))
        assert record.outcome is Outcome.RECOVERED
        assert record.outputs == golden.outputs

    def test_native_hardware_fault_recovered(self, sum_loop):
        # A redirect into the data region NX-faults; the transient
        # fault does not re-fire after rollback, so re-execution is
        # clean.
        config = PipelineConfig("native", None, recover=True,
                                checkpoint_interval=32)
        pipeline = Pipeline(sum_loop, config)
        golden = pipeline.run(None)
        spec = FaultSpec(_loop_branch(sum_loop), 2,
                         RedirectFault(sum_loop.data_base))
        record = pipeline.run(spec)
        assert record.outcome is Outcome.RECOVERED
        assert record.outputs == golden.outputs

    def test_persistent_fault_exhausts_retries(self, sum_loop):
        config = _config(max_retries=2)
        pipeline = Pipeline(sum_loop, config)
        record = pipeline.run(_spec(sum_loop, persistent=True))
        assert record.outcome is Outcome.RECOVERY_FAILED
        assert record.attempts == 2

    def test_recovery_off_is_unchanged(self, sum_loop):
        pipeline = Pipeline(sum_loop, PipelineConfig("dbt", "rcf"))
        record = pipeline.run(_spec(sum_loop))
        assert record.outcome in (Outcome.DETECTED_SIGNATURE,
                                  Outcome.DETECTED_HARDWARE)
        assert record.attempts == 0
        assert record.rollback_distance_icount is None


class TestDeterminism:
    """serial == parallel == resumed, with recovery accounting."""

    def _specs(self, program):
        return [_spec(program, bit=bit, occurrence=2)
                for bit in range(1, 6)]

    def _tally(self, records):
        return [(r.outcome, r.attempts, r.rollback_distance_icount,
                 r.reexec_cycles, r.outputs) for r in records]

    def test_serial_equals_parallel(self, sum_loop):
        config = _config()
        serial = CampaignExecutor(sum_loop, config, jobs=1).run_specs(
            self._specs(sum_loop))
        parallel = CampaignExecutor(sum_loop, config, jobs=2).run_specs(
            self._specs(sum_loop))
        assert self._tally(serial) == self._tally(parallel)
        assert any(r.outcome is Outcome.RECOVERED for r in serial)

    def test_resume_is_byte_identical(self, sum_loop, tmp_path):
        journal = str(tmp_path / "campaign.jsonl")
        config = _config()
        first = CampaignExecutor(sum_loop, config, jobs=1,
                                 journal=journal).run_specs(
            self._specs(sum_loop))
        resumed = CampaignExecutor(sum_loop, config, jobs=1,
                                   journal=journal,
                                   resume=True).run_specs(
            self._specs(sum_loop))
        assert resumed == first

    def test_failed_recovery_is_an_escape(self, sum_loop):
        config = _config(max_retries=1)
        executor = CampaignExecutor(sum_loop, config, jobs=1)
        spec = _spec(sum_loop, persistent=True)
        records = executor.run_specs([spec])
        assert records[0].outcome is Outcome.RECOVERY_FAILED
        assert executor.escape_specs() == [(0, spec)]


class TestJournalFormat:
    def test_recovery_fields_roundtrip(self):
        record = RunRecord(outcome=Outcome.RECOVERED,
                           stop_reason="halted at pc=0x1 exit=0",
                           outputs=(("55",), (55,)),
                           cycles=10, icount=5, attempts=2,
                           rollback_distance_icount=40,
                           reexec_cycles=80)
        assert record_from_json(record_to_json(record)) == record

    def test_untouched_records_keep_legacy_shape(self):
        record = RunRecord(outcome=Outcome.BENIGN,
                           stop_reason="halted at pc=0x1 exit=0",
                           outputs=(("55",), (55,)),
                           cycles=10, icount=5)
        data = record_to_json(record)
        assert "attempts" not in data and "rollback" not in data
        assert record_from_json(data) == record

    def test_pre_recovery_journal_line_loads(self):
        # A record dict exactly as written before the recovery
        # subsystem existed.
        data = {"outcome": "sdc", "stop": "halted at pc=0x1 exit=0",
                "out": [["54"], [54]], "cycles": 9, "icount": 4,
                "latency": None, "latency_cycles": None, "error": None}
        record = record_from_json(data)
        assert record.attempts == 0
        assert record.rollback_distance_icount is None

    def test_config_key_compat(self, sum_loop):
        plain = PipelineConfig("dbt", "rcf")
        assert config_key(plain) == ("dbt", "rcf", "allbb", "jcc",
                                     False, "interp")
        recovering = _config(interval=128, max_retries=2)
        assert config_key(recovering) == ("dbt", "rcf", "allbb", "jcc",
                                          False, "interp", "rec", 128, 2)

    def test_spec_digest_ignores_default_persistent(self, sum_loop):
        # FaultSpec reprs (and so journal spec digests) are unchanged
        # for specs that never set the new field.
        transient = _spec(sum_loop)
        assert "persistent" not in repr(transient)
        assert spec_digest(transient) == spec_digest(_spec(sum_loop))
        assert spec_digest(_spec(sum_loop, persistent=True)) \
            != spec_digest(transient)


class TestTallies:
    def test_detection_rate_counts_recovery_outcomes(self):
        result = CampaignResult(config_label="dbt/rcf/allbb+rec")
        result.record(Category.F, Outcome.RECOVERED)
        result.record(Category.F, Outcome.RECOVERY_FAILED)
        result.record(Category.F, Outcome.SDC)
        result.record(Category.F, Outcome.BENIGN)
        assert result.detection_rate(Category.F) == pytest.approx(2 / 3)


class TestReporting:
    def test_stats_recovery_section(self):
        from repro.obs.exporters import _recovery_section
        snapshot = {
            "counters": [
                {"name": "campaign_recovery_total",
                 "labels": {"technique": "rcf", "policy": "allbb",
                            "result": "recovered"}, "value": 3},
                {"name": "campaign_recovery_total",
                 "labels": {"technique": "rcf", "policy": "allbb",
                            "result": "failed"}, "value": 1},
                {"name": "recovery_checkpoints_total", "labels": {},
                 "value": 12},
                {"name": "recovery_capture_seconds_total", "labels": {},
                 "value": 0.0012},
                {"name": "recovery_pages_preserved_total", "labels": {},
                 "value": 5},
            ],
            "histograms": [
                {"name": "campaign_rollback_distance_instructions",
                 "labels": {"policy": "allbb"}, "count": 4, "sum": 100,
                 "buckets": [[10, 4]]},
            ],
        }
        text = _recovery_section(snapshot)
        assert "Recovery outcomes" in text
        assert "75.0%" in text
        assert "Rollback distance" in text
        assert "12 checkpoint(s)" in text

    def test_stats_section_absent_without_recovery(self):
        from repro.obs.exporters import _recovery_section
        assert _recovery_section({"counters": [], "histograms": []}) \
            is None

    def test_explain_annotates_recovered_run(self, sum_loop):
        from repro.forensics import explain_spec
        divergence, attribution, text = explain_spec(
            sum_loop, _config(), _spec(sum_loop))
        assert divergence.outcome is Outcome.RECOVERED
        assert divergence.recovery is not None
        assert divergence.recovery["attempts"] >= 1
        assert "recovery (interval" in text
        assert "survived" in text
        assert attribution.reason.value == "not-an-escape"

    def test_explain_attributes_failed_recovery(self, sum_loop):
        from repro.forensics import explain_spec
        divergence, attribution, text = explain_spec(
            sum_loop, _config(max_retries=1),
            _spec(sum_loop, persistent=True))
        assert divergence.outcome is Outcome.RECOVERY_FAILED
        assert attribution.reason.value == "recovery-exhausted"
        assert "not recovered" in text

    def test_bundle_roundtrips_recovery(self, sum_loop, tmp_path):
        from repro.forensics import write_campaign_forensics, read_bundle
        path = tmp_path / "bundle.jsonl"
        config = _config(max_retries=1)
        entries = write_campaign_forensics(
            sum_loop, config, [(0, _spec(sum_loop, persistent=True))],
            max_samples=1, path=path)
        assert entries
        loaded = read_bundle(path)
        assert loaded[0]["divergence"]["recovery"]["attempts"] == 1
        assert loaded[0]["attribution"]["reason"] == "recovery-exhausted"
