"""Control flow: branches, calls, stack, and the cycle model."""

from repro.isa import assemble
from repro.isa.program import STACK_TOP
from repro.machine import Cpu, StopReason, run_native


def run_src(source: str, max_steps: int = 100_000):
    cpu = Cpu()
    cpu.load_program(assemble(source))
    stop = cpu.run(max_steps=max_steps)
    return cpu, stop


class TestBranches:
    def test_jmp_skips(self):
        cpu, stop = run_src("jmp over\nmovi r1, 1\nover: halt")
        assert cpu.regs[1] == 0

    def test_conditional_taken(self):
        cpu, stop = run_src(
            "movi r1, 5\ncmpi r1, 5\njz hit\nmovi r2, 1\nhit: halt")
        assert cpu.regs[2] == 0

    def test_conditional_not_taken(self):
        cpu, stop = run_src(
            "movi r1, 5\ncmpi r1, 6\njz miss\nmovi r2, 1\nmiss: halt")
        assert cpu.regs[2] == 1

    def test_jrz_jrnz_flagless(self):
        cpu, stop = run_src(
            "movi r1, 0\ncmpi r1, 9\n"     # flags: not equal
            "jrz r1, a\nmovi r2, 1\n"
            "a: movi r3, 1\njrnz r3, b\nmovi r4, 1\nb: halt")
        assert cpu.regs[2] == 0   # jrz taken (r1 == 0)
        assert cpu.regs[4] == 0   # jrnz taken (r3 != 0)

    def test_loop_iterates(self):
        cpu, stop = run_src("""
            movi r1, 0
        top:
            addi r1, r1, 1
            cmpi r1, 5
            jl top
            halt
        """)
        assert cpu.regs[1] == 5

    def test_taken_branch_costs_extra(self):
        _, stop1 = run_src("movi r1, 1\ncmpi r1, 2\njz x\nx: halt")
        cpu_nt = Cpu(); cpu_nt.load_program(
            assemble("movi r1, 1\ncmpi r1, 2\njz x\nx: halt"))
        cpu_nt.run()
        cpu_t = Cpu(); cpu_t.load_program(
            assemble("movi r1, 2\ncmpi r1, 2\njz x\nx: halt"))
        cpu_t.run()
        assert cpu_t.cycles == cpu_nt.cycles + 1


class TestCallsAndStack:
    def test_call_ret(self, call_program):
        cpu, stop = run_native(call_program)
        assert stop.reason is StopReason.HALTED
        assert cpu.output_values == [25]

    def test_call_pushes_return_address(self):
        cpu, stop = run_src("""
            call f
            halt
        f:
            ld r1, sp, 0
            ret
        """)
        assert cpu.regs[1] == cpu.memory.size * 0 + 0x1004

    def test_nested_calls(self):
        cpu, stop = run_src("""
            movi r1, 1
            call a
            halt
        a:
            addi r1, r1, 10
            call b
            ret
        b:
            addi r1, r1, 100
            ret
        """)
        assert cpu.regs[1] == 111

    def test_push_pop(self):
        cpu, stop = run_src(
            "movi r1, 77\npush r1\nmovi r1, 0\npop r2\nhalt")
        assert cpu.regs[2] == 77
        assert cpu.regs[15] == STACK_TOP - 16

    def test_indirect_jump(self):
        cpu, stop = run_src("""
            const r1, target
            jmpr r1
            movi r2, 1
        target: halt
        """)
        assert cpu.regs[2] == 0

    def test_indirect_call(self):
        cpu, stop = run_src("""
            const r1, f
            callr r1
            halt
        f:
            movi r2, 9
            ret
        """)
        assert cpu.regs[2] == 9

    def test_jump_table(self):
        cpu, stop = run_src("""
        .data
        .align 4
        table: .word c0, c1, c2
        .text
        .entry main
        main:
            movi r1, 1
            shli r1, r1, 2
            const r2, table
            lea3 r2, r2, r1
            ld r3, r2, 0
            jmpr r3
        c0: movi r4, 100
            halt
        c1: movi r4, 200
            halt
        c2: movi r4, 300
            halt
        """)
        assert cpu.regs[4] == 200


class TestRunLimits:
    def test_step_limit(self):
        cpu, stop = run_src("spin: jmp spin", max_steps=100)
        assert stop.reason is StopReason.STEP_LIMIT

    def test_cycle_limit(self):
        cpu = Cpu()
        cpu.load_program(assemble("spin: jmp spin"))
        stop = cpu.run(max_cycles=50)
        assert stop.reason is StopReason.CYCLE_LIMIT

    def test_step_api(self):
        cpu = Cpu()
        cpu.load_program(assemble("movi r1, 3\nhalt"))
        assert cpu.step() is None
        assert cpu.regs[1] == 3
        stop = cpu.step()
        assert stop is not None and stop.reason is StopReason.HALTED

    def test_icount_and_cycles_track(self, sum_loop):
        cpu, stop = run_native(sum_loop)
        assert cpu.icount > 0
        assert cpu.cycles >= cpu.icount
