"""Memory: permissions, faults, watches — the hardware protection
substrate the paper's category-F detection relies on."""

import pytest

from repro.isa import assemble
from repro.machine import (Cpu, FaultKind, Memory, PERM_R, PERM_RW,
                           PERM_RX, PERM_X, StopReason)
from repro.machine.faults import MachineError
from repro.machine.memory import PAGE_SIZE, AccessFault


class TestPermissions:
    def test_default_no_access(self):
        mem = Memory(PAGE_SIZE * 4)
        with pytest.raises(AccessFault) as info:
            mem.load_word(0)
        assert info.value.kind is FaultKind.BAD_ACCESS

    def test_read_only_blocks_write(self):
        mem = Memory(PAGE_SIZE * 4)
        mem.set_perms(0, PAGE_SIZE, PERM_R)
        assert mem.load_word(0) == 0
        with pytest.raises(AccessFault) as info:
            mem.store_word(0, 1)
        assert info.value.kind is FaultKind.WRITE_PROTECT

    def test_execute_disable(self):
        mem = Memory(PAGE_SIZE * 4)
        mem.set_perms(0, PAGE_SIZE, PERM_RW)
        with pytest.raises(AccessFault) as info:
            mem.fetch_word(0)
        assert info.value.kind is FaultKind.NX_VIOLATION

    def test_rx_allows_fetch(self):
        mem = Memory(PAGE_SIZE * 4)
        mem.set_perms(0, PAGE_SIZE, PERM_RX)
        assert mem.fetch_word(0) == 0

    def test_perms_page_granular(self):
        mem = Memory(PAGE_SIZE * 4)
        mem.set_perms(0, PAGE_SIZE, PERM_RW)
        mem.store_word(PAGE_SIZE - 4, 7)     # same page: ok
        with pytest.raises(AccessFault):
            mem.store_word(PAGE_SIZE, 7)     # next page: no access

    def test_region_outside_memory_rejected(self):
        mem = Memory(PAGE_SIZE)
        with pytest.raises(MachineError):
            mem.set_perms(0, PAGE_SIZE * 2, PERM_RW)


class TestAlignment:
    def test_unaligned_word_load(self):
        mem = Memory(PAGE_SIZE)
        mem.set_perms(0, PAGE_SIZE, PERM_RW)
        with pytest.raises(AccessFault) as info:
            mem.load_word(2)
        assert info.value.kind is FaultKind.UNALIGNED

    def test_byte_access_any_alignment(self):
        mem = Memory(PAGE_SIZE)
        mem.set_perms(0, PAGE_SIZE, PERM_RW)
        mem.store_byte(3, 0xAB)
        assert mem.load_byte(3) == 0xAB


class TestRawAccess:
    def test_raw_ignores_permissions(self):
        mem = Memory(PAGE_SIZE)
        mem.write_raw(0, b"\x01\x02")
        assert mem.read_raw(0, 2) == b"\x01\x02"

    def test_write_watch_fires(self):
        mem = Memory(PAGE_SIZE)
        mem.set_perms(0, PAGE_SIZE, PERM_RW)
        seen = []
        mem.write_watch = lambda addr, length: seen.append((addr, length))
        mem.store_word(8, 1)
        mem.write_raw(16, b"xy")
        assert seen == [(8, 4), (16, 2)]

    def test_cstring(self):
        mem = Memory(PAGE_SIZE)
        mem.set_perms(0, PAGE_SIZE, PERM_RW)
        mem.write_raw(0, b"hello\x00world")
        assert mem.read_cstring(0) == b"hello"


class TestHardwareDetection:
    """End-to-end: the machine catches wild control flow."""

    def test_jump_to_data_is_nx_fault(self):
        cpu = Cpu()
        cpu.load_program(assemble(
            ".data\nbuf: .word 1\n.text\nconst r1, buf\njmpr r1"))
        stop = cpu.run()
        assert stop.reason is StopReason.FAULT
        assert stop.fault is FaultKind.NX_VIOLATION

    def test_jump_to_unmapped_is_fault(self):
        cpu = Cpu()
        cpu.load_program(assemble("movi r1, 0x100\njmpr r1"))
        stop = cpu.run()
        assert stop.reason is StopReason.FAULT

    def test_unaligned_pc_is_fault(self):
        cpu = Cpu()
        cpu.load_program(assemble("movi r1, 0x1001\njmpr r1"))
        stop = cpu.run()
        assert stop.reason is StopReason.FAULT
        assert stop.fault is FaultKind.UNALIGNED

    def test_executing_zeroed_memory_is_illegal(self):
        # Fall off the end of text into the rest of the RX page.
        cpu = Cpu()
        cpu.load_program(assemble("movi r1, 1"))  # no halt
        stop = cpu.run()
        assert stop.reason is StopReason.FAULT
        assert stop.fault is FaultKind.ILLEGAL_INSTRUCTION

    def test_store_to_text_page_write_protected(self):
        cpu = Cpu()
        program = assemble("const r1, main\nmovi r2, 0\nst r2, r1, 0\n"
                           "main: halt")
        cpu.load_program(program)
        # native loading marks text RX (no W)
        stop = cpu.run()
        assert stop.reason is StopReason.FAULT
        assert stop.fault is FaultKind.WRITE_PROTECT

    def test_decode_cache_invalidated_on_write(self):
        """Self-modifying code executes the *new* bytes."""
        source = """
        .entry main
        main:
            const r1, patch_site
            const r2, 0x21080007    ; movi r1, 7
            st r2, r1, 0
        patch_site:
            movi r1, 1
            halt
        """
        cpu = Cpu()
        program = assemble(source)
        cpu.load_program(program)
        # make text writable to allow the patch (native SMC scenario)
        cpu.memory.set_perms(program.text_base, len(program.text),
                             PERM_RW | PERM_X)
        stop = cpu.run()
        assert stop.reason is StopReason.HALTED
        assert cpu.regs[1] == 7
