"""Decode-cache invalidation under self-modifying code.

The interpreter caches decoded instructions per word address and
invalidates on stores (``Cpu._on_write``).  A store need not be aligned
to the instruction grid: a span starting mid-word can overlap *two*
instruction words, and both cached decodes must go."""

import pytest

from repro.exec import install_backend
from repro.isa import assemble
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.machine import Cpu, StopReason
from repro.machine.memory import PERM_RWX


class TestUnalignedSpanInvalidation:
    def test_span_across_two_words_invalidates_both(self, sum_loop):
        cpu = Cpu()
        cpu.load_program(sum_loop)
        base = sum_loop.text_base
        first, second, third = base, base + 4, base + 8
        for addr in (first, second, third):
            cpu._decode_at(addr)
        assert set(cpu._dcache) == {first, second, third}

        # 4-byte store at base+2: starts mid-word, overlaps words 1 and 2
        cpu.memory.write_raw(first + 2, b"\xAA\xBB\xCC\xDD")

        assert first not in cpu._dcache
        assert second not in cpu._dcache
        assert third in cpu._dcache   # untouched word survives

    def test_single_byte_store_invalidates_only_its_word(self, sum_loop):
        cpu = Cpu()
        cpu.load_program(sum_loop)
        base = sum_loop.text_base
        cpu._decode_at(base)
        cpu._decode_at(base + 4)
        cpu.memory.write_raw(base + 5, b"\x00")
        assert base in cpu._dcache
        assert base + 4 not in cpu._dcache


SMC_SRC = """
.entry main
main:
    movi r4, 0
    const r3, slot
    const r2, {patch_word}
loop:
slot:
    movi r1, 13
    syscall 4
    st r2, r3, 0
    addi r4, r4, 1
    cmpi r4, 2
    jl loop
    movi r1, 0
    syscall 0
"""


class TestExecutedSelfModifyingCode:
    def test_patched_instruction_takes_effect_next_iteration(self):
        """End-to-end: a guest store over an already-executed (and so
        already-cached) instruction must be re-decoded on next fetch."""
        patch_word = encode(Instruction(op=Op.MOVI, rd=1, imm=77))
        program = assemble(SMC_SRC.format(patch_word=patch_word),
                           name="smc")
        cpu = Cpu()
        cpu.load_program(program)
        cpu.memory.set_perms(program.text_base,
                             max(len(program.text), 1), PERM_RWX)
        stop = cpu.run()
        assert stop.reason is StopReason.HALTED
        assert stop.exit_code == 0
        # first iteration runs the original movi (13); the patched word
        # must be re-decoded, not served stale from the cache (77)
        assert cpu.output_values == [13, 77]


def _run_smc(backend: str):
    patch_word = encode(Instruction(op=Op.MOVI, rd=1, imm=77))
    program = assemble(SMC_SRC.format(patch_word=patch_word), name="smc")
    cpu = Cpu()
    install_backend(cpu, backend)
    cpu.load_program(program)
    cpu.memory.set_perms(program.text_base,
                         max(len(program.text), 1), PERM_RWX)
    stop = cpu.run()
    return cpu, stop


class TestCrossBackendSmc:
    """The block backend must invalidate compiled closures on guest
    stores into compiled code, exactly like the interpreter's decode
    cache — including when the store patches the *same* block that is
    currently compiled and chained."""

    @pytest.mark.parametrize("backend", ["interp", "block"])
    def test_self_patching_block(self, backend):
        cpu, stop = _run_smc(backend)
        assert stop.reason is StopReason.HALTED
        assert stop.exit_code == 0
        assert cpu.output_values == [13, 77]

    def test_backends_agree_exactly(self):
        ref_cpu, ref_stop = _run_smc("interp")
        blk_cpu, blk_stop = _run_smc("block")
        assert (blk_stop.reason, blk_stop.pc) == (ref_stop.reason,
                                                  ref_stop.pc)
        assert blk_cpu.output_values == ref_cpu.output_values
        assert blk_cpu.icount == ref_cpu.icount
        assert blk_cpu.cycles == ref_cpu.cycles
        assert blk_cpu.regs == ref_cpu.regs
        assert blk_cpu.flags == ref_cpu.flags

    def test_block_backend_records_invalidation(self):
        cpu, stop = _run_smc("block")
        stats = cpu.backend.stats()
        assert stop.reason is StopReason.HALTED
        assert stats["invalidations"] >= 1
        assert stats["blocks_compiled"] >= 2  # original + repatched
