"""Syscall services and the branch profiler."""

from repro.isa import assemble
from repro.machine import BranchProfiler, Cpu, StopReason, run_native
from repro.machine.syscalls import CFC_ERROR_EXIT_CODE, Service


def run_src(source: str):
    cpu = Cpu()
    cpu.load_program(assemble(source))
    stop = cpu.run(max_steps=100_000)
    return cpu, stop


class TestSyscalls:
    def test_exit_code(self):
        cpu, stop = run_src("movi r1, 42\nsyscall 0")
        assert stop.reason is StopReason.HALTED
        assert stop.exit_code == 42

    def test_print_int_signed(self):
        cpu, _ = run_src("movi r1, -7\nsyscall 1\nmovi r1, 0\nsyscall 0")
        assert cpu.output == ["-7"]

    def test_print_char(self):
        cpu, _ = run_src("movi r1, 65\nsyscall 2\nmovi r1, 0\nsyscall 0")
        assert cpu.output == ["A"]

    def test_print_str(self):
        cpu, _ = run_src('.data\ns: .asciz "ok"\n.text\n'
                         "const r1, s\nsyscall 3\nmovi r1, 0\nsyscall 0")
        assert cpu.output == ["ok"]

    def test_emit_word(self):
        cpu, _ = run_src("const r1, 0xABCD\nsyscall 4\n"
                         "movi r1, 0\nsyscall 0")
        assert cpu.output_values == [0xABCD]

    def test_cycles_service(self):
        cpu, _ = run_src("syscall 5\nmov r2, r0\nmovi r1, 0\nsyscall 0")
        assert cpu.regs[2] > 0

    def test_cfc_error_service(self):
        cpu, stop = run_src("syscall 6")
        assert cpu.cfc_error
        assert stop.exit_code == CFC_ERROR_EXIT_CODE

    def test_unknown_service_is_noop(self):
        cpu, stop = run_src("syscall 99\nmovi r1, 0\nsyscall 0")
        assert stop.reason is StopReason.HALTED

    def test_service_enum_values_stable(self):
        assert Service.EXIT == 0
        assert Service.EMIT_WORD == 4
        assert Service.CFC_ERROR == 6


class TestBranchProfiler:
    def test_counts_taken_and_not_taken(self, sum_loop):
        profiler = BranchProfiler()
        run_native(sum_loop, profiler=profiler)
        # the loop branch: 9 taken + 1 fall-through
        [stats] = [s for s in profiler.branches.values()
                   if s.instr.meta.cond is not None]
        assert stats.taken == 9
        assert stats.not_taken == 1
        assert stats.executions == 10

    def test_flags_histogram_partitions_executions(self, sum_loop):
        profiler = BranchProfiler()
        run_native(sum_loop, profiler=profiler)
        [stats] = [s for s in profiler.branches.values()
                   if s.instr.meta.cond is not None]
        assert sum(stats.flags_hist.values()) == stats.executions

    def test_unconditional_jumps_recorded_as_taken(self):
        profiler = BranchProfiler()
        cpu = Cpu()
        cpu.load_program(assemble("jmp next\nnext: halt"))
        cpu.branch_profiler = profiler
        cpu.run()
        [stats] = profiler.branches.values()
        assert stats.taken == 1 and stats.not_taken == 0

    def test_taken_ratio(self, sum_loop):
        profiler = BranchProfiler()
        run_native(sum_loop, profiler=profiler)
        assert 0.0 < profiler.taken_ratio() <= 1.0

    def test_indirect_branches_not_recorded(self, call_program):
        profiler = BranchProfiler()
        run_native(call_program, profiler=profiler)
        from repro.isa.opcodes import Kind
        for stats in profiler.branches.values():
            assert stats.instr.meta.kind not in (Kind.RET,
                                                 Kind.BRANCH_IND)

    def test_jrz_profiled(self):
        profiler = BranchProfiler()
        cpu = Cpu()
        cpu.load_program(assemble(
            "movi r1, 0\njrz r1, done\nnop\ndone: halt"))
        cpu.branch_profiler = profiler
        cpu.run()
        assert any(s.taken for s in profiler.branches.values())
