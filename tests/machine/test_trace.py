"""Execution tracer tests."""

from repro.isa import assemble
from repro.machine import Cpu
from repro.machine.trace import Tracer, format_trace, trace_run
from repro.checking import EdgCF
from repro.dbt import Dbt


def make_cpu(source: str) -> Cpu:
    cpu = Cpu()
    cpu.load_program(assemble(source))
    return cpu


LOOP = """
.entry main
main:
    movi r1, 0
loop:
    addi r1, r1, 1
    cmpi r1, 3
    jl loop
    halt
"""


class TestTracer:
    def test_records_branches(self):
        cpu = make_cpu(LOOP)
        tracer = Tracer()
        tracer.attach(cpu)
        cpu.run()
        assert len(tracer) == 3   # three executions of the jl

    def test_capacity_bounds(self):
        cpu = make_cpu(LOOP)
        tracer = Tracer(capacity=2)
        tracer.attach(cpu)
        cpu.run()
        assert len(tracer) == 2

    def test_format_with_symbols(self):
        program = assemble(LOOP)
        cpu = Cpu()
        cpu.load_program(program)
        tracer = Tracer()
        tracer.attach(cpu)
        cpu.run()
        text = tracer.format(symbols=program.symbols)
        assert "jl" in text

    def test_chains_existing_hook(self):
        cpu = make_cpu(LOOP)
        seen = []
        cpu.pre_branch_hook = lambda c, pc, i: seen.append(pc) or None
        tracer = Tracer()
        tracer.attach(cpu)
        cpu.run()
        assert len(seen) == len(tracer) == 3

    def test_wraparound_keeps_most_recent(self):
        # four distinct branch sites; a capacity-2 ring must retain
        # exactly the last two executed, oldest evicted first
        cpu = make_cpu("""
.entry main
main:
    jmp a
a:  jmp b
b:  jmp c
c:  jmp d
d:  halt
""")
        tracer = Tracer(capacity=2)
        tracer.attach(cpu)
        cpu.run()
        pcs = [event.pc for event in tracer.events]
        assert pcs == [0x1008, 0x100C]   # the jumps at b: and c:

    def test_records_before_chained_hook(self):
        cpu = make_cpu(LOOP)
        tracer = Tracer()
        seen_lengths = []
        cpu.pre_branch_hook = (
            lambda c, pc, i: seen_lengths.append(len(tracer)))
        tracer.attach(cpu)
        cpu.run()
        # each chained call already sees the event of its own branch
        assert seen_lengths == [1, 2, 3]

    def test_replacement_from_chained_hook_propagates(self):
        from repro.faults import DirectionFault, FaultSpec, NativeInjector
        program = assemble(LOOP)
        cpu = Cpu()
        cpu.load_program(program)
        NativeInjector(FaultSpec(0x100C, 1, DirectionFault(taken=False)),
                       program).install(cpu)
        tracer = Tracer()
        tracer.attach(cpu)   # chains on top of the injector's hook
        cpu.run()
        # the forced-not-taken jl exits the loop on iteration one, so
        # the injector's replacement instruction made it through the
        # tracer's chain
        assert cpu.regs[1] == 1
        assert len(tracer) == 1

    def test_format_symbol_prefix_only_with_table(self):
        program = assemble(".entry spin\nspin: jmp spin")
        cpu = Cpu()
        cpu.load_program(program)
        tracer = Tracer(capacity=4)
        tracer.attach(cpu)
        cpu.run(max_steps=5)
        with_syms = tracer.format(symbols=program.symbols)
        bare = tracer.format()
        assert "spin: " in with_syms
        assert "spin:" not in bare
        assert "0x001000" in bare

    def test_works_under_dbt(self):
        program = assemble(LOOP)
        dbt = Dbt(program, technique=EdgCF())
        tracer = Tracer()
        tracer.attach(dbt.cpu)
        dbt.run()
        # translated code has more branches (checks, traps, chains)
        assert len(tracer) >= 3


class TestTraceRun:
    def test_full_trace(self):
        cpu = make_cpu(LOOP)
        records, stop = trace_run(cpu, max_steps=100)
        assert stop is not None and stop.reason.value == "halted"
        assert records[0].pc == 0x1000
        assert len(records) == cpu.icount

    def test_watch_registers(self):
        cpu = make_cpu(LOOP)
        records, _ = trace_run(cpu, max_steps=100, watch_regs=(1,))
        # r1 increments through the loop
        values = [r.regs_after[0] for r in records]
        assert max(values) == 3

    def test_step_budget(self):
        cpu = make_cpu("spin: jmp spin")
        records, stop = trace_run(cpu, max_steps=10)
        assert stop is None
        assert len(records) == 10

    def test_format_trace(self):
        cpu = make_cpu(LOOP)
        records, _ = trace_run(cpu, max_steps=100, watch_regs=(1,))
        text = format_trace(records, watch_regs=(1,))
        assert "addi" in text and "r1=" in text
