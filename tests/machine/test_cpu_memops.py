"""Memory-operation semantics and boundary behaviour."""

from repro.isa import assemble
from repro.machine import Cpu, FaultKind, StopReason


def run_src(source: str):
    cpu = Cpu()
    cpu.load_program(assemble(source))
    stop = cpu.run(max_steps=10_000)
    return cpu, stop


class TestWordOps:
    def test_store_load_roundtrip(self):
        cpu, stop = run_src("""
        .data
        buf: .space 16
        .text
        const r1, buf
        const r2, 0xCAFEBABE
        st r2, r1, 8
        ld r3, r1, 8
        halt
        """)
        assert stop.reason is StopReason.HALTED
        assert cpu.regs[3] == 0xCAFEBABE

    def test_negative_displacement(self):
        cpu, stop = run_src("""
        .data
        buf: .space 16
        .text
        const r1, buf+12
        movi r2, 55
        st r2, r1, -8
        ld r3, r1, -8
        halt
        """)
        assert cpu.regs[3] == 55

    def test_unaligned_store_faults(self):
        cpu, stop = run_src("""
        .data
        buf: .space 16
        .text
        const r1, buf+2
        st r1, r1, 0
        halt
        """)
        assert stop.reason is StopReason.FAULT
        assert stop.fault is FaultKind.UNALIGNED


class TestByteOps:
    def test_byte_roundtrip_and_zero_extension(self):
        cpu, stop = run_src("""
        .data
        buf: .space 4
        .text
        const r1, buf
        const r2, 0x1FF
        stb r2, r1, 1
        ldb r3, r1, 1
        halt
        """)
        assert cpu.regs[3] == 0xFF   # truncated on store, zero-extended

    def test_little_endian_layout(self):
        cpu, stop = run_src("""
        .data
        buf: .space 4
        .text
        const r1, buf
        const r2, 0x04030201
        st r2, r1, 0
        ldb r3, r1, 0
        ldb r4, r1, 3
        halt
        """)
        assert cpu.regs[3] == 0x01
        assert cpu.regs[4] == 0x04


class TestStackDiscipline:
    def test_lifo(self):
        cpu, stop = run_src("""
        movi r1, 1
        movi r2, 2
        push r1
        push r2
        pop r3
        pop r4
        halt
        """)
        assert (cpu.regs[3], cpu.regs[4]) == (2, 1)

    def test_mem_ops_leave_flags_alone(self):
        cpu, stop = run_src("""
        .data
        buf: .space 8
        .text
        movi r1, 3
        cmpi r1, 3          ; ZF set
        const r2, buf
        st r1, r2, 0
        ld r3, r2, 0
        push r3
        pop r4
        jz ok
        movi r5, 1
        ok: halt
        """)
        assert cpu.regs[5] == 0   # the jz still saw ZF

    def test_deep_stack_unmapped_eventually_faults(self):
        # the stack region is 64 KiB: ~16k pushes at 2 instrs each
        cpu = Cpu()
        cpu.load_program(assemble("loop:\npush r1\njmp loop"))
        stop = cpu.run(max_steps=100_000)
        assert stop.reason is StopReason.FAULT
        assert stop.fault is FaultKind.BAD_ACCESS
