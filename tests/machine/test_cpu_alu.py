"""ALU semantics, one behaviour per test, plus arithmetic properties."""

from hypothesis import given, strategies as st

from repro.isa import assemble
from repro.isa.flags import CF, SF, ZF
from repro.machine import Cpu, StopReason


def run_fragment(body: str, max_steps: int = 10_000) -> Cpu:
    cpu = Cpu()
    cpu.load_program(assemble(body + "\nhalt\n"))
    stop = cpu.run(max_steps=max_steps)
    assert stop.reason is StopReason.HALTED, stop
    return cpu


class TestArithmetic:
    def test_add(self):
        cpu = run_fragment("movi r1, 20\nmovi r2, 22\nadd r3, r1, r2")
        assert cpu.regs[3] == 42

    def test_add_wraps_32_bits(self):
        cpu = run_fragment(
            "const r1, 0xFFFFFFFF\nmovi r2, 2\nadd r3, r1, r2")
        assert cpu.regs[3] == 1
        assert cpu.flags & CF

    def test_sub_borrow(self):
        cpu = run_fragment("movi r1, 1\nmovi r2, 2\nsub r3, r1, r2")
        assert cpu.regs[3] == 0xFFFFFFFF
        assert cpu.flags & CF
        assert cpu.flags & SF

    def test_mul_low_word(self):
        cpu = run_fragment("const r1, 0x10001\nconst r2, 0x10001\n"
                           "mul r3, r1, r2")
        assert cpu.regs[3] == (0x10001 * 0x10001) & 0xFFFFFFFF

    def test_div_unsigned(self):
        cpu = run_fragment("movi r1, 100\nmovi r2, 7\ndiv r3, r1, r2")
        assert cpu.regs[3] == 14

    def test_mod(self):
        cpu = run_fragment("movi r1, 100\nmovi r2, 7\nmod r3, r1, r2")
        assert cpu.regs[3] == 2

    def test_div_by_zero_faults(self):
        cpu = Cpu()
        cpu.load_program(assemble("movi r1, 1\nmovi r2, 0\n"
                                  "div r3, r1, r2\nhalt"))
        stop = cpu.run()
        assert stop.reason is StopReason.FAULT
        assert stop.fault.value == "div_by_zero"

    def test_neg(self):
        cpu = run_fragment("movi r1, 5\nneg r2, r1")
        assert cpu.regs[2] == 0xFFFFFFFB

    def test_not(self):
        cpu = run_fragment("movi r1, 0\nnot r2, r1")
        assert cpu.regs[2] == 0xFFFFFFFF

    def test_shifts(self):
        cpu = run_fragment("movi r1, 1\nmovi r2, 4\nshl r3, r1, r2\n"
                           "shr r4, r3, r2")
        assert cpu.regs[3] == 16
        assert cpu.regs[4] == 1

    def test_sar_keeps_sign(self):
        cpu = run_fragment("const r1, 0x80000000\nmovi r2, 4\n"
                           "sar r3, r1, r2")
        assert cpu.regs[3] == 0xF8000000

    def test_shift_amount_masked(self):
        cpu = run_fragment("movi r1, 1\nmovi r2, 33\nshl r3, r1, r2")
        assert cpu.regs[3] == 2

    def test_cmp_sets_zf_only_reads(self):
        cpu = run_fragment("movi r1, 9\nmovi r2, 9\ncmp r1, r2")
        assert cpu.flags & ZF
        assert cpu.regs[0] == 0  # cmp writes no register

    def test_test_is_and_flags(self):
        cpu = run_fragment("movi r1, 12\nmovi r2, 3\ntest r1, r2")
        assert cpu.flags & ZF


class TestFlaglessFamily:
    def test_lea_does_not_touch_flags(self):
        cpu = run_fragment("movi r1, 1\ncmpi r1, 1\nlea r2, r1, 5")
        assert cpu.flags & ZF          # still from the cmp
        assert cpu.regs[2] == 6

    def test_lea3_lsub(self):
        cpu = run_fragment("movi r1, 10\nmovi r2, 3\nlea3 r3, r1, r2\n"
                           "lsub r4, r1, r2")
        assert cpu.regs[3] == 13
        assert cpu.regs[4] == 7

    def test_mov_family_flagless(self):
        cpu = run_fragment(
            "movi r1, 0\ncmpi r1, 0\n"
            "movi r2, 7\nmovhi r3, 1\nmovlo r3, 2\nmov r4, r2")
        assert cpu.flags & ZF
        assert cpu.regs[3] == 0x10002
        assert cpu.regs[4] == 7

    def test_cmov_taken_and_not(self):
        cpu = run_fragment(
            "movi r1, 1\nmovi r2, 2\nmovi r3, 0\nmovi r4, 0\n"
            "cmpi r1, 1\ncmovz r3, r2\ncmovnz r4, r2")
        assert cpu.regs[3] == 2
        assert cpu.regs[4] == 0

    def test_fp_class_costs_more(self):
        plain = run_fragment("movi r1, 1\nmovi r2, 2\nadd r3, r1, r2")
        fp = run_fragment("movi r1, 1\nmovi r2, 2\nfmul r3, r1, r2")
        assert fp.cycles > plain.cycles

    def test_fdiv_by_zero_faults(self):
        cpu = Cpu()
        cpu.load_program(assemble("movi r1, 1\nmovi r2, 0\n"
                                  "fdiv r3, r1, r2\nhalt"))
        stop = cpu.run()
        assert stop.reason is StopReason.FAULT


@given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
def test_add_sub_inverse_property(a, b):
    cpu = run_fragment(
        f"const r1, {a}\nconst r2, {b}\n"
        "add r3, r1, r2\nsub r4, r3, r2")
    assert cpu.regs[4] == a


@given(st.integers(1, 0xFFFF), st.integers(1, 0xFF))
def test_div_mod_reconstruction(a, b):
    cpu = run_fragment(
        f"const r1, {a}\nconst r2, {b}\n"
        "div r3, r1, r2\nmod r4, r1, r2\n"
        "mul r5, r3, r2\nadd r5, r5, r4")
    assert cpu.regs[5] == a
