"""Property-based end-to-end detection: on arbitrary generated
programs, every harmful injected single branch error is reported by
the paper's techniques — Claim 1 as an executable property over the
full stack (generator -> assembler -> DBT -> injector -> classifier).
"""

from hypothesis import given, settings, strategies as st

from repro.faults import (Category, Outcome, Pipeline, PipelineConfig,
                          generate_category_faults)
from repro.machine import StopReason, run_native
from repro.workloads import generate_program


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 500), st.sampled_from(["edgcf", "rcf"]))
def test_no_sdc_under_paper_techniques(seed, technique):
    """Random program, targeted single faults from every category:
    the paper's techniques leave no silent corruption and no
    unreported hang."""
    program = generate_program(seed, statements=8, with_calls=False)
    cpu, stop = run_native(program, max_steps=500_000)
    if stop.reason is not StopReason.HALTED:
        return  # generator produced something degenerate; skip
    faults = generate_category_faults(program, per_category=3,
                                      seed=seed)
    pipeline = Pipeline(program, PipelineConfig("dbt", technique))
    for category, specs in faults.by_category.items():
        for spec in specs:
            record = pipeline.run(spec)
            assert record.outcome is not Outcome.SDC, (
                category, spec.describe(), record.stop_reason)
            assert record.outcome is not Outcome.HANG, (
                category, spec.describe())


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 500))
def test_ecf_c_hole_is_the_only_gap(seed):
    """On random programs ECF may miss category C but nothing else
    (among the harmful outcomes)."""
    program = generate_program(seed, statements=8, with_calls=False)
    cpu, stop = run_native(program, max_steps=500_000)
    if stop.reason is not StopReason.HALTED:
        return
    faults = generate_category_faults(program, per_category=3,
                                      seed=seed)
    pipeline = Pipeline(program, PipelineConfig("dbt", "ecf"))
    for category, specs in faults.by_category.items():
        if category is Category.C:
            continue
        for spec in specs:
            record = pipeline.run(spec)
            assert record.outcome is not Outcome.SDC, (
                category, spec.describe())


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 300), st.sampled_from(["edgcf", "rcf", "ecf"]))
def test_static_rewriting_matches_dbt_detection(seed, technique):
    """The static and dynamic deployments of the same technique agree
    on fault-free behaviour for arbitrary programs."""
    from repro.instrument import instrument_program
    from repro.dbt import run_dbt
    from repro.checking import make_technique
    program = generate_program(seed, statements=8, with_calls=False)
    cpu, stop = run_native(program, max_steps=500_000)
    if stop.reason is not StopReason.HALTED:
        return
    ip = instrument_program(program, technique)
    cpu_static, stop_static = run_native(ip.program,
                                         max_steps=2_000_000)
    dbt, result = run_dbt(program, technique=make_technique(technique))
    assert stop_static.exit_code == 0 and not cpu_static.cfc_error
    assert result.ok
    assert cpu_static.output_values == dbt.cpu.output_values \
        == cpu.output_values
