"""Cross-pipeline integration: every execution pipeline computes the
same thing, across the whole suite."""

import pytest

from repro.checking import Policy, UpdateStyle, make_technique
from repro.dbt import Dbt
from repro.instrument import instrument_program
from repro.machine import run_native
from repro.workloads import SUITE, load


@pytest.mark.parametrize("spec", SUITE, ids=lambda s: s.name)
def test_dbt_matches_native(spec):
    program = load(spec.name, "test")
    cpu, _ = run_native(program, max_steps=3_000_000)
    dbt = Dbt(program, technique=make_technique("rcf"))
    result = dbt.run(max_steps=10_000_000)
    assert result.ok, (spec.name, result.stop)
    assert dbt.cpu.output_values == cpu.output_values
    assert dbt.cpu.output == cpu.output


@pytest.mark.parametrize("spec",
                         [s for s in SUITE if s.static_rewritable],
                         ids=lambda s: s.name)
def test_static_matches_native(spec):
    program = load(spec.name, "test")
    cpu, _ = run_native(program, max_steps=3_000_000)
    ip = instrument_program(program, "edgcf")
    cpu2, stop2 = run_native(ip.program, max_steps=10_000_000)
    assert stop2.exit_code == 0, spec.name
    assert not cpu2.cfc_error
    assert cpu2.output_values == cpu.output_values


@pytest.mark.parametrize("technique", ["ecf", "edgcf", "rcf"])
@pytest.mark.parametrize("style", [UpdateStyle.JCC, UpdateStyle.CMOV])
def test_styles_equivalent_outputs(technique, style):
    program = load("181.mcf", "test")
    cpu, _ = run_native(program)
    dbt = Dbt(program,
              technique=make_technique(technique, update_style=style))
    result = dbt.run()
    assert result.ok
    assert dbt.cpu.output_values == cpu.output_values


@pytest.mark.parametrize("policy", list(Policy))
def test_policies_equivalent_outputs(policy):
    program = load("186.crafty", "test")
    cpu, _ = run_native(program)
    dbt = Dbt(program, technique=make_technique("rcf"), policy=policy)
    result = dbt.run()
    assert result.ok
    assert dbt.cpu.output_values == cpu.output_values


def test_optimized_backend_equivalent():
    program = load("164.gzip", "test")
    cpu, _ = run_native(program)
    for optimize in (False, True):
        dbt = Dbt(program, technique=make_technique("edgcf"),
                  optimize=optimize)
        result = dbt.run()
        assert result.ok
        assert dbt.cpu.output_values == cpu.output_values


def test_optimized_backend_is_faster():
    program = load("164.gzip", "test")
    cycles = {}
    for optimize in (False, True):
        dbt = Dbt(program, technique=make_technique("edgcf"),
                  optimize=optimize)
        dbt.run()
        cycles[optimize] = dbt.cpu.cycles
    assert cycles[True] < cycles[False]
