"""End-to-end detection stories from the paper, on real suite
workloads."""

import pytest

from repro.faults import (Category, Outcome, PipelineConfig,
                          generate_category_faults, run_cache_campaign,
                          run_campaign)
from repro.workloads import load


@pytest.fixture(scope="module")
def parser_program():
    return load("197.parser", "test")


@pytest.fixture(scope="module")
def parser_faults(parser_program):
    return generate_category_faults(parser_program, per_category=8,
                                    seed=42)


class TestHeadlineClaim:
    """'The RCF technique can cover all the branch-errors, including
    those that occur at the conditional branch instructions inserted to
    update/check the signature' (paper Section 7)."""

    def test_rcf_covers_every_guest_category(self, parser_program,
                                             parser_faults):
        result = run_campaign(parser_program,
                              PipelineConfig("dbt", "rcf"),
                              parser_faults)
        for category in (Category.A, Category.B, Category.C, Category.D,
                         Category.E, Category.F):
            assert result.covers(category), category

    def test_rcf_covers_inserted_branches(self, parser_program):
        result = run_cache_campaign(parser_program,
                                    PipelineConfig("dbt", "rcf"),
                                    max_sites=15, seed=1)
        assert result.undetected == 0

    def test_jcc_unsafety_of_baselines(self, parser_program):
        """Figure 14's shaded cells: ECF/EdgCF with Jcc updates leave
        their inserted branches unprotected; RCF does not."""
        undetected = {}
        for technique in ("ecf", "edgcf", "rcf"):
            result = run_cache_campaign(
                parser_program, PipelineConfig("dbt", technique),
                max_sites=15, seed=1)
            undetected[technique] = result.undetected
        assert undetected["rcf"] == 0
        assert undetected["ecf"] > 0
        assert undetected["edgcf"] > 0


class TestDetectionLatency:
    def test_allbb_detects_before_end(self, parser_program,
                                      parser_faults):
        """With ALLBB the error report happens well before the program
        would have finished (bounded detection latency)."""
        from repro.faults import Pipeline
        pipeline = Pipeline(parser_program,
                            PipelineConfig("dbt", "edgcf"))
        golden_icount = pipeline.golden.icount
        detections = []
        for spec in parser_faults.by_category[Category.D]:
            record = pipeline.run(spec)
            if record.outcome is Outcome.DETECTED_SIGNATURE:
                detections.append(record.icount)
        assert detections
        assert all(icount <= golden_icount * 1.1
                   for icount in detections)


class TestAssumption2Residual:
    def test_exit_block_middles_are_undetectable(self):
        """Landing directly on the program-exit code escapes every
        signature technique — the boundary the paper's Assumption 2
        draws around the problem."""
        program = load("254.gap", "test")
        faults = generate_category_faults(
            program, per_category=20, seed=1,
            exclude_exit_block_middles=False)
        result = run_campaign(program, PipelineConfig("dbt", "rcf"),
                              faults)
        # with the exit-block landings included, E may contain escapes…
        total_sdc = sum(result.sdc_count(c) for c in Category
                        if c is not Category.NO_ERROR)
        # …but the default generator excludes them:
        clean = generate_category_faults(program, per_category=20,
                                         seed=1)
        clean_result = run_campaign(program,
                                    PipelineConfig("dbt", "rcf"), clean)
        clean_sdc = sum(clean_result.sdc_count(c) for c in Category
                        if c is not Category.NO_ERROR)
        assert clean_sdc == 0
        assert total_sdc >= clean_sdc
