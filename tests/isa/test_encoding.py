"""Encode/decode tests, including the property-based round trip."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import (BRANCH_OFFSET_BITS, DecodeError,
                                EncodingError, IMM14_MAX, IMM14_MIN,
                                IMM16_MAX, IMM16_MIN, decode, encode,
                                encode_program, flip_offset_bit)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OP_TABLE, Fmt, Op


def roundtrip(instr: Instruction) -> Instruction:
    return decode(encode(instr))


class TestBasicEncoding:
    def test_r3_fields(self):
        instr = Instruction(op=Op.ADD, rd=1, rs=2, rt=3)
        assert roundtrip(instr) == instr

    def test_r3_full_register_range(self):
        instr = Instruction(op=Op.XOR, rd=31, rs=30, rt=29)
        assert roundtrip(instr) == instr

    def test_ri_positive_imm(self):
        instr = Instruction(op=Op.ADDI, rd=4, rs=5, imm=100)
        assert roundtrip(instr) == instr

    def test_ri_negative_imm(self):
        instr = Instruction(op=Op.LEA, rd=4, rs=5, imm=-100)
        assert roundtrip(instr) == instr

    def test_ri_imm_bounds(self):
        for imm in (IMM14_MIN, IMM14_MAX):
            instr = Instruction(op=Op.ADDI, rd=0, rs=0, imm=imm)
            assert roundtrip(instr) == instr

    def test_ri_imm_overflow_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction(op=Op.ADDI, rd=0, rs=0, imm=IMM14_MAX + 1))
        with pytest.raises(EncodingError):
            encode(Instruction(op=Op.ADDI, rd=0, rs=0, imm=IMM14_MIN - 1))

    def test_branch_offsets(self):
        for imm in (IMM16_MIN, -1, 0, 1, IMM16_MAX):
            instr = Instruction(op=Op.JZ, imm=imm)
            assert roundtrip(instr) == instr

    def test_branch_offset_overflow_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction(op=Op.JMP, imm=IMM16_MAX + 1))

    def test_jrz_keeps_register_and_offset(self):
        instr = Instruction(op=Op.JRNZ, rd=16, imm=-42)
        assert roundtrip(instr) == instr

    def test_movi_sign_extension(self):
        instr = Instruction(op=Op.MOVI, rd=3, imm=-1)
        assert roundtrip(instr).imm == -1

    def test_syscall_number(self):
        instr = Instruction(op=Op.SYSCALL, imm=4)
        assert roundtrip(instr) == instr

    def test_trap_slot_id(self):
        instr = Instruction(op=Op.TRAP, imm=0xFFFF)
        assert roundtrip(instr) == instr

    def test_no_operand_forms(self):
        for op in (Op.RET, Op.NOP, Op.HALT):
            assert roundtrip(Instruction(op=op)) == Instruction(op=op)

    def test_bad_register_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction(op=Op.ADD, rd=32, rs=0, rt=0))


class TestDecodeErrors:
    def test_undefined_opcode(self):
        with pytest.raises(DecodeError):
            decode(0xFF000000)

    def test_zero_word_is_undefined(self):
        # opcode 0 is deliberately unassigned: zeroed memory traps as
        # an illegal instruction rather than executing silently.
        with pytest.raises(DecodeError):
            decode(0x00000000)


class TestOffsetBitFlip:
    def test_flip_changes_offset(self):
        word = encode(Instruction(op=Op.JMP, imm=4))
        flipped = decode(flip_offset_bit(word, 0))
        assert flipped.imm == 5

    def test_flip_is_involutive(self):
        word = encode(Instruction(op=Op.JZ, imm=-3))
        assert flip_offset_bit(flip_offset_bit(word, 7), 7) == word

    def test_flip_sign_bit(self):
        word = encode(Instruction(op=Op.JMP, imm=1))
        flipped = decode(flip_offset_bit(word, 15))
        assert flipped.imm == 1 - 0x8000

    def test_all_16_bits_valid(self):
        word = encode(Instruction(op=Op.JMP, imm=0))
        for bit in range(BRANCH_OFFSET_BITS):
            assert decode(flip_offset_bit(word, bit)).op is Op.JMP

    def test_out_of_range_bit_rejected(self):
        with pytest.raises(ValueError):
            flip_offset_bit(0, 16)


class TestEncodeProgram:
    def test_little_endian_layout(self):
        blob = encode_program([Instruction(op=Op.NOP)])
        assert len(blob) == 4
        assert blob[3] == int(Op.NOP)


# -- property-based round trip -----------------------------------------------

_ALL_OPS = sorted(OP_TABLE, key=int)


@st.composite
def instructions(draw):
    op = draw(st.sampled_from(_ALL_OPS))
    fmt = OP_TABLE[op].fmt
    reg = st.integers(0, 31)
    if fmt is Fmt.R3:
        return Instruction(op=op, rd=draw(reg), rs=draw(reg),
                           rt=draw(reg))
    if fmt is Fmt.R2:
        return Instruction(op=op, rd=draw(reg), rs=draw(reg))
    if fmt is Fmt.R1:
        return Instruction(op=op, rd=draw(reg))
    if fmt is Fmt.RI:
        return Instruction(op=op, rd=draw(reg), rs=draw(reg),
                           imm=draw(st.integers(IMM14_MIN, IMM14_MAX)))
    if fmt is Fmt.RI16:
        return Instruction(op=op, rd=draw(reg),
                           imm=draw(st.integers(IMM16_MIN, IMM16_MAX)))
    if fmt is Fmt.B:
        return Instruction(op=op, rd=draw(reg),
                           imm=draw(st.integers(IMM16_MIN, IMM16_MAX)))
    if fmt is Fmt.SYS:
        return Instruction(op=op, imm=draw(st.integers(0, 0xFFFF)))
    return Instruction(op=op)


@given(instructions())
def test_roundtrip_property(instr):
    """decode(encode(i)) == i for every encodable instruction."""
    assert roundtrip(instr) == instr


@given(instructions(), st.integers(0, BRANCH_OFFSET_BITS - 1))
def test_offset_flip_only_touches_low_16_bits(instr, bit):
    word = encode(instr)
    flipped = flip_offset_bit(word, bit)
    assert flipped >> 16 == word >> 16
    assert (flipped ^ word) == 1 << bit
