"""Instruction value-type helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.instruction import (WORD_SIZE, Instruction,
                                   branch_offset_for, sign_extend)
from repro.isa.opcodes import Op


class TestSignExtend:
    def test_positive(self):
        assert sign_extend(5, 14) == 5

    def test_negative(self):
        assert sign_extend(0x3FFF, 14) == -1
        assert sign_extend(0xFFFF, 16) == -1

    def test_boundary(self):
        assert sign_extend(0x2000, 14) == -8192
        assert sign_extend(0x1FFF, 14) == 8191

    @given(st.integers(-(1 << 13), (1 << 13) - 1))
    def test_roundtrip_14(self, value):
        assert sign_extend(value & 0x3FFF, 14) == value


class TestBranchHelpers:
    def test_forward_target(self):
        instr = Instruction(op=Op.JMP, imm=3)
        assert instr.branch_target(0x1000) == 0x1000 + 4 + 12

    def test_backward_target(self):
        instr = Instruction(op=Op.JZ, imm=-1)
        assert instr.branch_target(0x1000) == 0x1000

    def test_fall_through(self):
        instr = Instruction(op=Op.JZ, imm=5)
        assert instr.fall_through(0x1000) == 0x1004

    def test_non_branch_has_no_target(self):
        with pytest.raises(ValueError):
            Instruction(op=Op.ADD).branch_target(0)

    def test_indirect_has_no_encoded_target(self):
        with pytest.raises(ValueError):
            Instruction(op=Op.JMPR, rd=3).branch_target(0)

    def test_offset_for(self):
        assert branch_offset_for(0x1000, 0x1010) == 3
        assert branch_offset_for(0x1000, 0x1000) == -1

    def test_offset_for_unaligned_rejected(self):
        with pytest.raises(ValueError):
            branch_offset_for(0x1000, 0x1002)

    @given(st.integers(0, 1000), st.integers(-500, 500))
    def test_offset_target_roundtrip(self, pc_words, delta_words):
        pc = 0x1000 + pc_words * WORD_SIZE
        target = pc + 4 + delta_words * WORD_SIZE
        offset = branch_offset_for(pc, target)
        assert Instruction(op=Op.JMP, imm=offset).branch_target(pc) \
            == target


class TestFormatting:
    @pytest.mark.parametrize("instr,text", [
        (Instruction(op=Op.ADD, rd=1, rs=2, rt=3), "add r1, r2, r3"),
        (Instruction(op=Op.MOV, rd=15, rs=14), "mov sp, fp"),
        (Instruction(op=Op.PUSH, rd=7), "push r7"),
        (Instruction(op=Op.LEA, rd=16, rs=16, imm=-4),
         "lea pcp, pcp, -4"),
        (Instruction(op=Op.MOVI, rd=1, imm=-9), "movi r1, -9"),
        (Instruction(op=Op.JMP, imm=2), "jmp 2"),
        (Instruction(op=Op.JRNZ, rd=16, imm=5), "jrnz pcp, 5"),
        (Instruction(op=Op.SYSCALL, imm=4), "syscall 4"),
        (Instruction(op=Op.RET), "ret"),
    ])
    def test_str(self, instr, text):
        assert str(instr) == text

    def test_terminator_flags(self):
        assert Instruction(op=Op.RET).is_terminator
        assert Instruction(op=Op.JMP, imm=0).is_branch
        assert not Instruction(op=Op.ADD).is_branch
