"""Register naming/parsing and disassembler round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import assemble, disassemble_program, disassemble_word
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.registers import (NUM_GUEST_REGISTERS, NUM_REGISTERS, PCP,
                                 RTS, SP, is_guest_register,
                                 is_host_only_register, parse_register,
                                 register_name)


class TestRegisters:
    def test_alias_names(self):
        assert register_name(SP) == "sp"
        assert register_name(PCP) == "pcp"
        assert register_name(RTS) == "rts"
        assert register_name(3) == "r3"

    def test_parse_aliases(self):
        assert parse_register("sp") == SP
        assert parse_register("PCP") == PCP
        assert parse_register("r31") == 31

    @given(st.integers(0, NUM_REGISTERS - 1))
    def test_name_parse_roundtrip(self, index):
        assert parse_register(register_name(index)) == index

    def test_parse_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            parse_register("r32")
        with pytest.raises(ValueError):
            parse_register("x1")

    def test_guest_host_split(self):
        assert is_guest_register(0)
        assert is_guest_register(NUM_GUEST_REGISTERS - 1)
        assert not is_guest_register(PCP)
        assert is_host_only_register(PCP)
        assert not is_host_only_register(SP)


class TestDisassembler:
    def test_word_disassembly(self):
        word = encode(Instruction(op=Op.ADD, rd=1, rs=2, rt=3))
        assert disassemble_word(word) == "add r1, r2, r3"

    def test_branch_target_annotation(self):
        word = encode(Instruction(op=Op.JMP, imm=1))
        assert "-> 0x108" in disassemble_word(word, pc=0x100)

    def test_undecodable_word(self):
        assert "undecodable" in disassemble_word(0xEE000000)

    def test_program_listing_has_labels(self):
        program = assemble("main: nop\njmp main", name="t")
        listing = disassemble_program(program)
        assert "main:" in listing
        assert "jmp" in listing

    def test_listing_reassembles_consistently(self):
        """Disassembly mnemonics match what the assembler accepts."""
        source = """
        main:
            movi r1, 10
            lea r2, r1, 4
            cmp r1, r2
            jl main
            ret
        """
        program = assemble(source)
        for addr, instr in program.instructions():
            text = str(instr)
            mnemonic = text.split()[0]
            # every printed mnemonic is a real one
            from repro.isa.opcodes import MNEMONIC_TO_OP
            assert mnemonic in MNEMONIC_TO_OP
