"""Assembler tests: syntax, labels, directives, diagnostics."""

import pytest

from repro.isa import Op, assemble
from repro.isa.assembler import AssemblyError
from repro.isa.program import DATA_BASE, TEXT_BASE


class TestBasics:
    def test_empty_program(self):
        program = assemble("")
        assert program.text == b""
        assert program.entry == TEXT_BASE

    def test_single_instruction(self):
        program = assemble("nop")
        assert program.instruction_at(TEXT_BASE).op is Op.NOP

    def test_register_aliases(self):
        program = assemble("mov sp, fp")
        instr = program.instruction_at(TEXT_BASE)
        assert (instr.rd, instr.rs) == (15, 14)

    def test_comments_both_styles(self):
        program = assemble("nop ; semicolon\nnop # hash\n")
        assert program.instruction_count() == 2

    def test_hex_immediates(self):
        program = assemble("movi r1, 0x7F")
        assert program.instruction_at(TEXT_BASE).imm == 0x7F

    def test_negative_immediates(self):
        program = assemble("addi r1, r2, -42")
        assert program.instruction_at(TEXT_BASE).imm == -42

    def test_cmp_two_operand_form(self):
        program = assemble("cmp r1, r2")
        instr = program.instruction_at(TEXT_BASE)
        assert (instr.rd, instr.rs, instr.rt) == (0, 1, 2)


class TestLabels:
    def test_forward_branch(self):
        program = assemble("jmp end\nnop\nend: nop")
        assert program.instruction_at(TEXT_BASE).imm == 1

    def test_backward_branch(self):
        program = assemble("top: nop\njmp top")
        assert program.instruction_at(TEXT_BASE + 4).imm == -2

    def test_branch_to_self(self):
        program = assemble("spin: jmp spin")
        assert program.instruction_at(TEXT_BASE).imm == -1

    def test_label_on_same_line(self):
        program = assemble("start: nop")
        assert program.symbols["start"] == TEXT_BASE

    def test_numeric_branch_offset(self):
        program = assemble("jmp 3")
        assert program.instruction_at(TEXT_BASE).imm == 3

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble("a: nop\na: nop")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblyError, match="undefined"):
            assemble("jmp nowhere")

    def test_label_arithmetic(self):
        program = assemble(".data\nbuf: .space 16\n.text\nconst r1, buf+8")
        # const expands to movhi+movlo
        hi = program.instruction_at(TEXT_BASE)
        lo = program.instruction_at(TEXT_BASE + 4)
        value = ((hi.imm & 0xFFFF) << 16) | (lo.imm & 0xFFFF)
        assert value == DATA_BASE + 8


class TestDirectives:
    def test_entry(self):
        program = assemble("nop\n.entry main\nmain: nop")
        assert program.entry == TEXT_BASE + 4

    def test_word_values_and_labels(self):
        program = assemble(
            ".data\ntable: .word 1, 2, target\n.text\ntarget: nop")
        words = [int.from_bytes(program.data[i:i + 4], "little")
                 for i in range(0, 12, 4)]
        assert words == [1, 2, TEXT_BASE]

    def test_byte(self):
        program = assemble(".data\nb: .byte 1, 2, 255")
        assert program.data == b"\x01\x02\xff"

    def test_asciz(self):
        program = assemble('.data\ns: .asciz "hi"')
        assert program.data == b"hi\x00"

    def test_asciz_escapes(self):
        program = assemble('.data\ns: .asciz "a\\nb"')
        assert program.data == b"a\nb\x00"

    def test_space_zero_filled(self):
        program = assemble(".data\nbuf: .space 8")
        assert program.data == bytes(8)

    def test_align(self):
        program = assemble(
            '.data\ns: .asciz "abc"\n.align 4\nw: .word 7')
        assert program.symbols["w"] % 4 == 0

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssemblyError, match="unknown directive"):
            assemble(".bogus 3")

    def test_instructions_only_in_text(self):
        with pytest.raises(AssemblyError, match="must be in .text"):
            assemble(".data\nnop")


class TestConstPseudo:
    def test_const_small_value_still_two_words(self):
        program = assemble("const r1, 5")
        assert program.instruction_count() == 2

    def test_const_large_value(self):
        program = assemble("const r1, 0xDEADBEEF")
        hi = program.instruction_at(TEXT_BASE)
        lo = program.instruction_at(TEXT_BASE + 4)
        assert (hi.op, lo.op) == (Op.MOVHI, Op.MOVLO)
        assert ((hi.imm & 0xFFFF) << 16 | (lo.imm & 0xFFFF)) == 0xDEADBEEF


class TestDiagnostics:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("frobnicate r1")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="usage"):
            assemble("add r1, r2")

    def test_bad_register(self):
        with pytest.raises(AssemblyError, match="bad register"):
            assemble("add r1, r2, r99")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError, match="line 2"):
            assemble("nop\nbogus_op r1\n")

    def test_imm_out_of_range_reported(self):
        with pytest.raises(AssemblyError):
            assemble("addi r1, r2, 10000")
