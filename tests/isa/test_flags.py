"""Flags semantics: x86-equivalent condition evaluation."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.flags import (ALL_FLAGS_MASK, CF, COND_INVERSE, COND_READS,
                             Cond, NUM_FLAG_BITS, OF, SF, ZF,
                             evaluate_cond, flag_fault_flips_direction,
                             flags_from_add, flags_from_logic,
                             flags_from_sub)

u32 = st.integers(0, 0xFFFFFFFF)


class TestFlagsFromSub:
    def test_equal_sets_zf(self):
        assert flags_from_sub(5, 5) & ZF

    def test_unsigned_borrow_sets_cf(self):
        assert flags_from_sub(1, 2) & CF
        assert not flags_from_sub(2, 1) & CF

    def test_negative_result_sets_sf(self):
        assert flags_from_sub(1, 2) & SF

    def test_signed_overflow(self):
        # INT_MIN - 1 overflows.
        assert flags_from_sub(0x80000000, 1) & OF

    @given(u32, u32)
    def test_zf_iff_equal(self, a, b):
        assert bool(flags_from_sub(a, b) & ZF) == (a == b)

    @given(u32, u32)
    def test_cf_iff_unsigned_less(self, a, b):
        assert bool(flags_from_sub(a, b) & CF) == (a < b)

    @given(u32, u32)
    def test_signed_less_via_sf_of(self, a, b):
        sa = a - 0x100000000 if a & 0x80000000 else a
        sb = b - 0x100000000 if b & 0x80000000 else b
        flags = flags_from_sub(a, b)
        assert evaluate_cond(Cond.L, flags) == (sa < sb)
        assert evaluate_cond(Cond.LE, flags) == (sa <= sb)
        assert evaluate_cond(Cond.G, flags) == (sa > sb)
        assert evaluate_cond(Cond.GE, flags) == (sa >= sb)

    @given(u32, u32)
    def test_unsigned_conds(self, a, b):
        flags = flags_from_sub(a, b)
        assert evaluate_cond(Cond.B, flags) == (a < b)
        assert evaluate_cond(Cond.AE, flags) == (a >= b)
        assert evaluate_cond(Cond.BE, flags) == (a <= b)
        assert evaluate_cond(Cond.A, flags) == (a > b)


class TestFlagsFromAdd:
    def test_carry_out(self):
        assert flags_from_add(0xFFFFFFFF, 1) & CF

    def test_signed_overflow_positive(self):
        assert flags_from_add(0x7FFFFFFF, 1) & OF

    def test_no_overflow_mixed_signs(self):
        assert not flags_from_add(0x80000000, 0x7FFFFFFF) & OF

    @given(u32, u32)
    def test_zf(self, a, b):
        assert bool(flags_from_add(a, b) & ZF) == (((a + b)
                                                    & 0xFFFFFFFF) == 0)


class TestFlagsFromLogic:
    def test_clears_cf_of(self):
        assert flags_from_logic(0x80000000) == SF
        assert flags_from_logic(0) == ZF

    @given(u32)
    def test_sf_is_sign_bit(self, value):
        assert bool(flags_from_logic(value) & SF) == bool(
            value & 0x80000000)


class TestConditionStructure:
    def test_every_cond_has_inverse(self):
        for cond in Cond:
            inverse = COND_INVERSE[cond]
            assert COND_INVERSE[inverse] is cond

    @given(st.sampled_from(sorted(Cond, key=lambda c: c.value)),
           st.integers(0, ALL_FLAGS_MASK))
    def test_inverse_evaluates_opposite(self, cond, flags):
        assert evaluate_cond(cond, flags) != evaluate_cond(
            COND_INVERSE[cond], flags)

    def test_cond_reads_subsets(self):
        assert COND_READS[Cond.Z] == ZF
        assert COND_READS[Cond.LE] == ZF | SF | OF
        assert COND_READS[Cond.A] == CF | ZF

    @given(st.sampled_from(sorted(Cond, key=lambda c: c.value)),
           st.integers(0, ALL_FLAGS_MASK),
           st.integers(0, NUM_FLAG_BITS - 1))
    def test_unread_flag_never_flips_direction(self, cond, flags, bit):
        if not COND_READS[cond] & (1 << bit):
            assert not flag_fault_flips_direction(cond, flags, bit)

    def test_read_flag_can_flip(self):
        # ZF flip always flips Z.
        assert flag_fault_flips_direction(Cond.Z, 0, 0)

    def test_multiflag_masking(self):
        # jle with ZF set: flipping SF does not change the outcome.
        assert not flag_fault_flips_direction(Cond.LE, ZF, 1)
        # with ZF clear it does.
        assert flag_fault_flips_direction(Cond.LE, 0, 1)

    def test_unknown_cond_rejected(self):
        with pytest.raises(ValueError):
            evaluate_cond("nope", 0)  # type: ignore[arg-type]
