"""Encode -> decode -> encode byte identity across the whole ISA.

Complements ``test_encoding.py``: instead of spot-checking formats,
these tests sweep *every* opcode in ``OP_TABLE`` (plus operand
boundaries) and additionally prove that the printed form of every
decoded instruction re-assembles to the identical 32-bit word — the
property the fuzzing minimizer relies on when it re-assembles
shrunken listings.
"""

from hypothesis import given, strategies as st

from repro.isa import assemble
from repro.isa.encoding import (BRANCH_OFFSET_BITS, IMM14_MAX, IMM14_MIN,
                                IMM16_MAX, IMM16_MIN, decode, encode)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OP_TABLE, Fmt, Kind, Op

OFFSET_MAX = (1 << (BRANCH_OFFSET_BITS - 1)) - 1
OFFSET_MIN = -(1 << (BRANCH_OFFSET_BITS - 1))


def representatives(op: Op):
    """A few legal instructions for ``op``, incl. operand boundaries."""
    meta = OP_TABLE[op]
    fmt = meta.fmt
    if fmt is Fmt.R3:
        if meta.mnemonic in ("cmp", "test"):
            return [Instruction(op=op, rs=2, rt=3),
                    Instruction(op=op, rs=31, rt=0)]
        return [Instruction(op=op, rd=1, rs=2, rt=3),
                Instruction(op=op, rd=31, rs=31, rt=31)]
    if fmt is Fmt.R2:
        return [Instruction(op=op, rd=4, rs=5),
                Instruction(op=op, rd=31, rs=0)]
    if fmt is Fmt.R1:
        return [Instruction(op=op, rd=0), Instruction(op=op, rd=31)]
    if fmt is Fmt.RI:
        if meta.mnemonic == "cmpi":
            return [Instruction(op=op, rs=6, imm=imm)
                    for imm in (0, 7, IMM14_MIN, IMM14_MAX)]
        return [Instruction(op=op, rd=7, rs=8, imm=imm)
                for imm in (0, -1, IMM14_MIN, IMM14_MAX)]
    if fmt is Fmt.RI16:
        return [Instruction(op=op, rd=9, imm=imm)
                for imm in (0, 1, IMM16_MIN, IMM16_MAX)]
    if fmt is Fmt.B:
        rd = 3 if meta.kind is Kind.BRANCH_REG else 0
        return [Instruction(op=op, rd=rd, imm=imm)
                for imm in (0, 1, -2, OFFSET_MIN, OFFSET_MAX)]
    if fmt is Fmt.SYS:
        return [Instruction(op=op, imm=imm) for imm in (0, 6, 255)]
    return [Instruction(op=op)]


def all_representatives():
    return [instr for op in OP_TABLE for instr in representatives(op)]


class TestEncodeDecodeEncode:
    def test_byte_identity_every_opcode(self):
        """encode(decode(word)) == word for every opcode."""
        for instr in all_representatives():
            word = encode(instr)
            assert encode(decode(word)) == word, str(instr)

    def test_decode_is_lossless(self):
        for instr in all_representatives():
            assert decode(encode(instr)) == instr, str(instr)


class TestPrintedFormReassembles:
    def test_every_opcode_reassembles_to_same_word(self):
        """assemble(str(decode(word))) yields the identical word.

        This is what makes disassembly listings (and minimized fuzz
        reproducers) valid assembler input: ``cmp``/``test``/``cmpi``
        print without their always-zero destination register, branch
        instructions print raw word offsets, and everything else
        prints its full operand list.
        """
        for instr in all_representatives():
            word = encode(instr)
            text = str(decode(word))
            program = assemble(text, name="roundtrip")
            assert program.word_at(program.text_base) == word, text

    def test_single_instruction_program_is_one_word(self):
        program = assemble(str(Instruction(op=Op.NOP)), name="t")
        assert len(program.text) == 4


@given(st.sampled_from(sorted(OP_TABLE, key=lambda o: o.value)),
       st.integers(0, 31), st.integers(0, 31), st.integers(0, 31),
       st.data())
def test_property_roundtrip(op, rd, rs, rt, data):
    """Randomized byte-identity sweep over legal field values."""
    meta = OP_TABLE[op]
    fmt = meta.fmt
    imm = 0
    if fmt is Fmt.RI:
        imm = data.draw(st.integers(IMM14_MIN, IMM14_MAX))
    elif fmt is Fmt.RI16:
        imm = data.draw(st.integers(IMM16_MIN, IMM16_MAX))
    elif fmt is Fmt.B:
        imm = data.draw(st.integers(OFFSET_MIN, OFFSET_MAX))
    elif fmt is Fmt.SYS:
        imm = data.draw(st.integers(0, 0xFFFF))
    if fmt is Fmt.R3:
        if meta.mnemonic in ("cmp", "test"):
            rd = 0
        instr = Instruction(op=op, rd=rd, rs=rs, rt=rt)
    elif fmt is Fmt.R2:
        instr = Instruction(op=op, rd=rd, rs=rs)
    elif fmt is Fmt.R1:
        instr = Instruction(op=op, rd=rd)
    elif fmt is Fmt.RI:
        if meta.mnemonic == "cmpi":
            rd = 0
        instr = Instruction(op=op, rd=rd, rs=rs, imm=imm)
    elif fmt is Fmt.RI16:
        instr = Instruction(op=op, rd=rd, imm=imm)
    elif fmt is Fmt.B:
        if meta.kind is not Kind.BRANCH_REG:
            rd = 0
        instr = Instruction(op=op, rd=rd, imm=imm)
    elif fmt is Fmt.SYS:
        instr = Instruction(op=op, imm=imm)
    else:
        instr = Instruction(op=op)
    word = encode(instr)
    assert decode(word) == instr
    assert encode(decode(word)) == word
