"""Static instrumentation verifier tests."""

import pytest

from repro.isa import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.checking import Policy
from repro.instrument import instrument_program
from repro.instrument.verifier import verify_instrumented
from repro.workloads import generate_program, load


class TestProvesCorrectInstrumentation:
    @pytest.mark.parametrize("name", ["edgcf", "rcf", "ecf"])
    def test_call_free_program_fully_proven(self, diamond_program, name):
        ip = instrument_program(diamond_program, name)
        report = verify_instrumented(ip)
        assert report.ok, report.violations
        assert report.fully_proven, report.unproven
        assert report.proven

    @pytest.mark.parametrize("name", ["edgcf", "rcf", "ecf"])
    def test_loop_program_fully_proven(self, sum_loop, name):
        ip = instrument_program(sum_loop, name)
        report = verify_instrumented(ip)
        assert report.fully_proven, report.summary()

    def test_ecca_divs_proven(self, diamond_program):
        ip = instrument_program(diamond_program, "ecca")
        report = verify_instrumented(ip)
        assert report.ok
        assert report.proven   # the check-divs are proven non-zero

    @pytest.mark.parametrize("name", ["edgcf", "rcf"])
    def test_suite_member_proven(self, name):
        program = load("197.parser", "test")
        ip = instrument_program(program, name)
        report = verify_instrumented(ip)
        assert report.fully_proven, report.summary()

    def test_calls_leave_unproven_but_no_violations(self, call_program):
        """Return sites widen to ⊤: checks there are unproven, never
        violations."""
        ip = instrument_program(call_program, "edgcf")
        report = verify_instrumented(ip)
        assert report.ok
        assert report.unproven   # the post-ret path is beyond statics

    @pytest.mark.parametrize("seed", [0, 3, 8, 13])
    def test_random_programs_proven(self, seed):
        program = generate_program(seed, statements=12,
                                   with_calls=False)
        ip = instrument_program(program, "rcf", Policy.ALLBB)
        report = verify_instrumented(ip)
        assert report.fully_proven, report.summary()

    @pytest.mark.parametrize("policy", [Policy.ALLBB, Policy.RET_BE,
                                        Policy.END, Policy.STORE])
    def test_all_policies_verify(self, sum_loop, policy):
        ip = instrument_program(sum_loop, "edgcf", policy)
        report = verify_instrumented(ip)
        assert report.ok


class TestCatchesBrokenInstrumentation:
    def _corrupt_word(self, ip, addr, instr):
        text = bytearray(ip.program.text)
        offset = addr - ip.program.text_base
        text[offset:offset + 4] = encode(instr).to_bytes(4, "little")
        ip.program.text = bytes(text)

    def test_wrong_update_constant_detected(self, sum_loop):
        """Corrupting one signature-update immediate must surface as a
        violation on some legal path."""
        ip = instrument_program(sum_loop, "edgcf")
        # find a movlo into t0/pcp inside instrumentation and nudge it
        target = None
        for addr in ip.program.instruction_addresses():
            if not ip.is_instrumentation(addr):
                continue
            instr = ip.program.instruction_at(addr)
            if instr.op is Op.MOVLO and instr.rd >= 16:
                target = (addr, instr)
                break
        assert target is not None
        addr, instr = target
        self._corrupt_word(ip, addr, Instruction(
            op=Op.MOVLO, rd=instr.rd, imm=(instr.imm ^ 0x40) & 0xFFFF))
        report = verify_instrumented(ip)
        assert not report.fully_proven
        assert report.violations or report.unproven

    def test_removed_update_detected(self, diamond_program):
        """NOPing out a signature update breaks the additive chain."""
        ip = instrument_program(diamond_program, "rcf")
        nopped = False
        for addr in ip.program.instruction_addresses():
            if not ip.is_instrumentation(addr):
                continue
            instr = ip.program.instruction_at(addr)
            if instr.op is Op.LEA3 and instr.rd == 16:   # PCP update
                self._corrupt_word(ip, addr,
                                   Instruction(op=Op.NOP))
                nopped = True
                break
        assert nopped
        report = verify_instrumented(ip)
        assert report.violations
