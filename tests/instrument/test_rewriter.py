"""Static binary rewriter tests."""

import pytest

from repro.isa import assemble
from repro.machine import run_native
from repro.checking import Policy, make_technique
from repro.cfg import build_cfg
from repro.instrument import (RewriteError, StaticRewriter,
                              instrument_program)


class TestBasicRewrite:
    def test_output_preserved(self, sum_loop):
        cpu, _ = run_native(sum_loop)
        ip = instrument_program(sum_loop, "edgcf")
        cpu2, stop2 = run_native(ip.program)
        assert stop2.exit_code == 0
        assert cpu2.output_values == cpu.output_values

    def test_code_grows(self, sum_loop):
        ip = instrument_program(sum_loop, "edgcf")
        assert ip.code_growth > 1.5

    def test_data_section_untouched(self, tiny_suite_programs):
        program = tiny_suite_programs["197.parser"]
        ip = instrument_program(program, "rcf")
        assert ip.program.data == program.data
        assert ip.program.data_base == program.data_base

    def test_block_map_complete(self, sum_loop):
        cfg = build_cfg(sum_loop)
        ip = instrument_program(sum_loop, "ecf")
        assert set(ip.block_map) == {b.start for b in cfg}

    def test_instr_map_covers_originals(self, sum_loop):
        ip = instrument_program(sum_loop, "edgcf")
        for addr in sum_loop.instruction_addresses():
            assert addr in ip.instr_map

    def test_error_sink_reachable_symbol(self, sum_loop):
        ip = instrument_program(sum_loop, "edgcf")
        assert ip.program.symbols["__cfc_error"] == ip.error_sink
        assert ip.program.contains_code(ip.error_sink)

    def test_inserted_ranges_marked(self, sum_loop):
        ip = instrument_program(sum_loop, "edgcf")
        assert ip.inserted_ranges
        # entry instrumentation of the first block is inserted code
        first_block_new = ip.block_map[build_cfg(sum_loop)
                                       .entry_block.start]
        assert ip.is_instrumentation(first_block_new)
        # original instructions are not instrumentation
        for new_addr in ip.instr_map.values():
            assert not ip.is_instrumentation(new_addr)

    def test_symbols_remapped(self, sum_loop):
        ip = instrument_program(sum_loop, "edgcf")
        old = sum_loop.symbols["loop"]
        assert ip.program.symbols["loop"] == ip.block_map[old]

    def test_policy_controls_check_count(self, sum_loop):
        allbb = instrument_program(sum_loop, "edgcf", Policy.ALLBB)
        end = instrument_program(sum_loop, "edgcf", Policy.END)
        assert len(allbb.check_addresses) > len(end.check_addresses)
        assert len(end.check_addresses) >= 1

    def test_ecca_checks_are_divs(self, diamond_program):
        ip = instrument_program(diamond_program, "ecca")
        from repro.isa.opcodes import Op
        for addr in ip.check_addresses:
            assert ip.program.instruction_at(addr).op is Op.DIV


class TestRestrictions:
    def test_indirect_rejected(self):
        program = assemble("const r1, t\njmpr r1\nt: halt")
        with pytest.raises(RewriteError, match="indirect"):
            instrument_program(program, "edgcf")

    def test_whole_cfg_rejects_ret(self, call_program):
        with pytest.raises(RewriteError, match="dynamic branch"):
            instrument_program(call_program, "cfcss")

    def test_edgcf_accepts_ret(self, call_program):
        ip = instrument_program(call_program, "edgcf")
        cpu, stop = run_native(ip.program)
        assert stop.exit_code == 0
        assert not cpu.cfc_error

    def test_fall_off_text_rejected(self):
        program = assemble("movi r1, 1")  # no terminator at all
        with pytest.raises(RewriteError, match="falls off"):
            instrument_program(program, "edgcf")


class TestAllTechniquesOnSuite:
    @pytest.mark.parametrize("name", ["edgcf", "rcf", "ecf"])
    def test_suite_members_with_calls(self, tiny_suite_programs, name):
        for program in tiny_suite_programs.values():
            cpu, _ = run_native(program)
            ip = instrument_program(program, name)
            cpu2, stop2 = run_native(ip.program, max_steps=5_000_000)
            assert stop2.exit_code == 0, (name, program.source_name)
            assert cpu2.output_values == cpu.output_values

    @pytest.mark.parametrize("name", ["cfcss", "ecca"])
    def test_intraprocedural_members(self, tiny_suite_programs, name):
        program = tiny_suite_programs["197.parser"]
        cpu, _ = run_native(program)
        ip = instrument_program(program, name)
        cpu2, stop2 = run_native(ip.program, max_steps=5_000_000)
        assert stop2.exit_code == 0
        assert cpu2.output_values == cpu.output_values

    def test_rewriter_composable_with_prebuilt_technique(self, sum_loop):
        cfg = build_cfg(sum_loop)
        technique = make_technique("cfcss", cfg=cfg)
        ip = StaticRewriter(technique, Policy.ALLBB).rewrite(sum_loop)
        cpu, stop = run_native(ip.program)
        assert stop.exit_code == 0
