"""Lowering: item -> instruction materialization for both backends."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.checking import sig_of
from repro.checking.base import (CheckedDiv, ErrorBranch, LabelMark,
                                 LoadSig, LocalBranch, RawIns)
from repro.instrument.lowering import (assign_addresses,
                                       check_slot_addresses,
                                       encode_snippet, lower_items)


def identity(addr):
    return addr


class TestCompactLowering:
    def test_small_value_single_movi(self):
        snippet = lower_items([LoadSig(19, sig_of(0x1000))],
                              compact=True, resolver=identity)
        assert snippet.size_words == 1
        assign_addresses(snippet, 0x100)
        [(addr, instr)] = encode_snippet(snippet, identity, 0)
        assert instr.op is Op.MOVI and instr.imm == 0x1000

    def test_large_value_pair(self):
        snippet = lower_items([LoadSig(19, sig_of(0x123456))],
                              compact=True, resolver=identity)
        assert snippet.size_words == 2
        assign_addresses(snippet, 0x100)
        pairs = encode_snippet(snippet, identity, 0)
        assert [p[1].op for p in pairs] == [Op.MOVHI, Op.MOVLO]

    def test_negative_value_single_movi(self):
        snippet = lower_items([LoadSig(19, sig_of(0) + sig_of(0)
                                       - sig_of(0x100))],
                              compact=True, resolver=identity)
        assert snippet.size_words == 1

    def test_compact_requires_resolver(self):
        with pytest.raises(ValueError):
            lower_items([], compact=True)


class TestFixedLowering:
    def test_loadsig_always_two_words(self):
        snippet = lower_items([LoadSig(19, sig_of(4))], compact=False)
        assert snippet.size_words == 2

    def test_value_resolved_at_encode_time(self):
        snippet = lower_items([LoadSig(19, sig_of(0xAA))], compact=False)
        assign_addresses(snippet, 0)
        pairs = encode_snippet(snippet, lambda a: a * 2, 0)
        hi, lo = pairs[0][1], pairs[1][1]
        assert ((hi.imm & 0xFFFF) << 16 | (lo.imm & 0xFFFF)) == 0x154


class TestBranches:
    def test_error_branch_offset(self):
        snippet = lower_items([ErrorBranch(Op.JRNZ, rd=16)],
                              compact=False)
        assign_addresses(snippet, 0x100)
        [(addr, instr)] = encode_snippet(snippet, identity, 0x200)
        assert instr.branch_target(addr) == 0x200

    def test_local_branch_forward(self):
        items = [
            LocalBranch(Op.JMP, "skip"),
            RawIns(Instruction(op=Op.NOP)),
            LabelMark("skip"),
            RawIns(Instruction(op=Op.NOP)),
        ]
        snippet = lower_items(items, compact=False)
        assign_addresses(snippet, 0)
        pairs = dict(encode_snippet(snippet, identity, 0))
        assert pairs[0].branch_target(0) == 8

    def test_label_at_snippet_end(self):
        items = [
            LocalBranch(Op.JMP, "end"),
            RawIns(Instruction(op=Op.NOP)),
            LabelMark("end"),
        ]
        snippet = lower_items(items, compact=False)
        assign_addresses(snippet, 0)
        pairs = dict(encode_snippet(snippet, identity, 0))
        assert pairs[0].branch_target(0) == 8

    def test_check_slots_tracked(self):
        items = [ErrorBranch(Op.JRNZ, rd=16),
                 CheckedDiv(rd=1, rs=2, rt=3)]
        snippet = lower_items(items, compact=False)
        assign_addresses(snippet, 0x40)
        assert check_slot_addresses(snippet) == [0x40, 0x44]

    def test_checked_div_lowers_to_div(self):
        snippet = lower_items([CheckedDiv(rd=1, rs=2, rt=3)],
                              compact=False)
        assign_addresses(snippet, 0)
        [(_, instr)] = encode_snippet(snippet, identity, 0)
        assert instr.op is Op.DIV

    def test_unknown_item_rejected(self):
        with pytest.raises(TypeError):
            lower_items([object()], compact=False)
