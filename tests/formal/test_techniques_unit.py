"""Unit tests for the formal GEN_SIG/CHECK_SIG transfer functions."""

from repro.formal import (FormalCFCSS, FormalECCA, FormalECF,
                          FormalEdgCF, FormalRCF, diamond_cfg)


class TestEdgCFAlgebra:
    def setup_method(self):
        self.cfg = diamond_cfg()
        self.t = FormalEdgCF(self.cfg)

    def test_correct_edge_checks_zero(self):
        sig = self.cfg.address
        state = self.t.initial("B1")
        state = self.t.entry_update(state, "B1")
        assert self.t.check(state, "B1")
        state = self.t.exit_update(state, "B1", "B2")
        assert state == sig("B2")
        state = self.t.entry_update(state, "B2")
        assert state == 0

    def test_wrong_edge_breaks_invariant(self):
        state = self.t.initial("B1")
        state = self.t.entry_update(state, "B1")
        state = self.t.exit_update(state, "B1", "B2")   # logic: B2
        # physically lands on B3's head instead
        state = self.t.entry_update(state, "B3")
        assert not self.t.check(state, "B3")

    def test_error_propagates_through_legal_suffix(self):
        """Once wrong, the additive chain stays wrong (GEN_SIG's
        recursive dependence on S_i)."""
        state = 0xDEAD   # corrupted
        state = self.t.exit_update(state, "B2", "B4")
        state = self.t.entry_update(state, "B4")
        assert not self.t.check(state, "B4")


class TestRCFAlgebra:
    def setup_method(self):
        self.cfg = diamond_cfg()
        self.t = FormalRCF(self.cfg)

    def test_body_region_distinct_per_block(self):
        values = set()
        for block in self.cfg.blocks:
            state = self.cfg.address(block)
            values.add(self.t.entry_update(state, block))
        assert len(values) == len(self.cfg.blocks)

    def test_body_region_never_equals_any_entry_signature(self):
        """Word-aligned addresses vs +1 offsets: no collisions — the
        property that protects EdgCF's blind spot."""
        entries = {self.cfg.address(b) for b in self.cfg.blocks}
        bodies = {self.cfg.address(b) + 1 for b in self.cfg.blocks}
        assert not entries & bodies

    def test_roundtrip(self):
        state = self.t.initial("B1")
        state = self.t.entry_update(state, "B1")
        assert self.t.check(state, "B1")
        state = self.t.exit_update(state, "B1", "B3")
        state = self.t.entry_update(state, "B3")
        assert self.t.check(state, "B3")


class TestECFAlgebra:
    def test_rts_is_static_delta(self):
        cfg = diamond_cfg()
        t = FormalECF(cfg)
        state = t.initial("B1")
        state = t.entry_update(state, "B1")
        pcp, rts = t.exit_update(state, "B1", "B2")
        assert rts == cfg.address("B2") - cfg.address("B1")

    def test_category_c_consistency(self):
        """Re-executing the current block's tail re-creates a valid
        signature — the formal shape of the category-C hole."""
        cfg = diamond_cfg()
        t = FormalECF(cfg)
        state = t.initial("B1")
        state = t.entry_update(state, "B1")     # pcp = sig(B1)
        # landing in B1's own middle: skip entry, re-run exit
        state = t.exit_update(state, "B1", "B2")
        state = t.entry_update(state, "B2")
        assert t.check(state, "B2")             # undetected!


class TestStaticSignatureAssignments:
    def test_cfcss_predecessor_aliasing(self):
        from repro.formal import fanin_cfg
        cfg = fanin_cfg()
        t = FormalCFCSS(cfg)
        # B1 and B2 both feed B4 and B5: one signature class
        assert t.sig["B1"] == t.sig["B2"]

    def test_ecca_products_divisible(self):
        cfg = diamond_cfg()
        t = FormalECCA(cfg)
        state = t.exit_update(t.initial("B1"), "B1", "B2")
        assert state % t.bid["B2"] == 0
        assert state % t.bid["B3"] == 0   # category-A blindness
        assert state % t.bid["B1"] != 0
