"""Section-4 formalization: Claim 1 and the baseline counterexamples,
verified exhaustively over model CFGs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.formal import (FORMAL_TECHNIQUES, FormalCFCSS, FormalECCA,
                          FormalECF, FormalEdgCF, FormalRCF, ModelCfg,
                          check_conditions, classify_witness, diamond_cfg,
                          fanin_cfg, loop_cfg)

ALL_CFGS = [diamond_cfg(), loop_cfg(), fanin_cfg()]


class TestModelCfg:
    def test_addresses_unique_nonzero(self):
        cfg = diamond_cfg()
        values = list(cfg.addresses.values())
        assert len(set(values)) == len(values)
        assert all(v != 0 for v in values)

    def test_legal_paths_start_at_entry(self):
        cfg = diamond_cfg()
        for path in cfg.legal_paths(4):
            assert path[0] == cfg.entry

    def test_legal_paths_follow_edges(self):
        cfg = loop_cfg()
        for path in cfg.legal_paths(6):
            for src, dst in zip(path, path[1:]):
                assert dst in cfg.successors[src]

    def test_nodes_are_head_tail_pairs(self):
        cfg = diamond_cfg()
        nodes = cfg.all_nodes()
        assert len(nodes) == 2 * len(cfg.blocks)


@pytest.mark.parametrize("cfg", ALL_CFGS,
                         ids=["diamond", "loop", "fanin"])
class TestClaim1:
    """Claim 1: EdgCF satisfies the sufficient AND necessary
    conditions — it detects any single control-flow error."""

    def test_edgcf_detects_all_single_errors(self, cfg):
        report = check_conditions(FormalEdgCF(cfg))
        assert report.detects_all_single_errors, \
            report.undetected_errors[:3]

    def test_rcf_detects_all_single_errors(self, cfg):
        report = check_conditions(FormalRCF(cfg))
        assert report.detects_all_single_errors


@pytest.mark.parametrize("cfg", ALL_CFGS,
                         ids=["diamond", "loop", "fanin"])
class TestNecessaryCondition:
    """No technique may produce false positives on legal paths."""

    @pytest.mark.parametrize("name", sorted(FORMAL_TECHNIQUES))
    def test_no_false_positives(self, cfg, name):
        report = check_conditions(FORMAL_TECHNIQUES[name](cfg))
        assert report.necessary_holds, report.false_positives[:3]


@pytest.mark.parametrize("cfg", ALL_CFGS,
                         ids=["diamond", "loop", "fanin"])
class TestBaselineCounterexamples:
    """Section 3's prose claims, as machine-found witnesses."""

    def test_ecf_misses_exactly_category_c(self, cfg):
        report = check_conditions(FormalECF(cfg))
        assert not report.sufficient_holds
        categories = {classify_witness(cfg, e)
                      for e in report.undetected_errors}
        assert categories == {"C"}

    def test_cfcss_misses_a_and_c(self, cfg):
        report = check_conditions(FormalCFCSS(cfg))
        categories = {classify_witness(cfg, e)
                      for e in report.undetected_errors}
        assert "A" in categories
        assert "C" in categories

    def test_ecca_misses_a_and_c(self, cfg):
        report = check_conditions(FormalECCA(cfg))
        categories = {classify_witness(cfg, e)
                      for e in report.undetected_errors}
        assert "A" in categories
        assert "C" in categories

    def test_cfcss_aliasing_in_fanin(self, cfg):
        """In the fan-in CFG, CFCSS signature classes collapse and some
        wrong-but-aliased edges escape (the D/E blind spot)."""
        if cfg.entry != "B0" or "B5" not in cfg.successors:
            pytest.skip("fan-in shape only")
        report = check_conditions(FormalCFCSS(cfg))
        categories = [classify_witness(cfg, e)
                      for e in report.undetected_errors]
        assert any(c in ("D", "E") for c in categories)


class TestRandomCfgs:
    @st.composite
    def random_cfg(draw):
        count = draw(st.integers(3, 6))
        names = [f"B{i}" for i in range(count)]
        successors = {}
        for index, name in enumerate(names):
            remaining = names[index + 1:]
            if not remaining:
                successors[name] = []
                continue
            fanout = draw(st.integers(1, min(2, len(remaining))))
            targets = draw(st.permutations(remaining))
            # optional back edge keeps it interesting
            succ = list(targets[:fanout])
            if index > 0 and draw(st.booleans()):
                succ.append(names[draw(st.integers(0, index))])
            successors[name] = succ
        return ModelCfg(successors=successors, entry="B0")

    @settings(max_examples=30, deadline=None)
    @given(random_cfg())
    def test_edgcf_complete_on_random_cfgs(self, cfg):
        """EdgCF's guarantee is CFG-shape independent."""
        report = check_conditions(FormalEdgCF(cfg), prefix_len=3,
                                  suffix_len=4)
        assert report.detects_all_single_errors, \
            report.undetected_errors[:2]

    @settings(max_examples=30, deadline=None)
    @given(random_cfg())
    def test_rcf_complete_on_random_cfgs(self, cfg):
        report = check_conditions(FormalRCF(cfg), prefix_len=3,
                                  suffix_len=4)
        assert report.detects_all_single_errors

    @settings(max_examples=20, deadline=None)
    @given(random_cfg())
    def test_all_techniques_necessary_on_random_cfgs(self, cfg):
        for cls in FORMAL_TECHNIQUES.values():
            report = check_conditions(cls(cfg), prefix_len=3,
                                      suffix_len=4)
            assert report.necessary_holds, cls.name
