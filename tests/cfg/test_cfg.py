"""CFG construction and analyses."""

from hypothesis import given, settings, strategies as st

from repro.cfg import (ExitKind, back_edges, build_cfg, find_leaders,
                       immediate_dominators, natural_loops,
                       reachable_blocks)
from repro.workloads import generate_program


class TestLeaders:
    def test_entry_is_leader(self, sum_loop):
        assert sum_loop.entry in find_leaders(sum_loop)

    def test_branch_target_is_leader(self, sum_loop):
        assert sum_loop.symbols["loop"] in find_leaders(sum_loop)

    def test_post_terminator_is_leader(self, diamond_program):
        leaders = find_leaders(diamond_program)
        assert diamond_program.symbols["small"] in leaders
        assert diamond_program.symbols["join"] in leaders


class TestBlocks:
    def test_partition_covers_text(self, sum_loop):
        cfg = build_cfg(sum_loop)
        total = sum(block.size for block in cfg)
        assert total == sum_loop.instruction_count()

    def test_blocks_disjoint_and_ordered(self, diamond_program):
        cfg = build_cfg(diamond_program)
        blocks = cfg.in_order()
        for first, second in zip(blocks, blocks[1:]):
            assert first.end <= second.start

    def test_conditional_block_successors(self, diamond_program):
        cfg = build_cfg(diamond_program)
        entry = cfg.entry_block
        assert entry.exit_kind is ExitKind.COND
        assert len(entry.successors) == 2
        assert diamond_program.symbols["small"] in entry.successors

    def test_call_block(self, call_program):
        cfg = build_cfg(call_program)
        call_blocks = [b for b in cfg if b.exit_kind is ExitKind.CALL]
        assert len(call_blocks) == 1
        assert call_blocks[0].successors == [
            call_program.symbols["square"]]

    def test_ret_block_has_no_static_successors(self, call_program):
        cfg = build_cfg(call_program)
        ret_blocks = [b for b in cfg if b.exit_kind is ExitKind.RET]
        assert ret_blocks and all(not b.successors for b in ret_blocks)

    def test_exit_block(self, sum_loop):
        cfg = build_cfg(sum_loop)
        assert len(cfg.exit_blocks()) == 1

    def test_predecessors_linked(self, diamond_program):
        cfg = build_cfg(diamond_program)
        join = cfg.block_at(diamond_program.symbols["join"])
        assert len(join.predecessors) == 2

    def test_block_containing(self, sum_loop):
        cfg = build_cfg(sum_loop)
        loop = cfg.block_at(sum_loop.symbols["loop"])
        middle = loop.start + 4
        assert cfg.block_containing(middle).start == loop.start
        assert cfg.block_containing(sum_loop.text_end) is None
        assert cfg.block_containing(0) is None

    def test_backward_branch_detection(self, sum_loop):
        cfg = build_cfg(sum_loop)
        loop = cfg.block_at(sum_loop.symbols["loop"])
        assert loop.ends_in_backward_branch
        assert not cfg.entry_block.ends_in_backward_branch

    def test_stats(self, sum_loop):
        stats = build_cfg(sum_loop).stats()
        assert stats["blocks"] == len(build_cfg(sum_loop))
        assert stats["instructions"] == sum_loop.instruction_count()


class TestAnalyses:
    def test_reachability(self, diamond_program):
        cfg = build_cfg(diamond_program)
        reachable = reachable_blocks(cfg)
        assert cfg.entry_block.start in reachable
        assert diamond_program.symbols["join"] in reachable

    def test_dominators_diamond(self, diamond_program):
        cfg = build_cfg(diamond_program)
        idom = immediate_dominators(cfg)
        join = diamond_program.symbols["join"]
        # the join's immediate dominator is the branch block (entry)
        assert idom[join] == cfg.entry_block.start

    def test_back_edges_in_loop(self, sum_loop):
        cfg = build_cfg(sum_loop)
        edges = back_edges(cfg)
        loop_head = sum_loop.symbols["loop"]
        assert any(target == loop_head for _, target in edges)

    def test_natural_loop_membership(self, sum_loop):
        cfg = build_cfg(sum_loop)
        loops = natural_loops(cfg)
        loop_head = sum_loop.symbols["loop"]
        assert loop_head in loops
        assert loop_head in loops[loop_head]

    def test_no_loops_in_diamond(self, diamond_program):
        assert not natural_loops(build_cfg(diamond_program))


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 500))
def test_cfg_invariants_on_random_programs(seed):
    """Structural invariants hold for arbitrary generated programs."""
    program = generate_program(seed, statements=10)
    cfg = build_cfg(program)
    starts = {block.start for block in cfg}
    for block in cfg:
        # block boundaries nest inside the text section
        assert program.contains_code(block.start)
        assert block.end <= program.text_end
        # terminators only at block ends
        for pc, instr in block.instructions[:-1]:
            assert not instr.is_terminator
        # static successors are block starts
        for successor in block.successors:
            assert successor in starts
        # predecessor lists are consistent with successor lists
        for pred in block.predecessors:
            assert block.start in cfg.block_at(pred).successors
