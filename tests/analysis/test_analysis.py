"""Analysis layer: table builders and report helpers."""

import warnings

import pytest

from repro.checking import Policy, UpdateStyle
from repro.faults import Category, PipelineConfig
from repro.analysis import (compute_coverage_matrix, config_label,
                            format_table, geomean, percent, sweep)
from repro.analysis.probabilities import Figure2
from repro.faults.model import ErrorModelResult
from repro.workloads import suite as workload_suite


class TestReportHelpers:
    def test_geomean_basics(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_geomean_empty_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert geomean([]) == 0.0

    def test_geomean_warns_when_zero_filtered(self):
        with pytest.warns(UserWarning, match="non-positive"):
            assert geomean([2.0, 8.0, 0.0]) == pytest.approx(4.0)

    def test_geomean_warns_when_negative_filtered(self):
        with pytest.warns(UserWarning, match=r"-1\.5"):
            assert geomean([4.0, -1.5]) == pytest.approx(4.0)

    def test_geomean_all_nonpositive_warns_and_returns_zero(self):
        with pytest.warns(UserWarning):
            assert geomean([0.0, -2.0]) == 0.0

    def test_geomean_strict_raises(self):
        with pytest.raises(ValueError, match="non-positive"):
            geomean([1.0, 0.0], strict=True)

    def test_geomean_strict_clean_input_ok(self):
        assert geomean([2.0, 8.0], strict=True) == pytest.approx(4.0)

    def test_percent(self):
        assert percent(0.1234) == "12.34%"

    def test_format_table_aligns(self):
        table = format_table(["a", "bbbb"], [[1, 2.5], ["xx", 3.0]])
        lines = table.splitlines()
        assert "a" in lines[0] and "bbbb" in lines[0]
        assert "2.500" in table

    def test_format_table_title(self):
        table = format_table(["x"], [[1]], title="T")
        assert table.startswith("T\n=")


class TestConfigLabels:
    def test_plain(self):
        assert config_label("rcf", Policy.ALLBB,
                            UpdateStyle.JCC) == "rcf"

    def test_with_style_and_policy(self):
        assert config_label("ecf", Policy.RET, UpdateStyle.CMOV) == \
            "ecf-cmov-ret"


class TestSweep:
    @pytest.fixture(scope="class")
    def small_sweep(self):
        return sweep(scale="test", techniques=("edgcf",),
                     names=["254.gap", "171.swim"])

    def test_native_measured(self, small_sweep):
        assert small_sweep.native["254.gap"].cycles > 0

    def test_baseline_config_present(self, small_sweep):
        assert "dbt-base" in small_sweep.configs

    def test_slowdowns_above_one(self, small_sweep):
        assert small_sweep.slowdown("edgcf", "254.gap") > 1.0
        assert small_sweep.slowdown("dbt-base", "254.gap") >= 1.0

    def test_vs_dbt_normalization_smaller(self, small_sweep):
        vs_native = small_sweep.slowdown("edgcf", "254.gap", "native")
        vs_dbt = small_sweep.slowdown("edgcf", "254.gap", "dbt-base")
        assert vs_dbt <= vs_native


class TestFigure2Builder:
    @pytest.fixture(scope="class")
    def figure(self):
        int_model = ErrorModelResult("int")
        fp_model = ErrorModelResult("fp")
        int_model.add(Category.A, True, "flags", 10)
        int_model.add(Category.E, True, "addr", 30)
        int_model.add(Category.NO_ERROR, False, "addr", 60)
        fp_model.add(Category.C, True, "addr", 50)
        fp_model.add(Category.NO_ERROR, False, "addr", 50)
        return Figure2(int_model=int_model, fp_model=fp_model)

    def test_rows_have_all_categories(self, figure):
        rows = figure.rows("int")
        assert len(rows) == 7
        assert rows[0][0] == "A"
        assert rows[-1][0] == "No Error"

    def test_render_mentions_both_suites(self, figure):
        text = figure.render()
        assert "SPEC-Int" in text and "SPEC-Fp" in text

    def test_figure3_renormalizes(self, figure):
        rows = figure.figure3_rows()
        total_row = rows[-1]
        assert total_row[0] == "Total"
        assert total_row[1] == "100.00%"


class TestCoverageMatrixBuilder:
    def test_small_matrix(self):
        program = workload_suite.load("254.gap", "test")
        matrix = compute_coverage_matrix(
            program,
            configs=(PipelineConfig("dbt", None),
                     PipelineConfig("dbt", "rcf")),
            per_category=3, include_cache_level=False)
        table = matrix.table()
        assert "dbt/rcf/allbb" in table
        assert matrix.covered("dbt/rcf/allbb", Category.A)
        assert not matrix.covered("dbt/none/allbb", Category.A)
