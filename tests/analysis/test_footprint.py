"""Footprint analysis and ASCII chart rendering."""

import pytest

from repro.analysis import (bar_chart, cache_growth, footprint_table,
                            static_growth)
from repro.workloads import load


@pytest.fixture(scope="module")
def parser_program():
    return load("197.parser", "test")


class TestFootprint:
    def test_static_growth_above_one(self, parser_program):
        assert static_growth(parser_program, "edgcf") > 1.5

    def test_rcf_biggest(self, parser_program):
        assert static_growth(parser_program, "rcf") > \
            static_growth(parser_program, "edgcf")

    def test_policy_shrinks_static_footprint(self, parser_program):
        from repro.checking import Policy
        allbb = static_growth(parser_program, "edgcf", Policy.ALLBB)
        end = static_growth(parser_program, "edgcf", Policy.END)
        assert end < allbb

    def test_cache_growth_baseline_modest(self, parser_program):
        assert 1.0 < cache_growth(parser_program, None) < 3.0

    def test_table_rows(self, parser_program):
        rows = footprint_table(parser_program, techniques=("edgcf",))
        assert [row.technique for row in rows] == ["none", "edgcf"]
        assert rows[1].cache_growth > rows[0].cache_growth


class TestBarChart:
    def test_renders_proportionally(self):
        chart = bar_chart([("a", 1.0), ("b", 2.0)], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_title_and_values(self):
        chart = bar_chart([("x", 1.5)], title="T", unit="x")
        assert chart.startswith("T\n")
        assert "1.500x" in chart

    def test_empty(self):
        assert bar_chart([]) == ""

    def test_minimum_one_mark(self):
        chart = bar_chart([("tiny", 0.001), ("big", 100.0)], width=20)
        assert "#" in chart.splitlines()[0]
