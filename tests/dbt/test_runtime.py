"""DBT correctness: equivalence with native, chaining, indirect flow,
dispatch cost accounting, determinism."""

import pytest

from repro.isa import assemble
from repro.machine import StopReason, run_native
from repro.checking import EdgCF
from repro.dbt import CACHE_BASE, Dbt, NullTechnique, run_dbt
from repro.workloads import generate_program, suite as workload_suite


class TestEquivalence:
    def test_sum_loop(self, sum_loop):
        cpu, _ = run_native(sum_loop)
        dbt, result = run_dbt(sum_loop)
        assert result.ok
        assert dbt.cpu.output_values == cpu.output_values

    def test_calls(self, call_program):
        cpu, _ = run_native(call_program)
        dbt, result = run_dbt(call_program)
        assert result.ok
        assert dbt.cpu.output_values == cpu.output_values

    def test_jump_table_program(self):
        program = workload_suite.load("176.gcc", "test")
        cpu, _ = run_native(program)
        dbt, result = run_dbt(program)
        assert result.ok
        assert dbt.cpu.output_values == cpu.output_values

    @pytest.mark.parametrize("name",
                             ["254.gap", "171.swim", "164.gzip",
                              "255.vortex", "186.crafty"])
    def test_suite_members(self, name):
        program = workload_suite.load(name, "test")
        cpu, _ = run_native(program)
        dbt, result = run_dbt(program)
        assert result.ok
        assert dbt.cpu.output_values == cpu.output_values
        assert dbt.cpu.output == cpu.output

    def test_exit_code_propagates(self):
        program = assemble("movi r1, 3\nsyscall 0")
        dbt, result = run_dbt(program)
        assert result.stop.exit_code == 3


class TestTranslationMechanics:
    def test_translate_on_demand(self, diamond_program):
        """Only executed blocks get translated (Section 5)."""
        dbt, result = run_dbt(diamond_program)
        from repro.cfg import build_cfg
        cfg = build_cfg(diamond_program)
        assert result.translated_blocks < len(cfg)

    def test_blocks_live_in_cache(self, sum_loop):
        dbt, _ = run_dbt(sum_loop)
        for tb in dbt.blocks.values():
            assert tb.cache_start >= CACHE_BASE

    def test_chaining_patches_exits(self, sum_loop):
        dbt, _ = run_dbt(sum_loop)
        patched = [slot for slot in dbt.slots.values() if slot.patched]
        assert patched  # the loop edge must have been chained

    def test_addr_map_covers_executed_guest_code(self, sum_loop):
        dbt, _ = run_dbt(sum_loop)
        for tb in dbt.blocks.values():
            for addr in range(tb.guest_start, tb.guest_end, 4):
                assert addr in dbt.addr_map

    def test_guest_text_not_executable(self, sum_loop):
        """Guest pages lose X: category-F landings in old text fault."""
        from repro.machine.memory import PERM_X
        dbt, _ = run_dbt(sum_loop)
        page = sum_loop.text_base >> 12
        assert not dbt.cpu.memory.perms[page] & PERM_X

    def test_deterministic_layout(self, call_program):
        """Same program, same config => identical cache layout (the
        cache-level fault campaigns rely on this)."""
        layouts = []
        for _ in range(2):
            dbt, result = run_dbt(call_program, technique=EdgCF())
            assert result.ok
            layouts.append(sorted(
                (tb.guest_start, tb.cache_start, tb.cache_end)
                for tb in dbt.blocks.values()))
        assert layouts[0] == layouts[1]

    def test_dispatch_cycles_charged(self, call_program):
        cheap = Dbt(call_program, indirect_cycles=0, dispatch_cycles=0)
        cheap.run()
        costly = Dbt(call_program, indirect_cycles=50,
                     dispatch_cycles=100)
        costly.run()
        assert costly.cpu.cycles > cheap.cpu.cycles

    def test_null_technique_is_default(self, sum_loop):
        dbt = Dbt(sum_loop)
        assert isinstance(dbt.technique, NullTechnique)

    def test_suffix_translation_entryless(self, sum_loop):
        dbt, _ = run_dbt(sum_loop, technique=EdgCF())
        loop = sum_loop.symbols["loop"]
        suffix = dbt.ensure_suffix(loop, loop + 4)
        assert not suffix.instrumented_entry
        assert suffix.guest_start == loop + 4

    def test_step_budget_respected(self):
        program = assemble("spin: jmp spin")
        dbt = Dbt(program)
        result = dbt.run(max_steps=500)
        assert result.stop.reason is StopReason.STEP_LIMIT


class TestOverhead:
    def test_baseline_overhead_small(self):
        """Uninstrumented DBT stays in the paper's ~12% ballpark."""
        program = workload_suite.load("171.swim", "small")
        cpu, _ = run_native(program)
        dbt, result = run_dbt(program)
        slowdown = dbt.cpu.cycles / cpu.cycles
        assert 1.0 <= slowdown < 1.35

    def test_instrumentation_has_cost(self, sum_loop):
        dbt_plain, _ = run_dbt(sum_loop)
        dbt_inst, _ = run_dbt(sum_loop, technique=EdgCF())
        assert dbt_inst.cpu.cycles > dbt_plain.cpu.cycles


class TestRandomPrograms:
    @pytest.mark.parametrize("seed", range(8))
    def test_equivalence_random(self, seed):
        program = generate_program(seed, statements=15, with_calls=True)
        cpu, stop = run_native(program, max_steps=500_000)
        assert stop.reason is StopReason.HALTED
        dbt, result = run_dbt(program)
        assert result.ok
        assert dbt.cpu.output_values == cpu.output_values
