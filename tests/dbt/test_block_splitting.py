"""Translated blocks align with the paper's basic-block model.

The DBT splits decode at *static leaders* (branch targets and
post-terminator sites), so its translated blocks coincide with the
static CFG's basic blocks.  Without this, translate-on-demand forms
superblocks across unexecuted-yet branch targets and the branch-error
categories drift between the static and dynamic views (a static-E
landing inside the branch's own superblock behaves like category C).
"""

from repro.cfg import build_cfg, find_leaders
from repro.dbt import run_dbt
from repro.workloads import load


def test_translated_blocks_match_static_blocks():
    program = load("254.gap", "test")
    cfg = build_cfg(program)
    dbt, result = run_dbt(program)
    assert result.ok
    static_starts = {block.start for block in cfg}
    for tb in dbt.blocks.values():
        assert tb.guest_start in static_starts
        static_block = cfg.block_at(tb.guest_start)
        assert tb.guest_end == static_block.end, hex(tb.guest_start)


def test_no_translation_crosses_a_leader():
    program = load("197.parser", "test")
    leaders = find_leaders(program)
    dbt, result = run_dbt(program)
    assert result.ok
    for tb in dbt.blocks.values():
        inner = [addr for addr in leaders
                 if tb.guest_start < addr < tb.guest_end]
        assert not inner, (hex(tb.guest_start), list(map(hex, inner)))


def test_ecf_category_e_detected_across_fallthrough_chains():
    """The regression that motivated leader splitting: a landing in a
    *different static block* that shares a fallthrough chain with the
    branch must still be detected by ECF (it is category E, not C)."""
    from repro.workloads import generate_program
    from repro.faults import (Category, Outcome, Pipeline,
                              PipelineConfig, generate_category_faults)
    from repro.machine import StopReason, run_native
    program = generate_program(53, statements=8, with_calls=False)
    _, stop = run_native(program, max_steps=500_000)
    assert stop.reason is StopReason.HALTED
    faults = generate_category_faults(program, per_category=3, seed=53)
    pipeline = Pipeline(program, PipelineConfig("dbt", "ecf"))
    for spec in faults.by_category[Category.E]:
        record = pipeline.run(spec)
        assert record.outcome is not Outcome.SDC, spec.describe()
