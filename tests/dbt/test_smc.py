"""Self-modifying code under the DBT (paper Section 5)."""

from repro.isa import assemble
from repro.dbt import run_dbt

# Patches its own later instruction (movi r2, 1 -> movi r2, 7), then
# executes it: output must reflect the *new* code.
SMC_SRC = """
.entry main
main:
    const r1, site
    const r2, 0x21100007      ; movi r2, 7
    st r2, r1, 0
site:
    movi r2, 1
    mov r1, r2
    syscall 4
    movi r1, 0
    syscall 0
"""

# Patch happens only on the second pass through the writer block, after
# the target block was already translated and executed once.
SMC_LOOP_SRC = """
.entry main
main:
    movi r5, 0
again:
    cmpi r5, 1
    jnz skip_patch
    const r1, site
    const r2, 0x21100063      ; movi r2, 99
    st r2, r1, 0
skip_patch:
site:
    movi r2, 1
    mov r1, r2
    syscall 4
    addi r5, r5, 1
    cmpi r5, 3
    jl again
    movi r1, 0
    syscall 0
"""


class TestSelfModifyingCode:
    def test_patch_before_first_execution(self):
        program = assemble(SMC_SRC)
        dbt, result = run_dbt(program)
        assert result.ok
        assert dbt.cpu.output_values == [7]

    def test_patch_after_translation_invalidates(self):
        program = assemble(SMC_LOOP_SRC)
        # ground truth from the native machine with writable text
        cpu, _ = run_native_with_writable_text(program)
        dbt, result = run_dbt(program)
        assert result.ok
        assert result.smc_flushes >= 1
        assert dbt.cpu.output_values == cpu.output_values
        # first iteration ran old code, later ones the patched code
        assert dbt.cpu.output_values[0] == 1
        assert dbt.cpu.output_values[-1] == 99

    def test_flush_resets_translations(self):
        program = assemble(SMC_LOOP_SRC)
        dbt, result = run_dbt(program)
        assert result.ok
        # the program still finished: blocks were retranslated
        assert result.translated_blocks > 0


def run_native_with_writable_text(program):
    from repro.machine import Cpu
    from repro.machine.memory import PERM_RWX
    cpu = Cpu()
    cpu.load_program(program)
    cpu.memory.set_perms(program.text_base, len(program.text), PERM_RWX)
    stop = cpu.run(max_steps=1_000_000)
    assert stop.reason.value == "halted"
    return cpu, stop
