"""Code-cache eviction under pressure: flush-and-retranslate."""

import pytest

from repro.checking import EdgCF, RCF
from repro.dbt import Dbt
from repro.machine import run_native
from repro.workloads import load


@pytest.mark.parametrize("cache_size", [0x100, 0x140, 0x180])
def test_tiny_cache_still_correct(cache_size):
    """With a cache far smaller than the working set, the DBT must
    flush and retranslate repeatedly yet stay correct."""
    program = load("254.gap", "test")
    cpu, _ = run_native(program)
    dbt = Dbt(program, technique=EdgCF(), cache_size=cache_size)
    result = dbt.run(max_steps=50_000_000)
    assert result.ok, result.stop
    assert dbt.cpu.output_values == cpu.output_values
    assert dbt.flushes > 0


def test_flushes_counted_separately_from_smc():
    program = load("254.gap", "test")
    dbt = Dbt(program, technique=EdgCF(), cache_size=0x140)
    result = dbt.run()
    assert result.ok
    assert dbt.flushes > 0
    assert dbt.smc_flushes == 0


def test_heavy_eviction_costs_performance():
    """Severe eviction pressure (dozens of flushes) shows up as extra
    dispatch work."""
    program = load("254.gap", "test")
    roomy = Dbt(program, technique=EdgCF())
    roomy.run()
    tight = Dbt(program, technique=EdgCF(), cache_size=0x100)
    tight.run()
    assert tight.flushes > 10
    assert tight.cpu.cycles > roomy.cpu.cycles


def test_signature_state_survives_flush():
    """A flush mid-run must not trip any check: PC' lives in a register
    and block signatures are guest addresses, both flush-invariant."""
    program = load("186.crafty", "test")
    cpu, _ = run_native(program)
    dbt = Dbt(program, technique=RCF(), cache_size=0x180)
    result = dbt.run(max_steps=50_000_000)
    assert result.ok
    assert not result.detected_error
    assert dbt.cpu.output_values == cpu.output_values
    assert dbt.flushes > 0
