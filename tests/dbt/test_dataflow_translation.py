"""DBT-level details of the data-flow duplication integration."""

from repro.isa import assemble, decode
from repro.isa.opcodes import Op
from repro.checking import EdgCF
from repro.checking.dataflow import SHADOW_BASE
from repro.dbt import Dbt
from repro.dbt.translator import DF_ERROR_TRAP
from repro.machine import run_native
from repro.workloads import load

LOOP = """
.entry main
main:
    movi r1, 0
    movi r2, 1
loop:
    add r1, r1, r2
    addi r2, r2, 1
    cmpi r2, 6
    jl loop
    syscall 4
    movi r1, 0
    syscall 0
"""


def warm(source_or_program, **kwargs):
    program = (assemble(source_or_program)
               if isinstance(source_or_program, str) else
               source_or_program)
    dbt = Dbt(program, dataflow=True, **kwargs)
    result = dbt.run(max_steps=20_000_000)
    assert result.ok, result.stop
    return program, dbt, result


class TestTranslationLayout:
    def test_df_stub_emitted_per_block(self):
        program, dbt, _ = warm(LOOP)
        for tb in dbt.blocks.values():
            # the word right past the CF error stub is the DF stub
            word = dbt.cpu.memory.read_word_raw(tb.error_stub + 4)
            instr = decode(word)
            assert instr.op is Op.TRAP and instr.imm == DF_ERROR_TRAP

    def test_shadow_page_mapped_rw(self):
        program, dbt, _ = warm(LOOP)
        from repro.machine.memory import PERM_R, PERM_W
        perms = dbt.cpu.memory.perms_at(SHADOW_BASE)
        assert perms & PERM_R and perms & PERM_W

    def test_shadow_file_tracks_guest_registers(self):
        program, dbt, _ = warm(LOOP)
        mem = dbt.cpu.memory
        for reg in range(14):
            shadow = mem.read_word_raw(SHADOW_BASE + reg * 4)
            assert shadow == dbt.cpu.regs[reg], reg

    def test_shadow_sp_coherent_after_calls(self):
        program = load("186.crafty", "test")
        _, dbt, _ = warm(program)
        shadow_sp = dbt.cpu.memory.read_word_raw(SHADOW_BASE + 15 * 4)
        assert shadow_sp == dbt.cpu.regs[15]

    def test_expansion_factor_reasonable(self):
        program, dbt, result = warm(LOOP)
        guest_bytes = sum(tb.guest_end - tb.guest_start
                          for tb in dbt.blocks.values())
        assert result.cache_bytes / guest_bytes < 12

    def test_composes_with_cf_instrumentation_ranges(self):
        program = assemble(LOOP)
        dbt = Dbt(program, technique=EdgCF(), dataflow=True)
        result = dbt.run()
        assert result.ok
        for tb in dbt.blocks.values():
            assert tb.instrumentation_ranges   # CF code still present


class TestIndirectProtection:
    def test_jump_table_target_checked(self):
        """A corrupted jump-table target register is caught before the
        indirect transfer."""
        program = load("176.gcc", "test")
        cpu, _ = run_native(program)
        _, dbt, result = warm(program)
        assert dbt.cpu.output_values == cpu.output_values
        # now corrupt the target register right before a dispatch
        from repro.faults import RegisterFaultSpec
        fresh = Dbt(program, dataflow=True)
        # r10 holds the dispatch target in the vm kernel
        RegisterFaultSpec(icount=400, reg=10, bit=3).install(fresh.cpu)
        outcome = fresh.run(max_steps=20_000_000)
        # either the duplication check fires, or the strike was benign
        # (dead value) — never silent corruption
        if not outcome.detected_dataflow:
            assert fresh.cpu.output_values == cpu.output_values
