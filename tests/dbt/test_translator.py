"""Block translator internals: layout, maps, exit plans."""

import pytest

from repro.isa import assemble, decode
from repro.isa.opcodes import Op
from repro.checking import EdgCF, Policy, make_technique
from repro.cfg import ExitKind
from repro.dbt import ERROR_TRAP, Dbt, run_dbt


def warm_dbt(source: str, technique=None, **kwargs):
    program = assemble(source)
    dbt = Dbt(program, technique=technique, **kwargs)
    result = dbt.run()
    assert result.ok or result.stop.exit_code == 0
    return program, dbt


class TestDecoding:
    def test_block_ends_at_terminator(self, sum_loop):
        dbt = Dbt(sum_loop)
        block = dbt.translator.decode_guest_block(sum_loop.entry)
        assert block.instructions[-1][1].is_terminator or \
            block.exit_kind is ExitKind.EXIT

    def test_stop_before_respected(self, sum_loop):
        dbt = Dbt(sum_loop)
        block = dbt.translator.decode_guest_block(
            sum_loop.entry, stop_before=sum_loop.entry + 4)
        assert block.end == sum_loop.entry + 4
        assert block.exit_kind is ExitKind.FALLTHROUGH

    def test_exit_syscall_terminates_block(self):
        program, dbt = warm_dbt("movi r1, 0\nsyscall 0\nnop")
        block = dbt.translator.decode_guest_block(program.entry)
        assert block.exit_kind is ExitKind.EXIT


class TestTranslatedBlockLayout:
    def test_error_stub_is_error_trap(self, sum_loop):
        dbt, _ = run_dbt(sum_loop, technique=EdgCF())
        for tb in dbt.blocks.values():
            word = dbt.cpu.memory.read_word_raw(tb.error_stub)
            instr = decode(word)
            assert instr.op is Op.TRAP
            assert instr.imm == ERROR_TRAP

    def test_addr_map_block_start_is_cache_start(self, sum_loop):
        dbt, _ = run_dbt(sum_loop, technique=EdgCF())
        for tb in dbt.blocks.values():
            assert tb.addr_map[tb.guest_start] == tb.cache_start

    def test_instrumentation_ranges_cover_checks(self, sum_loop):
        dbt, _ = run_dbt(sum_loop, technique=EdgCF())
        for tb in dbt.blocks.values():
            for check in tb.check_addresses:
                assert tb.is_instrumentation(check)

    def test_null_technique_has_no_instrumentation(self, sum_loop):
        dbt, _ = run_dbt(sum_loop)
        for tb in dbt.blocks.values():
            assert not tb.check_addresses
            # no entry instrumentation range
            assert tb.addr_map[tb.guest_start] == tb.cache_start

    def test_body_instructions_copied_verbatim(self, sum_loop):
        dbt, _ = run_dbt(sum_loop, technique=EdgCF())
        for tb in dbt.blocks.values():
            for guest_addr, cache_addr in tb.addr_map.items():
                guest_instr = sum_loop.instruction_at(guest_addr)
                if guest_instr.is_branch:
                    continue  # terminators are re-planned
                cache_instr = decode(
                    dbt.cpu.memory.read_word_raw(cache_addr))
                if guest_addr != tb.guest_start or \
                        not tb.instrumented_entry:
                    if cache_addr != tb.cache_start or \
                            not tb.check_addresses:
                        pass
                # the mapped instruction for middles is the original
                if guest_addr != tb.guest_start and \
                        guest_addr != tb.guest_terminator:
                    assert cache_instr == guest_instr

    def test_conditional_exit_has_two_slots(self, sum_loop):
        dbt, _ = run_dbt(sum_loop)
        loop_tb = dbt.blocks[sum_loop.symbols["loop"]]
        assert loop_tb.exit_kind is ExitKind.COND
        assert len(loop_tb.exit_slots) == 2
        taken = [s for s in loop_tb.exit_slots
                 if s.cond_site is not None]
        assert len(taken) == 1

    def test_call_exit_pushes_guest_return_address(self, call_program):
        """The guest stack must hold *guest* addresses, not cache
        addresses — architectural transparency."""
        dbt, result = run_dbt(call_program)
        assert result.ok
        # ran to completion with correct output: the ret through the
        # pushed address worked, which requires a guest address the
        # indirect-exit path can map.
        assert dbt.cpu.output_values == [25]


class TestTechniqueIntegration:
    @pytest.mark.parametrize("name", ["ecf", "edgcf", "rcf"])
    def test_every_block_checked_under_allbb(self, sum_loop, name):
        dbt, _ = run_dbt(sum_loop, technique=make_technique(name),
                         policy=Policy.ALLBB)
        for tb in dbt.blocks.values():
            assert tb.check_addresses, tb

    def test_end_policy_checks_only_exit_blocks(self, sum_loop):
        dbt, _ = run_dbt(sum_loop, technique=make_technique("rcf"),
                         policy=Policy.END)
        checked = [tb for tb in dbt.blocks.values()
                   if tb.check_addresses]
        for tb in checked:
            assert tb.exit_kind in (ExitKind.EXIT, ExitKind.HALT)
        assert checked

    def test_updates_present_even_without_checks(self, sum_loop):
        """Policies remove checks, never updates (Section 6)."""
        dbt, _ = run_dbt(sum_loop, technique=make_technique("edgcf"),
                         policy=Policy.END)
        for tb in dbt.blocks.values():
            if tb.exit_kind in (ExitKind.EXIT, ExitKind.HALT):
                continue
            assert tb.instrumentation_ranges, tb
