"""Code cache allocator and Backend optimizer."""

import pytest

from repro.isa import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.registers import PCP, T0
from repro.machine import Memory
from repro.machine.memory import PERM_X
from repro.checking import const_expr, sig_of
from repro.checking.base import LoadSig, RawIns
from repro.dbt import CacheFullError, CodeCache, optimize_items


class TestCodeCache:
    def make(self, size=0x2000):
        memory = Memory(0x200000)
        return CodeCache(memory, base=0x100000, size=size)

    def test_allocate_advances(self):
        cache = self.make()
        first = cache.allocate(4)
        second = cache.allocate(2)
        assert second == first + 16
        assert cache.used == 24

    def test_pages_executable(self):
        cache = self.make()
        assert cache.memory.perms_at(cache.base) & PERM_X

    def test_exhaustion(self):
        cache = self.make(size=0x1000)
        with pytest.raises(CacheFullError):
            cache.allocate(0x1000 // 4 + 1)

    def test_write_read_instruction(self):
        cache = self.make()
        addr = cache.allocate(1)
        instr = Instruction(op=Op.LEA, rd=1, rs=2, imm=5)
        cache.write_instruction(addr, instr)
        assert cache.read_word(addr) == encode(instr)

    def test_flush_resets(self):
        cache = self.make()
        cache.allocate(10)
        cache.flush()
        assert cache.used == 0
        assert cache.contains(cache.base) is False


def identity(addr):
    return addr


class TestBackendOptimizer:
    def test_folds_loadsig_lea3(self):
        items = [
            LoadSig(T0, sig_of(0x40)),
            RawIns(Instruction(op=Op.LEA3, rd=PCP, rs=PCP, rt=T0)),
        ]
        out = optimize_items(items, identity)
        assert len(out) == 1
        instr = out[0].instr
        assert instr.op is Op.LEA and instr.imm == 0x40
        assert (instr.rd, instr.rs) == (PCP, PCP)

    def test_folds_loadsig_lsub_negated(self):
        items = [
            LoadSig(T0, sig_of(0x40)),
            RawIns(Instruction(op=Op.LSUB, rd=PCP, rs=PCP, rt=T0)),
        ]
        out = optimize_items(items, identity)
        assert len(out) == 1
        assert out[0].instr.imm == -0x40

    def test_elides_zero_self_update(self):
        items = [
            LoadSig(T0, const_expr(0)),
            RawIns(Instruction(op=Op.LEA3, rd=PCP, rs=PCP, rt=T0)),
        ]
        assert optimize_items(items, identity) == []

    def test_keeps_large_values(self):
        items = [
            LoadSig(T0, sig_of(0x20000)),   # exceeds imm14
            RawIns(Instruction(op=Op.LEA3, rd=PCP, rs=PCP, rt=T0)),
        ]
        out = optimize_items(items, identity)
        assert len(out) == 2

    def test_no_fold_when_source_is_scratch(self):
        """lea3 rd, T0, T0 must not fold (rs aliases the loaded reg)."""
        items = [
            LoadSig(T0, sig_of(4)),
            RawIns(Instruction(op=Op.LEA3, rd=PCP, rs=T0, rt=T0)),
        ]
        out = optimize_items(items, identity)
        assert len(out) == 2

    def test_unrelated_items_pass_through(self):
        items = [RawIns(Instruction(op=Op.NOP)),
                 LoadSig(T0, sig_of(8))]
        out = optimize_items(items, identity)
        assert len(out) == 2

    def test_algebra_preserved(self):
        """Folded and unfolded sequences compute the same PC' value."""
        from repro.machine import Cpu
        from repro.instrument.lowering import (assign_addresses,
                                               encode_snippet,
                                               lower_items)
        items = [
            LoadSig(T0, sig_of(0x500)),
            RawIns(Instruction(op=Op.LEA3, rd=PCP, rs=PCP, rt=T0)),
            LoadSig(T0, sig_of(0x200)),
            RawIns(Instruction(op=Op.LSUB, rd=PCP, rs=PCP, rt=T0)),
        ]
        results = []
        for variant in (items, optimize_items(items, identity)):
            snippet = lower_items(
                list(variant) + [RawIns(Instruction(op=Op.HALT))],
                compact=True, resolver=identity)
            assign_addresses(snippet, 0x1000)
            cpu = Cpu()
            from repro.machine.memory import PERM_RX
            for addr, instr in encode_snippet(snippet, identity, 0):
                cpu.memory.write_raw(addr, encode(instr).to_bytes(
                    4, "little"))
            cpu.memory.set_perms(0x1000, 0x1000, PERM_RX)
            cpu.pc = 0x1000
            cpu.regs[PCP] = 0x77
            cpu.run()
            results.append(cpu.regs[PCP])
        assert results[0] == results[1] == 0x77 + 0x500 - 0x200
