"""Technique behaviour: transparency (no false positives), flagless
discipline, and the structural claims of the paper."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.flags import Cond
from repro.isa.opcodes import OP_TABLE, Op
from repro.isa.registers import is_host_only_register
from repro.machine import run_native
from repro.checking import (CondDesc, BlockInfo, Policy, UpdateStyle,
                            make_technique)
from repro.checking.base import (ErrorBranch, LabelMark, LoadSig,
                                 LocalBranch, RawIns)
from repro.dbt import run_dbt
from repro.instrument import instrument_program
from repro.workloads import generate_program

BLOCK = BlockInfo(start=0x1000)
TAKEN, FALL = 0x2000, 0x1010
COND = CondDesc(cond=Cond.LE)


def flat_instructions(items):
    out = []
    for item in items:
        if isinstance(item, RawIns):
            out.append(item.instr)
    return out


def touched_registers(items):
    regs = set()
    for item in items:
        if isinstance(item, RawIns):
            regs.add(item.instr.rd)
        elif isinstance(item, LoadSig):
            regs.add(item.rd)
    return regs


@pytest.mark.parametrize("name", ["edgcf", "rcf", "ecf"])
class TestFlaglessDiscipline:
    """Paper Section 5.1: the DBT techniques must not clobber FLAGS."""

    def test_entry_items_flagless(self, name):
        technique = make_technique(name)
        for check in (True, False):
            for instr in flat_instructions(
                    technique.entry_items(BLOCK, check)):
                assert not OP_TABLE[instr.op].sets_flags, instr

    def test_exit_items_flagless(self, name):
        technique = make_technique(name)
        items = technique.exit_items_cond(BLOCK, TAKEN, FALL, COND)
        for instr in flat_instructions(items):
            assert not OP_TABLE[instr.op].sets_flags, instr

    def test_instrumentation_uses_host_registers_only(self, name):
        technique = make_technique(name)
        items = (technique.prologue(BLOCK.start)
                 + technique.entry_items(BLOCK, True)
                 + technique.exit_items_cond(BLOCK, TAKEN, FALL, COND)
                 + technique.exit_items_direct(BLOCK, TAKEN)
                 + technique.exit_items_indirect(BLOCK, 20))
        for reg in touched_registers(items):
            assert is_host_only_register(reg), reg


class TestStructuralClaims:
    def test_rcf_inserts_more_than_edgcf(self):
        """Paper Section 6: RCF inserts more instructions per block."""
        def static_count(name):
            technique = make_technique(name)
            return (len(technique.entry_items(BLOCK, True))
                    + len(technique.exit_items_cond(BLOCK, TAKEN, FALL,
                                                    COND)))
        assert static_count("rcf") > static_count("edgcf")

    def test_cmov_style_has_no_inserted_branch(self):
        technique = make_technique("edgcf",
                                   update_style=UpdateStyle.CMOV)
        items = technique.exit_items_cond(BLOCK, TAKEN, FALL, COND)
        assert not any(isinstance(item, LocalBranch) for item in items)

    def test_jcc_style_inserts_mirror_branch(self):
        technique = make_technique("edgcf", update_style=UpdateStyle.JCC)
        items = technique.exit_items_cond(BLOCK, TAKEN, FALL, COND)
        assert any(isinstance(item, LocalBranch) for item in items)
        assert any(isinstance(item, LabelMark) for item in items)

    def test_cmov_falls_back_for_register_conditions(self):
        technique = make_technique("ecf", update_style=UpdateStyle.CMOV)
        reg_cond = CondDesc(reg_op=Op.JRZ, reg=3)
        items = technique.exit_items_cond(BLOCK, TAKEN, FALL, reg_cond)
        assert any(isinstance(item, LocalBranch) for item in items)

    def test_check_is_error_branch(self):
        for name in ("edgcf", "rcf", "ecf"):
            technique = make_technique(name)
            items = technique.entry_items(BLOCK, True)
            assert sum(isinstance(i, ErrorBranch) for i in items) == 1
            unchecked = technique.entry_items(BLOCK, False)
            assert not any(isinstance(i, ErrorBranch)
                           for i in unchecked)

    def test_edgcf_checks_pcp_directly(self):
        """EdgCF's zero-invariant lets it check with jrnz on PC'."""
        from repro.isa.registers import PCP
        technique = make_technique("edgcf")
        [check] = [i for i in technique.entry_items(BLOCK, True)
                   if isinstance(i, ErrorBranch)]
        assert check.rd == PCP

    def test_rcf_check_preserves_pcp(self):
        """RCF compares in a scratch register so PC' keeps holding the
        entrance-region signature (what protects the check branch)."""
        from repro.isa.registers import PCP
        technique = make_technique("rcf")
        [check] = [i for i in technique.entry_items(BLOCK, True)
                   if isinstance(i, ErrorBranch)]
        assert check.rd != PCP


class TestTransparency:
    """Instrumentation must not change fault-free behaviour — the
    necessary condition, as an executable property."""

    @pytest.mark.parametrize("name", ["edgcf", "rcf", "ecf"])
    @pytest.mark.parametrize("style", [UpdateStyle.JCC, UpdateStyle.CMOV])
    def test_dbt_preserves_output(self, call_program, name, style):
        cpu, _ = run_native(call_program)
        technique = make_technique(name, update_style=style)
        dbt, result = run_dbt(call_program, technique=technique)
        assert result.ok
        assert dbt.cpu.output_values == cpu.output_values

    @pytest.mark.parametrize("name", ["edgcf", "rcf", "ecf", "cfcss",
                                      "ecca"])
    def test_static_preserves_output(self, diamond_program, name):
        cpu, _ = run_native(diamond_program)
        instrumented = instrument_program(diamond_program, name)
        cpu2, stop2 = run_native(instrumented.program)
        assert stop2.exit_code == 0
        assert not cpu2.cfc_error
        assert cpu2.output_values == cpu.output_values

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 300), st.sampled_from(["edgcf", "rcf", "ecf"]))
    def test_dbt_transparency_property(self, seed, name):
        program = generate_program(seed, statements=12, with_calls=True)
        cpu, stop = run_native(program, max_steps=500_000)
        assert stop.reason.value == "halted"
        dbt, result = run_dbt(program,
                              technique=make_technique(name))
        assert result.ok, result.stop
        assert dbt.cpu.output_values == cpu.output_values

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 300), st.sampled_from(["cfcss", "ecca", "edgcf",
                                                 "rcf", "ecf"]))
    def test_static_transparency_property(self, seed, name):
        program = generate_program(seed, statements=10, with_calls=False)
        cpu, stop = run_native(program, max_steps=500_000)
        assert stop.reason.value == "halted"
        instrumented = instrument_program(program, name)
        cpu2, stop2 = run_native(instrumented.program,
                                 max_steps=2_000_000)
        assert stop2.reason.value == "halted"
        assert not cpu2.cfc_error
        assert cpu2.output_values == cpu.output_values

    @pytest.mark.parametrize("policy", list(Policy))
    def test_policies_preserve_output(self, call_program, policy):
        cpu, _ = run_native(call_program)
        dbt, result = run_dbt(call_program,
                              technique=make_technique("rcf"),
                              policy=policy)
        assert result.ok
        assert dbt.cpu.output_values == cpu.output_values
