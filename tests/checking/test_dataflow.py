"""Data-flow duplication (the paper's future-work extension)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OP_TABLE, Op
from repro.isa.registers import DF2, SDW, is_host_only_register
from repro.machine import run_native
from repro.checking import EdgCF, RCF
from repro.checking.dataflow import DataFlowDuplication
from repro.dbt import Dbt
from repro.faults import (Outcome, Pipeline, PipelineConfig,
                          RegisterFaultSpec, run_data_fault_campaign)
from repro.workloads import generate_program, load


class TestTransform:
    def setup_method(self):
        self.df = DataFlowDuplication()

    def _instructions(self, seq):
        return [e for e in seq if isinstance(e, Instruction)]

    def test_alu_duplicated_before_original(self):
        instr = Instruction(op=Op.ADD, rd=1, rs=2, rt=3)
        seq = self.df.transform(0x1000, instr)
        assert seq[-1] == instr
        dup = [e for e in self._instructions(seq) if e.op is Op.ADD
               and e is not instr]
        assert dup and dup[0].rd == DF2

    def test_alu_shadow_uses_shadow_inputs(self):
        instr = Instruction(op=Op.MUL, rd=1, rs=2, rt=3)
        seq = self._instructions(self.df.transform(0, instr))
        loads = [e for e in seq if e.op is Op.LD and e.rs == SDW]
        assert {e.imm for e in loads} == {2 * 4, 3 * 4}

    def test_store_checks_value_and_address(self):
        instr = Instruction(op=Op.ST, rd=1, rs=2, imm=8)
        seq = self.df.transform(0, instr)
        markers = [e for e in seq
                   if e is DataFlowDuplication.CHECK_BRANCH]
        assert len(markers) == 2
        assert seq[-1] == instr      # store commits only after checks

    def test_load_copies_result_to_shadow(self):
        instr = Instruction(op=Op.LD, rd=4, rs=5, imm=0)
        seq = self._instructions(self.df.transform(0, instr))
        copies = [e for e in seq if e.op is Op.ST and e.rs == SDW
                  and e.imm == 4 * 4]
        assert copies

    def test_compare_checks_operands(self):
        instr = Instruction(op=Op.CMP, rs=1, rt=2)
        seq = self.df.transform(0, instr)
        markers = [e for e in seq
                   if e is DataFlowDuplication.CHECK_BRANCH]
        assert len(markers) == 2

    def test_syscall_checks_argument(self):
        instr = Instruction(op=Op.SYSCALL, imm=4)
        seq = self.df.transform(0, instr)
        assert DataFlowDuplication.CHECK_BRANCH in seq

    def test_original_flags_last(self):
        """The original must be the last flag-writing instruction so
        guest FLAGS semantics survive duplication."""
        for op in (Op.ADD, Op.SUB, Op.CMP, Op.ADDI, Op.MUL):
            fmt = OP_TABLE[op].fmt.value
            instr = Instruction(op=op, rd=1, rs=2,
                                rt=3 if fmt == "r3" else 0,
                                imm=4 if fmt == "ri" else 0)
            seq = [e for e in self.df.transform(0, instr)
                   if isinstance(e, Instruction)]
            flagged = [e for e in seq if OP_TABLE[e.op].sets_flags]
            assert flagged[-1] == instr

    def test_duplication_uses_reserved_registers(self):
        for op, instr in (
                (Op.ADD, Instruction(op=Op.ADD, rd=1, rs=2, rt=3)),
                (Op.LD, Instruction(op=Op.LD, rd=1, rs=2, imm=0)),
                (Op.MOV, Instruction(op=Op.MOV, rd=1, rs=2))):
            for e in self.df.transform(0, instr):
                if isinstance(e, Instruction) and e is not instr:
                    assert (is_host_only_register(e.rd)
                            or e.op in (Op.ST,)), e

    def test_nop_passthrough(self):
        instr = Instruction(op=Op.NOP)
        assert self.df.transform(0, instr) == [instr]


class TestTransparency:
    @pytest.mark.parametrize("name", ["254.gap", "171.swim",
                                      "176.gcc", "186.crafty"])
    def test_suite_equivalence(self, name):
        program = load(name, "test")
        cpu, _ = run_native(program, max_steps=3_000_000)
        dbt = Dbt(program, dataflow=True)
        result = dbt.run(max_steps=30_000_000)
        assert result.ok and not result.detected_dataflow
        assert dbt.cpu.output_values == cpu.output_values

    @pytest.mark.parametrize("technique", [EdgCF, RCF])
    def test_composes_with_control_flow_checking(self, technique):
        program = load("254.gap", "test")
        cpu, _ = run_native(program)
        dbt = Dbt(program, technique=technique(), dataflow=True)
        result = dbt.run(max_steps=30_000_000)
        assert result.ok
        assert not result.detected_error
        assert not result.detected_dataflow
        assert dbt.cpu.output_values == cpu.output_values

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 200))
    def test_random_program_equivalence(self, seed):
        program = generate_program(seed, statements=10, with_calls=True)
        cpu, stop = run_native(program, max_steps=500_000)
        assert stop.reason.value == "halted"
        dbt = Dbt(program, dataflow=True)
        result = dbt.run(max_steps=20_000_000)
        assert result.ok and not result.detected_dataflow
        assert dbt.cpu.output_values == cpu.output_values

    def test_duplication_costs_cycles(self):
        program = load("254.gap", "test")
        plain = Dbt(program)
        plain.run()
        protected = Dbt(program, dataflow=True)
        protected.run()
        assert protected.cpu.cycles > plain.cpu.cycles * 1.5


class TestDetection:
    def test_register_fault_detected(self):
        program = load("254.gap", "test")
        spec = RegisterFaultSpec(icount=500, reg=1, bit=7)
        dbt = Dbt(program, dataflow=True)
        spec.install(dbt.cpu)
        result = dbt.run(max_steps=30_000_000)
        assert result.detected_dataflow

    def test_same_fault_corrupts_unprotected_run(self):
        program = load("254.gap", "test")
        golden = Dbt(program)
        golden.run()
        spec = RegisterFaultSpec(icount=500, reg=1, bit=7)
        dbt = Dbt(program)
        spec.install(dbt.cpu)
        result = dbt.run(max_steps=30_000_000)
        assert not result.detected_dataflow
        assert dbt.cpu.output_values != golden.cpu.output_values

    def test_campaign_kills_all_sdc(self):
        """Every register fault that corrupts the unprotected run is
        caught by duplication."""
        program = load("254.gap", "test")
        base = run_data_fault_campaign(
            program, PipelineConfig("dbt", None), count=25, seed=4)
        protected = run_data_fault_campaign(
            program, PipelineConfig("dbt", None, dataflow=True),
            count=25, seed=4)
        assert base.sdc > 0
        assert protected.sdc == 0

    def test_dead_register_fault_benign(self):
        """A strike on a register that is rewritten before any use is
        masked — and must not false-positive."""
        program = load("254.gap", "test")
        result = run_data_fault_campaign(
            program, PipelineConfig("dbt", None, dataflow=True),
            count=25, seed=4)
        assert result.outcomes.get(Outcome.BENIGN, 0) > 0

    def test_golden_run_has_no_false_positive(self):
        program = load("197.parser", "test")
        pipeline = Pipeline(program,
                            PipelineConfig("dbt", "rcf", dataflow=True))
        record = pipeline.run(None)
        assert record.outcome is Outcome.BENIGN
