"""SigExpr algebra, CondDesc, and technique factory tests."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.flags import Cond
from repro.isa.opcodes import JCC_BY_COND, Op
from repro.checking import (CondDesc, Policy, UpdateStyle,
                            const_expr, make_technique, sig_of)
from repro.checking.base import fresh_label


class TestSigExpr:
    def test_const(self):
        assert const_expr(7).resolve(lambda a: 0) == 7

    def test_sig_of(self):
        assert sig_of(0x1000).resolve(lambda a: a) == 0x1000

    def test_addition(self):
        expr = sig_of(0x10) + sig_of(0x20)
        assert expr.resolve(lambda a: a) == 0x30

    def test_subtraction(self):
        expr = sig_of(0x30) - sig_of(0x10)
        assert expr.resolve(lambda a: a) == 0x20

    def test_negation(self):
        assert (-sig_of(8)).resolve(lambda a: a) == -8

    def test_mixed(self):
        expr = sig_of(0x100) - sig_of(0x40) + const_expr(1)
        assert expr.resolve(lambda a: a) == 0xC1

    def test_is_concrete(self):
        assert const_expr(5).is_concrete
        assert not sig_of(4).is_concrete

    @given(st.integers(-1000, 1000), st.integers(0, 100),
           st.integers(0, 100))
    def test_linear_resolution(self, const, a, b):
        expr = const_expr(const) + sig_of(a) - sig_of(b)
        mapping = {a: a * 3, b: b * 3}
        assert expr.resolve(lambda k: mapping[k]) == const + 3 * a - 3 * b


class TestCondDesc:
    def test_flags_mirror(self):
        desc = CondDesc(cond=Cond.LE)
        branch = desc.mirror_branch("skip")
        assert branch.op is JCC_BY_COND[Cond.LE]
        assert branch.label == "skip"

    def test_regzero_mirror(self):
        desc = CondDesc(reg_op=Op.JRNZ, reg=5)
        branch = desc.mirror_branch("skip")
        assert branch.op is Op.JRNZ
        assert branch.rd == 5

    def test_is_flags(self):
        assert CondDesc(cond=Cond.Z).is_flags
        assert not CondDesc(reg_op=Op.JRZ, reg=1).is_flags


class TestFactory:
    @pytest.mark.parametrize("name", ["edgcf", "rcf", "ecf",
                                      "edgcf-naive"])
    def test_block_local_techniques(self, name):
        technique = make_technique(name)
        assert technique.name == name
        assert not technique.requires_whole_cfg

    @pytest.mark.parametrize("name", ["cfcss", "ecca"])
    def test_whole_cfg_requires_cfg(self, name):
        with pytest.raises(ValueError, match="whole CFG"):
            make_technique(name)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown technique"):
            make_technique("bogus")

    def test_update_style_plumbs_through(self):
        technique = make_technique("edgcf",
                                   update_style=UpdateStyle.CMOV)
        assert technique.update_style is UpdateStyle.CMOV

    def test_whole_cfg_with_cfg(self, sum_loop):
        from repro.cfg import build_cfg
        cfg = build_cfg(sum_loop)
        for name in ("cfcss", "ecca"):
            technique = make_technique(name, cfg=cfg)
            assert technique.requires_whole_cfg
            assert technique.clobbers_flags


class TestPolicies:
    def test_allbb_checks_everything(self, sum_loop):
        from repro.cfg import build_cfg
        cfg = build_cfg(sum_loop)
        assert all(Policy.ALLBB.should_check(b) for b in cfg)

    def test_ret_be_checks_loop_blocks(self, sum_loop):
        from repro.cfg import build_cfg
        cfg = build_cfg(sum_loop)
        loop = cfg.block_at(sum_loop.symbols["loop"])
        assert Policy.RET_BE.should_check(loop)
        assert not Policy.RET_BE.should_check(cfg.entry_block)

    def test_ret_checks_return_blocks(self, call_program):
        from repro.cfg import build_cfg
        cfg = build_cfg(call_program)
        ret_blocks = [b for b in cfg if b.ends_in_return]
        assert all(Policy.RET.should_check(b) for b in ret_blocks)
        loopish = [b for b in cfg
                   if not b.ends_in_return
                   and b.exit_kind.value not in ("halt", "exit")]
        assert not any(Policy.RET.should_check(b) for b in loopish)

    def test_end_checks_only_exit(self, sum_loop):
        from repro.cfg import build_cfg
        cfg = build_cfg(sum_loop)
        checked = [b for b in cfg if Policy.END.should_check(b)]
        assert checked == cfg.exit_blocks()

    def test_policy_nesting(self, tiny_suite_programs):
        """Check sets nest: END ⊆ RET ⊆ RET_BE ⊆ ALLBB."""
        from repro.cfg import build_cfg
        for program in tiny_suite_programs.values():
            cfg = build_cfg(program)
            for block in cfg:
                if Policy.END.should_check(block):
                    assert Policy.RET.should_check(block)
                if Policy.RET.should_check(block):
                    assert Policy.RET_BE.should_check(block)
                if Policy.RET_BE.should_check(block):
                    assert Policy.ALLBB.should_check(block)


def test_fresh_labels_unique():
    labels = {fresh_label("x") for _ in range(100)}
    assert len(labels) == 100
