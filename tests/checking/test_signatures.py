"""CFCSS signature classes and ECCA prime assignment."""

from repro.isa import assemble
from repro.cfg import build_cfg
from repro.checking.signatures import (CfcssSignatures, EccaSignatures,
                                       _primes)

FANIN_SRC = """
.entry main
main:
    movi r1, 1
    cmpi r1, 0
    jz b2
b1:
    addi r1, r1, 1
    jmp join
b2:
    addi r1, r1, 2
join:
    syscall 4
    movi r1, 0
    syscall 0
"""


class TestCfcss:
    def test_fanin_predecessors_share_signature(self):
        program = assemble(FANIN_SRC)
        cfg = build_cfg(program)
        sigs = CfcssSignatures.assign(cfg)
        join = cfg.block_at(program.symbols["join"])
        pred_sigs = {sigs.sig[p] for p in join.predecessors}
        assert len(pred_sigs) == 1

    def test_signatures_nonzero(self, sum_loop):
        cfg = build_cfg(sum_loop)
        sigs = CfcssSignatures.assign(cfg)
        assert all(value > 0 for value in sigs.sig.values())

    def test_d_transforms_pred_to_block(self):
        program = assemble(FANIN_SRC)
        cfg = build_cfg(program)
        sigs = CfcssSignatures.assign(cfg)
        for block in cfg:
            if block.predecessors:
                pred_sig = sigs.sig[block.predecessors[0]]
                assert pred_sig ^ sigs.d_value[block.start] == \
                    sigs.sig[block.start]

    def test_entry_d_seeds_from_zero(self, sum_loop):
        cfg = build_cfg(sum_loop)
        sigs = CfcssSignatures.assign(cfg)
        entry = cfg.entry_block
        if not entry.predecessors:
            assert sigs.d_value[entry.start] == sigs.sig[entry.start]

    def test_aliasing_exists_in_fanin_shapes(self):
        """The aliasing CFCSS suffers from: distinct blocks forced to
        one signature (the D/E blind spot the paper exploits)."""
        program = assemble(FANIN_SRC)
        cfg = build_cfg(program)
        sigs = CfcssSignatures.assign(cfg)
        assert len(set(sigs.sig.values())) < len(sigs.sig)


class TestEcca:
    def test_primes_helper(self):
        assert _primes(5) == [3, 5, 7, 11, 13]

    def test_bids_distinct_primes(self, sum_loop):
        cfg = build_cfg(sum_loop)
        sigs = EccaSignatures.assign(cfg)
        values = list(sigs.bid.values())
        assert len(set(values)) == len(values)
        for value in values:
            assert value >= 3 and all(value % p for p in range(2, value))

    def test_exit_product_divisible_by_each_successor(self, sum_loop):
        cfg = build_cfg(sum_loop)
        sigs = EccaSignatures.assign(cfg)
        for block in cfg:
            if block.successors:
                product = sigs.exit_product(block.successors)
                for successor in block.successors:
                    assert product % sigs.bid[successor] == 0

    def test_category_a_blindness_structural(self):
        """Both directions of a conditional divide the product — the
        arithmetic reason ECCA cannot see mistaken branches."""
        program = assemble(FANIN_SRC)
        cfg = build_cfg(program)
        sigs = EccaSignatures.assign(cfg)
        entry = cfg.entry_block
        assert len(entry.successors) == 2
        product = sigs.exit_product(entry.successors)
        taken, fall = entry.successors
        assert product % sigs.bid[taken] == 0
        assert product % sigs.bid[fall] == 0
