"""CLI smoke tests (python -m repro ...)."""

import json

import pytest

from repro.cli import main

DEMO = """
.entry main
main:
    movi r1, 0
    movi r2, 1
loop:
    add r1, r1, r2
    addi r2, r2, 1
    cmpi r2, 11
    jl loop
    syscall 1
    movi r1, 0
    syscall 0
"""


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.s"
    path.write_text(DEMO)
    return str(path)


class TestRun:
    def test_native(self, demo_file, capsys):
        assert main(["run", demo_file, "--pipeline", "native"]) == 0
        out = capsys.readouterr().out
        assert "55" in out and "halted" in out

    def test_dbt_with_technique(self, demo_file, capsys):
        assert main(["run", demo_file, "-t", "rcf"]) == 0
        assert "detected=False" in capsys.readouterr().out

    def test_static_pipeline(self, demo_file, capsys):
        assert main(["run", demo_file, "--pipeline", "static",
                     "-t", "cfcss"]) == 0
        assert "55" in capsys.readouterr().out

    def test_dataflow_flag(self, demo_file, capsys):
        assert main(["run", demo_file, "--dataflow"]) == 0

    def test_policy_choice(self, demo_file):
        assert main(["run", demo_file, "-t", "rcf",
                     "--policy", "end"]) == 0

    def test_output_gets_exactly_one_trailing_newline(self, tmp_path,
                                                      capsys):
        # PRINT_CHAR of "\n" used to be doubled by the unconditional
        # trailing-newline append
        src = (".entry main\nmain:\n    movi r1, 65\n    syscall 2\n"
               "    movi r1, 10\n    syscall 2\n"
               "    movi r1, 0\n    syscall 0\n")
        path = tmp_path / "newline.s"
        path.write_text(src)
        assert main(["run", str(path), "--pipeline", "native"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("A\n[")
        assert "A\n\n" not in out


class TestObservability:
    def test_run_metrics_snapshot_and_stats(self, demo_file, tmp_path,
                                            capsys):
        metrics = str(tmp_path / "metrics.json")
        assert main(["run", demo_file, "-t", "rcf",
                     "--metrics", metrics]) == 0
        capsys.readouterr()
        assert main(["stats", metrics]) == 0
        out = capsys.readouterr().out
        assert "interp_instructions_total" in out
        assert "dbt_translate_seconds" in out
        assert "dbt.run" in out

    def test_run_prom_export(self, demo_file, tmp_path, capsys):
        metrics = str(tmp_path / "metrics.prom")
        assert main(["run", demo_file, "-t", "rcf",
                     "--metrics", metrics]) == 0
        text = open(metrics).read()
        assert "# TYPE interp_instructions_total counter" in text

    def test_trace_flag_streams_spans(self, demo_file, tmp_path):
        import json
        trace = str(tmp_path / "trace.jsonl")
        assert main(["run", demo_file, "-t", "rcf",
                     "--trace", trace]) == 0
        names = {json.loads(line)["name"]
                 for line in open(trace)}
        assert "dbt.run" in names and "dbt.translate" in names

    def test_coverage_parallel_metrics_merge(self, demo_file, tmp_path,
                                             capsys):
        metrics = str(tmp_path / "metrics.json")
        assert main(["coverage", demo_file, "--per-category", "2",
                     "--no-cache-level", "--jobs", "2",
                     "--metrics", metrics]) == 0
        capsys.readouterr()
        assert main(["stats", metrics]) == 0
        out = capsys.readouterr().out
        assert "campaign_runs_total" in out
        assert "campaign_chunk_seconds" in out

    def test_stats_format_variants(self, demo_file, tmp_path, capsys):
        metrics = str(tmp_path / "metrics.json")
        main(["run", demo_file, "--metrics", metrics])
        capsys.readouterr()
        assert main(["stats", metrics, "--format", "prom"]) == 0
        assert "# TYPE" in capsys.readouterr().out
        assert main(["stats", metrics, "--format", "jsonl"]) == 0
        assert '"type"' in capsys.readouterr().out

    def test_stats_rejects_non_snapshot(self, tmp_path, capsys):
        path = tmp_path / "bogus.txt"
        path.write_text("# not json\n")
        assert main(["stats", str(path)]) == 1
        assert "not a JSON" in capsys.readouterr().err

    def test_no_flags_means_observability_off(self, demo_file, capsys):
        from repro import obs
        assert main(["run", demo_file]) == 0
        assert obs.get_registry() is None


class TestDisasm:
    def test_listing(self, demo_file, capsys):
        assert main(["disasm", demo_file]) == 0
        out = capsys.readouterr().out
        assert "main:" in out and "jl" in out


class TestInject:
    def test_offset_fault_detected(self, demo_file, capsys):
        code = main(["inject", demo_file, "-t", "edgcf",
                     "--branch", "loop+12", "--occurrence", "2",
                     "--fault", "offset:0"])
        assert code == 0
        assert "detected_signature" in capsys.readouterr().out

    def test_sdc_exit_code(self, demo_file, capsys):
        code = main(["inject", demo_file,
                     "--branch", "loop+12", "--occurrence", "2",
                     "--fault", "offset:0"])
        out = capsys.readouterr().out
        assert "sdc" in out
        assert code == 2

    def test_direction_fault(self, demo_file, capsys):
        assert main(["inject", demo_file, "-t", "rcf",
                     "--branch", "loop+12", "--fault",
                     "direction"]) == 0

    def test_register_fault_with_dataflow(self, demo_file, capsys):
        code = main(["inject", demo_file, "--dataflow",
                     "--fault", "register:1,8,20"])
        assert code == 0
        assert "detected" in capsys.readouterr().out

    def test_redirect_symbolic(self, demo_file, capsys):
        assert main(["inject", demo_file, "-t", "edgcf",
                     "--branch", "loop+12", "--fault",
                     "redirect:main"]) == 0

    def test_unknown_fault_kind(self, demo_file):
        with pytest.raises(SystemExit):
            main(["inject", demo_file, "--fault", "bogus:1"])

    def test_journal_and_resume(self, demo_file, tmp_path, capsys):
        journal = str(tmp_path / "inject.jsonl")
        args = ["inject", demo_file, "-t", "edgcf",
                "--branch", "loop+12", "--occurrence", "2",
                "--fault", "offset:0", "--fault", "offset:1",
                "--journal", journal]
        assert main(args) == 0
        first = capsys.readouterr().out
        lines = open(journal).readlines()
        assert len(lines) == 2  # header + one chunk
        assert json.loads(lines[0])["header"]["backend"] == "interp"
        assert main(args + ["--resume"]) == 0
        assert capsys.readouterr().out == first
        # a resume with a different backend must be refused
        assert main(args + ["--resume", "--backend", "block"]) == 2

    def test_retries_and_timeout_flags(self, demo_file):
        assert main(["inject", demo_file, "-t", "rcf",
                     "--branch", "loop+12", "--fault", "direction",
                     "--retries", "1", "--timeout", "30"]) == 0


class TestAnalysis:
    def test_errormodel(self, demo_file, capsys):
        assert main(["errormodel", demo_file]) == 0
        out = capsys.readouterr().out
        assert "Category A" in out and "No Error" in out

    def test_coverage(self, demo_file, capsys):
        assert main(["coverage", demo_file, "--per-category", "2",
                     "--no-cache-level"]) == 0
        assert "configuration" in capsys.readouterr().out

    def test_coverage_journal_resume(self, demo_file, tmp_path,
                                     capsys):
        journal = str(tmp_path / "coverage.jsonl")
        args = ["coverage", demo_file, "--per-category", "2",
                "--no-cache-level", "--journal", journal]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert open(journal).read().strip()
        assert main(args + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_verify_accepts_resilience_flags(self, demo_file, capsys):
        assert main(["verify", demo_file, "-t", "edgcf",
                     "--retries", "1", "--timeout", "60"]) == 0
        assert "0 violations" in capsys.readouterr().out

    def test_suite_listing(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "164.gzip" in out and "171.swim" in out
