"""BlockCompileBackend: transparency against the reference interpreter.

The backend's contract is byte-identical observable behaviour —
architectural state, icount/cycles, StopInfo, hook and profiler
callbacks — with the only difference being wall-clock.  These tests
drive both backends over the same programs and diff everything.
"""

import pytest

from repro.exec import (BACKEND_NAMES, InterpBackend, create_backend,
                        install_backend)
from repro.exec.block import BlockCompileBackend, clear_code_cache
from repro.faults.cache import config_key
from repro.faults.campaign import PipelineConfig
from repro.fuzz.generator import FuzzKnobs, generate_program
from repro.fuzz.oracle import capture_native
from repro.isa import assemble
from repro.machine import BranchProfiler, Cpu, StopReason, run_native
from repro.workloads import load

PARITY_PROGRAMS = 200
MAX_STEPS = 200_000


def _fresh(program, backend):
    cpu = Cpu()
    install_backend(cpu, backend)
    cpu.load_program(program, executable_text=True)
    return cpu


def _state(cpu, stop):
    return (stop.reason, stop.pc, stop.fault, stop.fault_addr,
            stop.trap_no, stop.exit_code, cpu.icount, cpu.cycles,
            cpu.flags, tuple(cpu.regs), tuple(cpu.output_values),
            cpu.output)


class TestWiring:
    def test_backend_names(self):
        assert BACKEND_NAMES == ("interp", "block")

    def test_create_backend(self):
        assert isinstance(create_backend("interp"), InterpBackend)
        assert isinstance(create_backend("block"), BlockCompileBackend)
        with pytest.raises(ValueError):
            create_backend("jit")

    def test_install_interp_is_noop(self):
        cpu = Cpu()
        assert install_backend(cpu, "interp") is None
        assert cpu.backend is None

    def test_install_block_claims_cpu(self):
        cpu = Cpu()
        backend = install_backend(cpu, "block")
        assert cpu.backend is backend
        assert cpu.memory.perm_watch is not None

    def test_config_key_records_backend(self):
        key = config_key(PipelineConfig("dbt", "rcf", backend="block"))
        assert key[-1] == "block"
        assert config_key(PipelineConfig("dbt", "rcf"))[-1] == "interp"

    def test_label_suffix(self):
        assert PipelineConfig("dbt", "rcf").label() == "dbt/rcf/allbb"
        assert (PipelineConfig("dbt", "rcf", backend="block").label()
                == "dbt/rcf/allbb@block")


class TestDigestParity:
    def test_seeded_program_parity(self):
        """The acceptance bar: >=200 generator programs, byte-identical
        RunDigests on both backends."""
        knobs = FuzzKnobs()
        for seed in range(PARITY_PROGRAMS):
            program = generate_program(seed, knobs)
            ref = capture_native(program, MAX_STEPS)
            blk = capture_native(program, MAX_STEPS, backend="block")
            assert blk == ref, f"seed {seed} diverged"

    def test_step_limit_sweep(self):
        """STEP_LIMIT stops must land on the exact same instruction:
        batched charging may never over- or under-run the budget."""
        knobs = FuzzKnobs()
        for seed in (3, 17, 29):
            program = generate_program(seed, knobs)
            for limit in range(1, 300, 7):
                ref = capture_native(program, limit)
                blk = capture_native(program, limit, backend="block")
                assert blk == ref, f"seed {seed} limit {limit}"

    def test_workload_parity(self):
        for name in ("254.gap", "183.equake", "176.gcc", "181.mcf"):
            program = load(name, "test")
            ref_cpu, ref_stop = run_native(program)
            blk_cpu, blk_stop = run_native(program, backend="block")
            assert _state(blk_cpu, blk_stop) == _state(ref_cpu, ref_stop)


class TestFaultParity:
    def test_mid_block_access_fault(self):
        src = """
        .entry main
        main:
            movi r1, 1
            movi r2, 2
            const r3, 0x7ffffff0
            ld r4, r3, 64
            movi r5, 5
            syscall 0
        """
        program = assemble(src, name="fault")
        ref_cpu, ref_stop = run_native(program)
        blk_cpu, blk_stop = run_native(program, backend="block")
        assert ref_stop.reason is StopReason.FAULT
        assert _state(blk_cpu, blk_stop) == _state(ref_cpu, ref_stop)

    def test_div_by_zero(self):
        src = """
        .entry main
        main:
            movi r1, 9
            movi r2, 0
            div r3, r1, r2
            syscall 0
        """
        program = assemble(src, name="dbz")
        ref_cpu, ref_stop = run_native(program)
        blk_cpu, blk_stop = run_native(program, backend="block")
        assert ref_stop.fault is not None
        assert _state(blk_cpu, blk_stop) == _state(ref_cpu, ref_stop)

    def test_scheduled_fault_fires_at_exact_icount(self):
        from repro.faults.injector import RegisterFaultSpec
        program = load("254.gap", "test")
        for icount in (0, 1, 7, 100, 1003):
            states = []
            for backend in BACKEND_NAMES:
                cpu = _fresh(program, backend)
                RegisterFaultSpec(icount=icount, reg=1, bit=3).install(cpu)
                stop = cpu.run(max_steps=MAX_STEPS)
                states.append(_state(cpu, stop))
            assert states[0] == states[1], f"icount {icount}"


class TestHookParity:
    def test_pre_branch_hook_sees_identical_stream(self):
        program = load("254.gap", "test")
        streams = []
        for backend in BACKEND_NAMES:
            calls = []
            cpu = _fresh(program, backend)
            cpu.pre_branch_hook = (
                lambda c, pc, instr: calls.append(
                    (pc, c.icount, c.cycles, instr.op)))
            stop = cpu.run(max_steps=MAX_STEPS)
            streams.append((calls, _state(cpu, stop)))
        assert streams[0] == streams[1]

    def test_profiler_counts_identical(self):
        program = load("254.gap", "test")
        profiles = []
        for backend in BACKEND_NAMES:
            profiler = BranchProfiler()
            cpu = _fresh(program, backend)
            cpu.branch_profiler = profiler
            cpu.run(max_steps=MAX_STEPS)
            profiles.append({pc: (s.executions, s.taken)
                             for pc, s in profiler.branches.items()})
        assert profiles[0] == profiles[1]

    def test_hook_replacement_applies(self):
        """A hook substituting the branch instruction (the injector's
        mechanism) must behave identically mid-run on both backends."""
        from repro.faults.injector import (DirectionFault, FaultSpec,
                                           NativeInjector)
        program = load("254.gap", "test")
        branch_pcs = sorted(
            pc for pc in range(program.text_base,
                               program.text_base + len(program.text), 4))
        states = []
        for backend in BACKEND_NAMES:
            cpu = _fresh(program, backend)
            profiler = BranchProfiler()
            cpu.branch_profiler = profiler
            cpu.run(max_steps=MAX_STEPS)
            executed = [pc for pc, s in profiler.branches.items()
                        if s.executions > 2 and s.instr.meta.cond]
            site = sorted(executed)[0]
            spec = FaultSpec(site, 2, DirectionFault(taken=None))
            cpu = _fresh(program, backend)
            injector = NativeInjector(spec, program)
            injector.install(cpu)
            stop = cpu.run(max_steps=MAX_STEPS)
            assert injector.fired
            states.append(_state(cpu, stop))
        assert states[0] == states[1]
        assert branch_pcs  # site enumeration sanity

    def test_fired_hook_retires_when_installed_directly(self):
        from repro.faults.injector import (DirectionFault, FaultSpec,
                                           NativeInjector)
        program = load("254.gap", "test")
        profiler = BranchProfiler()
        cpu = _fresh(program, "interp")
        cpu.branch_profiler = profiler
        cpu.run(max_steps=MAX_STEPS)
        site = sorted(pc for pc, s in profiler.branches.items()
                      if s.executions > 2 and s.instr.meta.cond)[0]
        cpu = _fresh(program, "block")
        injector = NativeInjector(FaultSpec(site, 1,
                                            DirectionFault(taken=None)),
                                  program)
        injector.install(cpu)
        cpu.run(max_steps=MAX_STEPS)
        assert injector.fired
        assert cpu.pre_branch_hook is None  # retired after firing

    def test_hooked_mode_uses_unfolded_blocks(self):
        program = load("254.gap", "test")
        cpu = _fresh(program, "block")
        cpu.pre_branch_hook = lambda c, pc, instr: None
        cpu.run(max_steps=MAX_STEPS)
        backend = cpu.backend
        assert backend.hooked_blocks and not backend.blocks
        # unfolded variants stop at the first terminator: no loops
        assert not any(b.loop for b in backend.hooked_blocks.values())


class TestCompilation:
    def test_loop_trace_compiled(self):
        program = load("254.gap", "test")
        cpu = _fresh(program, "block")
        cpu.run(max_steps=MAX_STEPS)
        assert any(b.loop for b in cpu.backend.blocks.values())

    def test_stats_shape(self):
        program = load("254.gap", "test")
        cpu = _fresh(program, "block")
        cpu.run(max_steps=MAX_STEPS)
        stats = cpu.backend.stats()
        assert stats["blocks_compiled"] > 0
        assert stats["block_runs"] > 0
        assert stats["fused_pairs"] > 0
        assert stats["compile_seconds"] > 0

    def test_code_cache_shared_across_instances(self):
        clear_code_cache()
        program = load("254.gap", "test")
        cpu = _fresh(program, "block")
        cpu.run(max_steps=MAX_STEPS)
        cold = cpu.backend.compile_seconds
        cpu = _fresh(program, "block")
        cpu.run(max_steps=MAX_STEPS)
        warm = cpu.backend.compile_seconds
        assert warm < cold  # second instance reuses cached code objects

    def test_obs_counters_emitted(self):
        from repro import obs
        program = load("254.gap", "test")
        registry = obs.MetricsRegistry()
        obs.install(registry)
        try:
            run_native(program, backend="block")
        finally:
            obs.uninstall()
        snap = registry.snapshot()
        names = {c["name"] for c in snap["counters"]}
        assert "exec_blocks_compiled_total" in names
        assert "exec_block_runs_total" in names
