"""HotBlockProfiler: exact attribution on every execution backend.

The acceptance bar is equality, not approximation: the per-block
icount/cycle sums must equal an *uninstrumented* run's final
``cpu.icount``/``cpu.cycles`` to the instruction, on both the
reference interpreter and the block-compiling backend, and (after
reverse-mapping) under the DBT.
"""

import pytest

from repro.exec import BACKEND_NAMES
from repro.exec.profiler import (BlockProfile, HotBlockProfiler,
                                 profile_dbt, profile_native)
from repro.machine import BranchProfiler, StopReason, run_native
from repro.workloads import load

PROGRAMS = ("183.equake", "181.mcf", "164.gzip")
MAX_STEPS = 300_000


def _sums(profiler):
    icount = sum(cell[0] for cell in profiler.samples.values())
    cycles = sum(cell[1] for cell in profiler.samples.values())
    return icount, cycles


class TestExactTotals:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("name", PROGRAMS)
    def test_totals_equal_uninstrumented_run(self, name, backend):
        program = load(name)
        bare_cpu, bare_stop = run_native(program, max_steps=MAX_STEPS,
                                         backend=backend)
        cpu, stop, profiler = profile_native(program, backend=backend,
                                             max_steps=MAX_STEPS)
        assert stop.reason == bare_stop.reason
        assert (cpu.icount, cpu.cycles) == \
            (bare_cpu.icount, bare_cpu.cycles)
        assert profiler.total_icount == bare_cpu.icount
        assert profiler.total_cycles == bare_cpu.cycles
        assert _sums(profiler) == (bare_cpu.icount, bare_cpu.cycles)

    @pytest.mark.parametrize("name", PROGRAMS)
    def test_backends_attribute_identically(self, name):
        program = load(name)
        _, _, interp = profile_native(program, backend="interp",
                                      max_steps=MAX_STEPS)
        _, _, block = profile_native(program, backend="block",
                                     max_steps=MAX_STEPS)
        assert {pc: tuple(cell) for pc, cell in interp.samples.items()} \
            == {pc: tuple(cell) for pc, cell in block.samples.items()}

    @pytest.mark.parametrize("name", PROGRAMS)
    def test_dbt_mapped_totals_exact(self, name):
        program = load(name)
        dbt, result, profiler = profile_dbt(program,
                                            max_steps=MAX_STEPS)
        assert profiler.total_icount == dbt.cpu.icount
        assert profiler.total_cycles == dbt.cpu.cycles
        assert _sums(profiler) == (dbt.cpu.icount, dbt.cpu.cycles)
        # Mapping folds keys but never loses cost: every sample is in
        # a program block or the (outside text) bucket.
        profiles = profiler.block_profiles(program)
        assert sum(p.icount for p in profiles) == profiler.total_icount
        assert sum(p.cycles for p in profiles) == profiler.total_cycles


class TestChaining:
    def test_chained_branch_profiler_still_fed(self):
        program = load("183.equake")
        baseline = BranchProfiler()
        run_native(load("183.equake"), max_steps=MAX_STEPS,
                   profiler=baseline)

        chained = BranchProfiler()
        from repro.machine import Cpu
        cpu = Cpu()
        cpu.load_program(program, executable_text=True)
        cpu.branch_profiler = chained
        hot = HotBlockProfiler()
        hot.attach(cpu)
        cpu.run(max_steps=MAX_STEPS)
        hot.finish()
        assert cpu.branch_profiler is chained  # restored
        assert chained.total_executions == baseline.total_executions
        assert {pc: (s.taken, s.not_taken)
                for pc, s in chained.branches.items()} == \
            {pc: (s.taken, s.not_taken)
             for pc, s in baseline.branches.items()}

    def test_double_attach_rejected(self):
        from repro.machine import Cpu
        hot = HotBlockProfiler()
        hot.attach(Cpu())
        with pytest.raises(RuntimeError):
            hot.attach(Cpu())


class TestReporting:
    def test_block_profiles_cover_totals(self):
        program = load("183.equake")
        _, stop, profiler = profile_native(program,
                                           max_steps=MAX_STEPS)
        assert stop.reason == StopReason.HALTED
        profiles = profiler.block_profiles(program)
        assert sum(p.icount for p in profiles) == profiler.total_icount
        assert sum(p.cycles for p in profiles) == profiler.total_cycles
        assert profiles == sorted(profiles,
                                  key=lambda p: (-p.cycles, p.start))

    def test_hot_block_has_listing_and_symbol(self):
        program = load("183.equake")
        _, _, profiler = profile_native(program, max_steps=MAX_STEPS)
        hottest = profiler.block_profiles(program)[0]
        assert hottest.listing, "program-resident block has disasm"
        assert hottest.start >= 0

    def test_as_json_shape(self):
        program = load("181.mcf")
        _, _, profiler = profile_native(program, max_steps=MAX_STEPS)
        data = profiler.as_json(program, top=3)
        assert set(data) == {"total_icount", "total_cycles", "blocks",
                             "block_count"}
        assert len(data["blocks"]) <= 3
        for block in data["blocks"]:
            assert set(block) == {"start", "end", "symbol", "icount",
                                  "cycles", "visits", "share"}
            assert 0.0 <= block["share"] <= 1.0

    def test_render_report_mentions_totals(self):
        program = load("183.equake")
        _, _, profiler = profile_native(program, max_steps=MAX_STEPS)
        report = profiler.render_report(program, top=2)
        assert str(profiler.total_cycles) in report
        assert "#1 " in report and "#2 " in report

    def test_outside_text_bucket(self):
        profiler = HotBlockProfiler()
        profiler.samples[-1] = [5, 9, 1]
        profiler.total_icount, profiler.total_cycles = 5, 9
        profiles = profiler.block_profiles(load("183.equake"))
        assert profiles[0].symbol == "(outside text)"
        assert profiles[0].start == -1


class TestMapped:
    def test_unmapped_keys_pool_under_outside_text(self):
        profiler = HotBlockProfiler()
        profiler.samples = {0x9000: [3, 4, 1], 0x9004: [1, 1, 1]}
        profiler.total_icount, profiler.total_cycles = 4, 5
        mapped = profiler.mapped({0x9000: 0x10})
        assert mapped.samples == {0x10: [3, 4, 1], -1: [1, 1, 1]}
        assert (mapped.total_icount, mapped.total_cycles) == (4, 5)


class TestBlockProfileDataclass:
    def test_defaults(self):
        profile = BlockProfile(start=0, end=8)
        assert (profile.icount, profile.cycles, profile.visits) == \
            (0, 0, 0)
        assert profile.listing == []
