"""The campaign control tower: a zero-dependency live dashboard.

``GET /dashboard`` serves one self-contained HTML page (inline CSS,
inline JS, hand-rolled SVG sparklines — no frameworks, no CDN, nothing
beyond the stdlib server that already hosts the REST API).  The page
polls ``GET /dashboard/data.json`` every two seconds and re-renders:

* headline tiles — runs/s, detections/s, queue depth, running jobs,
  worker deaths — from the orchestrator's :class:`TimeSeriesHub`;
* two-minute sparklines for the same series;
* detection-latency and recovery percentile tables computed from the
  server-wide registry snapshot with the *same* histogram math
  ``repro stats`` uses, so the dashboard and the CLI never disagree;
* the live job table (id, kind, tenant, status, progress);
* the hot-block panel: top blocks from the most recent finished
  ``profile`` jobs.

Everything here reads orchestrator state that already exists for the
REST API; the dashboard adds no instrumentation of its own, so the
"off means free" contract is untouched.
"""

from __future__ import annotations

import time

from repro.obs.metrics import Histogram

#: Series the headline tiles and sparklines draw (key, label, mode).
#: ``rate`` tiles show events/s over the last 10 full seconds;
#: ``last`` tiles show the latest gauge sample.
TILE_SERIES = (
    ("campaign_runs_total", "runs/s", "rate"),
    ("campaign_runs_total{outcome=detected}", "detections/s", "rate"),
    ("service_queue_depth", "queue depth", "last"),
    ("service_jobs_running", "running jobs", "last"),
    ("campaign_recovery_total", "recoveries/s", "rate"),
    ("campaign_worker_deaths_total", "worker deaths/s", "rate"),
)

_PERCENTILES = (0.50, 0.90, 0.99)

#: Histograms rendered as percentile tables, mirroring the
#: ``repro stats`` latency and recovery sections.
_LATENCY_TABLES = (
    ("campaign_detection_latency_instructions", "instructions"),
    ("campaign_detection_latency_cycles", "cycles"),
    ("campaign_rollback_distance_instructions",
     "rollback instructions"),
    ("campaign_reexec_cycles", "re-exec cycles"),
)


def _percentile_rows(snapshot: dict) -> list[dict]:
    rows = []
    for name, unit in _LATENCY_TABLES:
        entries = [e for e in snapshot.get("histograms", ())
                   if e["name"] == name]
        entries.sort(
            key=lambda e: e.get("labels", {}).get("policy", ""))
        for entry in entries:
            histogram = Histogram(name)
            histogram.merge_state(entry["count"], entry["sum"],
                                  entry.get("buckets", ()))
            rows.append({
                "name": name, "unit": unit,
                "policy": entry.get("labels", {}).get("policy", "-"),
                "count": entry["count"],
                **{f"p{int(q * 100)}": histogram.percentile(q)
                   for q in _PERCENTILES}})
    return rows


def _recovery_rows(snapshot: dict) -> list[dict]:
    tallies: dict = {}
    for entry in snapshot.get("counters", ()):
        if entry["name"] != "campaign_recovery_total":
            continue
        labels = entry.get("labels", {})
        key = (labels.get("technique", "-"), labels.get("policy", "-"))
        bucket = tallies.setdefault(key, {"recovered": 0, "failed": 0})
        bucket[labels.get("result", "failed")] += entry["value"]
    rows = []
    for (technique, policy), bucket in sorted(tallies.items()):
        total = bucket["recovered"] + bucket["failed"]
        rows.append({"technique": technique, "policy": policy,
                     "recovered": bucket["recovered"],
                     "failed": bucket["failed"],
                     "success": (bucket["recovered"] / total
                                 if total else 0.0)})
    return rows


def _job_row(job) -> dict:
    return {"id": job.id, "kind": job.spec.kind,
            "tenant": job.spec.tenant, "name": job.spec.name,
            "status": job.status.value, "created": job.created,
            "started": job.started, "finished": job.finished,
            "completed": job.completed, "total": job.total,
            "error": job.error}


def dashboard_data(orchestrator) -> dict:
    """The JSON document behind ``GET /dashboard/data.json``."""
    now = time.time()
    snapshot = orchestrator.metrics_snapshot()
    jobs = orchestrator.list_jobs()
    profiles = []
    for job in reversed(jobs):
        if job.spec.kind == "profile" and job.result \
                and job.status.value == "done":
            profiles.append({"job": job.id, "name": job.spec.name,
                             **job.result})
        if len(profiles) >= 3:
            break
    return {
        "now": now,
        "tiles": [{"key": key, "label": label, "mode": mode}
                  for key, label, mode in TILE_SERIES],
        "series": orchestrator.timeseries.series(now),
        "rates": orchestrator.timeseries.rates(now),
        "jobs": [_job_row(job) for job in jobs],
        "latency": _percentile_rows(snapshot),
        "recovery": _recovery_rows(snapshot),
        "profiles": profiles,
    }


DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro control tower</title>
<style>
  :root { color-scheme: dark; }
  body { background:#10141a; color:#d7dde6; margin:0;
         font:13px/1.45 ui-monospace,Menlo,Consolas,monospace; }
  header { padding:10px 18px; border-bottom:1px solid #242c38;
           display:flex; gap:14px; align-items:baseline; }
  header h1 { font-size:15px; margin:0; color:#8ec6ff; }
  header .sub { color:#66707e; }
  main { padding:14px 18px; max-width:1200px; }
  .tiles { display:flex; flex-wrap:wrap; gap:10px; }
  .tile { background:#161c26; border:1px solid #242c38;
          border-radius:6px; padding:8px 12px; min-width:150px; }
  .tile .v { font-size:22px; color:#e8eef7; }
  .tile .l { color:#66707e; }
  .tile svg { display:block; margin-top:4px; }
  .tile polyline { fill:none; stroke:#5aa0e0; stroke-width:1.4; }
  h2 { font-size:13px; color:#8ec6ff; margin:20px 0 6px; }
  table { border-collapse:collapse; width:100%; }
  th, td { text-align:left; padding:3px 10px 3px 0;
           border-bottom:1px solid #1d2430; }
  th { color:#66707e; font-weight:normal; }
  .status-running { color:#e8c35a; } .status-done { color:#69c97e; }
  .status-failed { color:#e06c6c; } .status-queued { color:#8ec6ff; }
  .status-cancelled, .status-requeued { color:#9a86c9; }
  .muted { color:#66707e; }
  pre { background:#161c26; border:1px solid #242c38;
        border-radius:6px; padding:8px; overflow-x:auto; }
</style>
</head>
<body>
<header>
  <h1>repro control tower</h1>
  <span class="sub" id="stamp">connecting&hellip;</span>
</header>
<main>
  <div class="tiles" id="tiles"></div>
  <h2>jobs</h2>
  <table><thead><tr><th>id</th><th>kind</th><th>tenant</th>
    <th>name</th><th>status</th><th>progress</th><th>age</th>
  </tr></thead><tbody id="jobs"></tbody></table>
  <h2>detection latency &amp; recovery cost (percentiles)</h2>
  <table><thead><tr><th>histogram</th><th>policy</th><th>count</th>
    <th>p50</th><th>p90</th><th>p99</th></tr></thead>
    <tbody id="latency"></tbody></table>
  <h2>recovery outcomes</h2>
  <table><thead><tr><th>technique</th><th>policy</th>
    <th>recovered</th><th>failed</th><th>success</th></tr></thead>
    <tbody id="recovery"></tbody></table>
  <h2>hot blocks (latest profile jobs)</h2>
  <div id="profiles" class="muted">no finished profile jobs yet</div>
</main>
<script>
"use strict";
const fmt = (v) => {
  if (v === null || v === undefined) return "-";
  if (Math.abs(v) >= 1000) return Math.round(v).toLocaleString();
  return (Math.round(v * 100) / 100).toString();
};
const esc = (s) => String(s).replace(/[&<>"]/g,
  c => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));
function spark(points) {
  if (!points || !points.length) return "";
  const w = 130, h = 26;
  const vals = points.map(p => p[1]);
  const top = Math.max(...vals, 1e-9);
  const xy = vals.map((v, i) =>
    `${(i / Math.max(vals.length - 1, 1) * w).toFixed(1)},` +
    `${(h - 2 - v / top * (h - 4)).toFixed(1)}`).join(" ");
  return `<svg width="${w}" height="${h}">` +
         `<polyline points="${xy}"/></svg>`;
}
function tile(t, data) {
  const series = data.series[t.key] || [];
  let value;
  if (t.mode === "rate") value = data.rates[t.key] || 0;
  else value = series.length ? series[series.length - 1][1] : 0;
  return `<div class="tile"><div class="v">${fmt(value)}</div>` +
         `<div class="l">${esc(t.label)}</div>` +
         spark(series.slice(-60)) + `</div>`;
}
function render(data) {
  document.getElementById("stamp").textContent =
    "live - " + new Date(data.now * 1000).toLocaleTimeString();
  document.getElementById("tiles").innerHTML =
    data.tiles.map(t => tile(t, data)).join("");
  document.getElementById("jobs").innerHTML = data.jobs.length
    ? data.jobs.slice().reverse().map(j => {
        const prog = j.total ? `${j.completed}/${j.total}` : "-";
        const age = fmt(data.now - j.created) + "s";
        return `<tr><td>${esc(j.id)}</td><td>${esc(j.kind)}</td>` +
          `<td>${esc(j.tenant)}</td><td>${esc(j.name)}</td>` +
          `<td class="status-${esc(j.status)}">${esc(j.status)}` +
          `</td><td>${prog}</td><td>${age}</td></tr>`;
      }).join("")
    : `<tr><td colspan="7" class="muted">no jobs</td></tr>`;
  document.getElementById("latency").innerHTML = data.latency.length
    ? data.latency.map(r =>
        `<tr><td>${esc(r.name)} <span class="muted">(${esc(r.unit)}` +
        `)</span></td><td>${esc(r.policy)}</td><td>${r.count}</td>` +
        `<td>${fmt(r.p50)}</td><td>${fmt(r.p90)}</td>` +
        `<td>${fmt(r.p99)}</td></tr>`).join("")
    : `<tr><td colspan="6" class="muted">no detections yet</td></tr>`;
  document.getElementById("recovery").innerHTML = data.recovery.length
    ? data.recovery.map(r =>
        `<tr><td>${esc(r.technique)}</td><td>${esc(r.policy)}</td>` +
        `<td>${r.recovered}</td><td>${r.failed}</td>` +
        `<td>${(r.success * 100).toFixed(1)}%</td></tr>`).join("")
    : `<tr><td colspan="5" class="muted">no recoveries</td></tr>`;
  if (data.profiles.length) {
    document.getElementById("profiles").innerHTML =
      data.profiles.map(p =>
        `<h3 class="muted">${esc(p.name)} - ${esc(p.mode || "")} - ` +
        `${fmt(p.total_cycles)} cycles</h3><pre>` +
        p.blocks.map(b =>
          `${(b.symbol || "0x" + b.start.toString(16)).padEnd(18)} ` +
          `cycles=${String(b.cycles).padEnd(10)} ` +
          `visits=${String(b.visits).padEnd(8)} ` +
          `${(b.share * 100).toFixed(1)}%`).join("\\n") +
        `</pre>`).join("");
  }
}
async function poll() {
  try {
    const res = await fetch("/dashboard/data.json");
    if (res.ok) render(await res.json());
  } catch (err) {
    document.getElementById("stamp").textContent =
      "disconnected - retrying";
  }
  setTimeout(poll, 2000);
}
poll();
</script>
</body>
</html>
"""
