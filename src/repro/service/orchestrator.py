"""Job orchestrator: persistent queue, quotas, workers, drain/resume.

Scheduling is priority-then-FIFO: the runnable job with the highest
``priority`` wins, ties broken by submission order — which also makes
the queue FIFO *within* a tenant.  A tenant is bounded two ways:
``max_active_per_tenant`` caps queued+running jobs (submission beyond
it is a :class:`QuotaError`, HTTP 429), and
``max_running_per_tenant`` caps concurrency (excess jobs simply wait,
so one tenant cannot monopolise the worker pool).

Jobs run on plain worker threads; the *campaign* parallelism stays in
the existing supervised process pool (``params.jobs``), so the
orchestrator never re-implements retries, timeouts or quarantine.
Each job executes under :func:`repro.obs.scoped` with its own metrics
registry — per-job telemetry is queryable while the job runs and is
folded into the server-wide registry when it finishes.

Shutdown is a drain: queued jobs flip to REQUEUED, running jobs get
their cooperative stop flag and end REQUEUED after journaling the
chunks they completed.  ``recover()`` on the next start re-queues
them; the runners resume from the journal, so no completed work is
re-run (and the journal stays byte-identical to an uninterrupted
campaign).
"""

from __future__ import annotations

import logging
import os
import threading
import time
import traceback
import uuid

from repro import obs
from repro.faults import cache as run_cache
from repro.faults.executor import CampaignStopped
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesHub
from repro.obs.traceevent import (TraceContext, append_entry, job_entry,
                                  trace_sidecar_path)
from repro.service.jobs import Job, JobSpec, JobStatus, run_job
from repro.service.store import ArtifactStore

log = logging.getLogger("repro.service")


class QuotaError(Exception):
    """Submission rejected by a per-tenant quota (HTTP 429)."""


class Orchestrator:
    """Owns the job table, the queue, and the worker threads."""

    def __init__(self, root: str, workers: int = 2,
                 max_active_per_tenant: int = 16,
                 max_running_per_tenant: int = 2,
                 store: ArtifactStore | None = None):
        self.root = root
        self.jobs_root = os.path.join(root, "jobs")
        os.makedirs(self.jobs_root, exist_ok=True)
        self.store = store if store is not None else ArtifactStore(
            os.path.join(root, "store"))
        run_cache.set_disk_tier(self.store)
        self.max_active_per_tenant = max_active_per_tenant
        self.max_running_per_tenant = max_running_per_tenant
        self.registry = MetricsRegistry()
        self.timeseries = TimeSeriesHub()
        self._cond = threading.Condition()
        self._jobs: dict[str, Job] = {}
        self._queue: list[str] = []      # job ids, submission order
        self._seq = 0
        self._stopping = False
        self._threads = [
            threading.Thread(target=self._worker, name=f"job-worker-{i}",
                             daemon=True)
            for i in range(max(1, workers))]
        self.recover()
        for thread in self._threads:
            thread.start()
        self._sampler_stop = threading.Event()
        self._sampler = threading.Thread(
            target=self._sample_loop, name="obs-sampler", daemon=True)
        self._sampler.start()

    # -- lifecycle --------------------------------------------------------

    def recover(self) -> None:
        """Reload persisted jobs; re-queue interrupted ones.

        Jobs that were QUEUED, RUNNING or REQUEUED when the previous
        server died go back on the queue (oldest first); their
        runners resume from the journal.  Terminal jobs are loaded
        for inspection only.
        """
        recovered = []
        for name in sorted(os.listdir(self.jobs_root)):
            workspace = os.path.join(self.jobs_root, name)
            if not os.path.isfile(os.path.join(workspace, "job.json")):
                continue
            try:
                job = Job.load(workspace)
            except (OSError, ValueError, KeyError) as exc:
                log.warning("skipping unreadable job state %s: %s",
                            workspace, exc)
                continue
            self._jobs[job.id] = job
            if job.status in (JobStatus.QUEUED, JobStatus.RUNNING,
                              JobStatus.REQUEUED):
                recovered.append(job)
        recovered.sort(key=lambda job: job.created)
        with self._cond:
            for job in recovered:
                job.status = JobStatus.QUEUED
                job.save()
                self._queue.append(job.id)
            if recovered:
                log.info("recovered %d interrupted job(s)",
                         len(recovered))
                self._cond.notify_all()

    def drain(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: stop scheduling, requeue, wait."""
        with self._cond:
            self._stopping = True
            for job_id in self._queue:
                job = self._jobs[job_id]
                job.status = JobStatus.REQUEUED
                job.save()
                job.emit("status", status=job.status.value)
            self._queue.clear()
            running = [job for job in self._jobs.values()
                       if job.status is JobStatus.RUNNING]
            for job in running:
                job.request_stop(cancel=False)
            self._cond.notify_all()
        self._sampler_stop.set()
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(max(0.1, deadline - time.monotonic()))
        self._sampler.join(1.0)
        log.info("drained: %d job(s) requeued",
                 sum(1 for job in self._jobs.values()
                     if job.status is JobStatus.REQUEUED))

    # -- submission / queries ---------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        with self._cond:
            if self._stopping:
                raise QuotaError("server is draining; resubmit later")
            active = sum(
                1 for job in self._jobs.values()
                if job.spec.tenant == spec.tenant
                and job.status in (JobStatus.QUEUED, JobStatus.RUNNING))
            if active >= self.max_active_per_tenant:
                raise QuotaError(
                    f"tenant {spec.tenant!r} already has {active} "
                    f"active job(s) (quota "
                    f"{self.max_active_per_tenant})")
            job_id = uuid.uuid4().hex[:12]
            job = Job(job_id, spec,
                      os.path.join(self.jobs_root, job_id))
            job.seq = self._seq = self._seq + 1
            self._jobs[job_id] = job
            job.save()
            job.emit("status", status=job.status.value)
            self._queue.append(job_id)
            self._cond.notify_all()
        obs_registry = self.registry
        obs_registry.counter("service_jobs_total",
                             help="jobs submitted",
                             kind=spec.kind,
                             tenant=spec.tenant).inc()
        return job

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def list_jobs(self, tenant: str | None = None) -> list[Job]:
        jobs = sorted(self._jobs.values(), key=lambda job: job.created)
        if tenant is not None:
            jobs = [job for job in jobs if job.spec.tenant == tenant]
        return jobs

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued (immediate) or running (cooperative) job."""
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            if job.status is JobStatus.QUEUED:
                self._queue.remove(job_id)
                job.status = JobStatus.CANCELLED
                job.finished = time.time()
                job.save()
                job.emit("status", status=job.status.value)
                return True
            if job.status is JobStatus.RUNNING:
                job.request_stop(cancel=True)
                return True
            return False

    # -- metrics ----------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Server-wide view: finished jobs' folded registry plus the
        live registries of running jobs."""
        aggregate = MetricsRegistry()
        aggregate.merge_snapshot(self.registry.snapshot())
        for job in list(self._jobs.values()):
            registry = getattr(job, "registry", None)
            if registry is not None and job.status is JobStatus.RUNNING:
                aggregate.merge_snapshot(registry.snapshot())
        return aggregate.snapshot()

    def sample_timeseries(self, now: float | None = None) -> None:
        """One sampler tick: diff the server-wide snapshot into the
        rolling windows and record the queue-depth gauges.

        Driven by the sampler thread about once a second; callable
        directly from tests (with an explicit ``now``) so time-series
        behaviour is testable without sleeping.
        """
        snapshot = self.metrics_snapshot()
        with self._cond:
            queued = len(self._queue)
            running = sum(1 for job in self._jobs.values()
                          if job.status is JobStatus.RUNNING)
        snapshot.setdefault("gauges", []).extend((
            {"name": "service_queue_depth", "labels": {},
             "value": queued},
            {"name": "service_jobs_running", "labels": {},
             "value": running},
        ))
        self.timeseries.sample(snapshot, now=now)

    def _sample_loop(self) -> None:
        while not self._sampler_stop.wait(1.0):
            try:
                self.sample_timeseries()
            except Exception:
                log.exception("timeseries sampler tick failed")

    # -- worker loop ------------------------------------------------------

    def _claim(self) -> Job | None:
        """Highest-priority runnable job (call with the lock held)."""
        running_per_tenant: dict[str, int] = {}
        for job in self._jobs.values():
            if job.status is JobStatus.RUNNING:
                tenant = job.spec.tenant
                running_per_tenant[tenant] = \
                    running_per_tenant.get(tenant, 0) + 1
        best_index = None
        best_key = None
        for index, job_id in enumerate(self._queue):
            job = self._jobs[job_id]
            tenant = job.spec.tenant
            if running_per_tenant.get(tenant, 0) >= \
                    self.max_running_per_tenant:
                continue
            key = (-job.spec.priority, index)
            if best_key is None or key < best_key:
                best_key, best_index = key, index
        if best_index is None:
            return None
        job = self._jobs[self._queue.pop(best_index)]
        job.status = JobStatus.RUNNING
        job.started = time.time()
        return job

    def _worker(self) -> None:
        while True:
            with self._cond:
                job = self._claim()
                while job is None:
                    if self._stopping:
                        return
                    self._cond.wait(0.5)
                    if self._stopping:
                        return
                    job = self._claim()
            self._execute(job)

    def _execute(self, job: Job) -> None:
        job.save()
        job.emit("status", status=job.status.value)
        registry = MetricsRegistry()
        job.registry = registry
        started = time.monotonic()
        try:
            with obs.scoped(registry):
                result = run_job(job)
        except CampaignStopped as exc:
            job.completed = exc.completed
            job.total = exc.total
            if job.cancelled:
                job.status = JobStatus.CANCELLED
            else:
                job.status = JobStatus.REQUEUED
        except Exception as exc:
            job.status = JobStatus.FAILED
            job.error = f"{type(exc).__name__}: {exc}"
            log.warning("job %s failed:\n%s", job.id,
                        traceback.format_exc())
        else:
            job.status = JobStatus.DONE
            job.result = result
        job.finished = time.time()
        self._append_job_span(job)
        self.registry.merge_snapshot(registry.snapshot())
        self.registry.counter(
            "service_jobs_finished_total", help="jobs finished",
            kind=job.spec.kind, status=job.status.value).inc()
        self.registry.histogram(
            "service_job_seconds", help="job wall-clock",
            kind=job.spec.kind).observe(time.monotonic() - started)
        job.save()
        job.emit("status", status=job.status.value,
                 error=job.error)
        job.emit("end", status=job.status.value)
        with self._cond:
            self._cond.notify_all()

    def _append_job_span(self, job: Job) -> None:
        """Record the job-level span in the workspace trace sidecar.

        The job's trace id *is* its job id; inject runners hand the
        same root context to their :class:`CampaignExecutor`, whose
        workers append the chunk/run spans — this line is the parent
        that nests them.  A re-executed (requeued) job appends another
        line under the same span id; the exporter keeps the last.
        """
        if job.started is None or job.finished is None:
            return
        entry = job_entry(TraceContext.root(job.id), job.spec.name,
                          job.started, job.finished,
                          kind=job.spec.kind, status=job.status.value,
                          job=job.id)
        try:
            append_entry(trace_sidecar_path(job.journal_path), entry)
        except OSError:
            log.warning("could not append trace span for job %s",
                        job.id, exc_info=True)
