"""REST + SSE front-end (stdlib ``http.server`` only).

Endpoints
---------
``POST /jobs``                    submit a job (JSON body; 400 on bad
                                  payload, 429 on quota)
``GET /jobs[?tenant=T]``          list jobs (summaries)
``GET /jobs/<id>``                full job state, result included
``POST /jobs/<id>/cancel``        cancel (immediate if queued,
                                  cooperative if running)
``GET /jobs/<id>/events``         Server-Sent Events: status +
                                  progress, live until the job ends
                                  (``?since=N`` or ``Last-Event-ID``
                                  resumes the stream)
``GET /jobs/<id>/journal``        the campaign journal, byte-exact
``GET /jobs/<id>/artifacts``      list workspace files
``GET /jobs/<id>/artifacts/<p>``  fetch one (journal, corpus,
                                  forensics bundle, ...)
``GET /metrics``                  Prometheus text of the server-wide
                                  registry (``?format=json`` for the
                                  snapshot ``repro stats`` renders)
``GET /healthz``                  liveness + queue depths
``GET /dashboard``                the live control-tower page
                                  (self-contained HTML, no deps)
``GET /dashboard/data.json``      the JSON document the page polls:
                                  job table, rolling time series,
                                  latency/recovery percentiles,
                                  hot-block profiles

The server is a ``ThreadingHTTPServer``: every request gets a thread,
so long-lived SSE streams never block submissions.
"""

from __future__ import annotations

import json
import logging
import os
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.service.jobs import JobStatus, validate_spec
from repro.service.orchestrator import Orchestrator, QuotaError

log = logging.getLogger("repro.service.api")

MAX_BODY = 8 * 1024 * 1024


def _job_summary(job) -> dict:
    return {"id": job.id, "kind": job.spec.kind,
            "tenant": job.spec.tenant, "name": job.spec.name,
            "priority": job.spec.priority,
            "status": job.status.value,
            "created": job.created, "finished": job.finished,
            "completed": job.completed, "total": job.total}


class ServiceHandler(BaseHTTPRequestHandler):
    """One request; ``self.server.orchestrator`` is the shared state."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service"

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        log.debug("%s - %s", self.address_string(), format % args)

    # -- helpers ----------------------------------------------------------

    @property
    def orchestrator(self) -> Orchestrator:
        return self.server.orchestrator

    def _send_json(self, status: int, payload) -> None:
        body = (json.dumps(payload, indent=1) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self):
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0 or length > MAX_BODY:
            raise ValueError("request body required (JSON, <= 8 MiB)")
        return json.loads(self.rfile.read(length))

    def _job_or_404(self, job_id: str):
        job = self.orchestrator.get(job_id)
        if job is None:
            self._send_error(404, f"no job {job_id!r}")
        return job

    # -- routing ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib name
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        query = {key: values[-1]
                 for key, values in parse_qs(url.query).items()}
        try:
            if parts == ["healthz"]:
                return self._healthz()
            if parts == ["metrics"]:
                return self._metrics(query)
            if parts == ["dashboard"]:
                return self._dashboard()
            if parts == ["dashboard", "data.json"]:
                from repro.service.dashboard import dashboard_data
                return self._send_json(
                    200, dashboard_data(self.orchestrator))
            if parts == ["jobs"]:
                jobs = self.orchestrator.list_jobs(query.get("tenant"))
                return self._send_json(
                    200, {"jobs": [_job_summary(job) for job in jobs]})
            if len(parts) >= 2 and parts[0] == "jobs":
                job = self._job_or_404(parts[1])
                if job is None:
                    return None
                if len(parts) == 2:
                    return self._send_json(200, job.to_json())
                if parts[2] == "events" and len(parts) == 3:
                    return self._events(job, query)
                if parts[2] == "journal" and len(parts) == 3:
                    return self._artifact(job, "journal.jsonl")
                if parts[2] == "artifacts":
                    if len(parts) == 3:
                        return self._artifact_list(job)
                    return self._artifact(job, "/".join(parts[3:]))
            self._send_error(404, f"no route for GET {url.path}")
        except BrokenPipeError:
            pass  # client went away (e.g. curl | head)
        except Exception as exc:
            log.exception("GET %s failed", self.path)
            try:
                self._send_error(500, f"{type(exc).__name__}: {exc}")
            except (OSError, ValueError):
                pass

    def do_POST(self) -> None:  # noqa: N802 - stdlib name
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        try:
            if parts == ["jobs"]:
                return self._submit()
            if len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "cancel":
                return self._cancel(parts[1])
            self._send_error(404, f"no route for POST {url.path}")
        except BrokenPipeError:
            pass
        except Exception as exc:
            log.exception("POST %s failed", self.path)
            try:
                self._send_error(500, f"{type(exc).__name__}: {exc}")
            except (OSError, ValueError):
                pass

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib name
        parts = [part for part in urlparse(self.path).path.split("/")
                 if part]
        if len(parts) == 2 and parts[0] == "jobs":
            return self._cancel(parts[1])
        self._send_error(404, f"no route for DELETE {self.path}")

    # -- endpoints --------------------------------------------------------

    def _healthz(self) -> None:
        jobs = self.orchestrator.list_jobs()
        counts: dict[str, int] = {}
        for job in jobs:
            counts[job.status.value] = \
                counts.get(job.status.value, 0) + 1
        self._send_json(200, {"status": "ok", "jobs": counts})

    def _metrics(self, query: dict) -> None:
        snapshot = self.orchestrator.metrics_snapshot()
        if query.get("format") == "json":
            return self._send_json(200, snapshot)
        from repro.obs.exporters import prometheus_text
        body = prometheus_text(snapshot).encode()
        self.send_response(200)
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dashboard(self) -> None:
        from repro.service.dashboard import DASHBOARD_HTML
        body = DASHBOARD_HTML.encode()
        self.send_response(200)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _submit(self) -> None:
        try:
            payload = self._read_body()
        except (ValueError, json.JSONDecodeError) as exc:
            return self._send_error(400, f"bad JSON body: {exc}")
        try:
            spec = validate_spec(payload)
        except ValueError as exc:
            return self._send_error(400, str(exc))
        try:
            job = self.orchestrator.submit(spec)
        except QuotaError as exc:
            return self._send_error(429, str(exc))
        self._send_json(201, job.to_json())

    def _cancel(self, job_id: str) -> None:
        try:
            changed = self.orchestrator.cancel(job_id)
        except KeyError:
            return self._send_error(404, f"no job {job_id!r}")
        if not changed:
            job = self.orchestrator.get(job_id)
            return self._send_error(
                409, f"job {job_id} already {job.status.value}")
        self._send_json(202, {"id": job_id, "cancel": "requested"})

    def _events(self, job, query: dict) -> None:
        """SSE stream: replay from ``since`` then follow live."""
        try:
            seq = int(query.get("since",
                                self.headers.get("Last-Event-ID", 0)))
        except ValueError:
            seq = 0
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        ended = False
        while not ended:
            events = job.wait_events(seq, timeout=5.0)
            if not events:
                if job.status is not JobStatus.RUNNING \
                        and job.status is not JobStatus.QUEUED:
                    break  # terminal or requeued, stream drained
                self.wfile.write(b": keepalive\n\n")
                self.wfile.flush()
                continue
            for event in events:
                seq = event["seq"] + 1
                frame = (f"id: {seq}\n"
                         f"event: {event['event']}\n"
                         f"data: {json.dumps(event)}\n\n")
                self.wfile.write(frame.encode())
                if event["event"] == "end":
                    ended = True
            self.wfile.flush()

    def _artifact_list(self, job) -> None:
        files = []
        for dirpath, _, names in os.walk(job.workspace):
            for name in names:
                path = os.path.join(dirpath, name)
                files.append({
                    "path": os.path.relpath(path, job.workspace),
                    "bytes": os.path.getsize(path)})
        files.sort(key=lambda entry: entry["path"])
        self._send_json(200, {"artifacts": files})

    def _artifact(self, job, relpath: str) -> None:
        base = os.path.realpath(job.workspace)
        path = os.path.realpath(os.path.join(base, relpath))
        if path != base and not path.startswith(base + os.sep):
            return self._send_error(400, "path escapes the workspace")
        if not os.path.isfile(path):
            return self._send_error(404, f"no artifact {relpath!r}")
        with open(path, "rb") as handle:
            body = handle.read()
        self.send_response(200)
        content_type = ("application/x-ndjson"
                        if path.endswith(".jsonl")
                        else "application/octet-stream")
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class ServiceServer(ThreadingHTTPServer):
    """HTTP server bound to one orchestrator."""

    daemon_threads = True

    def __init__(self, address, orchestrator: Orchestrator):
        super().__init__(address, ServiceHandler)
        self.orchestrator = orchestrator


def create_server(root: str, host: str = "127.0.0.1", port: int = 0,
                  workers: int = 2,
                  max_active_per_tenant: int = 16,
                  max_running_per_tenant: int = 2) -> ServiceServer:
    """Build the orchestrator + HTTP server (port 0 = ephemeral)."""
    orchestrator = Orchestrator(
        root, workers=workers,
        max_active_per_tenant=max_active_per_tenant,
        max_running_per_tenant=max_running_per_tenant)
    return ServiceServer((host, port), orchestrator)
