"""Minimal urllib client for the campaign service.

Used by ``repro submit`` / ``repro jobs`` / ``repro stats --url`` and
the tests; anything it does a plain ``curl`` can do too (see
``docs/service.md`` for the curl quickstart).
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request


class ServiceError(Exception):
    """Non-2xx response; carries the HTTP status and server message."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ---------------------------------------------------------

    def _request(self, method: str, path: str, payload=None,
                 timeout: float | None = None):
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(self.base_url + path,
                                         data=data, headers=headers,
                                         method=method)
        try:
            return urllib.request.urlopen(
                request, timeout=self.timeout
                if timeout is None else timeout)
        except urllib.error.HTTPError as exc:
            body = exc.read().decode(errors="replace")
            try:
                message = json.loads(body).get("error", body)
            except (ValueError, AttributeError):
                message = body
            raise ServiceError(exc.code, message) from exc

    def _json(self, method: str, path: str, payload=None):
        with self._request(method, path, payload) as response:
            return json.loads(response.read())

    # -- API --------------------------------------------------------------

    def submit(self, payload: dict) -> dict:
        return self._json("POST", "/jobs", payload)

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}")

    def jobs(self, tenant: str | None = None) -> list[dict]:
        path = "/jobs" + (f"?tenant={tenant}" if tenant else "")
        return self._json("GET", path)["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def journal(self, job_id: str) -> bytes:
        with self._request("GET", f"/jobs/{job_id}/journal") as resp:
            return resp.read()

    def artifacts(self, job_id: str) -> list[dict]:
        return self._json("GET", f"/jobs/{job_id}/artifacts")["artifacts"]

    def artifact(self, job_id: str, relpath: str) -> bytes:
        with self._request(
                "GET", f"/jobs/{job_id}/artifacts/{relpath}") as resp:
            return resp.read()

    def metrics(self) -> dict:
        """The JSON metrics snapshot (``repro stats`` renders it)."""
        return self._json("GET", "/metrics?format=json")

    def metrics_text(self) -> str:
        with self._request("GET", "/metrics") as response:
            return response.read().decode()

    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def events(self, job_id: str, since: int = 0,
               timeout: float | None = 300.0,
               max_reconnects: int = 5,
               backoff: float = 0.5):
        """Generator over the job's SSE stream (parsed JSON events).

        Ends when the server closes the stream — normally right after
        the ``end`` event.  A *broken* stream (server restart, network
        blip, read timeout) is transparently reconnected with the SSE
        resume protocol: the server's ``id:`` lines carry the next
        ``since`` cursor, so the retry picks up exactly where the
        stream tore — no event is dropped or duplicated.  Reconnects
        back off exponentially (``backoff * 2**attempt``) and give up
        after ``max_reconnects`` consecutive failures; any delivered
        event resets the budget.
        """
        attempts = 0
        while True:
            got_end = False
            try:
                response = self._request(
                    "GET", f"/jobs/{job_id}/events?since={since}",
                    timeout=timeout)
                with response:
                    data_lines: list[str] = []
                    for raw in response:
                        line = raw.decode().rstrip("\n")
                        if line.startswith(":"):
                            continue  # keepalive comment
                        if line.startswith("id:"):
                            # The server emits the *next* cursor.
                            try:
                                since = int(line[3:].strip())
                            except ValueError:
                                pass
                            continue
                        if line.startswith("data:"):
                            data_lines.append(line[5:].strip())
                            continue
                        if line == "" and data_lines:
                            event = json.loads("\n".join(data_lines))
                            data_lines = []
                            attempts = 0
                            if event.get("event") == "end":
                                got_end = True
                            yield event
                return  # clean EOF: stream drained
            except (OSError, http.client.HTTPException,
                    ServiceError) as exc:
                if got_end:
                    return
                if isinstance(exc, ServiceError) \
                        and 400 <= exc.status < 500:
                    raise  # client error; retrying cannot help
                attempts += 1
                if attempts > max_reconnects:
                    raise ServiceError(
                        0, f"SSE stream for job {job_id} lost after "
                        f"{max_reconnects} reconnect attempt(s): "
                        f"{exc}") from exc
                time.sleep(backoff * 2 ** (attempts - 1))

    def wait(self, job_id: str, timeout: float = 300.0) -> dict:
        """Follow the SSE stream until the job ends; return final
        state."""
        for event in self.events(job_id, timeout=timeout):
            if event.get("event") == "end":
                break
        return self.job(job_id)
