"""Job model: submission validation, runtime state, and runners.

A job is a campaign the CLI could run — inject, coverage, fuzz or
verify — wrapped in service bookkeeping.  ``validate_spec`` turns a
JSON payload into a :class:`JobSpec` *eagerly*: the program is
assembled, fault tokens are parsed and the pipeline/fuzz config is
constructed at submit time, so a bad request fails with HTTP 400
instead of a queued job that dies minutes later.

The runners reuse the exact code paths the CLI commands use — same
journal header helpers, same :class:`CampaignExecutor` parameters —
so a service job's journal is byte-identical to the same campaign run
via ``python -m repro``.  Each job owns a workspace directory holding
``job.json`` (persisted state, the restart-resume source of truth),
``journal.jsonl`` and any corpus/forensics artifacts.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import os
import threading
import time
from dataclasses import dataclass, field

KINDS = ("inject", "coverage", "fuzz", "verify", "profile")
TECHNIQUES = ("ecf", "edgcf", "rcf", "cfcss", "ecca", "edgcf-naive")


class JobStatus(str, enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    #: drained by a shutting-down server; resumes on restart
    REQUEUED = "requeued"

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.DONE, JobStatus.FAILED,
                        JobStatus.CANCELLED)


@dataclass(frozen=True)
class JobSpec:
    """Validated, immutable description of what to run."""

    kind: str
    tenant: str = "default"
    priority: int = 0
    #: assembly source text (inject/coverage/verify; fuzz generates)
    program: str | None = None
    #: display name; doubles as the assembler's source name
    name: str = "submitted.s"
    #: kind-specific knobs, already validated
    params: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> JobSpec:
        return cls(kind=data["kind"], tenant=data.get("tenant", "default"),
                   priority=data.get("priority", 0),
                   program=data.get("program"),
                   name=data.get("name", "submitted.s"),
                   params=data.get("params", {}))


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


def _assemble(spec_program: str, name: str):
    from repro.isa import assemble
    try:
        return assemble(spec_program, name=name)
    except Exception as exc:
        raise ValueError(f"program does not assemble: {exc}") from exc


def build_pipeline_config(params: dict):
    """PipelineConfig from job params (CLI-flag defaults)."""
    from repro.checking import Policy, UpdateStyle
    from repro.faults import PipelineConfig
    technique = params.get("technique")
    _require(technique is None or technique in TECHNIQUES,
             f"unknown technique {technique!r}")
    try:
        policy = Policy(params.get("policy", "allbb"))
        update = UpdateStyle(params.get("update", "jcc"))
    except ValueError as exc:
        raise ValueError(str(exc)) from exc
    kwargs = {}
    if params.get("recover"):
        kwargs["recover"] = True
        if params.get("checkpoint_interval") is not None:
            kwargs["checkpoint_interval"] = \
                int(params["checkpoint_interval"])
        if params.get("max_retries") is not None:
            kwargs["max_retries"] = int(params["max_retries"])
    pipeline = "dbt"
    if params.get("threads"):
        from repro.threads import DEFAULT_QUANTUM, POLICIES
        sched_policy = params.get("sched_policy", "rr")
        _require(sched_policy in POLICIES,
                 f"unknown scheduler policy {sched_policy!r}")
        kwargs.update(
            threads=True,
            quantum=int(params.get("quantum", DEFAULT_QUANTUM)),
            sched_policy=sched_policy,
            sched_seed=int(params.get("sched_seed", 0)),
            sig_swap=not params.get("no_sig_swap", False))
        # The DBT does not thread; mirror the CLI's pipeline choice.
        pipeline = "static" if technique else "native"
    return PipelineConfig(pipeline, technique, policy, update,
                          dataflow=bool(params.get("dataflow", False)),
                          backend=params.get("backend", "interp"),
                          **kwargs)


def build_fuzz_config(params: dict):
    """FuzzConfig from job params (mirrors ``repro fuzz`` flags)."""
    from repro.checking import Policy
    from repro.fuzz import FuzzConfig
    from repro.fuzz.generator import FuzzKnobs
    knobs = FuzzKnobs().scaled(
        statements=int(params.get("statements", 24)),
        max_loop_depth=int(params.get("loop_depth", 2)),
        mem_words=int(params.get("mem_words", 16)))
    config = FuzzConfig(
        seed=int(params.get("seed", 2006)),
        count=int(params.get("count", 50)),
        knobs=knobs,
        detect_every=int(params.get("detect_every", 8)),
        max_sites=int(params.get("detect_sites", 12)),
        minimize=not params.get("no_minimize", False),
        backend=params.get("backend", "interp"),
        recover=bool(params.get("recover", False)),
        mt_every=int(params.get("mt_every", 0)))
    techniques = params.get("techniques")
    if techniques:
        for technique in techniques:
            _require(technique in TECHNIQUES,
                     f"unknown technique {technique!r}")
        config = dataclasses.replace(
            config, techniques=tuple(techniques),
            detect_techniques=tuple(
                t for t in config.detect_techniques
                if t in techniques))
    policies = params.get("policies")
    if policies:
        try:
            config = dataclasses.replace(
                config, policies=tuple(Policy(p) for p in policies))
        except ValueError as exc:
            raise ValueError(str(exc)) from exc
    return config


def validate_spec(payload) -> JobSpec:
    """JSON payload -> JobSpec, or ValueError with a client message."""
    _require(isinstance(payload, dict), "payload must be a JSON object")
    kind = payload.get("kind")
    _require(kind in KINDS,
             f"kind must be one of {', '.join(KINDS)} (got {kind!r})")
    tenant = payload.get("tenant", "default")
    _require(isinstance(tenant, str) and 0 < len(tenant) <= 64
             and tenant.replace("-", "").replace("_", "").isalnum(),
             "tenant must be a short alphanumeric(-_) string")
    priority = payload.get("priority", 0)
    _require(isinstance(priority, int) and -100 <= priority <= 100,
             "priority must be an integer in [-100, 100]")
    params = payload.get("params", {})
    _require(isinstance(params, dict), "params must be a JSON object")
    name = payload.get("name", "submitted.s")
    _require(isinstance(name, str) and 0 < len(name) <= 200
             and "/" not in name and "\x00" not in name,
             "name must be a short string without '/'")
    jobs = params.get("jobs", 1)
    _require(isinstance(jobs, int) and 0 <= jobs <= 64,
             "params.jobs must be an integer in [0, 64]")
    from repro.exec import BACKEND_NAMES
    backend = params.get("backend", "interp")
    _require(backend in BACKEND_NAMES,
             f"unknown backend {backend!r}")

    program = payload.get("program")
    if kind in ("inject", "coverage", "verify", "profile"):
        _require(isinstance(program, str) and program.strip(),
                 f"{kind} jobs need 'program' (assembly source text)")
        assembled = _assemble(program, name)
    else:
        _require(program is None,
                 "fuzz jobs generate their own programs; drop 'program'")
        assembled = None

    if kind == "inject":
        faults = params.get("faults")
        _require(isinstance(faults, list) and faults
                 and all(isinstance(f, str) for f in faults),
                 "inject jobs need params.faults: a non-empty list of "
                 "fault tokens (offset:BIT | flag:BIT | direction | "
                 "redirect:ADDR | register:REG,BIT,ICOUNT)")
        build_pipeline_config(params)
        from repro.cli import parse_fault_token
        for token in faults:
            try:
                parse_fault_token(assembled, token,
                                  branch=str(params.get("branch", "0")),
                                  occurrence=int(
                                      params.get("occurrence", 1)))
            except (ValueError, KeyError) as exc:
                raise ValueError(
                    f"bad fault token {token!r}: {exc}") from exc
    elif kind == "coverage":
        _require(isinstance(params.get("per_category", 8), int),
                 "params.per_category must be an integer")
        _require(isinstance(params.get("seed", 2006), int),
                 "params.seed must be an integer")
        build_pipeline_config({"backend": backend})
    elif kind == "fuzz":
        build_fuzz_config(params)
    elif kind == "profile":
        top = params.get("top", 10)
        _require(isinstance(top, int) and 1 <= top <= 200,
                 "params.top must be an integer in [1, 200]")
        max_steps = params.get("max_steps", 50_000_000)
        _require(isinstance(max_steps, int) and max_steps > 0,
                 "params.max_steps must be a positive integer")
        _require(isinstance(params.get("dbt", False), bool),
                 "params.dbt must be a boolean")
    elif kind == "verify":
        techniques = params.get("techniques", ["edgcf"])
        _require(isinstance(techniques, list) and techniques
                 and all(t in TECHNIQUES and t != "edgcf-naive"
                         for t in techniques),
                 "params.techniques must be a non-empty list drawn "
                 "from ecf, edgcf, rcf, cfcss, ecca")
        build_pipeline_config({"policy": params.get("policy", "allbb"),
                               "backend": backend})
    return JobSpec(kind=kind, tenant=tenant, priority=priority,
                   program=program, name=name, params=params)


class Job:
    """Runtime state of one submitted campaign.

    Thread-safe: the orchestrator's worker mutates it while API
    threads read it and SSE streams block in :meth:`wait_events`.
    """

    def __init__(self, job_id: str, spec: JobSpec, workspace: str,
                 created: float | None = None):
        self.id = job_id
        self.spec = spec
        self.workspace = workspace
        self.created = time.time() if created is None else created
        self.started: float | None = None
        self.finished: float | None = None
        self.status = JobStatus.QUEUED
        self.error: str | None = None
        self.result: dict | None = None
        self.completed = 0
        self.total = 0
        self._stop = False
        self._cancelled = False
        self._cond = threading.Condition()
        self._events: list[dict] = []

    # -- events / progress ----------------------------------------------

    def emit(self, event: str, **data) -> None:
        with self._cond:
            entry = {"seq": len(self._events), "event": event,
                     "job": self.id, **data}
            self._events.append(entry)
            self._cond.notify_all()

    def events_since(self, seq: int) -> list[dict]:
        with self._cond:
            return list(self._events[seq:])

    def wait_events(self, seq: int, timeout: float = 10.0) -> list[dict]:
        """Block until events past ``seq`` exist (or timeout); return
        them.  SSE streaming loops over this."""
        with self._cond:
            if len(self._events) <= seq:
                self._cond.wait(timeout)
            return list(self._events[seq:])

    def on_progress(self, completed: int, total: int) -> None:
        if completed == self.completed and total == self.total:
            return
        self.completed, self.total = completed, total
        self.emit("progress", completed=completed, total=total)

    # -- cooperative stop ------------------------------------------------

    def request_stop(self, cancel: bool) -> None:
        """Ask the runner to stop between chunks.

        ``cancel=True`` marks a user cancellation (terminal);
        ``cancel=False`` is a shutdown drain (job will be requeued).
        """
        self._stop = True
        if cancel:
            self._cancelled = True

    def stop_requested(self) -> bool:
        return self._stop

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    # -- paths / persistence ---------------------------------------------

    @property
    def journal_path(self) -> str:
        return os.path.join(self.workspace, "journal.jsonl")

    @property
    def corpus_dir(self) -> str:
        return os.path.join(self.workspace, "corpus")

    @property
    def state_path(self) -> str:
        return os.path.join(self.workspace, "job.json")

    def to_json(self, include_events: bool = False) -> dict:
        data = {
            "id": self.id,
            "spec": self.spec.to_json(),
            "status": self.status.value,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "completed": self.completed,
            "total": self.total,
            "error": self.error,
            "result": self.result,
        }
        if include_events:
            data["events"] = self.events_since(0)
        return data

    def save(self) -> None:
        os.makedirs(self.workspace, exist_ok=True)
        tmp = self.state_path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(self.to_json(), handle, indent=1)
        os.replace(tmp, self.state_path)

    @classmethod
    def load(cls, workspace: str) -> Job:
        with open(os.path.join(workspace, "job.json")) as handle:
            data = json.load(handle)
        job = cls(data["id"], JobSpec.from_json(data["spec"]),
                  workspace, created=data.get("created"))
        job.status = JobStatus(data["status"])
        job.started = data.get("started")
        job.finished = data.get("finished")
        job.completed = data.get("completed", 0)
        job.total = data.get("total", 0)
        job.error = data.get("error")
        job.result = data.get("result")
        return job


# -- runners ----------------------------------------------------------------


def run_job(job: Job) -> dict:
    """Execute a job's campaign; returns the JSON result summary.

    Raises :class:`repro.faults.executor.CampaignStopped` when the
    job's stop flag interrupted it (orchestrator turns that into
    CANCELLED or REQUEUED) and any other exception on infra failure.
    """
    runner = {"inject": _run_inject, "coverage": _run_coverage,
              "fuzz": _run_fuzz, "verify": _run_verify,
              "profile": _run_profile}[job.spec.kind]
    return runner(job)


def _resume_flag(job: Job) -> bool:
    """A requeued job with a journal resumes; fresh jobs start clean."""
    return os.path.exists(job.journal_path)


def _run_inject(job: Job) -> dict:
    from repro.cli import parse_fault_token
    from repro.faults import CampaignExecutor
    from repro.faults.journal import CampaignJournal, inject_header
    params = job.spec.params
    program = _assemble(job.spec.program, job.spec.name)
    thread = params.get("thread")
    specs = [parse_fault_token(program, token,
                               branch=str(params.get("branch", "0")),
                               occurrence=int(params.get("occurrence",
                                                         1)),
                               thread=(None if thread is None
                                       else int(thread)))
             for token in params["faults"]]
    config = build_pipeline_config(params)
    resume = _resume_flag(job)
    if not resume:
        CampaignJournal(job.journal_path).append_header(
            inject_header(params.get("technique"),
                          params.get("policy", "allbb"),
                          params.get("backend", "interp"),
                          recover=bool(params.get("recover", False)),
                          threads=config.threads,
                          quantum=config.quantum,
                          sched_policy=config.sched_policy,
                          sched_seed=config.sched_seed,
                          sig_swap=config.sig_swap))
    from repro.obs.traceevent import TraceContext
    executor = CampaignExecutor(
        program, config, jobs=params.get("jobs", 1),
        retries=params.get("retries"), timeout=params.get("timeout"),
        journal=job.journal_path, resume=resume,
        on_progress=job.on_progress, stop_check=job.stop_requested,
        trace=TraceContext.root(job.id))
    records = executor.run_specs(specs)
    outcomes: dict[str, int] = {}
    details = []
    for spec, record in zip(specs, records):
        outcomes[record.outcome.value] = \
            outcomes.get(record.outcome.value, 0) + 1
        details.append({"fault": spec.describe(),
                        "outcome": record.outcome.value,
                        "stop_reason": record.stop_reason,
                        "detection_latency": record.detection_latency})
    return {"config": config.label(), "outcomes": outcomes,
            "records": details}


def _run_coverage(job: Job) -> dict:
    from repro.analysis import compute_coverage_matrix
    from repro.faults.journal import CampaignJournal, coverage_header
    params = job.spec.params
    program = _assemble(job.spec.program, job.spec.name)
    seed = int(params.get("seed", 2006))
    per_category = int(params.get("per_category", 8))
    backend = params.get("backend", "interp")
    resume = _resume_flag(job)
    if not resume:
        CampaignJournal(job.journal_path).append_header(
            coverage_header(seed, per_category, backend))
    forensics = params.get("forensics")
    forensics_path = None
    if forensics is not None:
        from repro.forensics import bundle_path_for
        forensics_path = bundle_path_for(job.journal_path)
    matrix = compute_coverage_matrix(
        program, per_category=per_category, seed=seed,
        include_cache_level=not params.get("no_cache_level", False),
        jobs=params.get("jobs", 1), retries=params.get("retries"),
        timeout=params.get("timeout"), journal=job.journal_path,
        resume=resume, forensics=forensics,
        forensics_path=forensics_path, backend=backend,
        on_progress=job.on_progress, stop_check=job.stop_requested)
    configs = {}
    for label, result in matrix.results.items():
        configs[label] = {
            category.value: {outcome.value: count
                             for outcome, count in bucket.items()}
            for category, bucket in result.outcomes.items()}
    return {"table": matrix.table(), "configs": configs,
            "infra": sum(result.total_infra()
                         for result in matrix.results.values())}


def _run_fuzz(job: Job) -> dict:
    from repro.fuzz import run_fuzz
    params = job.spec.params
    config = build_fuzz_config(params)
    # Fuzzing is rerun-deterministic: a requeued job reruns from
    # scratch, so drop the torn journal (and its trace sidecar)
    # instead of resuming it (run_fuzz appends its own header).
    from repro.obs.traceevent import trace_sidecar_path
    for stale in (job.journal_path,
                  trace_sidecar_path(job.journal_path)):
        if os.path.exists(stale):
            os.unlink(stale)
    report = run_fuzz(config, jobs=params.get("jobs", 1),
                      retries=params.get("retries"),
                      timeout=params.get("timeout"),
                      journal=job.journal_path,
                      corpus=job.corpus_dir,
                      on_progress=job.on_progress,
                      stop_check=job.stop_requested)
    return {"summary": report.summary_line(),
            "passed": report.passed,
            "programs": report.programs,
            "ok": report.ok,
            "infra_errors": report.infra_errors,
            "failures": [{"index": failure.index,
                          "kind": failure.kind,
                          "detail": failure.detail,
                          "corpus_dir": failure.corpus_dir}
                         for failure in report.failures]}


def _run_verify(job: Job) -> dict:
    from repro.cli import _verify_task
    from repro.faults import MapError, parallel_map
    params = job.spec.params
    program = _assemble(job.spec.program, job.spec.name)
    techniques = params.get("techniques", ["edgcf"])
    tasks = [(program, technique, params.get("policy", "allbb"))
             for technique in techniques]
    results = parallel_map(_verify_task, tasks,
                           jobs=params.get("jobs", 1),
                           retries=params.get("retries"),
                           timeout=params.get("timeout"),
                           on_progress=job.on_progress,
                           stop_check=job.stop_requested)
    out = {}
    clean = True
    for task, result in zip(tasks, results):
        if isinstance(result, MapError):
            out[task[1]] = {"error": result.error}
            clean = False
            continue
        technique, report = result
        out[technique] = {"summary": report.summary(),
                          "violations": len(report.violations),
                          "unproven": len(report.unproven)}
        if report.violations:
            clean = False
    return {"techniques": out, "clean": clean}


def _run_profile(job: Job) -> dict:
    """Hot-block profile of one run; the annotated report lands in the
    workspace as ``profile.txt``, the block table in the job result
    (which the dashboard's hot-block panel renders)."""
    from repro.exec.profiler import profile_dbt, profile_native
    params = job.spec.params
    program = _assemble(job.spec.program, job.spec.name)
    max_steps = int(params.get("max_steps", 50_000_000))
    job.on_progress(0, 1)
    if params.get("dbt"):
        _, result, profiler = profile_dbt(program, max_steps=max_steps)
        stop = result.stop
        mode = "dbt"
    else:
        _, stop, profiler = profile_native(
            program, backend=params.get("backend", "interp"),
            max_steps=max_steps)
        mode = params.get("backend", "interp")
    top = int(params.get("top", 10))
    report = profiler.render_report(program, top=top)
    os.makedirs(job.workspace, exist_ok=True)
    with open(os.path.join(job.workspace, "profile.txt"), "w") as out:
        out.write(report + "\n")
    job.on_progress(1, 1)
    summary = profiler.as_json(program, top=top)
    summary.update({"mode": mode, "stop": stop.reason.name,
                    "program": job.spec.name})
    return summary
