"""Campaign service: REST API, job orchestrator, artifact store.

Everything here is stdlib-only (``http.server``, ``threading``,
``json``); the service is an orchestration shell around the existing
campaign engine — a job submitted over HTTP runs through the very same
:class:`~repro.faults.executor.CampaignExecutor` / journal code paths
as the CLI, so its journal is byte-identical to the CLI's.
"""

from repro.service.store import ArtifactStore
from repro.service.jobs import Job, JobSpec, JobStatus, validate_spec
from repro.service.orchestrator import Orchestrator, QuotaError
from repro.service.api import ServiceServer, create_server
from repro.service.client import ServiceClient, ServiceError

__all__ = [
    "ArtifactStore",
    "Job",
    "JobSpec",
    "JobStatus",
    "Orchestrator",
    "QuotaError",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "create_server",
    "validate_spec",
]
