"""Content-addressed on-disk artifact store.

Promotes the in-process golden-run/profile caches
(:mod:`repro.faults.cache`) to a disk tier shared across jobs and
service restarts.  Entries are keyed by content — the golden cache by
``(program digest, config key)``, the profile cache by
``(program digest, max_steps)`` — so two jobs submitting the same
workload under the same configuration share one entry no matter which
process computed it.

Every artifact is a JSON envelope carrying the pickled payload
(base64) plus a sha256 over the payload bytes; the sha is re-verified
on every load and a mismatching file is deleted and reported as a
miss, so a torn write or bit-flip can never resurrect as a wrong
golden run.  Writes are atomic (``tmp`` + ``os.replace``) so
concurrent jobs and crashed processes leave either the old entry, the
new entry, or nothing — never a partial file.

Eviction is LRU over file mtimes (a hit touches the file), bounded by
entry count and total bytes.  Hits/misses/stores/corruptions are
counted per kind under ``service_disk_cache_total``.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import tempfile

from repro import obs

#: artifact kinds with their own subdirectory and counter label
KINDS = ("golden", "profile", "blob")


def _key_name(key) -> str:
    """Stable filename for a cache key.

    ``repr`` of the key tuples used here (strings, ints, bools) is
    stable across processes and Python runs — unlike ``hash()``,
    which is salted.
    """
    return hashlib.sha256(repr(key).encode()).hexdigest()


class ArtifactStore:
    """Disk-backed content-addressed cache under one root directory."""

    def __init__(self, root: str, max_entries: int = 4096,
                 max_bytes: int = 512 * 1024 * 1024):
        self.root = root
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        for kind in KINDS:
            os.makedirs(os.path.join(root, kind), exist_ok=True)

    # -- generic envelope ------------------------------------------------

    def _path(self, kind: str, name: str) -> str:
        return os.path.join(self.root, kind, name + ".json")

    def _write(self, kind: str, name: str, payload: bytes) -> None:
        envelope = {
            "kind": kind,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "size": len(payload),
            "payload": base64.b64encode(payload).decode("ascii"),
        }
        directory = os.path.join(self.root, kind)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(envelope, handle)
            os.replace(tmp, self._path(kind, name))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        obs.counter("service_disk_cache_total",
                    help="disk artifact-cache operations",
                    kind=kind, result="store").inc()
        self._evict()

    def _read(self, kind: str, name: str) -> bytes | None:
        path = self._path(kind, name)
        try:
            with open(path) as handle:
                envelope = json.load(handle)
            payload = base64.b64decode(envelope["payload"])
            if hashlib.sha256(payload).hexdigest() != envelope["sha256"]:
                raise ValueError("sha256 mismatch")
        except FileNotFoundError:
            obs.counter("service_disk_cache_total",
                        help="disk artifact-cache operations",
                        kind=kind, result="miss").inc()
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Torn write or corruption: drop the entry so it cannot be
            # served again, report as a miss plus a corruption marker.
            obs.counter("service_disk_cache_total",
                        help="disk artifact-cache operations",
                        kind=kind, result="corrupt").inc()
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        obs.counter("service_disk_cache_total",
                    help="disk artifact-cache operations",
                    kind=kind, result="hit").inc()
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass
        return payload

    # -- golden / profile tiers -----------------------------------------

    def get_golden(self, digest: str, key: tuple):
        payload = self._read("golden", _key_name((digest, key)))
        if payload is None:
            return None
        try:
            return pickle.loads(payload)
        except Exception:
            return None

    def put_golden(self, digest: str, key: tuple, golden) -> None:
        self._write("golden", _key_name((digest, key)),
                    pickle.dumps(golden))

    def get_profile(self, digest: str, max_steps: int):
        payload = self._read("profile", _key_name((digest, max_steps)))
        if payload is None:
            return None
        try:
            return pickle.loads(payload)
        except Exception:
            return None

    def put_profile(self, digest: str, max_steps: int, profiler) -> None:
        self._write("profile", _key_name((digest, max_steps)),
                    pickle.dumps(profiler))

    # -- content-addressed blobs ----------------------------------------

    def put_blob(self, data: bytes) -> str:
        """Store raw bytes under their own sha256; returns the digest."""
        digest = hashlib.sha256(data).hexdigest()
        if not os.path.exists(self._path("blob", digest)):
            self._write("blob", digest, data)
        return digest

    def get_blob(self, digest: str) -> bytes | None:
        return self._read("blob", digest)

    # -- maintenance -----------------------------------------------------

    def _entries(self):
        out = []
        for kind in KINDS:
            directory = os.path.join(self.root, kind)
            for name in os.listdir(directory):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(directory, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                out.append((stat.st_mtime, stat.st_size, path))
        return out

    def _evict(self) -> None:
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        if len(entries) <= self.max_entries and total <= self.max_bytes:
            return
        entries.sort()  # oldest mtime first
        while entries and (len(entries) > self.max_entries
                           or total > self.max_bytes):
            _, size, path = entries.pop(0)
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            obs.counter("service_disk_cache_total",
                        help="disk artifact-cache operations",
                        kind=os.path.basename(os.path.dirname(path)),
                        result="evict").inc()

    def stats(self) -> dict:
        entries = self._entries()
        per_kind: dict[str, int] = {}
        for _, _, path in entries:
            kind = os.path.basename(os.path.dirname(path))
            per_kind[kind] = per_kind.get(kind, 0) + 1
        return {"entries": len(entries),
                "bytes": sum(size for _, size, _ in entries),
                "per_kind": per_kind}
