"""Deterministic preemptive scheduling policies.

The scheduler is the *only* source of nondeterminism a real
multithreaded machine would add, so everything here is pinned down:

* preemption happens on a **fixed quantum counted in retired guest
  instructions** (both execution backends honour ``max_steps`` exactly,
  so a quantum expires at the same dynamic instruction on the
  interpreter and the block-compiling tier — the schedule trace is
  byte-identical across backends);
* ``rr`` (round-robin) is a plain FIFO over ready threads;
* ``priority`` runs the highest-priority ready thread, breaking ties
  with a **seeded** RNG stream derived from the scheduler seed — the
  same seed always produces the same schedule, a different seed
  explores a different (but equally reproducible) interleaving;
* the RNG stream advances only when a tie is actually broken, so
  schedules are stable under unrelated changes.

The scheduler state (queue order + RNG state) snapshots into a plain
tuple so checkpoint/rollback recovery can restore mid-campaign.
"""

from __future__ import annotations

import random

#: Supported scheduling policies.
POLICIES = ("rr", "priority")

#: Default preemption quantum in retired guest instructions.
DEFAULT_QUANTUM = 500


class DeterministicScheduler:
    """Ready-queue management under a fixed, seeded policy."""

    def __init__(self, quantum: int = DEFAULT_QUANTUM,
                 policy: str = "rr", seed: int = 0):
        if policy not in POLICIES:
            raise ValueError(f"unknown scheduling policy {policy!r}; "
                             f"expected one of {POLICIES}")
        self.quantum = max(1, int(quantum))
        self.policy = policy
        self.seed = seed
        from repro.faults.sampling import derive_seed
        self._rng = random.Random(derive_seed(seed, "sched", policy))
        self._queue: list[int] = []

    def enqueue(self, tid: int) -> None:
        """Add a ready thread at the tail of the FIFO order."""
        self._queue.append(tid)

    def remove(self, tid: int) -> None:
        """Drop a thread from the ready queue (it blocked or exited)."""
        if tid in self._queue:
            self._queue.remove(tid)

    def pick(self, priority_of) -> int | None:
        """Dequeue the next thread to run (None when nothing is ready).

        ``priority_of(tid)`` supplies priorities under the ``priority``
        policy; round-robin ignores it.
        """
        if not self._queue:
            return None
        if self.policy == "rr":
            return self._queue.pop(0)
        best = max(priority_of(tid) for tid in self._queue)
        tied = [tid for tid in self._queue if priority_of(tid) == best]
        choice = tied[0] if len(tied) == 1 else self._rng.choice(tied)
        self._queue.remove(choice)
        return choice

    def ready_count(self) -> int:
        return len(self._queue)

    def ready_tids(self) -> tuple[int, ...]:
        return tuple(self._queue)

    def rotate(self) -> None:
        """Move the head of the ready queue to the tail (a scheduler-
        state fault primitive: perturbs who runs next, nothing else)."""
        if len(self._queue) > 1:
            self._queue.append(self._queue.pop(0))

    # -- checkpoint/rollback support ----------------------------------

    def snapshot(self) -> tuple:
        return (tuple(self._queue), self._rng.getstate())

    def restore(self, snap: tuple) -> None:
        queue, rng_state = snap
        self._queue = list(queue)
        self._rng.setstate(rng_state)
