"""The multithreaded guest machine: one CPU, many thread contexts.

:class:`ThreadedMachine` multiplexes guest threads over the single
shared :class:`~repro.machine.cpu.Cpu` by context switching — saving
and restoring the full architectural register file (guest r0..r15 plus
the host-only r16+ bank the checking techniques use for signature
state), FLAGS and the pc.  Threads are created and synchronized by
guest syscalls (services 16..22, see
:class:`~repro.machine.syscalls.Service`), which trap out of the run
loop on *both* execution backends: a syscall always ends a compiled
trace too, so the machine regains control at exactly the same retired
instruction on the interpreter and the block-compiling tier.

Everything is deterministic: preemption is a fixed quantum in retired
instructions, policy tie-breaks are seeded, and the machine records a
**schedule trace** — ``(icount, tid, event)`` triples — that the fuzz
digest oracle hashes alongside outputs to prove interp/block parity on
threaded programs.

Signature swapping
------------------

With ``sig_swap=True`` (the default) the context switch is a full
32-register swap, so every checker's signature registers (ECF's PCP
and call-stack shadow RTS, CFCSS/ECCA's G/D) are thread-private:
Technique x Policy verification is correct across switches, exactly as
Khoshavi et al. (arXiv:1607.07727) prescribe for multithreaded
signature monitoring.

With ``sig_swap=False`` the machine models a runtime that does *not*
treat checker state as part of the thread context: at every switch-in
the signature registers are instead **resynchronized** to the
statically-expected fault-free values at the resume pc (an abstract
interpretation over the instrumented program; see
:mod:`repro.threads.resync`).  Fault-free runs are unaffected — the
resync writes the same values a swap would have restored — but a fault
whose only evidence is a *corrupted signature register pending its
next check* has that evidence wiped by the first preemption, turning a
would-be detection into a silent cross-context escape.  This is the
escape class the multithreaded-CFE literature predicts, made
reproducible on demand.

The machine also exposes the scheduler's own state to the fault
injector (:class:`SchedFaultSpec` in :mod:`repro.faults.injector`):
bit flips in a saved (switched-out) context and ready-queue
perturbations, applied at an exact context-switch ordinal.
"""

from __future__ import annotations

from repro.machine.faults import StopInfo, StopReason
from repro.isa.program import STACK_TOP
from repro.threads.context import (BLOCKED, EXITED, READY, RUNNING,
                                   ThreadContext)
from repro.threads.scheduler import DEFAULT_QUANTUM, DeterministicScheduler

#: Hard cap on live + exited threads per run (stacks are carved from
#: the program's RW stack region: tid i's stack top sits STACK_SLOT
#: bytes below tid i-1's).
MAX_THREADS = 16

#: Per-thread stack slot in bytes.
STACK_SLOT = 0x1000

#: SPAWN/JOIN error result (guest-visible).
INVALID_TID = 0xFFFFFFFF


class ThreadedMachine:
    """Deterministic preemptive multithreading over one shared Cpu."""

    def __init__(self, cpu, *, quantum: int = DEFAULT_QUANTUM,
                 policy: str = "rr", seed: int = 0,
                 sig_swap: bool = True,
                 sig_regs: tuple[int, ...] = (),
                 resync_table: dict | None = None,
                 entry_map=None,
                 spawn_sig_init: dict | None = None):
        self.cpu = cpu
        self.scheduler = DeterministicScheduler(quantum=quantum,
                                                policy=policy, seed=seed)
        self.sig_swap = sig_swap
        self.sig_regs = tuple(sig_regs)
        self.resync_table = resync_table or {}
        #: optional old->instrumented address map applied to SPAWN
        #: entry points (the static rewriter relocates code, but the
        #: guest's ``const rX, fn`` immediates still hold original
        #: addresses — the machine plays loader)
        self.entry_map = entry_map
        #: ``old entry -> {reg: value}``: signature-register values a
        #: spawned thread starts with (the technique's prologue
        #: invariant re-established for the worker entry — a fresh
        #: thread has no control-flow history, so without this the
        #: worker's first CHECK_SIG would fire on a clean run).  Built
        #: by :func:`repro.threads.resync.build_spawn_sig_table`; None
        #: for uninstrumented programs.
        self.spawn_sig_init = spawn_sig_init
        #: (icount, tid, event) triples; hashed into the run digest
        self.trace: list[tuple[int, int, str]] = []
        #: context switches performed (SchedFaultSpec ordinals)
        self.switches = 0
        #: scheduler-state fault to apply (set by the pipeline)
        self.sched_fault = None
        self.deadlocked = False
        self.mutex_owner: dict[int, int | None] = {}
        self.mutex_waiters: dict[int, list[int]] = {}
        # Thread 0 adopts the CPU state load_program set up.
        main = ThreadContext(tid=0, pc=cpu.pc, regs=list(cpu.regs),
                             flags=cpu.flags, state=RUNNING)
        self.contexts: dict[int, ThreadContext] = {0: main}
        self.current = 0
        self._next_tid = 1
        self._quantum_left = self.scheduler.quantum
        cpu.thread_api = self
        cpu.current_tid = 0
        self._event("start", 0)

    # -- bookkeeping ---------------------------------------------------

    def _event(self, event: str, tid: int) -> None:
        self.trace.append((self.cpu.icount, tid, event))

    def live_threads(self) -> int:
        return sum(1 for ctx in self.contexts.values()
                   if ctx.state != EXITED)

    def thread_count(self) -> int:
        return len(self.contexts)

    # -- context switching ---------------------------------------------

    def _save_current(self) -> ThreadContext:
        cpu = self.cpu
        ctx = self.contexts[self.current]
        ctx.regs = list(cpu.regs)
        ctx.flags = cpu.flags
        ctx.pc = cpu.pc
        return ctx

    def _resync_signatures(self) -> None:
        """Overwrite signature registers with their statically-expected
        fault-free values at the resume pc (``sig_swap=False`` only).

        A register whose expected value is unknown at this pc (TOP in
        the abstract interpretation, e.g. ECF's call-stack shadow deep
        in an unbounded call chain) keeps its restored value — the
        resync only wipes evidence where the static model is sure."""
        expected = self.resync_table.get(self.cpu.pc)
        if not expected:
            return
        regs = self.cpu.regs
        for reg in self.sig_regs:
            value = expected.get(reg)
            if value is not None:
                regs[reg] = value

    def _switch_in(self, tid: int) -> None:
        cpu = self.cpu
        ctx = self.contexts[tid]
        cpu.regs[:] = ctx.regs
        cpu.flags = ctx.flags
        cpu.pc = ctx.pc
        ctx.state = RUNNING
        self.current = tid
        cpu.current_tid = tid
        self.switches += 1
        self._quantum_left = self.scheduler.quantum
        if not self.sig_swap:
            self._resync_signatures()
        fault = self.sched_fault
        if fault is not None and not fault.fired:
            fault.on_switch(self)
        self._event("switch", tid)

    def _end_turn(self, outgoing_ready: bool) -> bool:
        """Save the current context and run the next ready thread.

        Returns False when no thread can run (all exited, or
        deadlock).  ``outgoing_ready`` re-queues the current thread
        (preempt/yield) rather than leaving it blocked/exited.
        """
        ctx = self._save_current()
        if outgoing_ready:
            ctx.state = READY
            self.scheduler.enqueue(ctx.tid)
        nxt = self.scheduler.pick(
            lambda tid: self.contexts[tid].priority)
        if nxt is None:
            return False
        self._switch_in(nxt)
        return True

    # -- guest thread services (trap targets) --------------------------

    def _service(self, number: int) -> bool:
        """Handle one thread syscall.  Returns True while the machine
        still has a runnable thread (the current one or a switched-in
        successor); False means nothing can run."""
        from repro.machine.syscalls import Service
        cpu = self.cpu
        regs = cpu.regs
        if number == Service.SPAWN:
            regs[0] = self._spawn(regs[1], regs[2], regs[3])
            return True
        if number == Service.JOIN:
            return self._join(regs[1] & 0xFFFFFFFF)
        if number == Service.YIELD:
            self._event("yield", self.current)
            return self._end_turn(outgoing_ready=True)
        if number == Service.MUTEX_LOCK:
            return self._mutex_lock(regs[1] & 0xFFFFFFFF)
        if number == Service.MUTEX_UNLOCK:
            self._mutex_unlock(regs[1] & 0xFFFFFFFF)
            return True
        if number == Service.TID:
            regs[0] = self.current
            return True
        if number == Service.THREAD_EXIT:
            return self._thread_exit(regs[1] & 0xFFFFFFFF)
        return True  # unreachable: handle_syscall gates 16..22

    def _spawn(self, entry: int, arg: int, priority: int) -> int:
        if self._next_tid >= MAX_THREADS:
            return INVALID_TID
        tid = self._next_tid
        self._next_tid += 1
        sig_init = None
        if self.spawn_sig_init is not None:
            sig_init = self.spawn_sig_init.get(entry)
        if self.entry_map is not None:
            entry = self.entry_map(entry)
        ctx = ThreadContext(tid=tid, pc=entry, state=READY,
                            priority=priority
                            if priority < 0x80000000
                            else priority - 0x100000000)
        ctx.regs[1] = arg & 0xFFFFFFFF
        if sig_init:
            for reg, value in sig_init.items():
                ctx.regs[reg] = value
        ctx.regs[15] = STACK_TOP - tid * STACK_SLOT - 16
        self.contexts[tid] = ctx
        self.scheduler.enqueue(tid)
        self._event("spawn", tid)
        return tid

    def _join(self, target_tid: int) -> bool:
        cpu = self.cpu
        target = self.contexts.get(target_tid)
        if target is None or target_tid == self.current:
            cpu.regs[0] = INVALID_TID
            return True
        if target.state == EXITED:
            cpu.regs[0] = target.retval
            return True
        target.joiners.append(self.current)
        ctx = self.contexts[self.current]
        ctx.waiting_on = ("join", target_tid)
        self._event("block-join", self.current)
        ctx_saved = self._end_turn(outgoing_ready=False)
        ctx.state = BLOCKED if ctx.state == RUNNING else ctx.state
        return ctx_saved

    def _mutex_lock(self, mid: int) -> bool:
        owner = self.mutex_owner.get(mid)
        if owner is None or owner == self.current:
            self.mutex_owner[mid] = self.current
            return True
        self.mutex_waiters.setdefault(mid, []).append(self.current)
        ctx = self.contexts[self.current]
        ctx.waiting_on = ("mutex", mid)
        self._event("block-mutex", self.current)
        switched = self._end_turn(outgoing_ready=False)
        ctx.state = BLOCKED if ctx.state == RUNNING else ctx.state
        return switched

    def _mutex_unlock(self, mid: int) -> None:
        if self.mutex_owner.get(mid) != self.current:
            return  # unlocking an unheld mutex: deterministic no-op
        waiters = self.mutex_waiters.get(mid)
        if waiters:
            nxt = waiters.pop(0)
            self.mutex_owner[mid] = nxt
            self._wake(nxt)
        else:
            self.mutex_owner[mid] = None

    def _wake(self, tid: int) -> None:
        ctx = self.contexts[tid]
        ctx.state = READY
        ctx.waiting_on = None
        self.scheduler.enqueue(tid)
        self._event("wake", tid)

    def _thread_exit(self, retval: int) -> bool:
        ctx = self.contexts[self.current]
        ctx.retval = retval
        self._event("exit", self.current)
        for joiner_tid in ctx.joiners:
            joiner = self.contexts[joiner_tid]
            joiner.regs[0] = retval
            self._wake(joiner_tid)
        ctx.joiners = []
        switched = self._end_turn(outgoing_ready=False)
        ctx.state = EXITED
        return switched

    # -- the run loop --------------------------------------------------

    def run(self, max_steps: int) -> StopInfo:
        """Run until the machine halts, faults, or exhausts the budget.

        Semantics of the returned stop, mirroring ``Cpu.run``:

        * HALTED — a thread executed EXIT (whole-machine exit, like a
          process ``exit()``), a CHECK reported CFC_ERROR (fail-stop
          detection), or every thread ran to THREAD_EXIT;
        * FAULT — a hardware protection mechanism fired in some thread
          (the machine fail-stops: category-F detection);
        * STEP_LIMIT — the budget ran out, or every live thread is
          blocked (``self.deadlocked`` distinguishes the two).
        """
        cpu = self.cpu
        budget = max_steps
        while True:
            if budget <= 0:
                return StopInfo(StopReason.STEP_LIMIT, cpu.pc)
            # Solo fast path: with an empty ready queue there is no
            # preemption target — a quantum expiry would save and
            # restore the *same* thread.  Under signature swapping that
            # self-switch is a pure no-op, and blocked threads can only
            # be woken by the current thread's own syscalls (which trap
            # out of cpu.run regardless), so the whole remaining budget
            # can run as one chunk — sparing the block backend the
            # per-chunk trampoline re-entry and interpreter tail.
            # Without swapping a self-switch *resynchronizes* signature
            # registers — observable behaviour the escape mode depends
            # on — so the chunked path is kept there.
            solo = self.sig_swap and self.scheduler.ready_count() == 0
            chunk = budget if solo else min(self._quantum_left, budget)
            before = cpu.icount
            stop = cpu.run(max_steps=chunk)
            executed = cpu.icount - before
            budget -= executed
            if not solo:
                self._quantum_left -= executed
            request = cpu.thread_request
            if request is not None:
                cpu.thread_request = None
                if not self._service(request):
                    return self._starved()
                if self._quantum_left <= 0:
                    # The service consumed the turn's last instruction:
                    # preempt before resuming whoever is current.
                    self._event("preempt", self.current)
                    if not self._end_turn(outgoing_ready=True):
                        return self._starved()
                continue
            if stop.reason in (StopReason.STEP_LIMIT,
                               StopReason.CYCLE_LIMIT):
                if budget <= 0:
                    return stop
                # Quantum expiry: preempt.  The outgoing thread goes to
                # the queue tail and the scheduler picks the successor
                # (possibly the same thread — the save/restore still
                # happens, so --no-sig-swap semantics stay uniform).
                self._event("preempt", self.current)
                if not self._end_turn(outgoing_ready=True):
                    return self._starved()
                continue
            # HALTED (EXIT / CFC_ERROR), FAULT, TRAP: machine-wide stop.
            self._event("halt", self.current)
            return stop

    def _starved(self) -> StopInfo:
        """No runnable thread: clean completion or deadlock."""
        cpu = self.cpu
        if self.live_threads() == 0:
            self._event("halt", self.current)
            cpu.exit_code = 0
            return StopInfo(StopReason.HALTED, cpu.pc, exit_code=0)
        self.deadlocked = True
        self._event("deadlock", self.current)
        return StopInfo(StopReason.STEP_LIMIT, cpu.pc)

    # -- schedule-trace digest -----------------------------------------

    def trace_digest(self) -> str:
        """Content hash of the schedule trace (cross-backend oracle)."""
        import hashlib
        hasher = hashlib.sha256()
        for icount, tid, event in self.trace:
            hasher.update(f"{icount}:{tid}:{event};".encode())
        return hasher.hexdigest()[:16]

    # -- checkpoint/rollback support -----------------------------------

    def snapshot_sched_state(self) -> tuple:
        """Scheduler-side state for a recovery checkpoint.

        The *current* thread's registers live in the CPU (captured by
        the ordinary :class:`~repro.recovery.checkpoint.Checkpoint`);
        everything else — other contexts, ready queue, mutexes, the
        quantum in flight and the trace length — is captured here.
        """
        return (
            self.current,
            self._next_tid,
            self._quantum_left,
            self.switches,
            tuple(sorted((tid, ctx.snapshot())
                         for tid, ctx in self.contexts.items())),
            self.scheduler.snapshot(),
            tuple(sorted(self.mutex_owner.items())),
            tuple(sorted((mid, tuple(waiters)) for mid, waiters
                         in self.mutex_waiters.items())),
            len(self.trace),
            self.deadlocked,
        )

    def restore_sched_state(self, snap: tuple) -> None:
        (current, next_tid, quantum_left, switches, contexts,
         sched, mutex_owner, mutex_waiters, trace_len,
         deadlocked) = snap
        self.current = current
        self.cpu.current_tid = current
        self._next_tid = next_tid
        self._quantum_left = quantum_left
        self.switches = switches
        self.contexts = {tid: ThreadContext.from_snapshot(ctx_snap)
                         for tid, ctx_snap in contexts}
        self.scheduler.restore(sched)
        self.mutex_owner = dict(mutex_owner)
        self.mutex_waiters = {mid: list(waiters)
                              for mid, waiters in mutex_waiters}
        del self.trace[trace_len:]
        self.deadlocked = deadlocked
