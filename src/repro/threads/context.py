"""Per-thread CPU contexts for the multithreaded guest machine.

A :class:`ThreadContext` is everything one guest thread owns of the
shared :class:`~repro.machine.cpu.Cpu`: the 32 architectural registers
(including the host-only r16+ bank where the checking techniques keep
their signature state G/D and ECF's call-stack shadow register), FLAGS
and the pc.  Context switches are a full save/restore of this state —
which is exactly the "signature swap" the multithreaded-CFE literature
(Khoshavi et al., arXiv:1607.07727) identifies as the requirement for
signature monitoring to survive preemption.  The deliberate
``--no-sig-swap`` mode (see :mod:`repro.threads.machine`) weakens only
the signature-register part of the restore to reproduce the escapes
that follow when the runtime treats checker state as kernel-managed
rather than thread-private.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Thread lifecycle states.
READY = "ready"
RUNNING = "running"
BLOCKED = "blocked"
EXITED = "exited"


@dataclass
class ThreadContext:
    """One guest thread's saved machine state plus scheduling fields."""

    tid: int
    pc: int
    regs: list[int] = field(default_factory=lambda: [0] * 32)
    flags: int = 0
    state: str = READY
    #: scheduling priority (larger runs first under the "priority"
    #: policy; ignored by round-robin)
    priority: int = 0
    #: value passed to THREAD_EXIT, delivered to joiners in r0
    retval: int = 0
    #: tids blocked in JOIN on this thread
    joiners: list[int] = field(default_factory=list)
    #: what a BLOCKED thread waits for: ("join", tid) | ("mutex", id)
    waiting_on: tuple | None = None

    def snapshot(self) -> tuple:
        """Immutable copy for checkpoint/rollback recovery."""
        return (self.tid, self.pc, tuple(self.regs), self.flags,
                self.state, self.priority, self.retval,
                tuple(self.joiners), self.waiting_on)

    @classmethod
    def from_snapshot(cls, snap: tuple) -> "ThreadContext":
        tid, pc, regs, flags, state, priority, retval, joiners, wait = snap
        return cls(tid=tid, pc=pc, regs=list(regs), flags=flags,
                   state=state, priority=priority, retval=retval,
                   joiners=list(joiners), waiting_on=wait)
