"""Statically-expected signature values at every instrumented pc.

The ``--no-sig-swap`` machine mode models a runtime that does not
context-switch the checking technique's signature registers with the
thread: at every switch-in it *resynchronizes* them to the values a
fault-free execution would hold at the resume pc.  This module computes
those values, reusing the instrument verifier's abstract interpreter
(:mod:`repro.instrument.verifier`): signature updates are built from
immediates and other signature registers, so constant propagation over
the host-only bank keeps them concrete almost everywhere.

The traversal is the verifier's own path-sensitive walk (states keyed
by branch assumption and flags producer, infeasible mirror-branch
paths pruned) — a plain block-entry join would be uselessly coarse:
ECF-style techniques keep the *sum* PCP+RTS invariant across an edge
while PCP and RTS individually differ per predecessor, so element-wise
merging before the entry update turns everything to ⊤.  Walking paths
separately, every legal path re-converges to PCP = sig(B) right after
block B's entry update, and the per-pc join stays concrete.

The table maps ``pc -> {sig_reg: expected_value}`` where the expected
value is the join over every legal path reaching pc — a register is
present with a concrete value only when all paths agree (otherwise it
joins to TOP and is omitted, and the machine keeps the restored value).
That one-sidedness is what makes the mode safe on clean runs and leaky
on faulty ones:

* clean run — the resync writes exactly the value the register already
  holds (or leaves it alone where the analysis is unsure), so outputs
  and the schedule trace stay byte-identical to ``sig_swap=True``;
* faulty run — a corrupted signature register whose evidence has not
  yet reached a CHECK_SIG is silently *repaired* by the first
  preemption, producing the cross-context escapes that Khoshavi et al.
  (arXiv:1607.07727) predict for signature monitoring without
  per-thread signature state.
"""

from __future__ import annotations

from repro.isa.opcodes import Op
from repro.cfg import build_cfg
from repro.checking.base import LoadSig
from repro.instrument.verifier import (TOP, _State, _push_successors,
                                       _step)

#: Traversal budget: bounds the path-sensitive walk on adversarial CFGs.
MAX_VISITS = 100_000


def build_spawn_sig_table(ip, technique) -> dict[int, dict[int, int]]:
    """Signature-register values a freshly spawned thread must start
    with: ``old block start -> {reg: value}``.

    A spawned thread enters its worker function with no control-flow
    history, so the machine plays the role the rewriter's prologue
    plays for the main thread: establish the technique's signature
    invariant *as if the worker entry were the program entry*.  Every
    technique expresses its prologue as pure :class:`LoadSig` items,
    so the values are statically computable — resolved against the
    rewriter's relocation map (signature = instrumented block address).

    The table is keyed by **original** addresses because that is what
    the guest's ``const rX, worker`` immediates hold at SPAWN time.
    """
    table: dict[int, dict[int, int]] = {}

    def resolver(old_block_start: int) -> int:
        return ip.block_map[old_block_start]

    for old_start in ip.block_map:
        init: dict[int, int] = {}
        for item in technique.prologue(old_start):
            if isinstance(item, LoadSig):
                init[item.rd] = item.expr.resolve(resolver) & 0xFFFFFFFF
        if init:
            table[old_start] = init
    return table


def build_resync_table(ip, sig_regs: tuple[int, ...],
                       entry_states: dict[int, dict[int, int]] | None = None,
                       max_visits: int = MAX_VISITS) -> dict:
    """``pc -> {reg: value}`` over the instrumented program.

    ``ip`` is an :class:`~repro.instrument.rewriter.InstrumentedProgram`;
    ``sig_regs`` names the technique's signature registers.  Registers
    that join to TOP at a pc are omitted from that pc's entry; pcs
    where every tracked register is TOP are omitted entirely.

    ``entry_states`` adds extra traversal roots — ``{new block start:
    {reg: value}}`` — for code only reachable through SPAWN: worker
    functions have no CFG predecessors, so without a seed the analysis
    never visits them and preemptions inside workers would never
    resync.  The pipeline passes the spawn-initialization values from
    :func:`build_spawn_sig_table`, mapped to instrumented addresses.
    """
    if not sig_regs:
        return {}
    program = getattr(ip, "program", ip)
    check_addresses = getattr(ip, "check_addresses", set())
    cfg = build_cfg(program)

    worklist: list[tuple[int, _State]] = [(cfg.entry_block.start,
                                           _State())]
    for seed_start, seed_regs in (entry_states or {}).items():
        if seed_start in cfg.blocks:
            state = _State()
            for reg, value in seed_regs.items():
                state.regs[reg] = value
            worklist.append((seed_start, state))

    # Same state-merging discipline as verify_instrumented: separate
    # states per (block, branch assumption, flags producer) so the
    # mirror-branch correlation and per-predecessor signature values
    # survive to the point where legal paths actually re-converge.
    seen: dict[tuple, _State] = {}
    # pc -> [value-or-TOP per sig_reg], joined over every visit.
    joined: dict[int, list] = {}
    visits = 0

    while worklist and visits < max_visits:
        block_start, state = worklist.pop()
        key = (block_start, state.assumed, state.flags_src)
        previous = seen.get(key)
        if previous is not None:
            merged, changed = previous.join(state)
            if not changed:
                continue
            seen[key] = merged
            state = merged.copy()
        else:
            seen[key] = state.copy()
        visits += 1

        block = cfg.block_at(block_start)
        for pc, instr in block.instructions:
            slot = joined.get(pc)
            if slot is None:
                joined[pc] = [state.regs[reg] for reg in sig_regs]
            else:
                for index, reg in enumerate(sig_regs):
                    if slot[index] is TOP:
                        continue
                    value = state.regs[reg]
                    if value is TOP or value != slot[index]:
                        slot[index] = TOP
            if pc in check_addresses:
                # A passed check refines the path: the checked scratch
                # register is zero on the fall-through (verifier rule).
                if instr.op is Op.JRNZ and instr.rd >= 16:
                    state.regs[instr.rd] = 0
                continue
            _step(state, pc, instr)

        _push_successors(cfg, block, state, worklist)

    table: dict[int, dict[int, int]] = {}
    for pc, slot in joined.items():
        expected = {reg: slot[index]
                    for index, reg in enumerate(sig_regs)
                    if slot[index] is not TOP}
        if expected:
            table[pc] = expected
    return table
