"""Multithreaded guest machine (ROADMAP item 3, second half).

A deterministic preemptive scheduler over per-thread CPU contexts,
guest syscalls for spawn/join/yield/mutex, and context-switch hooks
that save/restore each checking technique's signature registers so
Technique x Policy verification stays correct across switches — plus
the deliberate ``sig_swap=False`` mode that reproduces the
cross-context signature escapes of Khoshavi et al. (arXiv:1607.07727).

See docs/threads.md for the scheduler model and the syscall ABI.
"""

from repro.threads.context import ThreadContext
from repro.threads.machine import (INVALID_TID, MAX_THREADS, STACK_SLOT,
                                   ThreadedMachine)
from repro.threads.resync import build_resync_table, build_spawn_sig_table
from repro.threads.scheduler import (DEFAULT_QUANTUM, POLICIES,
                                     DeterministicScheduler)

__all__ = [
    "ThreadContext", "ThreadedMachine", "DeterministicScheduler",
    "build_resync_table", "build_spawn_sig_table",
    "DEFAULT_QUANTUM", "POLICIES", "MAX_THREADS", "STACK_SLOT",
    "INVALID_TID",
]
