"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``         assemble and execute a program (native / DBT / static),
                optionally with a checking technique, a policy, and
                data-flow duplication
``disasm``      assemble and print the listing
``inject``      run with one injected fault and report the outcome
``verify``      statically prove the instrumented binary never
                false-positives (the Section-4.4 necessary condition)
``errormodel``  per-program Figure-2-style branch-error probabilities
``suite``       list the benchmark suite with structural statistics
``coverage``    run the per-category coverage campaign on a program
``stats``       render a metrics snapshot captured with ``--metrics``
``explain``     per-run fault forensics: replay one fault against the
                golden trace and print the annotated divergence
                timeline with escape attribution
``fuzz``        differential fuzzing: generate seeded adversarial
                programs, diff every instrumentation against the
                golden run, exhaust single-bit branch errors on tiny
                programs, and shrink failures to minimal reproducers
                (see ``docs/fuzzing.md``)
``serve``       run the campaign service: REST API + SSE streaming +
                Prometheus metrics over the same campaign engine
                (see ``docs/service.md``)
``submit``      submit a job JSON to a running service, optionally
                streaming its events until completion
``jobs``        list/inspect/cancel/follow service jobs, or fetch a
                job's journal
``profile``     hot-block profile: per-block icount/cycle attribution
                riding the branch-profiler slot, with annotated
                disassembly of the top-N blocks (``--dbt`` maps
                code-cache samples back to guest blocks)
``trace``       export a campaign's ``<journal>.trace.jsonl`` sidecar
                (written whenever a campaign runs with ``--journal``,
                locally or in the service) as Chrome trace-event JSON
                for Perfetto / ``chrome://tracing``

``run``, ``inject``, ``verify`` and ``coverage`` accept ``--metrics
PATH`` and ``--trace PATH`` to capture telemetry (see
``docs/observability.md``); everything else runs with observability
off, which costs nothing.  ``inject`` and ``coverage`` accept
``--forensics[=N]`` to replay up to N sampled escapes through the
golden-divergence analyzer and write a JSONL forensics bundle next to
the journal (see ``docs/forensics.md``).  ``inject`` and ``explain``
accept ``--recover`` (plus ``--checkpoint-interval`` and
``--max-retries``) to roll detected faults back to the last
checkpoint and re-execute instead of merely reporting them; ``fuzz
--recover`` cross-checks that machinery with a recovery oracle (see
``docs/recovery.md``).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import obs
from repro.isa import assemble, disassemble_program
from repro.isa.program import Program
from repro.machine import run_native
from repro.checking import Policy, UpdateStyle, make_technique
from repro.dbt import Dbt
from repro.instrument import instrument_program


def _load_program(path: str) -> Program:
    with open(path) as handle:
        return assemble(handle.read(), name=path)


def _resolve_addr(program: Program, token: str) -> int:
    """Parse ``symbol``, ``symbol+imm`` or a bare integer."""
    base, sep, offset = token.partition("+")
    if base in program.symbols:
        value = program.symbols[base]
        return value + (int(offset, 0) if sep else 0)
    return int(token, 0)


def cmd_run(args) -> int:
    program = _load_program(args.file)
    backend = getattr(args, "backend", "interp")
    if args.pipeline == "native":
        cpu, stop = run_native(program, max_steps=args.max_steps,
                               backend=backend)
        detected = cpu.cfc_error
    elif args.pipeline == "static":
        instrumented = instrument_program(
            program, args.technique or "edgcf",
            Policy(args.policy), update_style=UpdateStyle(args.update))
        cpu, stop = run_native(instrumented.program,
                               max_steps=args.max_steps,
                               backend=backend)
        detected = cpu.cfc_error
    else:
        technique = (make_technique(args.technique,
                                    update_style=UpdateStyle(args.update))
                     if args.technique else None)
        dbt = Dbt(program, technique=technique,
                  policy=Policy(args.policy), dataflow=args.dataflow)
        if backend != "interp":
            from repro.exec import install_backend
            install_backend(dbt.cpu, backend)
        result = dbt.run(max_steps=args.max_steps)
        cpu, stop = dbt.cpu, result.stop
        detected = result.detected_error or result.detected_dataflow
    for chunk in cpu.output:
        sys.stdout.write(chunk)
    if cpu.output and not cpu.output[-1].endswith("\n"):
        sys.stdout.write("\n")
    exec_stats = ""
    if cpu.backend is not None:
        s = cpu.backend.stats()
        exec_stats = (f" blocks={s['blocks_compiled']} "
                      f"chains={s['chain_hits']}/{s['chain_misses']} "
                      f"fused={s['fused_pairs']} "
                      f"compile={s['compile_seconds']:.4f}s")
    print(f"[{stop.reason.value}] exit={stop.exit_code} "
          f"cycles={cpu.cycles} instructions={cpu.icount} "
          f"emitted={cpu.output_values} detected={detected} "
          f"backend={backend}{exec_stats}")
    return 0 if stop.exit_code == 0 and not detected else 1


def cmd_disasm(args) -> int:
    program = _load_program(args.file)
    print(disassemble_program(program))
    return 0


def parse_fault_token(program, token: str, branch: str = "0",
                      occurrence: int = 1, thread: int | None = None):
    """Parse one ``--fault`` token into a spec (raises ValueError).

    Shared by the CLI and the campaign service so both accept the
    same grammar: ``offset:BIT | flag:BIT | direction |
    redirect:ADDR | register:REG,BIT,ICOUNT |
    sched-rotate:SWITCH | sched-ctx:SWITCH,TID,REG,BIT``.

    ``thread`` (``--thread``) restricts branch-fault occurrence
    counting to one guest tid on the multithreaded machine.
    """
    from repro.faults import (DirectionFault, FaultSpec, FlagBitFault,
                              OffsetBitFault, RedirectFault,
                              RegisterFaultSpec, SchedFaultSpec)
    kind, _, value = token.partition(":")
    if kind == "register":
        reg, bit, icount = value.split(",")
        return RegisterFaultSpec(icount=int(icount), reg=int(reg),
                                 bit=int(bit))
    if kind == "sched-rotate":
        return SchedFaultSpec(switch=int(value), kind="queue-rotate")
    if kind == "sched-ctx":
        switch, tid, reg, bit = value.split(",")
        return SchedFaultSpec(switch=int(switch), kind="ctx-bit",
                              tid=int(tid), reg=int(reg), bit=int(bit))
    if kind == "offset":
        fault = OffsetBitFault(bit=int(value))
    elif kind == "flag":
        fault = FlagBitFault(bit=int(value))
    elif kind == "direction":
        fault = DirectionFault(taken=None)
    elif kind == "redirect":
        fault = RedirectFault(_resolve_addr(program, value))
    else:
        raise ValueError(f"unknown fault kind {kind!r}")
    return FaultSpec(_resolve_addr(program, branch), occurrence, fault,
                     thread=thread)


def _parse_fault_spec(program, args, token):
    try:
        return parse_fault_token(program, token, branch=args.branch,
                                 occurrence=args.occurrence,
                                 thread=getattr(args, "thread", None))
    except ValueError as exc:
        raise SystemExit(str(exc))


def _check_journal_backend(args) -> int:
    """Record the backend in fresh journals; refuse resume mismatch.

    Returns a non-zero exit status on mismatch, 0 to proceed.
    """
    if not args.journal:
        return 0
    from repro.faults.journal import CampaignJournal
    journal = CampaignJournal(args.journal)
    if args.resume:
        header = journal.read_header()
        if header is None:
            return 0
        recorded = header.get("backend", "interp")
        if recorded != args.backend:
            print(f"error: journal {args.journal} was recorded with "
                  f"--backend {recorded}; resuming with --backend "
                  f"{args.backend} would silently re-run every chunk "
                  "(config keys differ). Pass the matching backend.",
                  file=sys.stderr)
            return 2
        status = _check_journal_scheduler(args, header)
        if status:
            return status
    return 0


def _check_journal_scheduler(args, header: dict) -> int:
    """Refuse ``--resume`` when scheduler parameters disagree.

    The schedule — and therefore every journaled record — is a pure
    function of (quantum, policy, seed, sig_swap): a mismatched resume
    would silently re-run every chunk under a different interleaving.
    """
    if not getattr(args, "threads", False) and not header.get("threads"):
        return 0
    from repro.threads import DEFAULT_QUANTUM
    wanted = {
        "threads": bool(getattr(args, "threads", False)),
        "quantum": getattr(args, "quantum", None) or DEFAULT_QUANTUM,
        "sched_policy": getattr(args, "sched_policy", "rr"),
        "sched_seed": getattr(args, "sched_seed", 0),
        "sig_swap": not getattr(args, "no_sig_swap", False),
    }
    recorded = {
        "threads": bool(header.get("threads", False)),
        "quantum": header.get("quantum", DEFAULT_QUANTUM),
        "sched_policy": header.get("sched_policy", "rr"),
        "sched_seed": header.get("sched_seed", 0),
        "sig_swap": header.get("sig_swap", True),
    }
    if not recorded["threads"]:
        recorded = {key: wanted[key] if key != "threads" else False
                    for key in wanted}
    mismatched = [key for key in wanted if wanted[key] != recorded[key]]
    if mismatched:
        detail = ", ".join(
            f"{key}: journal={recorded[key]!r} vs {wanted[key]!r}"
            for key in mismatched)
        print(f"error: journal {args.journal} was recorded with "
              f"different scheduler parameters ({detail}); the "
              "schedule would not replay and every chunk would "
              "silently re-run. Pass the matching --threads/--quantum/"
              "--sched-policy/--sched-seed/--no-sig-swap flags.",
              file=sys.stderr)
        return 2
    return 0


def _mt_kwargs(args) -> dict:
    """PipelineConfig multithreading fields from --threads family."""
    if not getattr(args, "threads", False):
        return {}
    from repro.threads import DEFAULT_QUANTUM
    return {"threads": True,
            "quantum": getattr(args, "quantum", None) or DEFAULT_QUANTUM,
            "sched_policy": getattr(args, "sched_policy", "rr"),
            "sched_seed": getattr(args, "sched_seed", 0),
            "sig_swap": not getattr(args, "no_sig_swap", False)}


def _recovery_kwargs(args) -> dict:
    """PipelineConfig recovery fields from --recover family flags."""
    if not getattr(args, "recover", False):
        return {}
    kwargs = {"recover": True}
    if args.checkpoint_interval is not None:
        kwargs["checkpoint_interval"] = args.checkpoint_interval
    if args.max_retries is not None:
        kwargs["max_retries"] = args.max_retries
    return kwargs


def cmd_inject(args) -> int:
    """Run one or more injected faults (repeat --fault for a batch);
    --jobs fans a batch out over worker processes."""
    from repro.faults import CampaignExecutor, Outcome, PipelineConfig
    program = _load_program(args.file)
    status = _check_journal_backend(args)
    if status:
        return status
    mt_kwargs = _mt_kwargs(args)
    if args.journal and not args.resume:
        from repro.faults.journal import CampaignJournal, inject_header
        CampaignJournal(args.journal).append_header(
            inject_header(args.technique, args.policy, args.backend,
                          recover=args.recover,
                          threads=mt_kwargs.get("threads", False),
                          quantum=mt_kwargs.get("quantum", 0),
                          sched_policy=mt_kwargs.get("sched_policy",
                                                     "rr"),
                          sched_seed=mt_kwargs.get("sched_seed", 0),
                          sig_swap=mt_kwargs.get("sig_swap", True)))
    specs = [_parse_fault_spec(program, args, token)
             for token in args.fault]
    # The multithreaded machine runs on the native/static pipelines
    # (the DBT tier does not context-switch translated state).
    pipeline = "dbt"
    if mt_kwargs:
        pipeline = "static" if args.technique else "native"
    config = PipelineConfig(pipeline, args.technique,
                            Policy(args.policy), dataflow=args.dataflow,
                            backend=args.backend,
                            **_recovery_kwargs(args), **mt_kwargs)
    trace_ctx = None
    if args.journal:
        # Deterministic trace id from the same (program, config)
        # identity the journal uses: a resumed campaign continues the
        # trace its first run started.
        from repro.faults.cache import config_key, program_digest
        from repro.obs.traceevent import TraceContext
        trace_ctx = TraceContext.for_campaign(program_digest(program),
                                              config_key(config))
    import time as _time
    campaign_t0 = _time.time()
    executor = CampaignExecutor(program, config, jobs=args.jobs,
                                retries=args.retries,
                                timeout=args.timeout,
                                journal=args.journal,
                                resume=args.resume,
                                trace=trace_ctx)
    records = executor.run_specs(specs)
    if trace_ctx is not None:
        from repro.obs.traceevent import (append_entry, job_entry,
                                          trace_sidecar_path)
        append_entry(
            trace_sidecar_path(args.journal),
            job_entry(trace_ctx, os.path.basename(args.file),
                      campaign_t0, _time.time(), kind="inject"))
    print(f"config:  {config.label()}")
    status = 0
    for spec, record in zip(specs, records):
        print(f"fault:   {spec.describe()}")
        print(f"outcome: {record.outcome.value}  ({record.stop_reason})")
        if record.detection_latency is not None:
            cycles = record.detection_latency_cycles
            print(f"latency: {record.detection_latency} instructions"
                  + (f", {cycles} cycles" if cycles is not None else ""))
        if record.rollback_distance_icount is not None:
            print(f"recover: {record.attempts} attempt(s), rolled "
                  f"back {record.rollback_distance_icount} "
                  f"instruction(s), re-executed "
                  f"{record.reexec_cycles} cycle(s)")
        if record.outcome is Outcome.INFRA_ERROR:
            print(f"         {record.error}")
            status = max(status, 3)
        elif record.outcome in (Outcome.SDC, Outcome.RECOVERY_FAILED):
            status = max(status, 2)
    if args.forensics is not None:
        _write_forensics(program, config, executor, args)
    return status


def _write_forensics(program, config, executor, args) -> None:
    """Replay sampled escapes and write the bundle next to the journal."""
    from repro.forensics import bundle_path_for, write_campaign_forensics
    escapes = executor.escape_specs()
    path = bundle_path_for(args.journal)
    entries = write_campaign_forensics(program, config, escapes,
                                       max_samples=args.forensics,
                                       path=path)
    if not escapes:
        print("forensics: no escapes (SDC/HANG) to replay")
        return
    print(f"forensics: replayed {len(entries)} of {len(escapes)} "
          f"escape(s) -> {path}")
    for entry in entries:
        att = entry["attribution"]
        print(f"  [{entry['index']}] {entry['spec']['kind']} "
              f"{entry['outcome']}: {att['reason']} — {att['detail']}")


def cmd_errormodel(args) -> int:
    from repro.analysis.report import percent
    from repro.faults import Category, compute_error_model
    program = _load_program(args.file)
    model = compute_error_model(program)
    print(f"dynamic direct branches: {model.dynamic_branches}")
    for category in Category:
        label = ("No Error" if category is Category.NO_ERROR
                 else f"Category {category.value}")
        print(f"  {label:11s} {percent(model.probability(category))}")
    return 0


def cmd_suite(args) -> int:
    from repro.cfg import build_cfg
    from repro.workloads import SUITE
    print(f"{'benchmark':15s} {'suite':5s} {'blocks':>6s} "
          f"{'avg-block':>9s} {'indirect':>8s} {'calls':>5s}")
    for spec in SUITE:
        cfg = build_cfg(spec.assemble(args.scale))
        print(f"{spec.name:15s} {spec.suite:5s} {len(cfg):6d} "
              f"{cfg.average_block_size():9.1f} "
              f"{str(spec.uses_indirect):>8s} "
              f"{str(spec.uses_calls):>5s}")
    return 0


def _verify_task(task):
    """Instrument + statically verify one technique (worker-safe)."""
    from repro.instrument import instrument_program, verify_instrumented
    program, technique, policy_value = task
    ip = instrument_program(program, technique, Policy(policy_value))
    return technique, verify_instrumented(ip)


def cmd_verify(args) -> int:
    from repro.faults import MapError, parallel_map
    program = _load_program(args.file)
    techniques = args.technique or ["edgcf"]
    tasks = [(program, technique, args.policy)
             for technique in techniques]
    if args.journal or args.resume:
        print("note: --journal/--resume journal fault campaigns; "
              "verification runs are not journaled")
    if args.forensics is not None:
        print("note: --forensics replays fault-campaign escapes; "
              "static verification injects no faults, so there is "
              "nothing to replay here")
    status = 0
    results = parallel_map(_verify_task, tasks, jobs=args.jobs,
                           retries=args.retries, timeout=args.timeout)
    for task, result in zip(tasks, results):
        if isinstance(result, MapError):
            print(f"[{task[1]}] ERROR: {result.error}")
            status = 1
            continue
        technique, report = result
        prefix = f"[{technique}] " if len(techniques) > 1 else ""
        print(prefix + report.summary())
        if report.violations:
            for pc, block in report.violations:
                print(f"  VIOLATION: check at {pc:#x} fires on a legal "
                      f"path through block {block:#x}")
            status = 1
            continue
        for pc in report.unproven:
            print(f"  unproven: check at {pc:#x} "
                  "(beyond static precision)")
    return status


def cmd_coverage(args) -> int:
    from repro.analysis import compute_coverage_matrix
    program = _load_program(args.file)
    forensics_path = None
    if args.forensics is not None:
        from repro.forensics import bundle_path_for
        forensics_path = bundle_path_for(args.journal)
    print(f"effective seed: {args.seed}")
    status = _check_journal_backend(args)
    if status:
        return status
    if args.journal and not args.resume:
        from repro.faults.journal import (CampaignJournal,
                                          coverage_header)
        CampaignJournal(args.journal).append_header(
            coverage_header(args.seed, args.per_category, args.backend))
    matrix = compute_coverage_matrix(
        program, per_category=args.per_category, seed=args.seed,
        include_cache_level=not args.no_cache_level, jobs=args.jobs,
        retries=args.retries, timeout=args.timeout,
        journal=args.journal, resume=args.resume,
        forensics=args.forensics, forensics_path=forensics_path,
        backend=args.backend)
    print(matrix.table())
    if matrix.forensics:
        total = sum(len(v) for v in matrix.forensics.values())
        print(f"forensics: {total} sampled escape(s) replayed "
              f"-> {forensics_path}")
        for label, entries in matrix.forensics.items():
            for entry in entries:
                att = entry["attribution"]
                print(f"  [{label} #{entry['index']}] "
                      f"{entry['outcome']}: {att['reason']}")
    infra = sum(result.total_infra()
                for result in matrix.results.values())
    if infra:
        print(f"warning: {infra} run(s) failed in the harness "
              "(INFRA_ERROR) and are excluded from coverage")
    return 0


def cmd_fuzz(args) -> int:
    """Differential fuzzing campaign (see ``docs/fuzzing.md``)."""
    import dataclasses

    from repro.fuzz import FuzzConfig, run_fuzz
    from repro.fuzz.generator import FuzzKnobs

    knobs = FuzzKnobs().scaled(statements=args.statements,
                               max_loop_depth=args.loop_depth,
                               mem_words=args.mem_words)
    config = FuzzConfig(seed=args.seed, count=args.count, knobs=knobs,
                        detect_every=args.detect_every,
                        max_sites=args.detect_sites,
                        minimize=not args.no_minimize,
                        backend=args.backend,
                        recover=args.recover,
                        mt_every=args.mt_every)
    if args.technique:
        config = dataclasses.replace(
            config, techniques=tuple(args.technique),
            detect_techniques=tuple(
                t for t in config.detect_techniques
                if t in args.technique))
    if args.policy:
        config = dataclasses.replace(
            config, policies=tuple(Policy(p) for p in args.policy))
    print(f"effective seed: {config.seed}")
    if getattr(args, "resume", False):
        print("note: fuzz campaigns are rerun-deterministic; "
              "--resume is ignored", file=sys.stderr)
    report = run_fuzz(config, jobs=args.jobs, retries=args.retries,
                      timeout=args.timeout, journal=args.journal,
                      corpus=args.corpus)
    print(report.summary_line())
    for failure in report.failures:
        print(f"FAIL #{failure.index} [{failure.kind}] "
              f"{failure.detail}")
        if failure.minimized is not None:
            from repro.fuzz.minimizer import instruction_count
            print(f"  minimized to "
                  f"{instruction_count(failure.minimized)} "
                  f"instruction(s) in {failure.shrink_steps} step(s)")
        if failure.corpus_dir:
            print(f"  corpus: {failure.corpus_dir}")
    if not report.passed:
        return 2
    if report.infra_errors:
        print(f"warning: {report.infra_errors} program(s) failed in "
              "the harness (infra)", file=sys.stderr)
        return 3
    return 0


def cmd_explain(args) -> int:
    """Replay one fault against the golden trace and explain it."""
    from repro.faults import PipelineConfig
    from repro.forensics import (bundle_path_for, explain_spec,
                                 read_bundle, spec_from_json)
    program = _load_program(args.file)
    if args.bundle or args.journal:
        path = args.bundle or str(bundle_path_for(args.journal))
        try:
            entries = read_bundle(path)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if not entries:
            print(f"error: no forensics entries in {path}",
                  file=sys.stderr)
            return 1
        entry = None
        if args.index is None:
            entry = entries[0]
        else:
            for candidate in entries:
                if candidate["index"] == args.index:
                    entry = candidate
                    break
        if entry is None:
            known = sorted(e["index"] for e in entries)
            print(f"error: no entry with spec index {args.index} in "
                  f"{path} (have: {known})", file=sys.stderr)
            return 1
        spec = spec_from_json(entry["spec"])
        pipeline, technique, policy, update, dataflow, *rest = \
            entry["config"]
        # Extended key segments appended by optional subsystems:
        # [backend] ["rec", interval, retries] ["mt", quantum,
        # policy, seed, sig_swap].
        extra = {}
        tail = list(rest[1:])
        while tail:
            if tail[0] == "rec" and len(tail) >= 3:
                extra.update(recover=True,
                             checkpoint_interval=tail[1],
                             max_retries=tail[2])
                tail = tail[3:]
            elif tail[0] == "mt" and len(tail) >= 5:
                extra.update(threads=True, quantum=tail[1],
                             sched_policy=tail[2], sched_seed=tail[3],
                             sig_swap=bool(tail[4]))
                tail = tail[5:]
            else:
                break
        config = PipelineConfig(pipeline, technique, Policy(policy),
                                UpdateStyle(update), dataflow,
                                backend=rest[0] if rest else "interp",
                                **extra)
    else:
        if not args.fault:
            print("error: give --fault (inline spec) or "
                  "--bundle/--journal (+ --index)", file=sys.stderr)
            return 1
        spec = _parse_fault_spec(program, args, args.fault)
        mt_kwargs = _mt_kwargs(args)
        pipeline = args.pipeline
        if mt_kwargs and pipeline == "dbt":
            pipeline = "static" if args.technique else "native"
        config = PipelineConfig(pipeline, args.technique,
                                Policy(args.policy),
                                UpdateStyle(args.update),
                                dataflow=args.dataflow,
                                backend=getattr(args, "backend",
                                                "interp"),
                                **_recovery_kwargs(args), **mt_kwargs)
    _, _, text = explain_spec(program, config, spec)
    print(text)
    return 0


def cmd_stats(args) -> int:
    """Render a metrics snapshot (``--metrics`` file or live server)."""
    from repro.obs.exporters import (jsonl_text, load_snapshot,
                                     prometheus_text, render_stats)
    if args.url:
        from repro.service.client import ServiceClient, ServiceError
        try:
            snap = ServiceClient(args.url).metrics()
        except (ServiceError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    elif not args.file:
        print("error: give a snapshot file or --url", file=sys.stderr)
        return 1
    else:
        try:
            snap = load_snapshot(args.file)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    if args.format == "prom":
        sys.stdout.write(prometheus_text(snap))
    elif args.format == "jsonl":
        sys.stdout.write(jsonl_text(snap))
    else:
        print(render_stats(snap))
    return 0


def cmd_profile(args) -> int:
    """Hot-block profile of one run: per-block icount/cycle
    attribution with annotated disassembly of the top-N blocks."""
    from repro.exec.profiler import profile_dbt, profile_native
    from repro.machine import StopReason
    program = _load_program(args.file)
    if args.dbt:
        _, result, profiler = profile_dbt(program,
                                          max_steps=args.max_steps)
        stop = result.stop
    else:
        _, stop, profiler = profile_native(program,
                                           backend=args.backend,
                                           max_steps=args.max_steps)
    report = profiler.render_report(program, top=args.top)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report + "\n")
        print(f"profile written to {args.out}")
    else:
        print(report)
    if stop.reason is not StopReason.HALTED:
        print(f"note: run stopped with {stop.reason.name}",
              file=sys.stderr)
        return 2
    return 0


def cmd_trace_export(args) -> int:
    """Export a campaign trace sidecar as Chrome trace-event JSON."""
    import json

    from repro.obs.traceevent import (export_chrome_trace, read_entries,
                                      trace_sidecar_path,
                                      validate_chrome_trace)
    if args.journal:
        sidecar = trace_sidecar_path(args.journal)
        try:
            entries = read_entries(sidecar)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    elif args.url and args.job:
        from repro.service.client import ServiceClient, ServiceError
        try:
            raw = ServiceClient(args.url).artifact(
                args.job, "journal.jsonl.trace.jsonl")
        except (ServiceError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        entries = []
        for line in raw.decode().splitlines():
            if line.strip():
                try:
                    entries.append(json.loads(line))
                except ValueError:
                    continue
    else:
        print("error: give --journal PATH, or --url URL --job ID",
              file=sys.stderr)
        return 1
    if not entries:
        print("error: no trace spans found (campaigns record them "
              "only when run with --journal)", file=sys.stderr)
        return 1
    trace = export_chrome_trace(entries, args.out)
    problems = validate_chrome_trace(trace)
    spans = sum(1 for event in trace["traceEvents"]
                if event["ph"] == "X")
    print(f"{args.out}: {spans} span(s) across "
          f"{sum(1 for e in trace['traceEvents'] if e['ph'] == 'M')} "
          f"process(es) — load in Perfetto or chrome://tracing")
    if problems:
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        return 1
    return 0


def cmd_serve(args) -> int:
    """Run the campaign service until SIGTERM/SIGINT, then drain."""
    import signal
    import threading

    from repro.service import create_server
    server = create_server(args.root, host=args.host, port=args.port,
                           workers=args.workers,
                           max_active_per_tenant=args.max_active,
                           max_running_per_tenant=args.max_running)
    host, port = server.server_address[:2]
    print(f"repro service on http://{host}:{port} "
          f"(state root: {args.root})", flush=True)
    stop = threading.Event()

    def _signal(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _signal)
    signal.signal(signal.SIGINT, _signal)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        while not stop.wait(0.2):
            pass
    finally:
        print("draining: running jobs stop at the next chunk and are "
              "requeued; journals keep the completed work", flush=True)
        server.orchestrator.drain()
        server.shutdown()
        server.server_close()
    print("drained; interrupted jobs resume on the next `repro serve`")
    return 0


def cmd_submit(args) -> int:
    """Submit a job JSON to a running service."""
    import json

    from repro.service.client import ServiceClient, ServiceError
    if args.payload == "-":
        payload = json.load(sys.stdin)
    else:
        with open(args.payload) as handle:
            payload = json.load(handle)
    if args.program:
        with open(args.program) as handle:
            payload["program"] = handle.read()
        payload.setdefault("name", os.path.basename(args.program))
    if args.tenant:
        payload["tenant"] = args.tenant
    if args.priority is not None:
        payload["priority"] = args.priority
    client = ServiceClient(args.url)
    try:
        job = client.submit(payload)
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"job {job['id']} {job['status']}")
    if not args.wait:
        return 0
    try:
        for event in client.events(job["id"]):
            if event["event"] == "progress":
                print(f"  progress {event['completed']}"
                      f"/{event['total']}")
            elif event["event"] == "status":
                print(f"  status {event['status']}")
            if event["event"] == "end":
                break
        final = client.job(job["id"])
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"job {final['id']} {final['status']}")
    if final.get("error"):
        print(f"  {final['error']}", file=sys.stderr)
    return 0 if final["status"] == "done" else 2


def cmd_jobs(args) -> int:
    """List/inspect/cancel/follow jobs on a running service."""
    import json

    from repro.service.client import ServiceClient, ServiceError
    client = ServiceClient(args.url)
    try:
        if args.cancel:
            client.cancel(args.cancel)
            print(f"cancel requested for {args.cancel}")
            return 0
        if args.journal:
            sys.stdout.buffer.write(client.journal(args.journal))
            return 0
        if args.follow:
            for event in client.events(args.follow):
                print(json.dumps(event))
                if event["event"] == "end":
                    break
            return 0
        if args.job:
            print(json.dumps(client.job(args.job), indent=1))
            return 0
        jobs = client.jobs(args.tenant)
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"{'id':12s} {'kind':8s} {'tenant':10s} {'status':9s} "
          f"{'progress':>9s} name")
    for job in jobs:
        progress = (f"{job['completed']}/{job['total']}"
                    if job["total"] else "-")
        print(f"{job['id']:12s} {job['kind']:8s} {job['tenant']:10s} "
              f"{job['status']:9s} {progress:>9s} {job['name']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="control-flow error detection toolkit (CGO'06 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def backend_arg(p):
        from repro.exec import BACKEND_NAMES
        p.add_argument(
            "--backend", default="interp", choices=list(BACKEND_NAMES),
            help="execution backend: 'interp' is the reference "
                 "dispatch-table interpreter, 'block' compiles guest "
                 "basic blocks to specialized closures (identical "
                 "behaviour, much faster)")

    def obs_args(p):
        p.add_argument(
            "--metrics", default=None, metavar="PATH",
            help="write a metrics snapshot on exit (.prom Prometheus "
                 "text, .jsonl event log, anything else the JSON "
                 "snapshot `repro stats` reads)")
        p.add_argument(
            "--trace", default=None, metavar="PATH",
            help="stream finished spans to this JSONL event log")

    def common_exec(p):
        p.add_argument("file", help="assembly source file")
        p.add_argument("--technique", "-t", default=None,
                       choices=["ecf", "edgcf", "rcf", "cfcss", "ecca",
                                "edgcf-naive"])
        p.add_argument("--policy", default="allbb",
                       choices=[p.value for p in Policy])
        p.add_argument("--update", default="jcc",
                       choices=[u.value for u in UpdateStyle])
        p.add_argument("--dataflow", action="store_true",
                       help="enable SWIFT-style duplication")
        p.add_argument("--max-steps", type=int, default=50_000_000)
        backend_arg(p)

    run_parser = sub.add_parser("run", help="execute a program")
    common_exec(run_parser)
    run_parser.add_argument("--pipeline", default="dbt",
                            choices=["native", "dbt", "static"])
    obs_args(run_parser)
    run_parser.set_defaults(func=cmd_run)

    dis = sub.add_parser("disasm", help="print the listing")
    dis.add_argument("file")
    dis.set_defaults(func=cmd_disasm)

    def jobs_arg(p):
        p.add_argument(
            "--jobs", "-j", type=int, default=1,
            help="worker processes for independent runs "
                 "(0 = one per CPU; default 1 = serial)")

    def resilience_args(p):
        p.add_argument(
            "--retries", type=int, default=None, metavar="N",
            help="re-dispatches of a failing work unit before it is "
                 "recorded as INFRA_ERROR (default 2)")
        p.add_argument(
            "--timeout", type=float, default=None, metavar="SECONDS",
            help="per-chunk host wall-clock deadline; an overdue "
                 "worker is killed and the pathological spec isolated "
                 "(pooled mode only)")
        p.add_argument(
            "--journal", default=None, metavar="PATH",
            help="append each completed chunk to this JSONL journal")
        p.add_argument(
            "--resume", action="store_true",
            help="replay completed chunks from --journal and run only "
                 "the remainder (byte-identical to an uninterrupted "
                 "campaign)")

    def forensics_arg(p):
        p.add_argument(
            "--forensics", nargs="?", const=8, type=int, default=None,
            metavar="N",
            help="replay up to N sampled escapes (SDC/HANG) through "
                 "the golden-divergence analyzer and write a JSONL "
                 "forensics bundle next to the journal (default N=8)")

    def recovery_args(p):
        from repro.recovery import (DEFAULT_CHECKPOINT_INTERVAL,
                                    DEFAULT_MAX_RETRIES)
        p.add_argument(
            "--recover", action="store_true",
            help="checkpoint/rollback recovery: on detection, roll "
                 "back to the last checkpoint and re-execute "
                 "(see docs/recovery.md)")
        p.add_argument(
            "--checkpoint-interval", type=int, default=None,
            metavar="INSNS",
            help="instructions between checkpoints (default "
                 f"{DEFAULT_CHECKPOINT_INTERVAL}; adapts at runtime)")
        p.add_argument(
            "--max-retries", type=int, default=None, metavar="N",
            help="recovery attempts before giving up (default "
                 f"{DEFAULT_MAX_RETRIES})")

    def threads_args(p):
        from repro.threads import DEFAULT_QUANTUM, POLICIES
        p.add_argument(
            "--threads", action="store_true",
            help="run under the multithreaded guest machine "
                 "(deterministic preemptive scheduler; native/static "
                 "pipelines only — see docs/threads.md)")
        p.add_argument(
            "--quantum", type=int, default=None, metavar="INSNS",
            help="preemption quantum in retired instructions "
                 f"(default {DEFAULT_QUANTUM})")
        p.add_argument("--sched-policy", default="rr",
                       choices=list(POLICIES),
                       help="scheduling policy (default rr)")
        p.add_argument(
            "--sched-seed", type=int, default=0,
            help="tie-break seed: same seed, same schedule "
                 "(default 0)")
        p.add_argument(
            "--no-sig-swap", action="store_true",
            help="do NOT context-switch signature registers; resync "
                 "them to statically-expected values instead — "
                 "reproduces cross-context signature escapes")
        p.add_argument(
            "--thread", type=int, default=None, metavar="TID",
            help="restrict --fault occurrence counting to this guest "
                 "thread")

    inj = sub.add_parser("inject", help="run with injected fault(s)")
    common_exec(inj)
    inj.add_argument("--branch", default="0",
                     help="guest branch: symbol[+off] or address")
    inj.add_argument("--occurrence", type=int, default=1)
    inj.add_argument(
        "--fault", required=True, action="append",
        help="offset:BIT | flag:BIT | direction | redirect:ADDR | "
             "register:REG,BIT,ICOUNT | sched-rotate:SWITCH | "
             "sched-ctx:SWITCH,TID,REG,BIT (repeatable)")
    jobs_arg(inj)
    resilience_args(inj)
    forensics_arg(inj)
    recovery_args(inj)
    threads_args(inj)
    obs_args(inj)
    inj.set_defaults(func=cmd_inject)

    err = sub.add_parser("errormodel",
                         help="branch-error probabilities")
    err.add_argument("file")
    err.set_defaults(func=cmd_errormodel)

    suite_parser = sub.add_parser("suite", help="list the benchmarks")
    suite_parser.add_argument("--scale", default="test",
                              choices=["test", "small", "ref"])
    suite_parser.set_defaults(func=cmd_suite)

    ver = sub.add_parser(
        "verify", help="statically verify instrumented code")
    ver.add_argument("file")
    ver.add_argument("--technique", "-t", action="append", default=None,
                     choices=["ecf", "edgcf", "rcf", "cfcss", "ecca"],
                     help="technique to verify (repeatable; "
                          "default edgcf)")
    ver.add_argument("--policy", default="allbb",
                     choices=[p.value for p in Policy])
    backend_arg(ver)
    jobs_arg(ver)
    resilience_args(ver)
    forensics_arg(ver)
    obs_args(ver)
    ver.set_defaults(func=cmd_verify)

    cov = sub.add_parser("coverage", help="coverage campaign")
    cov.add_argument("file")
    cov.add_argument("--per-category", type=int, default=8)
    cov.add_argument("--no-cache-level", action="store_true")
    cov.add_argument("--seed", type=int, default=2006,
                     help="fault-sampling seed (default 2006); the "
                          "effective seed is echoed and journaled")
    backend_arg(cov)
    jobs_arg(cov)
    resilience_args(cov)
    forensics_arg(cov)
    obs_args(cov)
    cov.set_defaults(func=cmd_coverage)

    fz = sub.add_parser(
        "fuzz",
        help="differential fuzzing campaign (generator + oracles + "
             "minimizer)")
    fz.add_argument("--seed", type=int, default=2006,
                    help="master campaign seed; every generated "
                         "program and fault sample derives from it "
                         "(default 2006)")
    fz.add_argument("--count", type=int, default=50,
                    help="programs to generate (default 50)")
    fz.add_argument("--statements", type=int, default=24,
                    help="statements per generated program")
    fz.add_argument("--loop-depth", type=int, default=2,
                    help="maximum loop nesting depth")
    fz.add_argument("--mem-words", type=int, default=16,
                    help="scratch-buffer words per program")
    fz.add_argument("--technique", "-t", action="append", default=None,
                    choices=["ecf", "edgcf", "rcf", "cfcss", "ecca"],
                    help="restrict to these techniques (repeatable; "
                         "default: all)")
    fz.add_argument("--policy", action="append", default=None,
                    choices=[p.value for p in Policy],
                    help="checking placement policies to cross with "
                         "each technique (repeatable; default allbb)")
    fz.add_argument("--detect-every", type=int, default=8,
                    help="run the exhaustive detection oracle on every "
                         "Nth program (0 disables; default 8)")
    fz.add_argument("--detect-sites", type=int, default=12,
                    help="max branch sites per detection enumeration")
    fz.add_argument("--no-minimize", action="store_true",
                    help="skip delta-debugging of failing programs")
    fz.add_argument("--corpus", default=None, metavar="DIR",
                    help="persist failing programs (original + "
                         "minimized + report) under this directory")
    fz.add_argument("--recover", action="store_true",
                    help="run the recovery oracle on every detection-"
                         "oracle program: each detected fault must "
                         "end RECOVERED with a byte-identical digest")
    fz.add_argument("--mt-every", type=int, default=0,
                    help="run the multithreaded oracle (seed-varied MT "
                         "kernel, random scheduler parameters, cross-"
                         "backend schedule parity) on every Nth "
                         "program (0 disables; default 0)")
    backend_arg(fz)
    jobs_arg(fz)
    resilience_args(fz)
    obs_args(fz)
    fz.set_defaults(func=cmd_fuzz)

    stats = sub.add_parser(
        "stats", help="render a --metrics snapshot or live server "
                      "metrics")
    stats.add_argument("file", nargs="?", default=None,
                       help="JSON snapshot written by --metrics")
    stats.add_argument("--format", default="table",
                       choices=["table", "prom", "jsonl"])
    stats.add_argument(
        "--url", default=None, metavar="URL",
        help="read the live snapshot from a running `repro serve` "
             "instead of a file (its /metrics endpoint)")
    stats.set_defaults(func=cmd_stats)

    prof = sub.add_parser(
        "profile", help="hot-block profile: per-block icount/cycle "
                        "attribution with annotated disassembly")
    prof.add_argument("file", help="assembly source file")
    prof.add_argument("--top", type=int, default=10, metavar="N",
                      help="blocks to list (default 10)")
    prof.add_argument("--dbt", action="store_true",
                      help="profile under the DBT and map code-cache "
                           "samples back to guest blocks")
    prof.add_argument("--max-steps", type=int, default=50_000_000)
    prof.add_argument("--out", "-o", default=None, metavar="PATH",
                      help="write the report to a file instead of "
                           "stdout")
    backend_arg(prof)
    prof.set_defaults(func=cmd_profile)

    trace = sub.add_parser(
        "trace", help="work with campaign trace sidecars")
    trace_sub = trace.add_subparsers(dest="trace_command",
                                     required=True)
    texp = trace_sub.add_parser(
        "export", help="export a trace sidecar as Chrome trace-event "
                       "JSON (Perfetto / chrome://tracing)")
    texp.add_argument(
        "--journal", default=None, metavar="PATH",
        help="campaign journal whose <journal>.trace.jsonl sidecar "
             "to export")
    texp.add_argument(
        "--url", default=None, metavar="URL",
        help="fetch the sidecar from a running service instead")
    texp.add_argument(
        "--job", default=None, metavar="ID",
        help="service job id (with --url)")
    texp.add_argument("--out", "-o", default="trace.json",
                      metavar="PATH",
                      help="output file (default trace.json)")
    texp.set_defaults(func=cmd_trace_export)

    srv = sub.add_parser(
        "serve", help="run the campaign service (REST + SSE + "
                      "Prometheus; see docs/service.md)")
    srv.add_argument("--root", default="service-data",
                     help="state directory: job workspaces, journals "
                          "and the shared artifact cache "
                          "(default ./service-data)")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8642,
                     help="TCP port (0 = ephemeral; default 8642)")
    srv.add_argument("--workers", type=int, default=2,
                     help="jobs that may run concurrently (each job's "
                          "own params.jobs fan out further; default 2)")
    srv.add_argument("--max-active", type=int, default=16,
                     metavar="N",
                     help="per-tenant quota on queued+running jobs; "
                          "submissions beyond it get HTTP 429 "
                          "(default 16)")
    srv.add_argument("--max-running", type=int, default=2,
                     metavar="N",
                     help="per-tenant concurrency cap; excess jobs "
                          "wait in the queue (default 2)")
    srv.set_defaults(func=cmd_serve)

    sb = sub.add_parser(
        "submit", help="submit a job JSON to a running service")
    sb.add_argument("payload",
                    help="job JSON file ('-' = stdin); see "
                         "docs/service.md for the schema")
    sb.add_argument("--url", default="http://127.0.0.1:8642")
    sb.add_argument("--program", default=None, metavar="FILE",
                    help="read this assembly file into the payload's "
                         "'program' field")
    sb.add_argument("--tenant", default=None)
    sb.add_argument("--priority", type=int, default=None)
    sb.add_argument("--wait", action="store_true",
                    help="stream events until the job ends; exit 0 "
                         "only if it finished 'done'")
    sb.set_defaults(func=cmd_submit)

    jb = sub.add_parser(
        "jobs", help="list/inspect/cancel service jobs")
    jb.add_argument("--url", default="http://127.0.0.1:8642")
    jb.add_argument("--tenant", default=None,
                    help="restrict the listing to one tenant")
    jb.add_argument("--job", default=None, metavar="ID",
                    help="print one job's full state as JSON")
    jb.add_argument("--cancel", default=None, metavar="ID")
    jb.add_argument("--journal", default=None, metavar="ID",
                    help="print the job's campaign journal (JSONL)")
    jb.add_argument("--follow", default=None, metavar="ID",
                    help="stream the job's SSE events as JSON lines")
    jb.set_defaults(func=cmd_jobs)

    exp = sub.add_parser(
        "explain",
        help="per-run fault forensics (golden-divergence replay)")
    common_exec(exp)
    exp.add_argument("--pipeline", default="dbt",
                     choices=["native", "dbt", "static"])
    exp.add_argument("--branch", default="0",
                     help="guest branch: symbol[+off] or address")
    exp.add_argument("--occurrence", type=int, default=1)
    exp.add_argument(
        "--fault", default=None,
        help="inline spec: offset:BIT | flag:BIT | direction | "
             "redirect:ADDR | register:REG,BIT,ICOUNT")
    exp.add_argument(
        "--bundle", default=None, metavar="PATH",
        help="load the spec from this forensics bundle instead")
    exp.add_argument(
        "--journal", default=None, metavar="PATH",
        help="campaign journal whose adjacent forensics bundle "
             "(<journal>.forensics.jsonl) holds the spec")
    exp.add_argument(
        "--index", type=int, default=None,
        help="global spec index within the bundle (default: first "
             "entry)")
    recovery_args(exp)
    threads_args(exp)
    exp.set_defaults(func=cmd_explain)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        with obs.session(getattr(args, "metrics", None),
                         getattr(args, "trace", None)):
            return args.func(args)
    except BrokenPipeError:
        # stdout reader went away (e.g. `repro stats ... | head`);
        # point stdout at devnull so the interpreter-shutdown flush
        # does not raise a second time
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
