"""N-way differential oracles over one guest program.

Two oracles, two paper claims:

**Transparency** (Section 3): every (technique x policy) instrumentation
— statically rewritten and run on the interpreter, and translated by
the DBT — must behave exactly like the uninstrumented golden run.  The
oracle diffs exit state, printed output, emitted words, a digest of the
guest data segment, and the syscall trace; any difference (including a
false-positive error report on a fault-free run) is a transparency bug.

**Detection** (Section 4): on small programs, every single-bit
branch-offset error whose category the technique *claims* to cover must
not end in silent data corruption or an unreported hang.  What a
technique claims is cross-checked against the exhaustive formal model
(:mod:`repro.formal.conditions`): a technique whose sufficient
condition fails there (CFCSS, ECCA on fan-in CFGs) only claims the
hardware-detected category F.

Per the paper's Assumption 2 ("any control-flow error must finally
reach at least one CHECK_SIG function"), faults landing in the middle
of a program-exit block are excluded: control exits before any check
could run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache

from repro.cfg import build_cfg
from repro.cfg.basic_block import ExitKind
from repro.checking import Policy, UpdateStyle, make_technique
from repro.dbt import Dbt
from repro.faults.campaign import Outcome, Pipeline, PipelineConfig
from repro.faults.classify import (Category, classify_offset_fault,
                                   corrupted_target)
from repro.faults.injector import FaultSpec, OffsetBitFault
from repro.formal import FORMAL_TECHNIQUES
from repro.formal.conditions import check_conditions
from repro.formal.model import diamond_cfg, fanin_cfg, loop_cfg
from repro.instrument import StaticRewriter
from repro.isa.encoding import BRANCH_OFFSET_BITS
from repro.isa.opcodes import Kind
from repro.isa.program import Program
from repro.machine import Cpu, StopReason

#: Techniques the DBT instruments on the fly (local signature state).
DBT_TECHNIQUES = ("edgcf", "rcf", "ecf")
#: Whole-CFG baselines: static rewriting only.
STATIC_TECHNIQUES = ("cfcss", "ecca")
DEFAULT_TECHNIQUES = DBT_TECHNIQUES + STATIC_TECHNIQUES

_MAX_STEPS = 2_000_000


class OracleError(RuntimeError):
    """The oracle could not establish a reference behaviour."""


# -- run capture -------------------------------------------------------------


@dataclass(frozen=True)
class RunDigest:
    """Everything we diff between two executions of one program."""

    stop: str
    exit_code: int
    output: str
    output_values: tuple
    mem_digest: str
    syscalls: tuple
    detected: bool
    #: schedule-trace digest of a multithreaded run ("-" when
    #: single-threaded); two MT runs of the same image are only equal
    #: when every context switch landed on the same (icount, tid).
    schedule: str = "-"

    def diff(self, other: "RunDigest", ignore=()) -> list[str]:
        """Names of the fields where ``other`` diverges from ``self``.

        ``ignore`` drops fields that legitimately differ between the
        compared runs (e.g. the schedule trace when diffing an
        instrumented MT run against its uninstrumented golden — the
        quantum counts retired instructions, so instrumentation
        overhead shifts every switch point).
        """
        fields = ("stop", "exit_code", "output", "output_values",
                  "mem_digest", "syscalls", "detected", "schedule")
        return [name for name in fields
                if name not in ignore
                and getattr(self, name) != getattr(other, name)]


def _digest_state(cpu: Cpu, stop_value: str, detected: bool,
                  data_base: int, data_len: int,
                  schedule: str = "-") -> RunDigest:
    if data_len:
        blob = cpu.memory.read_raw(data_base, data_len)
        mem_digest = hashlib.sha256(blob).hexdigest()[:16]
    else:
        mem_digest = "-"
    return RunDigest(stop=stop_value,
                     exit_code=cpu.exit_code,
                     output="".join(cpu.output),
                     output_values=tuple(cpu.output_values),
                     mem_digest=mem_digest,
                     syscalls=tuple(cpu.syscall_trace or ()),
                     detected=detected,
                     schedule=schedule)


def _digest_cpu(cpu: Cpu, stop, detected: bool,
                data_base: int, data_len: int) -> RunDigest:
    return _digest_state(cpu, stop.reason.value, detected,
                         data_base, data_len)


def _install(cpu: Cpu, backend: str) -> None:
    if backend != "interp":
        from repro.exec import install_backend
        install_backend(cpu, backend)


def capture_native(program: Program,
                   max_steps: int = _MAX_STEPS,
                   backend: str = "interp") -> RunDigest:
    """Uninstrumented run — the golden reference."""
    cpu = Cpu()
    _install(cpu, backend)
    cpu.load_program(program, executable_text=True)
    cpu.syscall_trace = []
    stop = cpu.run(max_steps=max_steps)
    return _digest_cpu(cpu, stop, False, program.data_base,
                       len(program.data))


def capture_static(program: Program, technique, policy: Policy,
                   max_steps: int = _MAX_STEPS,
                   backend: str = "interp") -> RunDigest:
    """Statically rewritten program on the interpreter."""
    ip = StaticRewriter(technique, policy).rewrite(program)
    cpu = Cpu()
    _install(cpu, backend)
    cpu.load_program(ip.program, executable_text=True)
    cpu.syscall_trace = []
    stop = cpu.run(max_steps=max_steps)
    return _digest_cpu(cpu, stop, cpu.cfc_error, program.data_base,
                       len(program.data))


def capture_dbt(program: Program, technique, policy: Policy,
                max_steps: int = _MAX_STEPS,
                backend: str = "interp") -> RunDigest:
    """Translated run under the DBT."""
    dbt = Dbt(program, technique=technique, policy=policy)
    _install(dbt.cpu, backend)
    dbt.cpu.syscall_trace = []
    result = dbt.run(max_steps=max_steps)
    detected = result.detected_error or result.detected_dataflow
    return _digest_cpu(dbt.cpu, result.stop, detected,
                       program.data_base, len(program.data))


class _ThreadedProbe:
    """Keeps the run's CPU and ThreadedMachine for digesting."""

    def __init__(self) -> None:
        self.cpu = None
        self.machine = None
        self.recovery = None

    def bind(self, cpu, **_kwargs) -> None:
        self.cpu = cpu
        cpu.syscall_trace = []


def capture_threaded(program: Program, technique: str | None = None,
                     policy: Policy = Policy.ALLBB,
                     max_steps: int = _MAX_STEPS,
                     backend: str = "interp",
                     quantum: int | None = None,
                     sched_policy: str = "rr", sched_seed: int = 0,
                     sig_swap: bool = True) -> RunDigest:
    """One multithreaded run (uninstrumented or statically rewritten)
    under the deterministic preemptive scheduler.

    The digest additionally carries the schedule-trace digest, so two
    captures only compare equal when every preemption landed on the
    same (icount, tid) — the cross-backend MT parity claim.
    """
    from repro.threads import DEFAULT_QUANTUM
    config = PipelineConfig("static" if technique else "native",
                            technique, policy, backend=backend,
                            threads=True,
                            quantum=(DEFAULT_QUANTUM if quantum is None
                                     else quantum),
                            sched_policy=sched_policy,
                            sched_seed=sched_seed, sig_swap=sig_swap)
    pipe = Pipeline(program, config)
    probe = _ThreadedProbe()
    record = pipe.run(None, max_steps=max_steps, probe=probe)
    detected = record.outcome in (Outcome.DETECTED_SIGNATURE,
                                  Outcome.DETECTED_HARDWARE)
    schedule = (probe.machine.trace_digest()
                if probe.machine is not None else "-")
    return _digest_state(probe.cpu, record.stop_reason.split()[0],
                         detected, program.data_base,
                         len(program.data), schedule=schedule)


#: Fields that legitimately differ between an instrumented MT run and
#: its uninstrumented golden: the quantum counts retired instructions,
#: so instrumentation overhead shifts every switch point — and with it
#: the interleaving of traced thread syscalls (yield retries, mutex
#: wake order).  The committed result fields must still match exactly.
MT_INSTRUMENTED_IGNORE = ("schedule", "syscalls")


def check_mt_transparency(program: Program,
                          techniques=("ecf",),
                          policy: Policy = Policy.ALLBB,
                          quantum: int | None = None,
                          sched_policy: str = "rr",
                          sched_seed: int = 0,
                          max_steps: int = _MAX_STEPS
                          ) -> list[TransparencyFailure]:
    """The multithreaded differential oracle for one program.

    Three claims, all against the interpreter's uninstrumented MT run:

    * **cross-backend parity** — the block-compiling backend must
      reproduce the run *byte-identically including the schedule
      trace* (same image, same retirement counts, same preemptions);
    * **MT transparency** — each statically rewritten image (with
      signature swapping on and off) must commit the same results
      (exit, output, memory) with no false-positive detection; the
      schedule and syscall interleaving may shift (see
      :data:`MT_INSTRUMENTED_IGNORE`);
    * **instrumented parity** — each instrumented image must itself be
      schedule-identical across both execution backends.
    """
    kwargs = dict(policy=policy, max_steps=max_steps, quantum=quantum,
                  sched_policy=sched_policy, sched_seed=sched_seed)
    golden = capture_threaded(program, **kwargs)
    if golden.stop != StopReason.HALTED.value or golden.exit_code != 0:
        raise OracleError(f"MT golden run failed: {golden.stop} "
                          f"exit={golden.exit_code}")
    failures: list[TransparencyFailure] = []

    def check(label: str, observed: RunDigest, reference: RunDigest,
              ignore=()) -> None:
        diverged = reference.diff(observed, ignore=ignore)
        if diverged:
            failures.append(TransparencyFailure(
                label=label, fields=tuple(diverged),
                golden=reference, observed=observed))

    def capture(label: str, **extra) -> RunDigest | None:
        try:
            return capture_threaded(program, **kwargs, **extra)
        except Exception as exc:   # instrumentation crashed outright
            failures.append(TransparencyFailure(
                label=label, fields=("stop",), golden=golden,
                observed=RunDigest(stop=f"error: {exc}", exit_code=-1,
                                   output="", output_values=(),
                                   mem_digest="-", syscalls=(),
                                   detected=False)))
            return None

    block = capture("native-mt@block", backend="block")
    if block is not None:
        check("native-mt@block", block, golden)
    for technique in techniques:
        for sig_swap in (True, False):
            tag = "" if sig_swap else "-sigswap"
            label = f"static-mt/{technique}{tag}"
            interp = capture(f"{label}@interp", technique=technique,
                             sig_swap=sig_swap)
            if interp is None:
                continue
            check(f"{label}@interp", interp, golden,
                  ignore=MT_INSTRUMENTED_IGNORE)
            blocked = capture(f"{label}@block", technique=technique,
                              sig_swap=sig_swap, backend="block")
            if blocked is not None:
                check(f"{label}@block", blocked, interp)
    return failures


def uses_indirect_branches(program: Program) -> bool:
    """True when static rewriting would reject the program."""
    return any(instr.meta.kind is Kind.BRANCH_IND
               for _, instr in program.instructions())


def uses_dynamic_exits(program: Program) -> bool:
    """True when the whole-CFG baselines would reject the program.

    CFCSS/ECCA are intra-procedural: the static rewriter refuses to
    instrument ``ret`` (dynamic branch targets) under them.
    """
    return any(instr.meta.kind is Kind.RET
               for _, instr in program.instructions())


# -- transparency oracle -----------------------------------------------------


@dataclass(frozen=True)
class TransparencyFailure:
    """One instrumented run that diverged from the golden run."""

    label: str              #: pipeline/technique/policy
    fields: tuple           #: RunDigest field names that differ
    golden: RunDigest
    observed: RunDigest

    @property
    def is_crash(self) -> bool:
        """The instrumentation raised instead of producing a run."""
        return self.observed.stop.startswith("error:")

    def describe(self) -> str:
        return f"{self.label}: {', '.join(self.fields)} diverged"


def _technique_instance(name: str, update_style: UpdateStyle,
                        cfg, config: PipelineConfig,
                        technique_factory=None):
    if technique_factory is not None:
        return technique_factory(config, cfg)
    needs_cfg = name in STATIC_TECHNIQUES
    return make_technique(name, update_style=update_style,
                          cfg=cfg if needs_cfg else None)


def transparency_configs(program: Program,
                         techniques=DEFAULT_TECHNIQUES,
                         policies=(Policy.ALLBB, Policy.RET_BE,
                                   Policy.END),
                         backend: str = "interp"
                         ) -> list[PipelineConfig]:
    """The (pipeline, technique, policy) matrix for one program.

    Static rewriting rejects register-indirect branches, so programs
    using them only get the DBT side; the whole-CFG baselines (CFCSS,
    ECCA) only exist statically *and* only for intra-procedural
    programs (no ``ret``) — capability limits the suite documents, not
    transparency bugs.

    A non-default ``backend`` adds a bare native lane (no technique):
    the uninstrumented program on that execution backend must match
    the interpreter's golden run byte for byte — the cross-backend
    differential oracle for :mod:`repro.exec`.
    """
    indirect = uses_indirect_branches(program)
    dynamic = uses_dynamic_exits(program)
    configs = []
    if backend != "interp":
        configs.append(PipelineConfig("native", None, Policy.ALLBB,
                                      backend=backend))
    for technique in techniques:
        for policy in policies:
            if technique in DBT_TECHNIQUES:
                configs.append(PipelineConfig("dbt", technique, policy,
                                              backend=backend))
                if not indirect:
                    configs.append(
                        PipelineConfig("static", technique, policy,
                                       backend=backend))
            elif not indirect and not dynamic:
                configs.append(
                    PipelineConfig("static", technique, policy,
                                   backend=backend))
    return configs


def check_transparency(program: Program,
                       configs=None,
                       techniques=DEFAULT_TECHNIQUES,
                       policies=(Policy.ALLBB, Policy.RET_BE,
                                 Policy.END),
                       technique_factory=None,
                       max_steps: int = _MAX_STEPS
                       ) -> list[TransparencyFailure]:
    """Diff every instrumented clean run against the golden run."""
    golden = capture_native(program, max_steps)
    if golden.stop != StopReason.HALTED.value or golden.exit_code != 0:
        raise OracleError(f"golden run failed: {golden.stop} "
                          f"exit={golden.exit_code}")
    if configs is None:
        configs = transparency_configs(program, techniques, policies)
    failures = []
    for config in configs:
        cfg = build_cfg(program)
        try:
            if config.pipeline == "native":
                # Bare cross-backend lane: uninstrumented program on a
                # non-default execution backend vs the interpreter.
                observed = capture_native(program, max_steps,
                                          backend=config.backend)
            else:
                technique = _technique_instance(
                    config.technique, config.update_style, cfg, config,
                    technique_factory)
                if config.pipeline == "static":
                    observed = capture_static(program, technique,
                                              config.policy, max_steps,
                                              backend=config.backend)
                else:
                    observed = capture_dbt(program, technique,
                                           config.policy, max_steps,
                                           backend=config.backend)
        except Exception as exc:   # instrumentation crashed outright
            observed = RunDigest(stop=f"error: {exc}", exit_code=-1,
                                 output="", output_values=(),
                                 mem_digest="-", syscalls=(),
                                 detected=False)
        diverged = golden.diff(observed)
        if diverged:
            failures.append(TransparencyFailure(
                label=config.label(), fields=tuple(diverged),
                golden=golden, observed=observed))
    return failures


# -- detection oracle --------------------------------------------------------


@lru_cache(maxsize=None)
def claimed_categories(technique: str) -> frozenset:
    """Branch-error categories ``technique`` claims to detect.

    Cross-checked against the exhaustive formal model: only when the
    sufficient condition holds on all three model CFGs does the
    technique claim the checkable categories B..E.  Category F is
    hardware-detected (execute-disable) regardless of technique.
    """
    formal_cls = FORMAL_TECHNIQUES[technique.lower()]
    for build in (diamond_cfg, loop_cfg, fanin_cfg):
        report = check_conditions(formal_cls(build()))
        if not report.sufficient_holds:
            return frozenset({Category.F})
    return frozenset({Category.B, Category.C, Category.D, Category.E,
                      Category.F})


class _SiteTrace:
    """Per-site first execution (and first *taken* execution) record.

    The aggregate :class:`~repro.machine.profile.BranchProfiler` loses
    which dynamic occurrence had which direction; the detection oracle
    needs a concrete (occurrence, taken, flags) triple per fault spec.
    """

    def __init__(self) -> None:
        self.sites: dict[int, list] = {}

    def record(self, pc: int, instr, taken: bool, flags: int) -> None:
        entry = self.sites.get(pc)
        if entry is None:
            self.sites[pc] = [instr, 0, (1, taken, flags), None]
            entry = self.sites[pc]
        entry[1] += 1
        if taken and entry[3] is None:
            entry[3] = (entry[1], True, flags)


@dataclass(frozen=True)
class DetectionEscape:
    """A claimed-coverage branch error that went unreported."""

    label: str
    spec: FaultSpec
    category: str
    outcome: str

    def describe(self) -> str:
        return (f"{self.label}: {self.spec.describe()} "
                f"category {self.category} -> {self.outcome}")


def enumerate_detection_specs(program: Program, claimed,
                              max_sites: int | None = None
                              ) -> list[tuple[FaultSpec, Category]]:
    """All single-bit offset faults in claimed categories.

    One spec per (executed branch site, occurrence shape, offset bit),
    pre-classified; NO_ERROR, mistaken-branch (A) and Assumption-2
    landings are excluded.
    """
    trace = _SiteTrace()
    cpu = Cpu()
    cpu.load_program(program, executable_text=True)
    cpu.branch_profiler = trace
    stop = cpu.run(max_steps=_MAX_STEPS)
    if stop.reason is not StopReason.HALTED or cpu.exit_code != 0:
        raise OracleError(f"profiling run failed: {stop}")
    cfg = build_cfg(program)
    specs: list[tuple[FaultSpec, Category]] = []
    sites = sorted(trace.sites.items())
    if max_sites is not None:
        sites = sites[:max_sites]
    for pc, (instr, _count, first, first_taken) in sites:
        occurrences = [first]
        if first_taken is not None and first_taken != first:
            occurrences.append(first_taken)
        for occurrence, taken, _flags in occurrences:
            for bit in range(BRANCH_OFFSET_BITS):
                category = classify_offset_fault(cfg, pc, instr, bit,
                                                 taken)
                if category in (Category.NO_ERROR, Category.A):
                    continue
                if category not in claimed:
                    continue
                if category in (Category.C, Category.E):
                    landing = corrupted_target(pc, instr, bit)
                    block = cfg.block_containing(landing)
                    if block is not None and block.exit_kind in (
                            ExitKind.HALT, ExitKind.EXIT):
                        continue   # Assumption 2: exits before a check
                specs.append((FaultSpec(pc, occurrence,
                                        OffsetBitFault(bit)), category))
    return specs


def check_detection(program: Program, technique: str,
                    policy: Policy = Policy.ALLBB,
                    pipeline: str | None = None,
                    technique_factory=None,
                    max_sites: int | None = None,
                    claimed=None,
                    backend: str = "interp"
                    ) -> tuple[list[DetectionEscape], int]:
    """Exhaust single-bit branch faults; return (escapes, runs).

    An escape is a fault in a claimed category whose run ended in
    silent data corruption or an unreported hang.
    """
    if pipeline is None:
        pipeline = ("static" if technique in STATIC_TECHNIQUES
                    else "dbt")
    if claimed is None:
        claimed = claimed_categories(technique)
    config = PipelineConfig(pipeline, technique, policy,
                            backend=backend)
    specs = enumerate_detection_specs(program, claimed,
                                      max_sites=max_sites)
    pipe = Pipeline(program, config,
                    technique_factory=technique_factory)
    escapes = []
    for spec, category in specs:
        record = pipe.run(spec)
        if record.outcome in (Outcome.SDC, Outcome.HANG):
            escapes.append(DetectionEscape(
                label=config.label(), spec=spec,
                category=category.value,
                outcome=record.outcome.value))
    return escapes, len(specs)


# -- recovery oracle ---------------------------------------------------------


@dataclass(frozen=True)
class RecoveryFailure:
    """A detected fault whose recovery did not reproduce the golden run.

    Either the run under ``recover=True`` did not end ``RECOVERED``
    (the rollback machinery mis-handled a detection), or it did but the
    recovered final state diverged from the uninstrumented golden
    RunDigest — duplicated side effects, stale memory, wrong exit.
    """

    label: str
    spec: FaultSpec
    category: str
    outcome: str
    fields: tuple = ()

    def describe(self) -> str:
        detail = f" [{', '.join(self.fields)}]" if self.fields else ""
        return (f"{self.label}: {self.spec.describe()} "
                f"category {self.category} -> {self.outcome}{detail}")


class _RecoveryProbe:
    """Minimal run probe: keeps the run's CPU (with syscall tracing on)
    so the recovered final state can be digested against golden."""

    def __init__(self) -> None:
        self.cpu = None
        self.recovery = None

    def bind(self, cpu, **_kwargs) -> None:
        self.cpu = cpu
        cpu.syscall_trace = []


def check_recovery(program: Program, technique: str,
                   policy: Policy = Policy.ALLBB,
                   pipeline: str | None = None,
                   technique_factory=None,
                   max_sites: int | None = None,
                   claimed=None,
                   backend: str = "interp",
                   checkpoint_interval: int = 256,
                   max_retries: int = 3
                   ) -> tuple[list[RecoveryFailure], int]:
    """Re-run the detection suite under ``recover=True``.

    For every detected single-bit branch-offset fault, the recovered
    run must end ``RECOVERED`` with a RunDigest byte-identical to the
    uninstrumented golden run (exit, output, output_values, memory
    sha256, syscall trace — the truncate-on-rollback protocol must not
    duplicate externally visible effects).  Faults the technique never
    detects (masked or escaped) are the detection oracle's business and
    are skipped here.
    """
    if pipeline is None:
        pipeline = ("static" if technique in STATIC_TECHNIQUES
                    else "dbt")
    if claimed is None:
        claimed = claimed_categories(technique)
    golden = capture_native(program)
    config = PipelineConfig(pipeline, technique, policy,
                            backend=backend, recover=True,
                            checkpoint_interval=checkpoint_interval,
                            max_retries=max_retries)
    specs = enumerate_detection_specs(program, claimed,
                                      max_sites=max_sites)
    pipe = Pipeline(program, config,
                    technique_factory=technique_factory)
    failures = []
    for spec, category in specs:
        probe = _RecoveryProbe()
        record = pipe.run(spec, probe=probe)
        if record.outcome in (Outcome.BENIGN, Outcome.SDC,
                              Outcome.HANG):
            continue   # never detected: not recovery's to answer for
        if record.outcome is not Outcome.RECOVERED:
            failures.append(RecoveryFailure(
                label=config.label(), spec=spec,
                category=category.value,
                outcome=record.outcome.value))
            continue
        digest = _digest_state(probe.cpu, StopReason.HALTED.value,
                               False, program.data_base,
                               len(program.data))
        fields = golden.diff(digest)
        if fields:
            failures.append(RecoveryFailure(
                label=config.label(), spec=spec,
                category=category.value, outcome="digest-mismatch",
                fields=tuple(fields)))
    return failures, len(specs)


# -- combined verdict --------------------------------------------------------


@dataclass
class OracleReport:
    """Everything the oracles concluded about one program."""

    seed: int | None = None
    transparency: list = field(default_factory=list)
    escapes: list = field(default_factory=list)
    recovery: list = field(default_factory=list)
    transparency_configs: int = 0
    detection_runs: int = 0
    recovery_runs: int = 0

    @property
    def ok(self) -> bool:
        return (not self.transparency and not self.escapes
                and not self.recovery)


def run_oracles(program: Program,
                techniques=DEFAULT_TECHNIQUES,
                policies=(Policy.ALLBB, Policy.RET_BE, Policy.END),
                detect: bool = False,
                detect_techniques=DBT_TECHNIQUES,
                max_sites: int | None = None,
                seed: int | None = None,
                backend: str = "interp",
                recover: bool = False) -> OracleReport:
    """Run the transparency (always) and detection (opt-in) oracles.

    ``recover`` additionally holds every detected fault of the
    detection suite to the recovery contract (:func:`check_recovery`).
    """
    report = OracleReport(seed=seed)
    configs = transparency_configs(program, techniques, policies,
                                   backend=backend)
    report.transparency_configs = len(configs)
    report.transparency = check_transparency(program, configs=configs)
    if detect:
        for technique in detect_techniques:
            escapes, runs = check_detection(program, technique,
                                            max_sites=max_sites,
                                            backend=backend)
            report.escapes.extend(escapes)
            report.detection_runs += runs
            if recover:
                failures, rruns = check_recovery(program, technique,
                                                 max_sites=max_sites,
                                                 backend=backend)
                report.recovery.extend(failures)
                report.recovery_runs += rruns
    return report
