"""Delta-debugging minimizer for failing guest programs.

Shrinks an assembly source to a minimal reproducer while preserving a
caller-supplied failure predicate (Zeller's ddmin over droppable
source lines, then a one-at-a-time pass to fixpoint).

The minimizer works on *labelled assembly text*, not encoded bytes:
dropping a line automatically re-fixes every branch offset on
reassembly, so candidates are always structurally well-formed or fail
to assemble outright.  The predicate is expected to treat any
exception (assembly error, broken golden run) as "does not reproduce",
which makes the search self-pruning.

Determinism: the reduction order is a pure function of the input
source and the predicate's answers — no randomness, no timing — so a
failing seed always shrinks to the same reproducer.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Structural lines that are never dropped, even in the final pass.
_KEEP_ALWAYS = (".text", ".data", ".entry")


def _is_instruction(line: str) -> bool:
    text = line.strip()
    if not text or text.startswith((".", ";", "#")):
        return False
    return not text.endswith(":")


def _is_protected(line: str) -> bool:
    text = line.strip()
    return (not text) or text.startswith(_KEEP_ALWAYS)


def instruction_count(source: str) -> int:
    """Instruction lines in an assembly source (labels excluded)."""
    return sum(1 for line in source.splitlines()
               if _is_instruction(line))


@dataclass
class MinimizeResult:
    """Outcome of one minimization."""

    source: str       #: the minimal reproducer
    steps: int        #: successful reductions applied
    tests: int        #: predicate evaluations spent

    @property
    def instructions(self) -> int:
        return instruction_count(self.source)


def minimize_source(source: str, predicate,
                    max_tests: int = 4000) -> MinimizeResult:
    """Shrink ``source`` while ``predicate(source)`` stays True.

    ``predicate`` receives a candidate source string and returns True
    when the candidate still reproduces the original failure.  It must
    be deterministic; exceptions propagate (wrap them inside the
    predicate).  ``max_tests`` bounds the total predicate budget.
    """
    lines = source.splitlines()
    if not predicate(source):
        raise ValueError("predicate does not hold on the input source")

    state = {"steps": 0, "tests": 1}

    def build(removed: set) -> str:
        return "\n".join(line for index, line in enumerate(lines)
                         if index not in removed) + "\n"

    def try_removed(removed: set) -> bool:
        if state["tests"] >= max_tests:
            return False
        state["tests"] += 1
        if predicate(build(removed)):
            state["steps"] += 1
            return True
        return False

    removed: set = set()

    # Phase 1: ddmin over instruction lines.
    active = [index for index, line in enumerate(lines)
              if _is_instruction(line)]
    granularity = 2
    while len(active) >= 2 and state["tests"] < max_tests:
        chunk = max(1, (len(active) + granularity - 1) // granularity)
        reduced = False
        for start in range(0, len(active), chunk):
            complement = active[:start] + active[start + chunk:]
            candidate = removed | (set(active) - set(complement))
            if try_removed(candidate):
                removed = candidate
                active = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(active):
                break
            granularity = min(len(active), granularity * 2)

    # Phase 2: one-at-a-time over every remaining droppable line
    # (including now-orphaned labels and data lines) until fixpoint.
    changed = True
    while changed and state["tests"] < max_tests:
        changed = False
        for index, line in enumerate(lines):
            if index in removed or _is_protected(line):
                continue
            if try_removed(removed | {index}):
                removed = removed | {index}
                changed = True

    return MinimizeResult(source=build(removed), steps=state["steps"],
                          tests=state["tests"])
