"""Seeded adversarial guest-program generator.

Emits well-formed, always-terminating R32 assembly stressing every
branch shape the branch-error classifier knows about:

* forward conditional branches over **all** FLAGS conditions (a
  deterministic "condition gauntlet" walks every Jcc once),
* backward conditional branches (counted loops, nested to a knob),
* the flagless register-zero branches ``jrz``/``jrnz``,
* indirect branches through in-memory jump tables (``jmpr``),
* ``call``/``ret`` chains (acyclic) and indirect calls (``callr``),
* conditional moves after comparisons,
* flagless ``lea``/``lea3`` address arithmetic,
* guarded ``div``/``mod`` (divisor forced odd: never a hardware trap),
* balanced ``push``/``pop`` pairs and scratch-memory traffic.

Programs end with a fold loop that XOR-reduces the scratch buffer and
the live work registers into one checksum emitted via ``syscall 4`` —
so output equivalence across pipelines is a strong oracle.

Register discipline: r0..r7 are work registers, r8 is the cmov/jrz
auxiliary, r9 the indirect-branch selector, r10..r12 loop counters,
r13 the scratch-buffer base; r14/r15 stay reserved (fp/sp).

Generation is fully deterministic: one ``random.Random(seed)`` stream,
no wall-clock, no ambient state.  ``generator.shapes`` records which
branch shapes a particular program actually exercises.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.isa.assembler import assemble
from repro.isa.program import Program

#: Jcc mnemonics in gauntlet order — every FLAGS condition exactly once.
ALL_JCC = ("jz", "jnz", "jl", "jge", "jle", "jg", "jb", "jae", "jbe",
           "ja", "js", "jns", "jo", "jno")

#: CMOVcc mnemonics the generator rotates through.
ALL_CMOV = ("cmovz", "cmovnz", "cmovl", "cmovge", "cmovle", "cmovg",
            "cmovb", "cmovae", "cmovbe", "cmova", "cmovs", "cmovns",
            "cmovo", "cmovno")

_WORK = [f"r{i}" for i in range(8)]
_AUX = "r8"
_SEL = "r9"
_LOOP = ["r10", "r11", "r12"]
_BASE = "r13"

_ARITH3 = ["add", "sub", "and", "or", "xor", "mul", "shl", "shr", "sar",
           "fadd", "fsub", "fmul", "lea3", "lsub"]
_ARITH_IMM = ["addi", "subi", "andi", "ori", "xori", "shli", "shri",
              "muli", "lea"]


@dataclass(frozen=True)
class FuzzKnobs:
    """Generation parameters (size / loop depth / memory footprint)."""

    statements: int = 24      #: top-level statement budget
    max_loop_depth: int = 2   #: nesting of counted loops (0..3)
    mem_words: int = 16       #: scratch buffer size in 32-bit words
    functions: int = 2        #: callable leaf/chain functions (0 = none)
    indirect: bool = True     #: jump tables (jmpr) and callr
    cond_gauntlet: bool = True  #: walk all 14 Jcc conditions once

    @classmethod
    def tiny(cls) -> "FuzzKnobs":
        """Small programs for the exhaustive detection oracle."""
        return cls(statements=8, max_loop_depth=1, mem_words=4,
                   functions=1, indirect=True, cond_gauntlet=True)

    def scaled(self, **overrides) -> "FuzzKnobs":
        return replace(self, **overrides)


class ProgramGenerator:
    """One seeded, deterministic program emission."""

    def __init__(self, seed: int, knobs: FuzzKnobs | None = None):
        self.seed = seed
        self.knobs = knobs or FuzzKnobs()
        self.rng = random.Random(seed)
        self.lines: list[str] = []
        self.data_lines: list[str] = []
        self.shapes: set[str] = set()
        self._label = 0
        self._cond_index = self.rng.randrange(len(ALL_JCC))
        self._cmov_index = self.rng.randrange(len(ALL_CMOV))
        self._loop_depth = 0
        self._in_function = False
        self._fn_index = 0

    # -- small helpers -----------------------------------------------------

    def fresh(self, prefix: str) -> str:
        self._label += 1
        return f"{prefix}_{self._label}"

    def emit(self, line: str) -> None:
        self.lines.append(f"    {line}")

    def mark(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def reg(self) -> str:
        return self.rng.choice(_WORK)

    def next_jcc(self) -> str:
        mnemonic = ALL_JCC[self._cond_index % len(ALL_JCC)]
        self._cond_index += 1
        return mnemonic

    def next_cmov(self) -> str:
        mnemonic = ALL_CMOV[self._cmov_index % len(ALL_CMOV)]
        self._cmov_index += 1
        return mnemonic

    def _compare(self) -> None:
        """Emit a flag-setting comparison over work registers."""
        choice = self.rng.randrange(3)
        if choice == 0:
            self.emit(f"cmp {self.reg()}, {self.reg()}")
        elif choice == 1:
            self.emit(f"cmpi {self.reg()}, {self.rng.randint(-64, 64)}")
        else:
            self.emit(f"test {self.reg()}, {self.reg()}")

    # -- statements --------------------------------------------------------

    def stmt_arith(self) -> None:
        if self.rng.random() < 0.5:
            op = self.rng.choice(_ARITH3)
            self.emit(f"{op} {self.reg()}, {self.reg()}, {self.reg()}")
            if op in ("lea3", "lsub"):
                self.shapes.add("lea")
        else:
            op = self.rng.choice(_ARITH_IMM)
            imm = (self.rng.randint(0, 7) if op in ("shli", "shri")
                   else self.rng.randint(-128, 127))
            self.emit(f"{op} {self.reg()}, {self.reg()}, {imm}")
            if op == "lea":
                self.shapes.add("lea")

    def stmt_mem(self) -> None:
        offset = 4 * self.rng.randrange(self.knobs.mem_words)
        if self.rng.random() < 0.5:
            self.emit(f"ld {self.reg()}, {_BASE}, {offset}")
        else:
            self.emit(f"st {self.reg()}, {_BASE}, {offset}")
        self.shapes.add("mem")

    def stmt_div(self) -> None:
        rd, rs, rt = self.reg(), self.reg(), self.reg()
        # Force the divisor odd so div/mod can never trap: hardware
        # faults here would be indistinguishable from category-F hits.
        self.emit(f"ori {rt}, {rt}, 1")
        self.emit(f"{self.rng.choice(['div', 'mod'])} {rd}, {rs}, {rt}")
        self.shapes.add("div_guard")

    def stmt_push_pop(self) -> None:
        reg = self.reg()
        self.emit(f"push {reg}")
        self.stmt_arith()
        self.emit(f"pop {reg}")
        self.shapes.add("push_pop")

    def stmt_cmov(self) -> None:
        self._compare()
        self.emit(f"{self.next_cmov()} {self.reg()}, {self.reg()}")
        self.shapes.add("cmov")

    def stmt_diamond(self, budget: int) -> None:
        """if/else over the next FLAGS condition (forward branches)."""
        else_label = self.fresh("else")
        end_label = self.fresh("endif")
        self._compare()
        self.emit(f"{self.next_jcc()} {else_label}")
        for _ in range(self.rng.randint(1, max(1, budget // 2))):
            self.stmt_simple()
        self.emit(f"jmp {end_label}")
        self.mark(else_label)
        for _ in range(self.rng.randint(1, max(1, budget // 2))):
            self.stmt_simple()
        self.mark(end_label)
        self.shapes.add("jcc_fwd")

    def stmt_jrz_skip(self) -> None:
        """Flagless conditional skip via jrz/jrnz on the auxiliary."""
        skip = self.fresh("skip")
        self.emit(f"andi {_AUX}, {self.reg()}, 3")
        mnemonic = self.rng.choice(["jrz", "jrnz"])
        self.emit(f"{mnemonic} {_AUX}, {skip}")
        self.stmt_simple()
        self.mark(skip)
        self.shapes.add(mnemonic)

    def stmt_loop(self, budget: int) -> None:
        """Counted loop: backward conditional or jrnz, never infinite."""
        counter = _LOOP[self._loop_depth]
        head = self.fresh("loop")
        trips = self.rng.randint(2, 4)
        self.emit(f"movi {counter}, {trips}")
        self.mark(head)
        self._loop_depth += 1
        for _ in range(self.rng.randint(1, max(1, budget // 2))):
            self.stmt_in_loop(budget // 2)
        self._loop_depth -= 1
        self.emit(f"subi {counter}, {counter}, 1")
        if self.rng.random() < 0.5:
            self.emit(f"jnz {head}")
            self.shapes.add("jcc_back")
        else:
            self.emit(f"jrnz {counter}, {head}")
            self.shapes.add("jrnz")

    def stmt_indirect(self) -> None:
        """Four-way switch through an in-memory jump table (jmpr)."""
        cases = [self.fresh("case") for _ in range(4)]
        done = self.fresh("endsw")
        table = self.fresh("table")
        self.data_lines.append(f"{table}:")
        self.data_lines.append("    .word " + ", ".join(cases))
        self.emit(f"andi {_SEL}, {self.reg()}, 3")
        self.emit(f"shli {_SEL}, {_SEL}, 2")
        self.emit(f"const {_AUX}, {table}")
        self.emit(f"lea3 {_AUX}, {_AUX}, {_SEL}")
        self.emit(f"ld {_AUX}, {_AUX}, 0")
        self.emit(f"jmpr {_AUX}")
        for case in cases:
            self.mark(case)
            self.stmt_simple()
            self.emit(f"jmp {done}")
        self.mark(done)
        self.shapes.add("indirect")

    def stmt_call(self) -> None:
        """Direct or indirect call into the function chain."""
        target = f"fn_{self.rng.randrange(self.knobs.functions)}"
        if self.knobs.indirect and self.rng.random() < 0.3:
            self.emit(f"const {_AUX}, {target}")
            self.emit(f"callr {_AUX}")
            self.shapes.add("callr")
        else:
            self.emit(f"call {target}")
            self.shapes.add("call")

    # -- statement dispatch ------------------------------------------------

    def stmt_simple(self) -> None:
        """A statement with no internal control flow."""
        pick = self.rng.random()
        if pick < 0.45:
            self.stmt_arith()
        elif pick < 0.70:
            self.stmt_mem()
        elif pick < 0.80:
            self.stmt_cmov()
        elif pick < 0.90:
            self.stmt_push_pop()
        else:
            self.stmt_div()

    def stmt_in_loop(self, budget: int) -> None:
        """Statements allowed inside a loop body."""
        pick = self.rng.random()
        if (pick < 0.20 and self._loop_depth < self.knobs.max_loop_depth):
            self.stmt_loop(budget)
        elif pick < 0.35:
            self.stmt_diamond(max(2, budget))
        elif pick < 0.45:
            self.stmt_jrz_skip()
        else:
            self.stmt_simple()

    def stmt_top(self, budget: int) -> None:
        """Top-level statement (full menu)."""
        pick = self.rng.random()
        if pick < 0.18 and self.knobs.max_loop_depth > 0:
            self.stmt_loop(budget)
        elif pick < 0.36:
            self.stmt_diamond(budget)
        elif pick < 0.46:
            self.stmt_jrz_skip()
        elif pick < 0.56 and self.knobs.indirect and not self._in_function:
            self.stmt_indirect()
        elif (pick < 0.68 and self.knobs.functions
                and not self._in_function):
            self.stmt_call()
        else:
            self.stmt_simple()

    # -- structure ---------------------------------------------------------

    def gen_gauntlet(self) -> None:
        """Exercise every FLAGS condition once, deterministically."""
        for mnemonic in ALL_JCC:
            skip = self.fresh("g")
            self.emit(f"cmpi {self.reg()}, {self.rng.randint(-8, 8)}")
            self.emit(f"{mnemonic} {skip}")
            self.emit(f"xori r0, r0, {self.rng.randint(1, 255)}")
            self.mark(skip)
        self.shapes.add("jcc_fwd")

    def gen_function(self, index: int) -> None:
        """One function body; may call strictly later functions only."""
        self.mark(f"fn_{index}")
        self._in_function = True
        saved_depth, self._loop_depth = self._loop_depth, 0
        for _ in range(self.rng.randint(2, 4)):
            pick = self.rng.random()
            if pick < 0.3:
                self.stmt_diamond(2)
            elif pick < 0.5:
                self.stmt_mem()
            else:
                self.stmt_simple()
        if index + 1 < self.knobs.functions and self.rng.random() < 0.5:
            self.emit(f"call fn_{index + 1}")
            self.shapes.add("call")
        self._loop_depth = saved_depth
        self._in_function = False
        self.emit("ret")
        self.shapes.add("ret")

    def gen_epilogue(self) -> None:
        """XOR-fold scratch memory and work registers into the output."""
        head = self.fresh("fold")
        self.emit(f"const {_BASE}, buf")
        self.emit(f"movi {_LOOP[0]}, {self.knobs.mem_words}")
        self.emit("movi r1, 0")
        self.mark(head)
        self.emit(f"ld {_AUX}, {_BASE}, 0")
        self.emit(f"xor r1, r1, {_AUX}")
        self.emit(f"lea {_BASE}, {_BASE}, 4")
        self.emit(f"subi {_LOOP[0]}, {_LOOP[0]}, 1")
        self.emit(f"jnz {head}")
        self.shapes.add("jcc_back")
        self.shapes.add("lea")
        for reg in ("r0", "r2", "r3", "r4", "r5", "r6", "r7"):
            self.emit(f"xor r1, r1, {reg}")
        self.emit("syscall 4")      # EMIT_WORD(r1)
        self.emit("movi r1, 0")
        self.emit("syscall 0")      # EXIT(0)

    def generate_source(self) -> str:
        knobs = self.knobs
        self.lines = [".text", ".entry main", "main:"]
        self.emit("const r13, buf")
        for reg in _WORK:
            self.emit(f"movi {reg}, {self.rng.randint(1, 999)}")
        self.emit(f"movi {_AUX}, {self.rng.randint(1, 99)}")
        self.emit(f"movi {_SEL}, {self.rng.randint(1, 99)}")
        if knobs.cond_gauntlet:
            self.gen_gauntlet()
        for _ in range(knobs.statements):
            self.stmt_top(4)
        self.gen_epilogue()
        for index in range(knobs.functions):
            self.gen_function(index)
        data = [".data", "buf:", f"    .space {4 * knobs.mem_words}"]
        data += self.data_lines
        return "\n".join(self.lines + data) + "\n"


def generate_source(seed: int, knobs: FuzzKnobs | None = None) -> str:
    """Deterministic adversarial R32 source for ``seed``."""
    return ProgramGenerator(seed, knobs).generate_source()


def generate_program(seed: int,
                     knobs: FuzzKnobs | None = None) -> Program:
    """Generate and assemble one program (``fuzz-<seed>``)."""
    source = generate_source(seed, knobs)
    return assemble(source, name=f"fuzz-{seed}")
