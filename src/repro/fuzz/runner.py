"""Supervised differential-fuzzing campaigns.

One fuzzing run is ``count`` generated programs, each pushed through
the transparency oracle (and, on a configurable stride, the exhaustive
detection oracle on a companion tiny program).  Programs are
independent, so the run fans out over the same supervised process pool
the fault campaigns use (:func:`repro.faults.executor.parallel_map`) —
verdicts come back in input order, making the summary identical for
any job count.

Failures are handled in the parent, deterministically:

* the failing source is shrunk with the delta-debugging minimizer
  (predicate restricted to the first failing configuration, so each
  candidate costs two runs, not a full matrix),
* original + minimized sources and a JSON report land in the corpus
  directory (``fail-<index>-<kind>/``),
* detection failures additionally get a forensics bundle readable by
  ``repro explain --bundle``.

Everything derives from one ``--seed`` via
:func:`repro.faults.sampling.derive_seed`; the effective seed is
printed and recorded in the journal header.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace

from repro import obs
from repro.checking import Policy
from repro.faults.executor import MapError, parallel_map
from repro.faults.sampling import derive_seed
from repro.fuzz.generator import FuzzKnobs, generate_source
from repro.fuzz.minimizer import minimize_source
from repro.fuzz.oracle import (DBT_TECHNIQUES, DEFAULT_TECHNIQUES,
                               check_detection, check_mt_transparency,
                               check_recovery, check_transparency,
                               transparency_configs)
from repro.isa.assembler import assemble


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzzing campaign, fully determined by ``seed``."""

    seed: int = 2006
    count: int = 50
    knobs: FuzzKnobs = field(default_factory=FuzzKnobs)
    detect_knobs: FuzzKnobs = field(default_factory=FuzzKnobs.tiny)
    techniques: tuple = DEFAULT_TECHNIQUES
    policies: tuple = (Policy.ALLBB,)
    #: every Nth program also gets the exhaustive detection oracle on a
    #: companion tiny program (0 disables detection entirely).
    detect_every: int = 8
    detect_techniques: tuple = DBT_TECHNIQUES
    max_sites: int | None = 12
    minimize: bool = True
    max_minimize_tests: int = 600
    #: execution backend the oracles run under ("interp" | "block");
    #: non-default adds a bare cross-backend native lane per program.
    backend: str = "interp"
    #: optional technique override forwarded to the oracles (must be a
    #: picklable module-level callable when jobs > 1).
    technique_factory: object = None
    #: also hold every detected fault of the detection suite to the
    #: recovery contract (checkpoint/rollback must reproduce the golden
    #: RunDigest; see repro.recovery and docs/recovery.md).
    recover: bool = False
    #: every Nth program also runs the multithreaded differential
    #: oracle on a seed-varied MT kernel — random quantum/policy/seed
    #: under the deterministic preemptive scheduler, cross-backend
    #: schedule parity included (0 disables; see docs/threads.md).
    mt_every: int = 0
    mt_techniques: tuple = ("ecf",)

    def program_seed(self, index: int) -> int:
        return derive_seed(self.seed, "program", index)

    def knobs_for(self, index: int) -> FuzzKnobs:
        """Per-index knob variation.

        The default knobs emit indirect branches and call chains, which
        only the DBT accepts; cycling two restricted variants makes the
        corpus exercise the static rewriter (no indirect) and the
        whole-CFG baselines (intra-procedural: no indirect, no calls).
        """
        phase = index % 4
        if phase == 1:
            return replace(self.knobs, indirect=False)
        if phase == 3:
            return replace(self.knobs, indirect=False, functions=0)
        return self.knobs

    def detect_seed(self, index: int) -> int:
        return derive_seed(self.seed, "detect", index)

    def mt_seed(self, index: int) -> int:
        return derive_seed(self.seed, "mt", index)


def _mt_case(config: FuzzConfig, index: int) -> tuple[str, dict]:
    """The seed-varied MT kernel + scheduler parameters for one index.

    Pure function of (config.seed, index) — the parent regenerates the
    failing case from the verdict without shipping sources through the
    process pool.
    """
    import random

    from repro.workloads.kernels import mt as mt_kernels

    rng = random.Random(config.mt_seed(index))
    kernel = rng.choice(("counters", "ledger", "relay"))
    if kernel == "counters":
        source = mt_kernels.counters(threads=rng.randint(2, 4),
                                     iters=rng.randint(20, 60),
                                     spin=rng.randint(2, 8))
    elif kernel == "ledger":
        source = mt_kernels.ledger(threads=rng.randint(2, 4),
                                   deposits=rng.randint(15, 40))
    else:
        source = mt_kernels.relay(stages=rng.randint(2, 4),
                                  rounds=rng.randint(8, 20))
    params = {"kernel": kernel,
              "quantum": rng.randint(40, 200),
              "sched_policy": rng.choice(("rr", "priority")),
              "sched_seed": rng.randint(0, 999)}
    return source, params


def _fuzz_one(task) -> dict:
    """Worker: oracles for one index.  Returns a picklable verdict."""
    index, config = task
    verdict = {"index": index, "kind": "ok", "transparency": [],
               "escapes": [], "recovery": [], "mt": [], "configs": 0,
               "detection_runs": 0, "recovery_runs": 0, "mt_runs": 0}
    source = generate_source(config.program_seed(index),
                             config.knobs_for(index))
    program = assemble(source, name=f"fuzz-{index}")
    configs = transparency_configs(program, config.techniques,
                                   config.policies,
                                   backend=config.backend)
    verdict["configs"] = len(configs)
    failures = check_transparency(
        program, configs=configs,
        technique_factory=config.technique_factory)
    if failures:
        verdict["kind"] = "transparency"
        verdict["transparency"] = [
            {"label": f.label, "fields": list(f.fields),
             "crash": f.is_crash}
            for f in failures]
    if config.detect_every and index % config.detect_every == 0:
        tiny = generate_source(config.detect_seed(index),
                               config.detect_knobs)
        tiny_program = assemble(tiny, name=f"fuzz-detect-{index}")
        for technique in config.detect_techniques:
            escapes, runs = check_detection(
                tiny_program, technique,
                technique_factory=config.technique_factory,
                max_sites=config.max_sites,
                backend=config.backend)
            verdict["detection_runs"] += runs
            if escapes:
                verdict["kind"] = "detection"
                verdict["escapes"] += [
                    {"label": e.label, "technique": technique,
                     "spec": e.spec.describe(),
                     "category": e.category, "outcome": e.outcome}
                    for e in escapes]
            if config.recover:
                failures, rruns = check_recovery(
                    tiny_program, technique,
                    technique_factory=config.technique_factory,
                    max_sites=config.max_sites,
                    backend=config.backend)
                verdict["recovery_runs"] += rruns
                if failures:
                    if verdict["kind"] == "ok":
                        verdict["kind"] = "recovery"
                    verdict["recovery"] += [
                        {"label": f.label, "technique": technique,
                         "spec": f.spec.describe(),
                         "category": f.category, "outcome": f.outcome,
                         "fields": list(f.fields)}
                        for f in failures]
    if config.mt_every and index % config.mt_every == 0:
        source, params = _mt_case(config, index)
        mt_program = assemble(source, name=f"fuzz-mt-{index}")
        failures = check_mt_transparency(
            mt_program, techniques=config.mt_techniques,
            quantum=params["quantum"],
            sched_policy=params["sched_policy"],
            sched_seed=params["sched_seed"])
        verdict["mt_runs"] += 1
        if failures:
            if verdict["kind"] == "ok":
                verdict["kind"] = "mt"
            verdict["mt"] = [
                {"label": f.label, "fields": list(f.fields),
                 "crash": f.is_crash, **params}
                for f in failures]
    return verdict


@dataclass
class FuzzFailure:
    """One failing program, minimized and persisted."""

    index: int
    kind: str                 #: "transparency" | "detection" | "recovery"
    detail: str
    source: str
    minimized: str | None = None
    shrink_steps: int = 0
    corpus_dir: str | None = None


@dataclass
class FuzzReport:
    """Aggregated result of one fuzzing campaign."""

    seed: int
    count: int
    programs: int = 0
    ok: int = 0
    transparency_failures: int = 0
    detection_escapes: int = 0
    recovery_failures: int = 0
    mt_failures: int = 0
    infra_errors: int = 0
    transparency_configs: int = 0
    detection_runs: int = 0
    recovery_runs: int = 0
    mt_runs: int = 0
    shrink_steps: int = 0
    failures: list = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return (self.transparency_failures == 0
                and self.detection_escapes == 0
                and self.recovery_failures == 0
                and self.mt_failures == 0)

    def summary(self) -> dict:
        """Deterministic summary — identical for any job count."""
        return {"seed": self.seed, "count": self.count,
                "programs": self.programs, "ok": self.ok,
                "transparency_failures": self.transparency_failures,
                "detection_escapes": self.detection_escapes,
                "recovery_failures": self.recovery_failures,
                "mt_failures": self.mt_failures,
                "infra_errors": self.infra_errors,
                "transparency_configs": self.transparency_configs,
                "detection_runs": self.detection_runs,
                "recovery_runs": self.recovery_runs,
                "mt_runs": self.mt_runs}

    def summary_line(self) -> str:
        s = self.summary()
        recov = ""
        if s["recovery_runs"] or s["recovery_failures"]:
            recov = (f", {s['recovery_failures']} recovery failures "
                     f"over {s['recovery_runs']} recovery runs")
        mt = ""
        if s["mt_runs"] or s["mt_failures"]:
            mt = (f", {s['mt_failures']} MT failures over "
                  f"{s['mt_runs']} MT runs")
        return (f"seed {s['seed']}: {s['programs']} programs, "
                f"{s['ok']} ok, "
                f"{s['transparency_failures']} transparency, "
                f"{s['detection_escapes']} detection escapes, "
                f"{s['infra_errors']} infra "
                f"({s['transparency_configs']} configs, "
                f"{s['detection_runs']} detection runs)" + recov + mt)


# -- failure handling (parent process, deterministic) ------------------------


def _transparency_predicate(config: FuzzConfig, label: str,
                            crash: bool):
    """Candidate still diverges under the originally-failing config.

    The failure *mode* must be preserved: a genuine behavioural
    divergence may not degrade into an instrumentation crash mid-shrink
    (dropping lines can leave dead code the rewriter rejects), or the
    minimizer would chase an unrelated, easier failure.
    """
    from repro.faults.campaign import PipelineConfig
    label, _, backend = label.partition("@")
    pipeline, technique, policy = label.split("/")
    pipe_config = PipelineConfig(pipeline,
                                 None if technique == "none" else technique,
                                 Policy(policy),
                                 backend=backend or "interp")

    def predicate(source: str) -> bool:
        try:
            program = assemble(source)
            failures = check_transparency(
                program, configs=[pipe_config],
                technique_factory=config.technique_factory)
        except Exception:
            return False
        return any(f.is_crash == crash for f in failures)
    return predicate


def _detection_predicate(config: FuzzConfig, technique: str):
    """Candidate still lets a claimed-category error escape."""
    def predicate(source: str) -> bool:
        try:
            program = assemble(source)
            escapes, _ = check_detection(
                program, technique,
                technique_factory=config.technique_factory,
                max_sites=config.max_sites,
                backend=config.backend)
            return bool(escapes)
        except Exception:
            return False
    return predicate


def _mt_predicate(config: FuzzConfig, params: dict):
    """Candidate still fails the multithreaded oracle under the
    originally-failing scheduler parameters."""
    def predicate(source: str) -> bool:
        try:
            program = assemble(source)
            failures = check_mt_transparency(
                program, techniques=config.mt_techniques,
                quantum=params["quantum"],
                sched_policy=params["sched_policy"],
                sched_seed=params["sched_seed"])
            return bool(failures)
        except Exception:
            return False
    return predicate


def _recovery_predicate(config: FuzzConfig, technique: str):
    """Candidate still breaks the recovery contract."""
    def predicate(source: str) -> bool:
        try:
            program = assemble(source)
            failures, _ = check_recovery(
                program, technique,
                technique_factory=config.technique_factory,
                max_sites=config.max_sites,
                backend=config.backend)
            return bool(failures)
        except Exception:
            return False
    return predicate


def _persist_failure(failure: FuzzFailure, config: FuzzConfig,
                     corpus: str) -> None:
    directory = os.path.join(corpus,
                             f"fail-{failure.index}-{failure.kind}")
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, "original.s"), "w",
              encoding="utf-8") as handle:
        handle.write(failure.source)
    if failure.minimized is not None:
        with open(os.path.join(directory, "minimized.s"), "w",
                  encoding="utf-8") as handle:
            handle.write(failure.minimized)
    report = {"index": failure.index, "kind": failure.kind,
              "detail": failure.detail, "seed": config.seed,
              "shrink_steps": failure.shrink_steps,
              "repro": (f"repro fuzz --seed {config.seed} "
                        f"--count {config.count}")}
    with open(os.path.join(directory, "report.json"), "w",
              encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    failure.corpus_dir = directory


def _bundle_detection_failure(failure: FuzzFailure, config: FuzzConfig,
                              technique: str) -> None:
    """Forensics bundle for ``repro explain --bundle`` triage."""
    from repro.faults.campaign import PipelineConfig
    from repro.forensics import write_campaign_forensics
    source = failure.minimized or failure.source
    try:
        program = assemble(source, name=f"fuzz-min-{failure.index}")
        escapes, _ = check_detection(
            program, technique,
            technique_factory=config.technique_factory,
            max_sites=config.max_sites,
            backend=config.backend)
        if not escapes or failure.corpus_dir is None:
            return
        pipe_config = PipelineConfig("dbt", technique, Policy.ALLBB,
                                     backend=config.backend)
        path = os.path.join(failure.corpus_dir, "forensics.json")
        write_campaign_forensics(
            program, pipe_config,
            escapes=[(i, e.spec) for i, e in enumerate(escapes)],
            max_samples=3, path=path)
    except Exception as exc:   # bundles are best-effort diagnostics
        obs.counter("fuzz_bundle_errors_total",
                    help="forensics bundle failures").inc()
        if failure.corpus_dir:
            with open(os.path.join(failure.corpus_dir,
                                   "forensics-error.txt"), "w",
                      encoding="utf-8") as handle:
                handle.write(f"{type(exc).__name__}: {exc}\n")


def _handle_failure(index: int, verdict: dict, config: FuzzConfig,
                    corpus: str | None, report: FuzzReport) -> None:
    kind = verdict["kind"]
    if kind == "transparency":
        source = generate_source(config.program_seed(index),
                                 config.knobs_for(index))
        detail = json.dumps(verdict["transparency"])
        first = verdict["transparency"][0]
        predicate = _transparency_predicate(
            config, first["label"], first.get("crash", False))
    elif kind == "recovery":
        source = generate_source(config.detect_seed(index),
                                 config.detect_knobs)
        detail = json.dumps(verdict["recovery"])
        technique = verdict["recovery"][0]["technique"]
        predicate = _recovery_predicate(config, technique)
    elif kind == "mt":
        source, params = _mt_case(config, index)
        detail = json.dumps(verdict["mt"])
        predicate = _mt_predicate(config, params)
    else:
        source = generate_source(config.detect_seed(index),
                                 config.detect_knobs)
        detail = json.dumps(verdict["escapes"])
        technique = verdict["escapes"][0]["technique"]
        predicate = _detection_predicate(config, technique)
    failure = FuzzFailure(index=index, kind=kind, detail=detail,
                          source=source)
    if config.minimize:
        try:
            result = minimize_source(
                source, predicate, max_tests=config.max_minimize_tests)
            failure.minimized = result.source
            failure.shrink_steps = result.steps
            report.shrink_steps += result.steps
            obs.counter("fuzz_shrink_steps_total",
                        help="successful minimizer reductions").inc(
                            result.steps)
        except ValueError:
            # Not reproducible in isolation (flaky infra, not a guest
            # bug) — keep the original source for manual triage.
            pass
    if corpus:
        _persist_failure(failure, config, corpus)
        if kind == "detection":
            _bundle_detection_failure(failure, config, technique)
    report.failures.append(failure)


# -- campaign entry point ----------------------------------------------------


def run_fuzz(config: FuzzConfig, jobs: int = 1,
             retries: int | None = None, timeout: float | None = None,
             journal: str | None = None,
             corpus: str | None = None,
             on_progress=None,
             stop_check=None) -> FuzzReport:
    """Run one fuzzing campaign; returns the aggregated report.

    Deterministic for a given ``config.seed``: verdicts are collected
    in input order whatever ``jobs`` is, and failure handling runs in
    the parent.  ``on_progress``/``stop_check`` are the campaign
    service's job hooks (see :func:`repro.faults.executor.parallel_map`);
    a stopped fuzz campaign raises ``CampaignStopped`` and simply
    reruns from scratch when resubmitted — fuzzing is
    rerun-deterministic, so nothing is lost.
    """
    report = FuzzReport(seed=config.seed, count=config.count)
    journal_file = None
    if journal:
        from repro.faults.journal import CampaignJournal
        journal_file = CampaignJournal(journal)
        journal_file.append_header({
            "tool": "repro-fuzz", "seed": config.seed,
            "count": config.count, "jobs": jobs,
            "techniques": list(config.techniques),
            "policies": [p.value for p in config.policies],
            "detect_every": config.detect_every,
            "backend": config.backend,
            "recover": config.recover,
            "mt_every": config.mt_every})
    tasks = [(index, config) for index in range(config.count)]
    with obs.span("fuzz.campaign", seed=str(config.seed),
                  count=str(config.count)):
        verdicts = parallel_map(_fuzz_one, tasks, jobs=jobs,
                                retries=retries, timeout=timeout,
                                on_progress=on_progress,
                                stop_check=stop_check)
    for index, verdict in enumerate(verdicts):
        report.programs += 1
        obs.counter("fuzz_programs_total",
                    help="fuzz programs generated and judged").inc()
        if isinstance(verdict, MapError):
            report.infra_errors += 1
            obs.counter("fuzz_verdicts_total",
                        help="fuzz oracle verdicts",
                        verdict="infra").inc()
            report.failures.append(FuzzFailure(
                index=index, kind="infra", detail=verdict.error,
                source=""))
            continue
        report.transparency_configs += verdict["configs"]
        report.detection_runs += verdict["detection_runs"]
        report.recovery_runs += verdict.get("recovery_runs", 0)
        report.mt_runs += verdict.get("mt_runs", 0)
        obs.counter("fuzz_verdicts_total",
                    help="fuzz oracle verdicts",
                    verdict=verdict["kind"]).inc()
        if verdict["kind"] == "ok":
            report.ok += 1
        else:
            if verdict["transparency"]:
                report.transparency_failures += len(
                    verdict["transparency"])
            if verdict["escapes"]:
                report.detection_escapes += len(verdict["escapes"])
            if verdict.get("recovery"):
                report.recovery_failures += len(verdict["recovery"])
            if verdict.get("mt"):
                report.mt_failures += len(verdict["mt"])
            _handle_failure(index, verdict, config, corpus, report)
        if journal_file is not None:
            entry = dict(verdict)
            entry["v"] = 1
            entry["fuzz"] = True
            with open(journal_file.path, "a",
                      encoding="utf-8") as handle:
                handle.write(json.dumps(entry,
                                        separators=(",", ":")) + "\n")
    return report
