"""Differential fuzzing: adversarial guest programs vs the reproduction.

The paper's two headline claims — instrumentation is *transparent*
(Section 3) and EdgCF/RCF are *comprehensive* (Section 4) — are only as
trustworthy as the breadth of programs they are exercised on.  This
package generates seeded adversarial R32 programs stressing every
branch shape the classifier knows, runs them through N-way differential
oracles (every technique x policy, interpreter and DBT, diffed against
the uninstrumented golden run), and shrinks any failure to a minimal
reproducer with a delta-debugging minimizer.

It is the first subsystem that can *falsify* the reproduction rather
than just measure it.
"""

from repro.fuzz.generator import (FuzzKnobs, ProgramGenerator,
                                  generate_program, generate_source)
from repro.fuzz.minimizer import MinimizeResult, minimize_source
from repro.fuzz.oracle import (DetectionEscape, OracleReport, RunDigest,
                               capture_threaded, check_detection,
                               check_mt_transparency,
                               check_transparency,
                               claimed_categories, run_oracles)
from repro.fuzz.runner import FuzzConfig, FuzzReport, run_fuzz

__all__ = [
    "FuzzKnobs", "ProgramGenerator", "generate_program",
    "generate_source",
    "MinimizeResult", "minimize_source",
    "DetectionEscape", "OracleReport", "RunDigest", "capture_threaded",
    "check_detection", "check_mt_transparency",
    "check_transparency", "claimed_categories", "run_oracles",
    "FuzzConfig", "FuzzReport", "run_fuzz",
]
