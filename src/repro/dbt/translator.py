"""The Frontend's block translator.

Decodes one guest basic block (translation is on demand: "every time a
non-translated basic block has to be executed, the DBT takes control
... therefore, only executed blocks are translated") and emits its
translation into the code cache:

========================  ==================================================
cache layout              purpose
========================  ==================================================
entry instrumentation     the technique's head code (CHECK_SIG + update)
translated body           original instructions, copied verbatim
exit instrumentation      the technique's GEN_SIG for this exit kind
transfer + exit stubs     the branch plus TRAP stubs the Runtime patches
                          into direct jumps once targets are translated
error stub                per-block ``trap ERROR`` that ErrorBranches hit
========================  ==================================================

Every original instruction's guest address is mapped to its cache
address, which is what lets the guest-level fault injector land
"in the middle of a basic block" *after* the entry instrumentation —
the defining difficulty of branch-error categories C and E.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.isa.encoding import decode
from repro.isa.instruction import WORD_SIZE, Instruction
from repro.isa.opcodes import Kind, Op
from repro.isa.registers import T1, T2
from repro.cfg.basic_block import BasicBlock, ExitKind, classify_exit
from repro.checking.base import (BlockInfo, CondDesc, RawIns, Technique)
from repro.instrument.lowering import (assign_addresses,
                                       check_slot_addresses, encode_snippet,
                                       lower_items)
from repro.dbt.codecache import CodeCache

#: Trap number reserved for signature-check failures.
ERROR_TRAP = 0xFFFF
#: Trap number reserved for the fault injector's redirects.
INJECT_TRAP = 0xFFFE
#: Trap number reserved for data-flow (duplication) check failures.
DF_ERROR_TRAP = 0xFFFD
#: Highest trap number usable as a chainable exit-slot id.
MAX_SLOT = 0xFFF0

MAX_BLOCK_INSTRUCTIONS = 256


@dataclass
class ExitSlot:
    """One patchable block exit."""

    slot_id: int
    kind: str                    #: "direct" or "indirect"
    trap_addr: int               #: cache address of the TRAP stub
    guest_target: int | None     #: known target for direct exits
    block_start: int             #: owning guest block
    patched: bool = False
    #: for the taken direction of a conditional exit: cache address of
    #: the conditional branch, so chaining can re-point it directly at
    #: the translated target (skipping the stub) like a real DBT
    cond_site: int | None = None


@dataclass
class TranslatedBlock:
    """Bookkeeping for one translated guest block."""

    guest_start: int
    guest_end: int
    cache_start: int
    cache_end: int
    exit_kind: ExitKind
    #: guest instruction address -> cache address of its translation
    addr_map: dict[int, int] = field(default_factory=dict)
    exit_slots: list[ExitSlot] = field(default_factory=list)
    error_stub: int = 0
    check_addresses: list[int] = field(default_factory=list)
    #: cache address of the always-executed transfer instruction that
    #: stands in for the guest terminator (None for fallthrough blocks)
    terminator_site: int | None = None
    #: guest address of the terminator
    guest_terminator: int | None = None
    instrumented_entry: bool = True
    #: cache ranges [start, end) holding *inserted* instrumentation
    #: (entry CHECK_SIG code and exit GEN_SIG code)
    instrumentation_ranges: list[tuple[int, int]] = field(
        default_factory=list)

    def is_instrumentation(self, cache_addr: int) -> bool:
        return any(start <= cache_addr < end
                   for start, end in self.instrumentation_ranges)

    def contains_guest(self, addr: int) -> bool:
        return self.guest_start <= addr < self.guest_end


class NullTechnique(Technique):
    """No instrumentation — the DBT-baseline configuration."""

    name = "none"

    def prologue(self, entry_block):
        return []

    def entry_items(self, block, check):
        return []

    def exit_items_direct(self, block, target):
        return []

    def exit_items_cond(self, block, taken, fallthrough, cond):
        return []

    def exit_items_indirect(self, block, target_reg):
        return []


class BlockTranslator:
    """Translates guest blocks into the code cache."""

    def __init__(self, memory, cache: CodeCache, technique: Technique,
                 policy, optimize: bool = False, dataflow=None):
        self.memory = memory
        self.cache = cache
        self.technique = technique
        self.policy = policy
        self.optimize = optimize
        #: optional DataFlowDuplication transformer (SWIFT-style)
        self.dataflow = dataflow
        self._next_slot = 0

    def _new_slot_id(self) -> int:
        slot = self._next_slot
        if slot > MAX_SLOT:
            raise RuntimeError("exit-slot ids exhausted; flush the cache")
        self._next_slot = slot + 1
        return slot

    def reset_slots(self) -> None:
        self._next_slot = 0

    # -- guest decoding -----------------------------------------------------

    def decode_guest_block(self, start: int,
                           stop_before: int | None = None) -> BasicBlock:
        """Decode guest instructions from ``start`` to the terminator.

        ``stop_before``: optional upper bound (used to keep translations
        from overlapping a block already known to start there).
        """
        block = BasicBlock(start=start)
        pc = start
        for _ in range(MAX_BLOCK_INSTRUCTIONS):
            if stop_before is not None and pc >= stop_before:
                break
            word = self.memory.read_word_raw(pc)
            instr = decode(word)  # DecodeError propagates to the runtime
            block.instructions.append((pc, instr))
            kind = classify_exit(instr)
            if instr.is_terminator or kind is ExitKind.EXIT:
                block.exit_kind = kind
                return block
            pc += WORD_SIZE
        block.exit_kind = ExitKind.FALLTHROUGH
        return block

    # -- translation ------------------------------------------------------------

    def translate(self, block: BasicBlock,
                  instrument_entry: bool = True,
                  owner_start: int | None = None) -> TranslatedBlock:
        """Emit ``block``'s translation; returns its bookkeeping record.

        ``instrument_entry=False`` with ``owner_start`` set produces a
        *suffix* translation: code for a landing in the middle of block
        ``owner_start`` (fault-injection landings, SMC resume points).
        No entry check runs — that is the point of a middle landing —
        and GEN_SIG at the exit is computed as if still inside the
        owner, exactly like the tail of the owner's own translation.
        """
        registry = obs.get_registry()
        if registry is None:
            return self._translate(block, instrument_entry, owner_start)
        with obs.span("dbt.translate", guest=block.start):
            with registry.histogram(
                    "dbt_translate_seconds",
                    help="block translation wall time").time():
                tb = self._translate(block, instrument_entry,
                                     owner_start)
        registry.counter("dbt_blocks_translated_total",
                         help="guest blocks translated").inc()
        registry.counter(
            "dbt_translated_words_total",
            help="code-cache words emitted by translation").inc(
            (tb.cache_end - tb.cache_start) // WORD_SIZE)
        if tb.check_addresses:
            registry.counter(
                "dbt_check_sites_total",
                help="signature-check branch sites emitted").inc(
                len(tb.check_addresses))
        return tb

    def _translate(self, block: BasicBlock, instrument_entry: bool,
                   owner_start: int | None) -> TranslatedBlock:
        technique = self.technique
        info = BlockInfo(start=owner_start if owner_start is not None
                         else block.start)
        check = instrument_entry and self.policy.should_check(block)

        entry_items = (technique.entry_items(info, check)
                       if instrument_entry else [])
        # Plan: [entry snippet][body][exit plan][error stub]
        plan = _ExitPlan(self, block, info)
        def sig_resolver(guest_addr):
            return guest_addr  # address IS signature

        exit_item_lists = plan.snippets
        if self.optimize:
            from repro.dbt.backend import optimize_items
            entry_items = optimize_items(entry_items, sig_resolver)
            exit_item_lists = [optimize_items(items, sig_resolver)
                               for items in exit_item_lists]

        entry_snip = lower_items(entry_items, compact=True,
                                 resolver=sig_resolver)
        exit_snips = [lower_items(items, compact=True, resolver=sig_resolver)
                      for items in exit_item_lists]

        # Expand the body: with data-flow duplication each original
        # instruction becomes a protected sequence; elements are either
        # concrete Instructions or the duplication check-branch marker.
        dataflow = self.dataflow
        body_groups: list[tuple[int, list]] = []
        for guest_addr, instr in plan.body_instructions:
            if dataflow is not None:
                body_groups.append(
                    (guest_addr, dataflow.transform(guest_addr, instr)))
            else:
                body_groups.append((guest_addr, [instr]))
        pre_exit = plan.pre_exit_raw
        body_words = (sum(len(seq) for _, seq in body_groups)
                      + len(pre_exit))

        words = (entry_snip.size_words
                 + body_words
                 + sum(s.size_words for s in exit_snips)
                 + len(plan.tail)      # transfer + stubs
                 + 1                   # error stub
                 + (1 if dataflow is not None else 0))  # df error stub
        base = self.cache.allocate(words)

        tb = TranslatedBlock(
            guest_start=block.start, guest_end=block.end,
            cache_start=base, cache_end=base + words * WORD_SIZE,
            exit_kind=block.exit_kind,
            guest_terminator=(block.terminator[0]
                              if block.terminator else None),
            instrumented_entry=instrument_entry)

        cursor = assign_addresses(entry_snip, base)
        tb.check_addresses.extend(check_slot_addresses(entry_snip))
        if cursor > base:
            tb.instrumentation_ranges.append((base, cursor))
        tb.addr_map[block.start] = base

        body_addrs: list[int] = []   # start address of each element
        for guest_addr, seq in body_groups:
            if guest_addr != block.start:
                tb.addr_map[guest_addr] = cursor
            for _ in seq:
                body_addrs.append(cursor)
                cursor += WORD_SIZE
        pre_exit_addrs: list[int] = []
        for _ in pre_exit:
            pre_exit_addrs.append(cursor)
            cursor += WORD_SIZE

        exit_start = cursor
        for snip in exit_snips:
            cursor = assign_addresses(snip, cursor)
            tb.check_addresses.extend(check_slot_addresses(snip))
        if cursor > exit_start:
            tb.instrumentation_ranges.append((exit_start, cursor))
        if (tb.guest_terminator is not None
                and tb.guest_terminator not in tb.addr_map):
            # The guest terminator "lives" at the start of the exit code:
            # a landing on it runs GEN_SIG + the transfer, like landing
            # on the original branch would run just the branch.
            tb.addr_map[tb.guest_terminator] = (
                pre_exit_addrs[0] if pre_exit_addrs else exit_start)

        tail_addrs: list[int] = []
        for _ in plan.tail:
            tail_addrs.append(cursor)
            cursor += WORD_SIZE
        tb.error_stub = cursor
        cursor += WORD_SIZE
        df_stub = None
        if dataflow is not None:
            df_stub = cursor
            cursor += WORD_SIZE

        # ---- emit ----
        error_target = tb.error_stub
        for addr, instr in encode_snippet(entry_snip, sig_resolver,
                                          error_target):
            self.cache.write_instruction(addr, instr)
        elements = [el for _, seq in body_groups for el in seq] + \
            list(pre_exit)
        for element, addr in zip(elements, body_addrs + pre_exit_addrs):
            self._emit_body_element(element, addr, df_stub)
        for snip in exit_snips:
            for addr, instr in encode_snippet(snip, sig_resolver,
                                              error_target):
                self.cache.write_instruction(addr, instr)
        plan.emit_tail(tb, tail_addrs)
        self.cache.write_instruction(
            tb.error_stub, Instruction(op=Op.TRAP, imm=ERROR_TRAP))
        if df_stub is not None:
            self.cache.write_instruction(
                df_stub, Instruction(op=Op.TRAP, imm=DF_ERROR_TRAP))
        return tb

    def _emit_body_element(self, element, addr: int,
                           df_stub: int | None) -> None:
        if isinstance(element, Instruction):
            self.cache.write_instruction(addr, element)
            return
        # Data-flow check marker: jrnz DF2 -> the df error stub.
        from repro.isa.registers import DF2
        assert df_stub is not None
        offset = (df_stub - (addr + WORD_SIZE)) // WORD_SIZE
        self.cache.write_instruction(
            addr, Instruction(op=Op.JRNZ, rd=DF2, imm=offset))


class _ExitPlan:
    """Builds the exit sequence for one block.

    ``snippets``: instrumentation item lists emitted after the body.
    ``tail``: symbolic transfer elements emitted after the snippets —
    ("branch", op, rd, label_index), ("trap", slot), ("ins", instr).
    """

    def __init__(self, translator: BlockTranslator, block: BasicBlock,
                 info: BlockInfo):
        self.translator = translator
        self.block = block
        self.info = info
        self.snippets: list[list] = []
        self.tail: list[tuple] = []
        self.body_instructions = list(block.instructions)
        #: concrete pre-exit elements (instructions / data-flow check
        #: markers) emitted between the body and the exit snippets
        self.pre_exit_raw: list = []
        self._slots: list[tuple[int, str, int | None]] = []
        self._build()

    def _build(self) -> None:
        technique = self.translator.technique
        dataflow = self.translator.dataflow
        block, info = self.block, self.info
        kind = block.exit_kind
        term = block.terminator
        if term is not None and kind not in (ExitKind.EXIT, ExitKind.HALT):
            self.body_instructions = self.body_instructions[:-1]

        if kind is ExitKind.FALLTHROUGH:
            target = block.end
            self.snippets.append(technique.exit_items_direct(info, target))
            self._trap("direct", target)
        elif kind is ExitKind.JUMP:
            pc, instr = term
            target = instr.branch_target(pc)
            self.snippets.append(technique.exit_items_direct(info, target))
            self._trap("direct", target)
        elif kind is ExitKind.COND:
            pc, instr = term
            taken = instr.branch_target(pc)
            fall = pc + WORD_SIZE
            cond = (CondDesc(cond=instr.meta.cond)
                    if instr.meta.kind is Kind.BRANCH_COND
                    else CondDesc(reg_op=instr.op, reg=instr.rd))
            self.snippets.append(
                technique.exit_items_cond(info, taken, fall, cond))
            # taken-branch over the fallthrough stub
            self.tail.append(("branch", instr.op, instr.rd, 2))
            self._trap("direct", fall)
            self._trap("direct", taken)
        elif kind is ExitKind.CALL:
            pc, instr = term
            target = instr.branch_target(pc)
            return_addr = pc + WORD_SIZE
            if dataflow is not None:
                # mirror the sp decrement on the shadow file
                self.pre_exit_raw.extend(
                    dataflow.call_return_shadow_update())
            # Push the *guest* return address so guest stack contents
            # stay architecturally identical.
            self.snippets.append(
                [RawIns(i) for i in _load_const(T2, return_addr)]
                + [RawIns(Instruction(op=Op.PUSH, rd=T2))]
                + technique.exit_items_direct(info, target))
            self._trap("direct", target)
        elif kind is ExitKind.RET:
            if dataflow is not None:
                self.pre_exit_raw.extend(dataflow.ret_shadow_update())
            self.snippets.append(
                [RawIns(Instruction(op=Op.LD, rd=T1, rs=15, imm=0))]
                + technique.exit_items_indirect(info, T1)
                + [RawIns(Instruction(op=Op.LEA, rd=15, rs=15, imm=4))])
            self._trap("indirect", None)
        elif kind is ExitKind.INDIRECT:
            pc, instr = term
            if dataflow is not None:
                # verify the guest-computed target before transferring
                self.pre_exit_raw.extend(
                    dataflow.protect_indirect_target(instr.rd))
                if instr.op is Op.CALLR:
                    self.pre_exit_raw.extend(
                        dataflow.call_return_shadow_update())
            items = [RawIns(Instruction(op=Op.MOV, rd=T1, rs=instr.rd))]
            if instr.op is Op.CALLR:
                return_addr = pc + WORD_SIZE
                items += [RawIns(i) for i in _load_const(T2, return_addr)]
                items.append(RawIns(Instruction(op=Op.PUSH, rd=T2)))
            items += self.translator.technique.exit_items_indirect(
                self.info, T1)
            self.snippets.append(items)
            self._trap("indirect", None)
        elif kind in (ExitKind.HALT, ExitKind.EXIT):
            pass  # the terminator stays in the body and stops the CPU
        else:  # pragma: no cover
            raise AssertionError(kind)

    def _trap(self, kind: str, guest_target: int | None) -> None:
        slot_id = self.translator._new_slot_id()
        self._slots.append((slot_id, kind, guest_target))
        self.tail.append(("trap", slot_id))

    def emit_tail(self, tb: TranslatedBlock, addrs: list[int]) -> None:
        cache = self.translator.cache
        slot_iter = iter(self._slots)
        branch_site: int | None = None
        for element, addr in zip(self.tail, addrs):
            if element[0] == "branch":
                _, op, rd, _skip = element
                # The taken stub is the last tail element.
                target_addr = addrs[-1]
                offset = (target_addr - (addr + WORD_SIZE)) // WORD_SIZE
                cache.write_instruction(
                    addr, Instruction(op=op, rd=rd, imm=offset))
                tb.terminator_site = addr
                branch_site = addr
            elif element[0] == "trap":
                slot_id, kind, guest_target = next(slot_iter)
                cache.write_instruction(
                    addr, Instruction(op=Op.TRAP, imm=slot_id))
                is_taken_stub = (branch_site is not None
                                 and addr == addrs[-1])
                tb.exit_slots.append(ExitSlot(
                    slot_id=slot_id, kind=kind, trap_addr=addr,
                    guest_target=guest_target,
                    block_start=tb.guest_start,
                    cond_site=branch_site if is_taken_stub else None))
                if tb.terminator_site is None and self.block.exit_kind \
                        is not ExitKind.FALLTHROUGH:
                    tb.terminator_site = addr
            else:  # pragma: no cover
                raise AssertionError(element)


def _load_const(rd: int, value: int) -> list[Instruction]:
    value &= 0xFFFFFFFF
    signed = value - 0x100000000 if value >= 0x80000000 else value
    if -0x8000 <= signed <= 0x7FFF:
        return [Instruction(op=Op.MOVI, rd=rd, imm=signed)]
    return [
        Instruction(op=Op.MOVHI, rd=rd, imm=(value >> 16) & 0xFFFF),
        Instruction(op=Op.MOVLO, rd=rd, imm=value & 0xFFFF),
    ]
