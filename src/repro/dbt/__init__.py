"""The dynamic binary translator (paper Section 5).

Transparent deployment of the checking techniques: unmodified guest
binaries are translated on demand into an executable code cache, with
CHECK_SIG/GEN_SIG instrumentation woven into every translated block.
"""

from repro.dbt.backend import optimize_items
from repro.dbt.codecache import (CACHE_BASE, CACHE_SIZE, CacheFullError,
                                 CodeCache)
from repro.dbt.runtime import (DISPATCH_CYCLES, INDIRECT_DISPATCH_CYCLES,
                               Dbt, DbtResult, run_dbt)
from repro.dbt.translator import (ERROR_TRAP, INJECT_TRAP,
                                  MAX_BLOCK_INSTRUCTIONS, BlockTranslator,
                                  ExitSlot, NullTechnique, TranslatedBlock)

__all__ = [
    "optimize_items",
    "CACHE_BASE", "CACHE_SIZE", "CacheFullError", "CodeCache",
    "DISPATCH_CYCLES", "INDIRECT_DISPATCH_CYCLES", "Dbt", "DbtResult",
    "run_dbt",
    "ERROR_TRAP", "INJECT_TRAP", "MAX_BLOCK_INSTRUCTIONS",
    "BlockTranslator", "ExitSlot", "NullTechnique", "TranslatedBlock",
]
