"""The DBT Runtime: dispatch loop, chaining, system events.

Mirrors the paper's Figure 11 split:

* **Runtime** (this module): loads the program, owns the execution
  loop, services exit traps, handles system events — self-modifying
  code via write protection, NX faults, program exit — and charges the
  dispatch-cost cycle model,
* **Frontend** (:mod:`repro.dbt.translator` driven from here):
  on-demand block translation into the code cache, block chaining,
* **Backend** (:mod:`repro.dbt.backend`): run-time optimization of the
  instrumentation stream before encoding.

Cost model: translated code runs at native cycle cost; each trip
through the dispatcher costs extra cycles.  Direct exits get *chained*
(the TRAP stub is patched into a direct jump) so they pay the dispatch
cost once; indirect branches (jmpr/callr/ret) pay a per-execution
lookup cost, modelling an inlined hash-table hit.  These two constants
reproduce the paper's "about 12%" native->DBT baseline slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.isa.encoding import DecodeError
from repro.isa.instruction import WORD_SIZE, Instruction
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.machine.cpu import Cpu
from repro.machine.faults import FaultKind, StopInfo, StopReason
from repro.machine.memory import PERM_R, PERM_RW
from repro.cfg.basic_block import BasicBlock
from repro.checking.base import Technique
from repro.checking.policies import Policy
from repro.dbt.codecache import CacheFullError, CodeCache
from repro.dbt.translator import (DF_ERROR_TRAP, ERROR_TRAP, INJECT_TRAP,
                                  BlockTranslator, ExitSlot,
                                  NullTechnique, TranslatedBlock)

#: Cycles charged for an unchained trip through the dispatcher.
DISPATCH_CYCLES = 40
#: Cycles charged per indirect-branch resolution (inline lookup hit).
INDIRECT_DISPATCH_CYCLES = 6


@dataclass
class DbtResult:
    """Outcome of one program run under the DBT."""

    stop: StopInfo
    detected_error: bool = False          #: a signature check fired
    detected_dataflow: bool = False       #: a duplication check fired
    detected_at: int | None = None        #: cache pc of the report
    translated_blocks: int = 0
    cache_bytes: int = 0
    smc_flushes: int = 0

    @property
    def ok(self) -> bool:
        return (self.stop.reason is StopReason.HALTED
                and not self.detected_error)


class Dbt:
    """A dynamic binary translator session for one guest program."""

    def __init__(self, program: Program,
                 technique: Technique | None = None,
                 policy: Policy = Policy.ALLBB,
                 dispatch_cycles: int = DISPATCH_CYCLES,
                 indirect_cycles: int = INDIRECT_DISPATCH_CYCLES,
                 optimize: bool = False, enable_chaining: bool = True,
                 dataflow: bool = False, cache_size: int | None = None):
        self.program = program
        self.technique = technique if technique is not None \
            else NullTechnique()
        self.policy = policy
        self.dispatch_cycles = dispatch_cycles
        self.indirect_cycles = indirect_cycles
        #: block chaining (exit-stub patching); disable for the ablation
        #: that shows why the DBT baseline is only ~12%, not several x
        self.enable_chaining = enable_chaining

        self.cpu = Cpu()
        self.cpu.load_program(program, executable_text=False)
        if cache_size is not None:
            self.cache = CodeCache(self.cpu.memory, size=cache_size)
        else:
            self.cache = CodeCache(self.cpu.memory)
        self.dataflow = None
        if dataflow:
            from repro.checking.dataflow import (SHADOW_BASE, SHADOW_SIZE,
                                                 DataFlowDuplication)
            self.dataflow = DataFlowDuplication()
            self.cpu.memory.set_perms(SHADOW_BASE, max(SHADOW_SIZE, 1),
                                      PERM_RW)
        self.translator = BlockTranslator(
            self.cpu.memory, self.cache, self.technique, self.policy,
            optimize=optimize, dataflow=self.dataflow)

        #: guest block start -> TranslatedBlock
        self.blocks: dict[int, TranslatedBlock] = {}
        #: slot id -> ExitSlot
        self.slots: dict[int, ExitSlot] = {}
        #: guest instruction address -> cache address (all blocks)
        self.addr_map: dict[int, int] = {}
        self.smc_flushes = 0
        #: all cache flushes (SMC + cache-full evictions)
        self.flushes = 0
        self._entry_stub: int | None = None
        self._protected_pages: set[int] = set()
        self._dirty_pages: set[int] = set()
        #: consulted by the run loop when an INJECT_TRAP fires
        self.inject_redirect = None      # callable () -> guest addr
        #: (owner, resume) -> suffix TranslatedBlock
        self._suffixes: dict[tuple[int, int], TranslatedBlock] = {}
        self._static_cfg = None
        self._static_leaders: list[int] | None = None
        #: cache addresses of emitted CHECK_SIG branches; shared with
        #: the CPU so the observability branch counter can report
        #: signature checks executed (mutated in place on translate /
        #: flush, read only while a metrics registry is installed)
        self._check_sites: set[int] = set()
        self.cpu.obs_check_sites = self._check_sites
        self.cpu.set_external_write_watch(self._on_guest_write)

    @property
    def static_cfg(self):
        """Static CFG of the guest program (lazy; used to attribute
        mid-block landings to their owning block)."""
        if self._static_cfg is None:
            from repro.cfg import build_cfg
            self._static_cfg = build_cfg(self.program)
        return self._static_cfg

    # -- translation management ---------------------------------------------

    def translated(self, guest_start: int) -> TranslatedBlock | None:
        return self.blocks.get(guest_start)

    def ensure_translated(self, guest_start: int,
                          instrument_entry: bool = True) -> TranslatedBlock:
        """Translate the block at ``guest_start`` if needed."""
        tb = self.blocks.get(guest_start)
        registry = obs.get_registry()
        if tb is not None:
            if registry is not None:
                registry.counter("dbt_cache_lookup_total",
                                 help="translated-block lookups",
                                 result="hit").inc()
            return tb
        if registry is not None:
            registry.counter("dbt_cache_lookup_total",
                             help="translated-block lookups",
                             result="miss").inc()
        stop_before = self._next_block_start_after(guest_start)
        guest_block = self.translator.decode_guest_block(
            guest_start, stop_before)
        try:
            tb = self.translator.translate(
                guest_block, instrument_entry=instrument_entry)
        except CacheFullError:
            # Flush-and-retranslate: the classic full-cache eviction
            # policy.  Register state (PC', RTS, guest regs) survives,
            # so execution resumes seamlessly through the dispatcher.
            self._flush_translations()
            guest_block = self.translator.decode_guest_block(
                guest_start, self._next_block_start_after(guest_start))
            tb = self.translator.translate(
                guest_block, instrument_entry=instrument_entry)
        self.blocks[guest_start] = tb
        self.addr_map.update(tb.addr_map)
        self._check_sites.update(tb.check_addresses)
        for slot in tb.exit_slots:
            self.slots[slot.slot_id] = slot
        self._protect_guest_pages(guest_block)
        return tb

    def ensure_suffix(self, owner_start: int,
                      resume: int) -> TranslatedBlock:
        """Entry-less translation of block ``owner_start`` from ``resume``.

        Models control flow arriving in the *middle* of the owner block:
        no entry check runs, and the exit GEN_SIG behaves like the tail
        of the owner's own translation.
        """
        key = (owner_start, resume)
        tb = self._suffixes.get(key)
        if tb is not None:
            return tb
        guest_block = self.translator.decode_guest_block(
            resume, self._next_block_start_after(resume))
        tb = self.translator.translate(guest_block, instrument_entry=False,
                                       owner_start=owner_start)
        self._suffixes[key] = tb
        self._check_sites.update(tb.check_addresses)
        for slot in tb.exit_slots:
            self.slots[slot.slot_id] = slot
        return tb

    def _next_block_start_after(self, addr: int) -> int | None:
        """Next block boundary after ``addr``: an already-translated
        block, or a static leader (branch target / post-terminator
        site).  Splitting at static leaders keeps translated blocks
        congruent with the paper's basic-block model, so the branch
        -error categories mean the same thing in both worlds.
        """
        if self._static_leaders is None:
            from repro.cfg import find_leaders
            self._static_leaders = sorted(find_leaders(self.program))
        candidates = [start for start in self.blocks if start > addr]
        import bisect
        index = bisect.bisect_right(self._static_leaders, addr)
        if index < len(self._static_leaders):
            candidates.append(self._static_leaders[index])
        return min(candidates) if candidates else None

    def _protect_guest_pages(self, block: BasicBlock) -> None:
        """Write-protect the guest pages a translation covers (SMC)."""
        mem = self.cpu.memory
        for page in mem.pages_in(block.start, block.end - block.start):
            if page not in self._protected_pages:
                mem.perms[page] = PERM_R
                self._protected_pages.add(page)
                self._dirty_pages.discard(page)

    def _on_guest_write(self, addr: int, length: int) -> None:
        # Raw writes into the cache are the translator's own; ignore.
        pass

    def lookup_cache_addr(self, guest_addr: int) -> int | None:
        """Cache address for a guest instruction address, if translated."""
        return self.addr_map.get(guest_addr)

    def reverse_addr_map(self) -> dict[int, int]:
        """Cache address → guest instruction address, over every
        translated block and suffix.

        Only guest instructions that anchor a map entry appear;
        instrumentation words (signature updates, checks, exit stubs)
        have no guest counterpart and are absent.  Used by the
        forensics divergence analyzer to report guest-level addresses
        for events recorded under the DBT.
        """
        reverse: dict[int, int] = {}
        for tb in list(self.blocks.values()) + list(
                self._suffixes.values()):
            for guest_addr, cache_addr in tb.addr_map.items():
                reverse[cache_addr] = guest_addr
        return reverse

    # -- chaining -----------------------------------------------------------

    def _chain(self, slot: ExitSlot, target_cache: int) -> None:
        """Patch a direct exit trap into a jump to its translated target.

        For the taken direction of a conditional exit, the conditional
        branch itself is also re-pointed at the target, so the steady-
        state taken path costs exactly one branch — same as native.
        """
        if not self.enable_chaining:
            return
        offset_words = (target_cache - (slot.trap_addr + WORD_SIZE)
                        ) // WORD_SIZE
        if -0x8000 <= offset_words <= 0x7FFF:
            self.cache.write_instruction(
                slot.trap_addr, Instruction(op=Op.JMP, imm=offset_words))
            slot.patched = True
            obs.counter("dbt_chain_patches_total",
                        help="exit stubs patched into direct jumps").inc()
        if slot.cond_site is not None:
            branch_offset = (target_cache - (slot.cond_site + WORD_SIZE)
                             ) // WORD_SIZE
            if -0x8000 <= branch_offset <= 0x7FFF:
                word = self.cache.read_word(slot.cond_site)
                op = Op(word >> 24)
                rd = (word >> 19) & 0x1F
                self.cache.write_instruction(
                    slot.cond_site,
                    Instruction(op=op, rd=rd, imm=branch_offset))

    # -- self-modifying code ----------------------------------------------------

    def _unprotect_page(self, fault_addr: int) -> None:
        mem = self.cpu.memory
        page = fault_addr >> 12
        mem.perms[page] = PERM_RW
        self._protected_pages.discard(page)
        self._dirty_pages.add(page)

    def _flush_translations(self) -> None:
        """Drop every translation: the classic whole-cache flush.

        The paper's DBT "identifies and removes the outdated code that
        was previously translated"; flushing everything is correct
        under chaining without tracking every incoming edge.
        """
        self.cache.flush()
        self.translator.reset_slots()
        self.blocks.clear()
        self.slots.clear()
        self.addr_map.clear()
        self._check_sites.clear()
        self._suffixes.clear()
        self._static_cfg = None   # guest code may have changed
        self._static_leaders = None
        self._entry_stub = None
        self.flushes += 1
        self.cpu._dcache.clear()

    # -- the run loop -----------------------------------------------------------

    def _emit_entry_stub(self) -> int:
        """Prologue establishing the technique's signature invariant
        (and, with duplication on, the shadow register file)."""
        from repro.instrument.lowering import (assign_addresses,
                                               encode_snippet, lower_items)
        items = self.technique.prologue(self.program.entry)
        snippet = lower_items(items, compact=True,
                              resolver=lambda addr: addr)
        df_init: list[Instruction] = []
        if self.dataflow is not None:
            from repro.isa.registers import SDW
            from repro.checking.dataflow import SHADOW_BASE
            df_init = [
                Instruction(op=Op.MOVHI, rd=SDW,
                            imm=(SHADOW_BASE >> 16) & 0xFFFF),
                Instruction(op=Op.MOVLO, rd=SDW, imm=SHADOW_BASE & 0xFFFF),
                # shadow sp starts equal to the architectural sp
                Instruction(op=Op.ST, rd=15, rs=SDW, imm=15 * 4),
            ]
        base = self.cache.allocate(snippet.size_words + len(df_init) + 1)
        cursor = base
        for instr in df_init:
            self.cache.write_instruction(cursor, instr)
            cursor += WORD_SIZE
        end = assign_addresses(snippet, cursor)
        for addr, instr in encode_snippet(snippet, lambda a: a, 0):
            self.cache.write_instruction(addr, instr)
        entry_tb = self.ensure_translated(self.program.entry)
        offset = (entry_tb.cache_start - (end + WORD_SIZE)) // WORD_SIZE
        self.cache.write_instruction(
            end, Instruction(op=Op.JMP, imm=offset))
        return base

    def run(self, max_steps: int = 50_000_000,
            max_cycles: int | None = None) -> DbtResult:
        """Execute the guest program to completion under translation."""
        with obs.span("dbt.run", program=getattr(
                self.program, "source_name", "?")):
            return self._run(max_steps, max_cycles)

    def _run(self, max_steps: int,
             max_cycles: int | None) -> DbtResult:
        cpu = self.cpu
        result = DbtResult(stop=StopInfo(StopReason.HALTED, 0))
        if self._entry_stub is None:
            self._entry_stub = self._emit_entry_stub()
            cpu.pc = self._entry_stub

        steps_left = max_steps
        while True:
            if max_cycles is not None and cpu.cycles >= max_cycles:
                result.stop = StopInfo(StopReason.CYCLE_LIMIT, cpu.pc)
                break
            before = cpu.icount
            try:
                stop = cpu.run(max_steps=steps_left, max_cycles=max_cycles)
            except DecodeError:
                stop = StopInfo(StopReason.FAULT, cpu.pc,
                                fault=FaultKind.ILLEGAL_INSTRUCTION,
                                fault_addr=cpu.pc)
            steps_left -= cpu.icount - before
            if steps_left <= 0 and stop.reason is StopReason.STEP_LIMIT:
                result.stop = stop
                break

            if stop.reason is StopReason.TRAP:
                if stop.trap_no == ERROR_TRAP:
                    result.detected_error = True
                    result.detected_at = stop.pc
                    result.stop = stop
                    obs.counter("dbt_detections_total",
                                help="error traps serviced",
                                kind="signature").inc()
                    break
                if stop.trap_no == DF_ERROR_TRAP:
                    result.detected_dataflow = True
                    result.detected_at = stop.pc
                    result.stop = stop
                    obs.counter("dbt_detections_total",
                                help="error traps serviced",
                                kind="dataflow").inc()
                    break
                if stop.trap_no == INJECT_TRAP:
                    if self.inject_redirect is None:
                        result.stop = stop
                        break
                    guest_target = self.inject_redirect()
                    self._land_injected(guest_target)
                    continue
                handled = self._service_exit(stop)
                if not handled:
                    result.stop = stop
                    break
                continue

            if (stop.reason is StopReason.FAULT
                    and stop.fault is FaultKind.WRITE_PROTECT
                    and stop.fault_addr is not None
                    and self.program.contains_code(stop.fault_addr)):
                located = self._guest_instr_of_cache(stop.pc)
                if located is None:
                    result.stop = stop
                    break
                owner, store_addr = located
                # Self-modifying code protocol: make the page writable,
                # re-execute the faulting store *in the old cache code*
                # (so the new bytes are in memory), then flush every
                # translation and resume just past the store via an
                # entry-less suffix — no spurious entry check, and the
                # fresh translation sees the modified bytes.
                self._unprotect_page(stop.fault_addr)
                step_stop = cpu.run(max_steps=1)
                self._flush_translations()
                self.smc_flushes += 1
                if (step_stop.reason is not StopReason.STEP_LIMIT):
                    result.stop = step_stop
                    break
                resume_addr = store_addr + WORD_SIZE
                tb = self.ensure_suffix(owner, resume_addr)
                cpu.pc = tb.cache_start
                continue

            result.stop = stop
            break

        result.translated_blocks = len(self.blocks)
        result.cache_bytes = self.cache.used
        result.smc_flushes = self.smc_flushes
        return result

    def _service_exit(self, stop: StopInfo) -> bool:
        """Handle a block-exit trap; returns False for unknown traps."""
        slot = self.slots.get(stop.trap_no)
        if slot is None:
            return False
        cpu = self.cpu
        if slot.kind == "direct":
            cpu.cycles += self.dispatch_cycles
            try:
                tb = self.ensure_translated(slot.guest_target)
            except (DecodeError, CacheFullError):
                return False
            if self.slots.get(slot.slot_id) is slot:
                # (a cache-full flush may have invalidated the slot;
                # patching then would scribble over fresh translations)
                self._chain(slot, tb.cache_start)
            cpu.pc = tb.cache_start
            return True
        # Indirect: target guest address was captured in T1 by the exit
        # sequence.
        from repro.isa.registers import T1
        cpu.cycles += self.indirect_cycles
        guest_target = cpu.regs[T1]
        cpu = self.cpu
        if (guest_target & 3) or not self.program.contains_code(
                guest_target):
            # Not code: jump there physically and let the machine's
            # protection (NX / unaligned / unmapped) catch it — this is
            # the category-F hardware detection path.
            cpu.pc = guest_target
            return True
        tb = self.blocks.get(guest_target)
        if tb is None:
            try:
                tb = self.ensure_translated(guest_target)
            except (DecodeError, CacheFullError):
                cpu.pc = guest_target
                return True
        cpu.pc = tb.cache_start
        return True

    def _land_injected(self, guest_target: int) -> None:
        """Land an injected control-flow error at a guest address.

        Resolution order models corrupted control flow in translated
        code: an existing translated location (block head for
        beginning-of-block landings, mapped body instruction for
        middle landings — skipping the entry check), else an entry-less
        suffix translation attributed to the statically-owning block,
        else raw memory where hardware protection catches it.
        """
        cpu = self.cpu
        cached = self.addr_map.get(guest_target)
        if cached is not None:
            cpu.pc = cached
            return
        if (guest_target & 3) or not self.program.contains_code(
                guest_target):
            cpu.pc = guest_target
            return
        owner_block = self.static_cfg.block_containing(guest_target)
        try:
            if owner_block is None or owner_block.start == guest_target:
                tb = self.ensure_translated(guest_target)
            else:
                tb = self.ensure_suffix(owner_block.start, guest_target)
        except (DecodeError, CacheFullError):
            cpu.pc = guest_target
            return
        cpu.pc = tb.cache_start

    def _guest_instr_of_cache(self, cache_pc: int) -> tuple[int, int] | None:
        """Reverse map a cache pc to (owning guest block, guest instr)."""
        for tb in list(self.blocks.values()) + list(
                self._suffixes.values()):
            if tb.cache_start <= cache_pc < tb.cache_end:
                for guest_addr, cache_addr in tb.addr_map.items():
                    if cache_addr == cache_pc:
                        return tb.guest_start, guest_addr
                return tb.guest_start, tb.guest_start
        return None


def run_dbt(program: Program, technique: Technique | None = None,
            policy: Policy = Policy.ALLBB,
            max_steps: int = 50_000_000,
            max_cycles: int | None = None) -> tuple[Dbt, DbtResult]:
    """Convenience: run ``program`` under the DBT once."""
    dbt = Dbt(program, technique=technique, policy=policy)
    result = dbt.run(max_steps=max_steps, max_cycles=max_cycles)
    return dbt, result
