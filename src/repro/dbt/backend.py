"""The Backend: run-time optimization of instrumentation code.

The paper's Backend builds an IR from hot traces and optimizes before
regenerating code.  Here the profitable, measurable optimization is on
the instrumentation stream itself, applied at translation time:

* **update folding** — a ``LoadSig(T, delta)`` + ``lea3 rd, rs, T``
  pair becomes a single ``lea rd, rs, delta`` when the resolved delta
  fits the 14-bit immediate.  Signature deltas between nearby blocks
  almost always fit, so this removes roughly one instruction per
  signature update.
* **no-op elision** — ``lea rd, rd, 0`` updates vanish.

Both preserve the GEN_SIG algebra exactly (same value flows into PC'),
so coverage is unchanged — which the ablation bench verifies by
measuring overhead with the backend on and off.
"""

from __future__ import annotations

from typing import Callable

from repro.isa.encoding import IMM14_MAX, IMM14_MIN
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.checking.base import Item, LoadSig, RawIns


def optimize_items(items: list[Item],
                   resolver: Callable[[int], int]) -> list[Item]:
    """Fold LoadSig+lea3 pairs and drop no-op updates."""
    out: list[Item] = []
    index = 0
    while index < len(items):
        item = items[index]
        folded = None
        if (isinstance(item, LoadSig) and index + 1 < len(items)):
            nxt = items[index + 1]
            if (isinstance(nxt, RawIns)
                    and nxt.instr.op in (Op.LEA3, Op.LSUB)
                    and nxt.instr.rt == item.rd
                    and nxt.instr.rs != item.rd):
                value = item.expr.resolve(resolver)
                if nxt.instr.op is Op.LSUB:
                    value = -value
                signed = _to_signed32(value)
                if IMM14_MIN <= signed <= IMM14_MAX:
                    if signed == 0 and nxt.instr.rd == nxt.instr.rs:
                        folded = []          # pure no-op update
                    else:
                        folded = [RawIns(Instruction(
                            op=Op.LEA, rd=nxt.instr.rd, rs=nxt.instr.rs,
                            imm=signed))]
        if folded is not None:
            out.extend(folded)
            index += 2
        else:
            out.append(item)
            index += 1
    return out


def _to_signed32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value
