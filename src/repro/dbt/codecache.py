"""The translation code cache.

A region of machine memory, executable and managed by the DBT.  The
cache (and the translator's own structures) live on pages with the
execute bit set, while guest text pages are left non-executable — this
is the configuration of paper Section 5: "The code cache and the DBT
code are placed in memory pages with the execute disable bit set to
allow execution.  This allows us to detect branch-errors in category
F."
"""

from __future__ import annotations

from repro import obs
from repro.isa.encoding import encode
from repro.isa.instruction import WORD_SIZE, Instruction
from repro.machine.memory import PERM_RX, Memory

CACHE_BASE = 0x100000
CACHE_SIZE = 0xE0000


class CacheFullError(RuntimeError):
    """The code cache ran out of space (flush and retranslate)."""


class CodeCache:
    """Bump allocator over the executable translation region."""

    def __init__(self, memory: Memory, base: int = CACHE_BASE,
                 size: int = CACHE_SIZE):
        self.memory = memory
        self.base = base
        self.size = size
        self.cursor = base
        memory.set_perms(base, size, PERM_RX)

    @property
    def limit(self) -> int:
        return self.base + self.size

    @property
    def used(self) -> int:
        return self.cursor - self.base

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.cursor

    def allocate(self, words: int) -> int:
        """Reserve ``words`` instruction slots; returns the start address."""
        start = self.cursor
        end = start + words * WORD_SIZE
        if end > self.limit:
            obs.counter("dbt_cache_full_total",
                        help="allocations refused by a full cache").inc()
            raise CacheFullError(
                f"code cache exhausted ({self.used} bytes used)")
        self.cursor = end
        registry = obs.get_registry()
        if registry is not None:
            registry.counter(
                "dbt_cache_alloc_words_total",
                help="code-cache words allocated").inc(words)
            registry.gauge("dbt_cache_bytes_used",
                           help="code-cache high-water mark").set(
                self.used)
        return start

    def write_instruction(self, addr: int, instr: Instruction) -> None:
        """Emit one instruction into the cache (also used for patching)."""
        self.memory.write_raw(addr, encode(instr).to_bytes(4, "little"))

    def write_word(self, addr: int, word: int) -> None:
        self.memory.write_raw(addr, (word & 0xFFFFFFFF).to_bytes(
            4, "little"))

    def read_word(self, addr: int) -> int:
        return self.memory.read_word_raw(addr)

    def flush(self) -> None:
        """Drop everything (self-modifying-code big hammer)."""
        with obs.span("dbt.cache_flush", used=self.used):
            self.cursor = self.base
        obs.counter("dbt_cache_flushes_total",
                    help="whole-cache evictions (SMC + cache-full)").inc()
