"""The analytic branch-error probability model (paper Section 2,
Figures 2 and 3).

"The error model assumes a soft-error that results in 1 bit change in
the address offset of the branch instruction or in the flags that
determine the conditional branches direction.  We consider that each
bit in the address offset and in the flags has the same error
probability.  [...] we have to take into account the execution
frequency of each instruction.  The taken and not taken ratio is also
important."

Rather than re-executing the program once per candidate fault, the
model runs the program once under the branch profiler and then
enumerates every single-bit fault analytically:

* the category of an offset-bit fault depends only on the static branch
  and the direction taken — computed once per (branch, direction,
  bit) and weighted by the direction's execution count,
* the category of a flag-bit fault depends on the concrete FLAGS value
  at the execution — the profiler's (flags, taken) histogram has at
  most 32 entries per branch.

Indirect branches are excluded, exactly as the paper excludes them
("the execution frequency of indirect branches represents less than 5%
of the total branches execution frequency").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.encoding import BRANCH_OFFSET_BITS
from repro.isa.flags import NUM_FLAG_BITS
from repro.isa.program import Program
from repro.cfg import build_cfg
from repro.machine import BranchProfiler, run_native
from repro.faults.classify import (Category, SDC_CATEGORIES,
                                   classify_flag_fault,
                                   classify_offset_fault)

#: (taken?, "addr" | "flags") column keys, in the paper's order.
COLUMNS = (
    (True, "addr"), (True, "flags"), (False, "addr"), (False, "flags"),
)


@dataclass
class ErrorModelResult:
    """Fault-mass distribution over categories and columns.

    ``mass[(category, taken, kind)]`` is the number of (dynamic branch
    execution, fault bit) pairs falling in that cell; ``total`` is the
    whole universe, so cell/total is the paper's probability.
    """

    program_name: str
    mass: dict[tuple[Category, bool, str], float] = field(
        default_factory=dict)
    total: float = 0.0
    dynamic_branches: int = 0

    def add(self, category: Category, taken: bool, kind: str,
            weight: float) -> None:
        key = (category, taken, kind)
        self.mass[key] = self.mass.get(key, 0.0) + weight
        self.total += weight

    def probability(self, category: Category, taken: bool | None = None,
                    kind: str | None = None) -> float:
        """Probability of a cell, a row (taken/kind None), or a
        category."""
        if self.total == 0:
            return 0.0
        selected = 0.0
        for (cat, tk, kd), weight in self.mass.items():
            if cat is not category:
                continue
            if taken is not None and tk != taken:
                continue
            if kind is not None and kd != kind:
                continue
            selected += weight
        return selected / self.total

    def category_row(self, category: Category) -> dict[str, float]:
        """The four Figure-2 cells plus the row total, as
        probabilities."""
        row = {}
        for taken, kind in COLUMNS:
            label = f"{'taken' if taken else 'not_taken'}_{kind}"
            row[label] = self.probability(category, taken, kind)
        row["total"] = self.probability(category)
        return row

    def sdc_distribution(self) -> dict[Category, float]:
        """Figure 3: probabilities over categories A..E, renormalized."""
        raw = {cat: self.probability(cat) for cat in SDC_CATEGORIES}
        total = sum(raw.values())
        if total == 0:
            return {cat: 0.0 for cat in SDC_CATEGORIES}
        return {cat: value / total for cat, value in raw.items()}

    def merge(self, other: "ErrorModelResult") -> None:
        """Accumulate another program's mass (suite aggregation)."""
        for key, weight in other.mass.items():
            self.mass[key] = self.mass.get(key, 0.0) + weight
        self.total += other.total
        self.dynamic_branches += other.dynamic_branches


def compute_error_model(program: Program,
                        max_steps: int = 50_000_000,
                        profiler: BranchProfiler | None = None
                        ) -> ErrorModelResult:
    """Run ``program`` natively under the profiler and evaluate the
    single-bit branch-error model."""
    if profiler is None:
        profiler = BranchProfiler()
        _, stop = run_native(program, max_steps=max_steps,
                             profiler=profiler)
        if stop.reason.value != "halted":
            raise RuntimeError(
                f"profiling run did not finish: {stop}")
    cfg = build_cfg(program)
    result = ErrorModelResult(program_name=program.source_name)

    for stats in profiler.branches.values():
        pc, instr = stats.pc, stats.instr
        result.dynamic_branches += stats.executions
        # Address-offset faults: category fixed per (direction, bit).
        for taken, count in ((True, stats.taken),
                             (False, stats.not_taken)):
            if count == 0:
                continue
            for bit in range(BRANCH_OFFSET_BITS):
                category = classify_offset_fault(cfg, pc, instr, bit,
                                                 taken)
                result.add(category, taken, "addr", count)
        # Flag faults: depend on the concrete FLAGS at each execution.
        if instr.meta.cond is not None:
            for (flags, taken), count in stats.flags_hist.items():
                for bit in range(NUM_FLAG_BITS):
                    category = classify_flag_fault(instr, flags, bit)
                    result.add(category, taken, "flags", count)
    return result


def compute_suite_error_model(programs: list[Program],
                              name: str = "suite") -> ErrorModelResult:
    """Aggregate the model across a benchmark suite (the paper reports
    SPEC-Int and SPEC-Fp aggregates)."""
    merged = ErrorModelResult(program_name=name)
    for program in programs:
        merged.merge(compute_error_model(program))
    return merged
