"""Transient-fault injection.

A fault is specified at *guest level* — "at the k-th execution of the
branch at guest address P, this single-bit event happens" — and applied
to whichever execution pipeline is under test:

* native run (uninstrumented ground truth),
* statically instrumented binary (sites mapped through the rewriter's
  address maps),
* DBT run (sites resolved to the translated transfer instruction;
  landings resolved through the translation maps, so a "jump into the
  middle of a block" really does skip the entry check code).

Additionally the DBT pipeline supports *cache-level* faults: flip an
offset bit of any branch word in the code cache — including the
branches the instrumentation itself inserted.  This is the experiment
behind the paper's Figure 14 safety discussion: the Jcc-style update
branches are unprotected under ECF/EdgCF but covered by RCF's regions.

All faults are transient: they affect exactly one execution of the
site, mirroring the paper's single-error model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.encoding import decode
from repro.isa.flags import evaluate_cond
from repro.isa.instruction import WORD_SIZE, Instruction
from repro.isa.opcodes import Kind, Op
from repro.isa.program import Program
from repro.machine.cpu import Cpu
from repro.faults.classify import corrupted_target


# -- fault event types -------------------------------------------------------


@dataclass(frozen=True)
class OffsetBitFault:
    """Flip bit ``bit`` (0..15) of the branch's address offset."""

    bit: int


@dataclass(frozen=True)
class FlagBitFault:
    """Flip FLAGS bit ``bit`` as the branch reads the flags."""

    bit: int


@dataclass(frozen=True)
class DirectionFault:
    """Force the branch direction (the distilled category-A event).

    ``taken=None`` inverts whatever direction the branch would
    naturally take — guaranteeing a genuine mistaken-branch error.
    """

    taken: bool | None = None


@dataclass(frozen=True)
class RedirectFault:
    """Force the transfer to land at guest address ``target`` (the
    distilled category-B/C/D/E/F event for campaign targeting)."""

    target: int


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: guest branch site + dynamic occurrence."""

    branch_pc: int        #: guest address of the direct branch
    occurrence: int       #: 1-based dynamic execution index of the site
    fault: object         #: one of the fault event types above
    #: a stuck-at error instead of the default one-shot transient: under
    #: checkpoint/rollback recovery (repro.recovery) the injector is
    #: re-armed after every rollback, so the fault strikes again on
    #: re-execution.  Transient faults (the paper's single-error model)
    #: never re-fire.
    persistent: bool = False
    #: thread-targeted injection (multithreaded machine): the site only
    #: counts (and the fault only fires) while this guest tid is
    #: running.  None — the default — counts every execution, which is
    #: also the single-threaded behaviour (tid 0 is the only thread).
    thread: int | None = None

    def describe(self) -> str:
        stuck = "!persistent" if self.persistent else ""
        tied = f"@t{self.thread}" if self.thread is not None else ""
        return (f"{type(self.fault).__name__}@{self.branch_pc:#x}"
                f"#{self.occurrence}{stuck}{tied}")

    def __repr__(self) -> str:
        # Matches the generated dataclass repr byte-for-byte for the
        # default transient case: journal spec digests predating the
        # ``persistent`` and ``thread`` fields must keep resolving.
        base = (f"FaultSpec(branch_pc={self.branch_pc!r}, "
                f"occurrence={self.occurrence!r}, fault={self.fault!r}")
        if self.persistent:
            base += f", persistent={self.persistent!r}"
        if self.thread is not None:
            base += f", thread={self.thread!r}"
        return base + ")"


_NOP = Instruction(op=Op.NOP)


class _HookBase:
    """Shared occurrence counting for pre-branch hooks."""

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.count = 0
        self.fired = False
        #: cpu.icount / cpu.cycles at the moment the fault applied
        #: (for detection latency in instructions and cycles)
        self.fired_icount: int | None = None
        self.fired_cycles: int | None = None
        #: guest tid that was running when the fault applied
        self.fired_tid: int | None = None
        self.armed_site: int | None = None

    def _thread_ok(self, cpu: Cpu) -> bool:
        """Thread-targeted specs only count the victim tid's visits."""
        thread = self.spec.thread
        return (thread is None
                or getattr(cpu, "current_tid", 0) == thread)

    def _hit(self, pc: int) -> bool:
        if self.fired or pc != self.armed_site:
            return False
        self.count += 1
        return self.count == self.spec.occurrence

    def _retire(self, cpu: Cpu) -> None:
        """Uninstall a fired hook: it is a permanent no-op from here on,
        and an empty hook slot lets compiled backends run branches at
        full speed.  Only when installed directly — the flight recorder
        chains hooks, and clearing its slot would silence the trace."""
        if cpu.pre_branch_hook == self.hook:
            cpu.pre_branch_hook = None


class NativeInjector(_HookBase):
    """Injects into a native (or statically rewritten) run.

    ``site_map`` translates the guest branch address to the run image's
    address (identity for native); ``landing_map`` translates guest
    landing addresses for RedirectFaults (identity for native).
    ``noncode_target`` is where category-F landings are sent in a
    rewritten image whose layout differs from the original.
    """

    def __init__(self, spec: FaultSpec, program: Program,
                 site_map=None, landing_map=None,
                 noncode_target: int | None = None):
        super().__init__(spec)
        self.program = program
        self.landing_map = landing_map
        self.noncode_target = noncode_target
        site = spec.branch_pc if site_map is None else site_map(
            spec.branch_pc)
        self.armed_site = site

    def install(self, cpu: Cpu) -> None:
        cpu.pre_branch_hook = self.hook

    @staticmethod
    def _natural_direction(cpu: Cpu, instr: Instruction) -> bool:
        meta = instr.meta
        if meta.cond is not None:
            return evaluate_cond(meta.cond, cpu.flags)
        if instr.op is Op.JRZ:
            return cpu.regs[instr.rd] == 0
        if instr.op is Op.JRNZ:
            return cpu.regs[instr.rd] != 0
        return True

    def hook(self, cpu: Cpu, pc: int, instr: Instruction
             ) -> Instruction | None:
        if self.fired:
            self._retire(cpu)
            return None
        if not self._thread_ok(cpu) or not self._hit(pc):
            return None
        self.fired = True
        self.fired_icount = cpu.icount
        self.fired_cycles = cpu.cycles
        self.fired_tid = getattr(cpu, "current_tid", 0)
        fault = self.spec.fault
        meta = instr.meta
        if isinstance(fault, OffsetBitFault):
            # The corrupted word is what the frontend fetches: just hand
            # back the decoded corrupted instruction.
            if not meta.is_direct_branch:
                return None
            new_imm = ((instr.imm & 0xFFFF) ^ (1 << fault.bit))
            if new_imm & 0x8000:
                new_imm -= 0x10000
            return Instruction(op=instr.op, rd=instr.rd, rs=instr.rs,
                               rt=instr.rt, imm=new_imm)
        if isinstance(fault, FlagBitFault):
            cond = meta.cond
            if cond is None:
                return None
            before = evaluate_cond(cond, cpu.flags)
            after = evaluate_cond(cond, cpu.flags ^ (1 << fault.bit))
            if before == after:
                return None
            return (Instruction(op=Op.JMP, imm=instr.imm) if after
                    else _NOP)
        if isinstance(fault, DirectionFault):
            if not meta.is_direct_branch:
                return None
            taken = fault.taken
            if taken is None:
                taken = not self._natural_direction(cpu, instr)
            return (Instruction(op=Op.JMP, imm=instr.imm)
                    if taken else _NOP)
        if isinstance(fault, RedirectFault):
            landing = fault.target
            if self.landing_map is not None:
                mapped = self.landing_map(landing)
                if mapped is None:
                    landing = (self.noncode_target
                               if self.noncode_target is not None
                               else landing)
                else:
                    landing = mapped
            if landing % 4 == 0:
                offset = (landing - (pc + WORD_SIZE)) // WORD_SIZE
                if -0x8000 <= offset <= 0x7FFF:
                    return Instruction(op=Op.JMP, imm=offset)
            # Out of jump range or unaligned: transfer through a
            # host-only scratch register (guests never touch r16+).
            from repro.isa.registers import T2
            cpu.regs[T2] = landing & 0xFFFFFFFF
            return Instruction(op=Op.JMPR, rd=T2)
        raise TypeError(f"unknown fault {fault!r}")


class DbtInjector(_HookBase):
    """Injects into a DBT run at guest level.

    The hook arms itself lazily: the site is the translated transfer
    instruction of the branch's block, which only exists once the block
    has been translated.
    """

    def __init__(self, spec: FaultSpec, dbt):
        super().__init__(spec)
        self.dbt = dbt
        self._redirect_target: int | None = None
        #: every cache site standing in for the guest branch.  One
        #: guest branch can be translated several times (overlapping
        #: blocks, suffix translations), so occurrence counting spans
        #: all of them.
        self._sites: set[int] = set()
        self._known_translations = -1
        dbt.inject_redirect = self._redirect

    def install(self) -> None:
        self.dbt.cpu.pre_branch_hook = self.hook

    def _redirect(self) -> int:
        assert self._redirect_target is not None
        return self._redirect_target

    def _refresh_sites(self) -> None:
        count = len(self.dbt.blocks) + len(self.dbt._suffixes)
        if count == self._known_translations:
            return
        self._known_translations = count
        for tb in list(self.dbt.blocks.values()) + list(
                self.dbt._suffixes.values()):
            if (tb.guest_terminator == self.spec.branch_pc
                    and tb.terminator_site is not None):
                self._sites.add(tb.terminator_site)

    def _hit(self, pc: int) -> bool:
        if self.fired or pc not in self._sites:
            return False
        self.count += 1
        return self.count == self.spec.occurrence

    def hook(self, cpu: Cpu, pc: int, instr: Instruction
             ) -> Instruction | None:
        if self.fired:
            self._retire(cpu)
            return None
        self._refresh_sites()
        if not self._thread_ok(cpu) or not self._hit(pc):
            return None
        fault = self.spec.fault
        guest_instr = self.dbt.program.instruction_at(self.spec.branch_pc)
        will_take, can_fall = self._direction(cpu, instr)
        self.fired_icount = cpu.icount
        self.fired_cycles = cpu.cycles
        self.fired_tid = getattr(cpu, "current_tid", 0)

        if isinstance(fault, OffsetBitFault):
            self.fired = True
            if not will_take:
                return None   # corrupted target unused: harmless
            landing = corrupted_target(self.spec.branch_pc, guest_instr,
                                       fault.bit)
            return self._fire_redirect(landing)
        if isinstance(fault, FlagBitFault):
            cond = guest_instr.meta.cond
            if cond is None:
                self.fired = True
                return None
            before = evaluate_cond(cond, cpu.flags)
            after = evaluate_cond(cond, cpu.flags ^ (1 << fault.bit))
            self.fired = True
            if before == after:
                return None
            return self._force_direction(instr, after)
        if isinstance(fault, DirectionFault):
            self.fired = True
            taken = fault.taken
            if taken is None:
                taken = not will_take
            return self._force_direction(instr, taken)
        if isinstance(fault, RedirectFault):
            self.fired = True
            return self._fire_redirect(fault.target)
        raise TypeError(f"unknown fault {fault!r}")

    def _direction(self, cpu: Cpu, site_instr: Instruction
                   ) -> tuple[bool, bool]:
        """(will this execution transfer?, is there a fallthrough?)"""
        meta = site_instr.meta
        if meta.kind is Kind.BRANCH_COND:
            return evaluate_cond(meta.cond, cpu.flags), True
        if site_instr.op is Op.JRZ:
            return cpu.regs[site_instr.rd] == 0, True
        if site_instr.op is Op.JRNZ:
            return cpu.regs[site_instr.rd] != 0, True
        # trap stubs / patched jmps: unconditional transfer
        return True, False

    def _force_direction(self, site_instr: Instruction,
                         taken: bool) -> Instruction:
        if taken:
            return Instruction(op=Op.JMP, imm=site_instr.imm)
        return _NOP

    def _fire_redirect(self, guest_landing: int) -> Instruction:
        self._redirect_target = guest_landing
        from repro.dbt.translator import INJECT_TRAP
        return Instruction(op=Op.TRAP, imm=INJECT_TRAP)


@dataclass(frozen=True)
class RegisterFaultSpec:
    """Data fault: flip bit ``bit`` of guest register ``reg`` just
    before the ``icount``-th dynamic instruction executes.

    This is the fault class the *data-flow* checking extension (SWIFT-
    style duplication) exists to catch; control-flow signatures alone
    are blind to it unless the corrupted value happens to change a
    branch.
    """

    icount: int
    reg: int
    bit: int

    def describe(self) -> str:
        return f"reg r{self.reg}b{self.bit}@i{self.icount}"

    def install(self, cpu: Cpu) -> None:
        def strike(target_cpu: Cpu) -> None:
            target_cpu.regs[self.reg] ^= (1 << self.bit)
            target_cpu.regs[self.reg] &= 0xFFFFFFFF
        cpu.scheduled_fault = (self.icount, strike)


@dataclass(frozen=True)
class SchedFaultSpec:
    """Scheduler-state fault, applied at an exact context-switch
    ordinal of the multithreaded machine (repro.threads).

    ``kind="ctx-bit"`` flips bit ``bit`` of register ``reg`` in thread
    ``tid``'s context — the *saved* register file when the victim is
    switched out, the live CPU register when it is the thread being
    switched in.  Striking a saved signature register (r16+) is the
    cross-context experiment: with ``sig_swap=True`` the corruption is
    restored and detected at the victim's next check; with
    ``sig_swap=False`` the switch-in resync silently repairs it.

    ``kind="queue-rotate"`` perturbs the ready queue instead — a
    control-flow error in the scheduler itself.  Under a deterministic
    scheduler this changes the schedule trace but must never corrupt
    guest output (threads are preemption-safe by construction), so its
    expected outcome is BENIGN with a divergent trace digest.
    """

    switch: int            #: 1-based context-switch ordinal
    kind: str = "ctx-bit"  #: "ctx-bit" | "queue-rotate"
    tid: int = 0           #: victim thread (ctx-bit only)
    reg: int = 0
    bit: int = 0

    def describe(self) -> str:
        if self.kind == "queue-rotate":
            return f"sched rotate@sw{self.switch}"
        return (f"sched ctx t{self.tid} r{self.reg}b{self.bit}"
                f"@sw{self.switch}")


class SchedInjector:
    """Applies one :class:`SchedFaultSpec` via the machine's
    ``sched_fault`` switch hook.

    Mirrors the ``_HookBase`` runtime surface (``count``/``fired``/
    ``fired_icount``/``fired_cycles``) so detection-latency accounting
    and the recovery manager's occurrence snapshotting work unchanged.
    """

    def __init__(self, spec: SchedFaultSpec):
        self.spec = spec
        self.count = 0
        self.fired = False
        self.fired_icount: int | None = None
        self.fired_cycles: int | None = None
        self.fired_tid: int | None = None

    def on_switch(self, machine) -> None:
        if self.fired or machine.switches != self.spec.switch:
            return
        self.fired = True
        cpu = machine.cpu
        self.fired_icount = cpu.icount
        self.fired_cycles = cpu.cycles
        self.fired_tid = machine.current
        spec = self.spec
        if spec.kind == "queue-rotate":
            machine.scheduler.rotate()
            return
        mask = 1 << spec.bit
        if spec.tid == machine.current:
            # The victim is the thread being switched in: its registers
            # were just restored into the CPU, so strike them live.
            cpu.regs[spec.reg] = (cpu.regs[spec.reg] ^ mask) & 0xFFFFFFFF
            return
        ctx = machine.contexts.get(spec.tid)
        if ctx is not None:
            ctx.regs[spec.reg] = (ctx.regs[spec.reg] ^ mask) & 0xFFFFFFFF


@dataclass(frozen=True)
class CacheFaultSpec:
    """Cache-level fault: flip an offset bit of the branch word at
    ``cache_addr`` for its ``occurrence``-th execution.

    ``force_taken`` models the paper's "branch to a random address"
    event at an inserted branch: the corrupted branch transfers
    unconditionally to its (flipped) target.  Without it, a fault on a
    normally-not-taken branch (e.g. a signature check that passes) is
    trivially harmless.
    """

    cache_addr: int
    occurrence: int
    bit: int
    force_taken: bool = False

    def describe(self) -> str:
        forced = "!" if self.force_taken else ""
        return (f"cache@{self.cache_addr:#x}#{self.occurrence}"
                f"b{self.bit}{forced}")


class CacheLevelInjector:
    """Flips an encoded offset bit of a branch in the code cache.

    This is the honest "soft error strikes the translated code" model:
    the corrupted branch goes wherever the flipped offset points —
    possibly into instrumentation code, another block's middle, or
    unmapped cache territory (hardware-detected).
    """

    def __init__(self, spec: CacheFaultSpec, dbt):
        self.spec = spec
        self.dbt = dbt
        self.count = 0
        self.fired = False
        #: cpu.icount / cpu.cycles at the moment the fault applied
        #: (for detection latency in instructions and cycles)
        self.fired_icount: int | None = None
        self.fired_cycles: int | None = None

    def install(self) -> None:
        self.dbt.cpu.pre_branch_hook = self.hook

    def hook(self, cpu: Cpu, pc: int, instr: Instruction
             ) -> Instruction | None:
        if self.fired:
            # Same retirement rule as _HookBase._retire: a fired hook
            # is a permanent no-op, so free the slot when it is ours.
            if cpu.pre_branch_hook == self.hook:
                cpu.pre_branch_hook = None
            return None
        if pc != self.spec.cache_addr:
            return None
        self.count += 1
        if self.count != self.spec.occurrence:
            return None
        self.fired = True
        self.fired_icount = cpu.icount
        self.fired_cycles = cpu.cycles
        word = self.dbt.cpu.memory.read_word_raw(pc)
        corrupted = decode(word ^ (1 << self.spec.bit))
        if corrupted.op is Op.TRAP:
            # Unpatched exit stub: not a real branch; skip.
            return None
        if self.spec.force_taken and corrupted.meta.is_direct_branch:
            return Instruction(op=Op.JMP, imm=corrupted.imm)
        return corrupted


def enumerate_cache_branch_sites(dbt) -> list[tuple[int, Instruction]]:
    """All direct-branch instructions in the translated code, including
    those inserted by the checking technique (check branches, mirror
    update branches, chained jumps)."""
    sites: list[tuple[int, Instruction]] = []
    blocks = list(dbt.blocks.values()) + list(dbt._suffixes.values())
    for tb in blocks:
        for addr in range(tb.cache_start, tb.cache_end, WORD_SIZE):
            word = dbt.cpu.memory.read_word_raw(addr)
            try:
                instr = decode(word)
            except Exception:
                continue
            if instr.meta.is_direct_branch:
                sites.append((addr, instr))
    return sites
