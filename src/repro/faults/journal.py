"""Append-only campaign journal: checkpoint every chunk, resume later.

A campaign killed mid-flight (machine reboot, OOM-kill, ctrl-C) should
not discard its completed work.  The journal records each finished
chunk as one JSON line::

    {"v": 1,
     "program": "<sha256 of the loadable image>",
     "config":  ["dbt", "rcf", "allbb", "jcc", false],
     "chunk":   3,
     "specs":   ["1f0c…", …],      # per-spec content digests
     "records": [{…}, …]}          # serialized RunRecords

Entries are self-validating: a chunk is only replayed when the program
digest, the config key, *and* every spec digest match the campaign
being resumed — so re-using one journal file across programs, configs,
or edited fault lists can never smuggle stale records in.  Each append
is flushed and fsynced, and a torn final line (the process died mid-
write) is truncated away with a warning on resume — even when the tear
falls inside a multi-byte UTF-8 sequence — so the journal is safe
against any kill point.  Replaying is byte-exact: a resumed campaign's
record list — and therefore every tally derived from it — is identical
to the uninterrupted run's.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os

from repro.faults.campaign import Outcome, RunRecord

log = logging.getLogger(__name__)

JOURNAL_VERSION = 1


def spec_digest(spec) -> str:
    """Content digest of one fault spec (reprs are deterministic)."""
    return hashlib.sha256(repr(spec).encode()).hexdigest()[:16]


def inject_header(technique: str | None, policy: str, backend: str,
                  recover: bool = False, threads: bool = False,
                  quantum: int = 0, sched_policy: str = "rr",
                  sched_seed: int = 0, sig_swap: bool = True) -> dict:
    """The ``repro inject`` journal header.

    Shared by the CLI and the campaign service so a service inject
    job's journal is byte-identical to the CLI's for the same campaign.
    The scheduler block only appears on multithreaded campaigns, so
    pre-MT journals keep their exact header shape; ``--resume`` refuses
    a journal whose scheduler parameters disagree with the command line
    (the schedule — and therefore every record — would not replay).
    """
    header = {"tool": "repro-inject", "technique": technique,
              "policy": policy, "backend": backend, "recover": recover}
    if threads:
        header["threads"] = True
        header["quantum"] = quantum
        header["sched_policy"] = sched_policy
        header["sched_seed"] = sched_seed
        header["sig_swap"] = sig_swap
    return header


def coverage_header(seed: int, per_category: int, backend: str) -> dict:
    """The ``repro coverage`` journal header (CLI/service shared)."""
    return {"tool": "repro-coverage", "seed": seed,
            "per_category": per_category, "backend": backend}


def record_to_json(record: RunRecord) -> dict:
    data = {"outcome": record.outcome.value,
            "stop": record.stop_reason,
            "out": [list(part) for part in record.outputs],
            "cycles": record.cycles,
            "icount": record.icount,
            "latency": record.detection_latency,
            "latency_cycles": record.detection_latency_cycles,
            "error": record.error}
    if record.attempts or record.rollback_distance_icount is not None:
        # Recovery fields only appear on runs recovery touched, so
        # journals from recovery-off campaigns stay byte-identical to
        # the pre-recovery format.
        data["attempts"] = record.attempts
        data["rollback"] = record.rollback_distance_icount
        data["reexec"] = record.reexec_cycles
    return data


def record_from_json(data: dict) -> RunRecord:
    return RunRecord(outcome=Outcome(data["outcome"]),
                     stop_reason=data["stop"],
                     outputs=tuple(tuple(part) for part in data["out"]),
                     cycles=data["cycles"],
                     icount=data["icount"],
                     detection_latency=data.get("latency"),
                     detection_latency_cycles=data.get("latency_cycles"),
                     error=data.get("error"),
                     attempts=data.get("attempts", 0),
                     rollback_distance_icount=data.get("rollback"),
                     reexec_cycles=data.get("reexec"))


class CampaignJournal:
    """One JSONL journal file, possibly shared by several campaigns
    (entries carry their own program/config identity)."""

    def __init__(self, path):
        self.path = str(path)

    def append_header(self, meta: dict) -> None:
        """Durably record run metadata (effective seed, CLI knobs, ...).

        Header lines carry no ``program``/``config`` identity, so
        :meth:`replay` skips them naturally; they exist for humans and
        tooling to reconstruct the exact command that produced the file.
        """
        entry = {"v": JOURNAL_VERSION, "header": dict(meta)}
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # -- reading -------------------------------------------------------------

    def _scan(self):
        """Parse the file into entries, spotting a torn trailing line.

        Reads in *binary* so a write torn mid-way through a multi-byte
        UTF-8 sequence cannot raise out of the resume path.  Returns
        ``(entries, good_size)`` where ``good_size`` is the byte offset
        just past the last intact line — equal to the file size when
        the tail is clean, smaller when the final line is torn (not
        newline-terminated, undecodable, or not valid JSON).
        """
        entries: list = []
        if not os.path.exists(self.path):
            return entries, 0
        with open(self.path, "rb") as handle:
            raw = handle.read()
        offset = 0
        good_size = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            terminated = newline != -1
            end = newline + 1 if terminated else len(raw)
            line = raw[offset:newline if terminated else end].strip()
            offset = end
            if not line:
                good_size = end
                continue
            try:
                entry = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                if terminated:
                    # Mid-file corruption: skip the line but keep the
                    # rest of the journal (later appends are intact).
                    log.warning("journal %s: skipping a corrupt entry "
                                "at byte %d", self.path, good_size)
                    good_size = end
                    continue
                # Torn tail: the process died mid-append.
                return entries, good_size
            if not isinstance(entry, dict):
                log.warning("journal %s: skipping a non-object entry "
                            "at byte %d", self.path, good_size)
                good_size = end
                continue
            good_size = end
            entries.append(entry)
        return entries, good_size

    def _truncate_torn_tail(self, good_size: int) -> None:
        """Drop a partially-written final line left by a crash.

        Truncating (rather than merely skipping on read) keeps later
        appends from gluing a new entry onto the torn fragment, which
        would corrupt an otherwise-valid line.
        """
        actual = os.path.getsize(self.path)
        if actual <= good_size:
            return
        log.warning("journal %s: truncating a partially-written final "
                    "line (%d byte(s)) left by an interrupted campaign",
                    self.path, actual - good_size)
        with open(self.path, "r+b") as handle:
            handle.truncate(good_size)

    def read_header(self) -> dict | None:
        """First header entry in the file, or None."""
        entries, _ = self._scan()
        for entry in entries:
            if entry.get("v") == JOURNAL_VERSION and "header" in entry:
                return entry["header"]
        return None

    def append_chunk(self, program_digest: str, config_key: tuple,
                     chunk_index: int, spec_digests: list[str],
                     records: list[RunRecord]) -> None:
        """Durably record one completed chunk."""
        entry = {"v": JOURNAL_VERSION,
                 "program": program_digest,
                 "config": list(config_key),
                 "chunk": chunk_index,
                 "specs": list(spec_digests),
                 "records": [record_to_json(r) for r in records]}
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def replay(self, program_digest: str, config_key: tuple) -> dict:
        """Completed chunks for one campaign identity.

        Returns ``{(chunk_index, (spec_digest, …)): [RunRecord, …]}`` —
        the caller looks up its own (index, digests) pair, so a journal
        entry whose spec set no longer matches is simply not found.

        A torn final line (the writing process died mid-append) is
        truncated away with a warning so the resumed campaign appends
        to a clean file; it can never raise out of the resume path.
        """
        completed: dict = {}
        entries, good_size = self._scan()
        if os.path.exists(self.path):
            self._truncate_torn_tail(good_size)
        wanted = list(config_key)
        for entry in entries:
            if (entry.get("v") != JOURNAL_VERSION
                    or entry.get("program") != program_digest
                    or entry.get("config") != wanted):
                continue
            try:
                records = [record_from_json(r)
                           for r in entry["records"]]
            except (KeyError, TypeError, ValueError):
                continue
            completed[(entry["chunk"], tuple(entry["specs"]))] = \
                records
        return completed
