"""Append-only campaign journal: checkpoint every chunk, resume later.

A campaign killed mid-flight (machine reboot, OOM-kill, ctrl-C) should
not discard its completed work.  The journal records each finished
chunk as one JSON line::

    {"v": 1,
     "program": "<sha256 of the loadable image>",
     "config":  ["dbt", "rcf", "allbb", "jcc", false],
     "chunk":   3,
     "specs":   ["1f0c…", …],      # per-spec content digests
     "records": [{…}, …]}          # serialized RunRecords

Entries are self-validating: a chunk is only replayed when the program
digest, the config key, *and* every spec digest match the campaign
being resumed — so re-using one journal file across programs, configs,
or edited fault lists can never smuggle stale records in.  Each append
is flushed and fsynced, and a torn final line (the process died mid-
write) is skipped on replay, so the journal is safe against any kill
point.  Replaying is byte-exact: a resumed campaign's record list — and
therefore every tally derived from it — is identical to the
uninterrupted run's.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.faults.campaign import Outcome, RunRecord

JOURNAL_VERSION = 1


def spec_digest(spec) -> str:
    """Content digest of one fault spec (reprs are deterministic)."""
    return hashlib.sha256(repr(spec).encode()).hexdigest()[:16]


def record_to_json(record: RunRecord) -> dict:
    data = {"outcome": record.outcome.value,
            "stop": record.stop_reason,
            "out": [list(part) for part in record.outputs],
            "cycles": record.cycles,
            "icount": record.icount,
            "latency": record.detection_latency,
            "latency_cycles": record.detection_latency_cycles,
            "error": record.error}
    if record.attempts or record.rollback_distance_icount is not None:
        # Recovery fields only appear on runs recovery touched, so
        # journals from recovery-off campaigns stay byte-identical to
        # the pre-recovery format.
        data["attempts"] = record.attempts
        data["rollback"] = record.rollback_distance_icount
        data["reexec"] = record.reexec_cycles
    return data


def record_from_json(data: dict) -> RunRecord:
    return RunRecord(outcome=Outcome(data["outcome"]),
                     stop_reason=data["stop"],
                     outputs=tuple(tuple(part) for part in data["out"]),
                     cycles=data["cycles"],
                     icount=data["icount"],
                     detection_latency=data.get("latency"),
                     detection_latency_cycles=data.get("latency_cycles"),
                     error=data.get("error"),
                     attempts=data.get("attempts", 0),
                     rollback_distance_icount=data.get("rollback"),
                     reexec_cycles=data.get("reexec"))


class CampaignJournal:
    """One JSONL journal file, possibly shared by several campaigns
    (entries carry their own program/config identity)."""

    def __init__(self, path):
        self.path = str(path)

    def append_header(self, meta: dict) -> None:
        """Durably record run metadata (effective seed, CLI knobs, ...).

        Header lines carry no ``program``/``config`` identity, so
        :meth:`replay` skips them naturally; they exist for humans and
        tooling to reconstruct the exact command that produced the file.
        """
        entry = {"v": JOURNAL_VERSION, "header": dict(meta)}
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def read_header(self) -> dict | None:
        """First header entry in the file, or None."""
        if not os.path.exists(self.path):
            return None
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if entry.get("v") == JOURNAL_VERSION and "header" in entry:
                    return entry["header"]
        return None

    def append_chunk(self, program_digest: str, config_key: tuple,
                     chunk_index: int, spec_digests: list[str],
                     records: list[RunRecord]) -> None:
        """Durably record one completed chunk."""
        entry = {"v": JOURNAL_VERSION,
                 "program": program_digest,
                 "config": list(config_key),
                 "chunk": chunk_index,
                 "specs": list(spec_digests),
                 "records": [record_to_json(r) for r in records]}
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def replay(self, program_digest: str, config_key: tuple) -> dict:
        """Completed chunks for one campaign identity.

        Returns ``{(chunk_index, (spec_digest, …)): [RunRecord, …]}`` —
        the caller looks up its own (index, digests) pair, so a journal
        entry whose spec set no longer matches is simply not found.
        """
        completed: dict = {}
        if not os.path.exists(self.path):
            return completed
        wanted = list(config_key)
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue    # torn tail write from a killed campaign
                if (entry.get("v") != JOURNAL_VERSION
                        or entry.get("program") != program_digest
                        or entry.get("config") != wanted):
                    continue
                try:
                    records = [record_from_json(r)
                               for r in entry["records"]]
                except (KeyError, ValueError):
                    continue
                completed[(entry["chunk"], tuple(entry["specs"]))] = \
                    records
        return completed
