"""Chaos specs: deliberately misbehaving "faults" for the harness.

These are not guest fault models — they attack the *campaign runtime*
itself, and exist so the resilience machinery (per-spec quarantine,
worker supervision, per-task timeouts, journaled resume) can be tested
and demonstrated end to end:

* :class:`RaisingSpec` raises inside ``Pipeline.run`` — exercises
  per-spec quarantine (one ``INFRA_ERROR`` record, neighbours
  unaffected);
* :class:`CrashSpec` kills the worker process outright (the stand-in
  for a segfault or OOM-kill) — exercises worker supervision and
  chunk-splitting isolation;
* :class:`SleepSpec` burns host wall-clock time — exercises the
  per-task ``timeout`` deadline (and, with a short sleep, lets tests
  slow a campaign down enough to kill and resume it mid-flight).

A chaos spec implements ``chaos_run(pipeline)``, which
:meth:`repro.faults.campaign.Pipeline.run` dispatches to instead of a
real injection.  All three are frozen dataclasses with deterministic
reprs, so they journal and digest like any other spec.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass


@dataclass(frozen=True)
class RaisingSpec:
    """Raises ``RuntimeError(message)`` when run."""

    message: str = "chaos: injector raised"

    def describe(self) -> str:
        return f"chaos-raise({self.message!r})"

    def chaos_run(self, pipeline):
        raise RuntimeError(self.message)


@dataclass(frozen=True)
class CrashSpec:
    """Kills the running process with ``os._exit(exit_code)``."""

    exit_code: int = 139

    def describe(self) -> str:
        return f"chaos-crash({self.exit_code})"

    def chaos_run(self, pipeline):
        os._exit(self.exit_code)


@dataclass(frozen=True)
class SleepSpec:
    """Sleeps ``seconds`` of host time, then runs fault-free."""

    seconds: float = 3600.0

    def describe(self) -> str:
        return f"chaos-sleep({self.seconds:g}s)"

    def chaos_run(self, pipeline):
        time.sleep(self.seconds)
        return pipeline.run(None)
