"""Transient-fault machinery: the analytic error model (Figures 2/3),
deterministic fault injectors for every pipeline, and campaign
runners with outcome classification."""

from repro.faults.classify import (ALL_ERROR_CATEGORIES, Category,
                                   SDC_CATEGORIES, classify_flag_fault,
                                   classify_landing, classify_offset_fault,
                                   corrupted_target)
from repro.faults.model import (COLUMNS, ErrorModelResult,
                                compute_error_model,
                                compute_suite_error_model)
from repro.faults.injector import (CacheFaultSpec, CacheLevelInjector,
                                   DbtInjector, DirectionFault, FaultSpec,
                                   FlagBitFault, NativeInjector,
                                   OffsetBitFault, RedirectFault,
                                   RegisterFaultSpec, SchedFaultSpec,
                                   SchedInjector,
                                   enumerate_cache_branch_sites)
from repro.faults.sampling import (EffectivenessResult,
                                   run_effectiveness_campaign,
                                   sample_model_faults)
from repro.faults.campaign import (CacheCampaignResult, CampaignResult,
                                   CategoryFaults,
                                   DataFaultCampaignResult, Golden,
                                   Outcome, Pipeline, PipelineConfig,
                                   RunRecord,
                                   enumerate_instrumentation_branch_sites,
                                   generate_category_faults,
                                   generate_register_faults,
                                   generate_sched_faults,
                                   generate_thread_faults, run_campaign,
                                   run_cache_campaign,
                                   run_data_fault_campaign)
from repro.faults.cache import (cache_stats, campaign_key, clear_caches,
                                program_digest, set_cache_enabled)
from repro.faults.campaign import infra_error_record
from repro.faults.executor import (CampaignExecutor, MapError,
                                   parallel_map, resolve_jobs)
from repro.faults.journal import CampaignJournal, spec_digest
from repro.faults.supervisor import (PoolSupervisor, SupervisedTask,
                                     WorkerInitError)

__all__ = [
    "ALL_ERROR_CATEGORIES", "Category", "SDC_CATEGORIES",
    "classify_flag_fault", "classify_landing", "classify_offset_fault",
    "corrupted_target",
    "COLUMNS", "ErrorModelResult", "compute_error_model",
    "compute_suite_error_model",
    "CacheFaultSpec", "CacheLevelInjector", "DbtInjector",
    "DirectionFault", "FaultSpec", "FlagBitFault", "NativeInjector",
    "OffsetBitFault", "RedirectFault", "RegisterFaultSpec",
    "SchedFaultSpec", "SchedInjector",
    "enumerate_cache_branch_sites", "DataFaultCampaignResult",
    "generate_register_faults", "generate_sched_faults",
    "generate_thread_faults", "run_data_fault_campaign",
    "CacheCampaignResult", "CampaignResult", "CategoryFaults", "Golden",
    "Outcome", "Pipeline", "PipelineConfig", "RunRecord",
    "enumerate_instrumentation_branch_sites", "generate_category_faults",
    "run_campaign", "run_cache_campaign",
    "EffectivenessResult", "run_effectiveness_campaign",
    "sample_model_faults",
    "CampaignExecutor", "MapError", "parallel_map", "resolve_jobs",
    "CampaignJournal", "spec_digest", "infra_error_record",
    "PoolSupervisor", "SupervisedTask", "WorkerInitError",
    "cache_stats", "campaign_key", "clear_caches", "program_digest",
    "set_cache_enabled",
]
