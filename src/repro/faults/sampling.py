"""Statistical soft-error sampling (paper Section 7 future work:
"soft-error injection to measure the actual effectiveness of our
techniques in detecting both control and data flow errors").

Where the *targeted* campaigns pick faults per category, this module
samples faults from the same distribution the analytic error model
integrates over: every (dynamic direct-branch execution, offset/flag
bit) pair is equally likely.  Injecting a random sample therefore
measures the techniques' *overall* effectiveness, and the outcome
rates can be cross-validated against the model's closed-form
probabilities (hardware-detected rate ≈ P(F), harmless rate ≈
P(no-error), ...).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.isa.encoding import BRANCH_OFFSET_BITS
from repro.isa.flags import NUM_FLAG_BITS
from repro.isa.program import Program
from repro.machine import BranchProfiler, StopReason, run_native
from repro.faults.campaign import (Outcome, Pipeline, PipelineConfig)
from repro.faults.injector import FaultSpec, FlagBitFault, OffsetBitFault


@dataclass
class EffectivenessResult:
    """Outcome rates of one random-sampling campaign."""

    config_label: str
    outcomes: dict[Outcome, int] = field(default_factory=dict)

    def record(self, outcome: Outcome) -> None:
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1

    def total(self) -> int:
        return sum(self.outcomes.values())

    def rate(self, outcome: Outcome) -> float:
        total = self.total()
        return self.outcomes.get(outcome, 0) / total if total else 0.0

    @property
    def sdc_rate(self) -> float:
        return self.rate(Outcome.SDC)

    @property
    def detected_rate(self) -> float:
        return (self.rate(Outcome.DETECTED_SIGNATURE)
                + self.rate(Outcome.DETECTED_HARDWARE))

    @property
    def unreported_harm_rate(self) -> float:
        return self.rate(Outcome.SDC) + self.rate(Outcome.HANG)


def derive_seed(seed: int, *context) -> int:
    """Stable sub-seed for a labelled stream of ``seed``.

    Consumers that need several independent deterministic RNG streams
    from one user-facing ``--seed`` (the fuzzer's per-program seeds,
    sampling campaigns, ...) derive them here so the streams stay
    decorrelated yet exactly reproducible from the CLI line.
    """
    text = "|".join([str(seed), *map(str, context)])
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big")


def sample_model_faults(program: Program, count: int, seed: int = 2006,
                        max_steps: int = 50_000_000) -> list[FaultSpec]:
    """Draw ``count`` faults uniformly over the error-model universe.

    A fault is a triple (dynamic branch execution, bit): the branch
    execution is chosen proportionally to execution frequency ("given
    that soft-errors are temporal errors", Section 2), then one bit of
    its universe — 16 offset bits plus, for flag-reading conditionals,
    the flag bits — is flipped.
    """
    profiler = BranchProfiler()
    _, stop = run_native(program, max_steps=max_steps, profiler=profiler)
    if stop.reason is not StopReason.HALTED:
        raise RuntimeError(f"profiling run failed: {stop}")
    rng = random.Random(seed)

    stats_list = [s for s in profiler.branches.values()
                  if s.executions > 0]
    weights = [s.executions for s in stats_list]
    specs: list[FaultSpec] = []
    for _ in range(count):
        stats = rng.choices(stats_list, weights=weights, k=1)[0]
        occurrence = rng.randint(1, stats.executions)
        flag_bits = (NUM_FLAG_BITS if stats.instr.meta.cond is not None
                     else 0)
        bit = rng.randrange(BRANCH_OFFSET_BITS + flag_bits)
        if bit < BRANCH_OFFSET_BITS:
            fault = OffsetBitFault(bit=bit)
        else:
            fault = FlagBitFault(bit=bit - BRANCH_OFFSET_BITS)
        specs.append(FaultSpec(stats.pc, occurrence, fault))
    return specs


def run_effectiveness_campaign(program: Program, config: PipelineConfig,
                               count: int = 100, seed: int = 2006
                               ) -> EffectivenessResult:
    """Inject ``count`` model-sampled faults under one configuration."""
    specs = sample_model_faults(program, count, seed=seed)
    pipeline = Pipeline(program, config)
    result = EffectivenessResult(config_label=config.label())
    for spec in specs:
        record = pipeline.run(spec)
        result.record(record.outcome)
    return result
