"""Parallel campaign execution with a fault-tolerant runtime.

Fault-injection campaigns are embarrassingly parallel: every run is an
independent, deterministic function of ``(program, config, spec)``.
:class:`CampaignExecutor` exploits that by fanning fault specs out over
supervised worker processes while keeping the results **byte-identical
to the serial order**:

* each worker builds its :class:`~repro.faults.campaign.Pipeline`
  exactly once (program load, static rewrite, golden run) when it
  starts, then serves fault runs from it;
* specs are dispatched in fixed-size chunks cut from the serial order,
  and chunk results are merged back by chunk index — so the merged
  record list (and therefore every tally derived from it) is the same
  for any worker count;
* ``jobs=1`` bypasses the pool entirely: no processes, no pickling,
  exactly the code path the serial campaign always ran.

The campaign engine is also the reproduction's hot path, and at the
scale the literature runs (tens of thousands of injections per
configuration) it must survive its own failures, not just classify the
guest's.  Three layers provide that (see :mod:`repro.faults.supervisor`
and :mod:`repro.faults.journal` for the details):

* **per-spec quarantine** — a run that raises yields an
  ``Outcome.INFRA_ERROR`` record carrying the exception and spec,
  instead of killing its chunk;
* **worker supervision** — a killed worker (segfault, OOM, timeout)
  costs only its own chunk a retry: the chunk is split into singletons
  to isolate the culprit, retried up to ``retries`` times, and the
  survivors' results are unaffected.  Repeated no-progress failures
  degrade the engine to in-process serial execution;
* **journaled checkpoint/resume** — with ``journal=PATH`` every
  completed chunk is appended to a JSONL journal; ``resume=True``
  replays matching chunks and runs only the remainder, byte-identical
  to an uninterrupted campaign.

The ``fork`` start method is preferred where available (workers inherit
the warm golden-run cache of :mod:`repro.faults.cache` for free);
``spawn`` is the fallback, under which workers rebuild their state from
the pickled ``(program, config)`` initializer arguments.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass

from repro import obs
from repro.isa.program import Program
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder
from repro.obs.traceevent import (TraceContext, append_entry,
                                  chunk_entry, trace_sidecar_path)
from repro.faults import cache as run_cache
from repro.faults.campaign import (CampaignResult, CategoryFaults,
                                   Outcome, Pipeline, PipelineConfig,
                                   RunRecord, infra_error_record)
from repro.faults.supervisor import (DEFAULT_RETRIES, PoolSupervisor,
                                     SupervisedTask)

#: Specs per work unit.  Small enough to load-balance across workers,
#: large enough to amortize the per-task round trip.
DEFAULT_CHUNK_SIZE = 8


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a --jobs value; 0/None means one per CPU."""
    if not jobs:
        return os.cpu_count() or 1
    return max(1, jobs)


class CampaignStopped(RuntimeError):
    """A campaign was interrupted cooperatively (``stop_check``).

    Raised *after* every completed chunk has been journaled, so a
    stopped campaign resumes from its journal exactly like one killed
    by the OS — the service's cancel/drain path rides the existing
    ``--resume`` machinery.  ``completed``/``total`` count specs.
    """

    def __init__(self, completed: int, total: int):
        super().__init__(f"campaign stopped after {completed}/{total} "
                         "spec(s); completed chunks are journaled")
        self.completed = completed
        self.total = total


#: Outcomes the forensics layer treats as escapes worth replaying.
#: A failed recovery is not a *silent* escape, but it is exactly the
#: kind of run worth a golden-divergence replay, so it is bundled too.
_ESCAPE_OUTCOMES = (Outcome.SDC, Outcome.HANG, Outcome.RECOVERY_FAILED)


@dataclass
class WorkerResult:
    """A worker task's payload result plus its drained telemetry.

    Wrapping (rather than sniffing tuples out of arbitrary task
    results) keeps the result-pipe protocol unambiguous: user task
    functions may legitimately return lists or tuples of their own.

    ``escapes`` carries the chunk's escape (SDC/HANG) specs home as
    ``(sub_index, spec)`` pairs so a ``--forensics`` campaign can
    replay a sample of them in the parent without re-running anything.

    ``timings`` (traced campaigns only) carries the chunk's wall-clock
    span and one ``{"t0", "dur", "outcome"}`` entry per run, plus the
    worker's pid and the trace id it was handed — the raw material the
    parent turns into chunk/run spans in the trace sidecar (see
    :mod:`repro.obs.traceevent`).
    """

    value: object
    obs_snapshot: dict | None = None
    escapes: list | None = None
    timings: dict | None = None


def _escapes_of(records: list[RunRecord], specs: list) -> list:
    """``(sub_index, spec)`` for every escape outcome in a chunk."""
    return [(sub, spec)
            for sub, (spec, record) in enumerate(zip(specs, records))
            if record.outcome in _ESCAPE_OUTCOMES]


def _unwrap(result):
    """Fold a worker's telemetry drain into the parent registry and
    return the wrapped payload (pass-through for plain results)."""
    if isinstance(result, WorkerResult):
        obs.merge_snapshot(result.obs_snapshot)
        return result.value
    return result


def _install_worker_obs(obs_enabled: bool) -> None:
    """Give a worker process its own drainable registry.

    Under ``fork`` the child inherits the parent's installed registry
    object; replacing it with a ``worker=True`` registry keeps the
    child's tallies separate so they travel home on the result pipe
    instead of silently accruing in a dead copy.
    """
    if obs_enabled:
        obs.install(MetricsRegistry(worker=True), SpanRecorder())


#: The trace context handed to this process's campaign runs, if any.
#: Module-level because the supervisor's task protocol passes only
#: (state, payload) to the task function; set via worker init in
#: pooled mode and around the serial loop in-process.
_worker_trace: TraceContext | None = None


def _install_worker_trace(trace: TraceContext | None) -> None:
    global _worker_trace
    _worker_trace = trace


def _quarantined_run(pipeline: Pipeline, spec) -> RunRecord:
    """One run, with harness exceptions converted to INFRA_ERROR."""
    try:
        return pipeline.run(spec)
    except Exception as exc:
        return infra_error_record(spec,
                                  f"{type(exc).__name__}: {exc}")


def _worker_init_state(program: Program, config: PipelineConfig,
                       obs_enabled: bool = False,
                       trace: TraceContext | None = None) -> Pipeline:
    """Worker initializer: build the worker's pipeline exactly once.

    Failures (e.g. the golden run raising) are re-raised with the
    config label attached, so the supervisor's WorkerInitError names
    the configuration instead of surfacing an opaque pool breakage.
    """
    _install_worker_obs(obs_enabled)
    _install_worker_trace(trace)
    try:
        return Pipeline(program, config)
    except Exception as exc:
        raise RuntimeError(
            f"worker pipeline initialization failed for config "
            f"{config.label()!r}: {type(exc).__name__}: {exc}") from exc


def _worker_run_specs(pipeline: Pipeline, specs: list):
    """Run one chunk of fault specs, quarantining each spec.

    In a worker process with observability on, the records come back
    wrapped in :class:`WorkerResult` together with the registry drain;
    in-process callers (jobs=1 and the degraded serial path) get the
    plain record list — their metrics are already in the parent
    registry.  With a trace context installed, per-run wall-clock
    timings ride home in ``WorkerResult.timings`` (epoch seconds, so
    spans from different processes share one clock).
    """
    trace = _worker_trace
    timings = None
    if trace is not None:
        chunk_start = time.time()
        records, runs = [], []
        for spec in specs:
            run_start = time.time()
            record = _quarantined_run(pipeline, spec)
            runs.append({"t0": run_start,
                         "dur": time.time() - run_start,
                         "outcome": record.outcome.value})
            records.append(record)
        timings = {"trace_id": trace.trace_id, "t0": chunk_start,
                   "t1": time.time(), "pid": os.getpid(), "runs": runs}
    else:
        records = [_quarantined_run(pipeline, spec) for spec in specs]
    escapes = _escapes_of(records, specs)
    snap = obs.drain_worker_snapshot()
    if snap is not None or escapes or timings is not None:
        return WorkerResult(records, snap, escapes, timings)
    return records


class CampaignExecutor:
    """Runs fault specs for one (program, config), serially or fanned
    out over supervised worker processes, with order-stable results.

    ``retries`` bounds re-dispatches of a failing singleton (default
    2); ``timeout`` is a per-chunk host wall-clock deadline in seconds
    (enforced only in pooled mode — a single process cannot preempt
    itself); ``journal`` appends completed chunks to a JSONL file and
    ``resume`` replays them.  A pre-built ``pipeline`` may be supplied
    to avoid rebuilding reference state the caller already has.

    Job-scoped hooks (the campaign service's attachment points):
    ``on_progress(completed_specs, total_specs)`` fires after every
    completed (or replayed) chunk; ``stop_check`` is a ``() -> bool``
    polled between chunks — returning True abandons the remaining work
    and raises :class:`CampaignStopped` *after* the completed chunks
    have been journaled, so the campaign later resumes via ``resume``.

    ``trace`` (a :class:`~repro.obs.traceevent.TraceContext`) turns on
    cross-process trace correlation: workers time each run, the parent
    derives deterministic chunk/run span ids under the given context
    and appends them to the ``<journal>.trace.jsonl`` sidecar (never
    the journal itself — its byte-identity contract stays intact).
    Requires ``journal``; ``repro trace export`` renders the sidecar
    as Chrome trace-event JSON.
    """

    def __init__(self, program: Program, config: PipelineConfig,
                 jobs: int = 1, chunk_size: int = DEFAULT_CHUNK_SIZE,
                 retries: int | None = None,
                 timeout: float | None = None,
                 journal: str | None = None,
                 resume: bool = False,
                 pipeline: Pipeline | None = None,
                 on_progress=None,
                 stop_check=None,
                 trace: TraceContext | None = None):
        self.program = program
        self.config = config
        self.jobs = resolve_jobs(jobs)
        self.chunk_size = max(1, chunk_size)
        self.retries = DEFAULT_RETRIES if retries is None else retries
        self.timeout = timeout
        self.journal = journal
        self.resume = resume
        self.on_progress = on_progress
        self.stop_check = stop_check
        self.trace = trace if journal else None
        self._pipeline = pipeline
        #: global spec index -> escape spec, from the last run_specs
        self._escapes: dict[int, object] = {}
        #: chunk index -> absorbed timing pieces awaiting checkpoint
        self._trace_pieces: dict[int, list[dict]] = {}

    @property
    def pipeline(self) -> Pipeline:
        """The in-process pipeline (built lazily; used for jobs=1, the
        degraded serial path, and to warm the fork-shared caches)."""
        if self._pipeline is None:
            self._pipeline = Pipeline(self.program, self.config)
        return self._pipeline

    def run_specs(self, specs) -> list[RunRecord]:
        """Run every spec; records come back in input order regardless
        of worker count, retries, or resume."""
        from repro.faults.journal import CampaignJournal, spec_digest
        specs = list(specs)
        chunks = [specs[start:start + self.chunk_size]
                  for start in range(0, len(specs), self.chunk_size)]
        digests = [[spec_digest(spec) for spec in chunk]
                   for chunk in chunks]
        journal = (CampaignJournal(self.journal)
                   if self.journal else None)
        program_digest = run_cache.program_digest(self.program)
        config_key = run_cache.config_key(self.config)

        self._escapes = {}
        self._trace_pieces = {}
        total = len(specs)
        completed = [0]                 # specs finished (or replayed)
        done: dict[int, list[RunRecord]] = {}

        def progressed(count: int) -> None:
            completed[0] += count
            if self.on_progress is not None:
                self.on_progress(completed[0], total)

        if journal is not None and self.resume:
            replayed = journal.replay(program_digest, config_key)
            for index in range(len(chunks)):
                records = replayed.get((index, tuple(digests[index])))
                if records is not None:
                    done[index] = records
                    # Replayed chunks never cross a worker pipe; their
                    # escapes are recovered here so a resumed campaign
                    # yields the same forensics sample as a fresh one.
                    self._note_escapes(
                        _escapes_of(records, chunks[index]),
                        index * self.chunk_size)
            if done:
                obs.counter("campaign_chunks_total",
                            help="chunks by completion source",
                            source="replayed").inc(len(done))
                progressed(sum(len(done[i]) for i in done))

        todo = [index for index in range(len(chunks))
                if index not in done]

        def checkpoint(index: int, records: list[RunRecord]) -> None:
            done[index] = records
            obs.counter("campaign_chunks_total",
                        help="chunks by completion source",
                        source="executed").inc()
            if journal is not None:
                journal.append_chunk(program_digest, config_key, index,
                                     digests[index], records)
            self._trace_checkpoint(index)
            progressed(len(records))

        def stopped() -> bool:
            return (self.stop_check is not None and self.stop_check())

        # The serial loop and the supervisor's degraded serial path run
        # _worker_run_specs in-process; installing the trace context
        # here (and restoring it after) makes them time runs exactly
        # like a pooled worker would.
        previous_trace = _worker_trace
        _install_worker_trace(self.trace)
        try:
            if todo and (self.jobs == 1 or len(specs) <= 1):
                with obs.span("campaign.scheduler", mode="serial",
                              chunks=len(todo)):
                    pipeline = self.pipeline
                    for index in todo:
                        if stopped():
                            raise CampaignStopped(completed[0], total)
                        checkpoint(index, self._absorb(
                            _worker_run_specs(pipeline, chunks[index]),
                            index * self.chunk_size))
            elif todo:
                with obs.span("campaign.scheduler", mode="pool",
                              jobs=self.jobs, chunks=len(todo)):
                    # Build the reference state in the parent first: a
                    # broken configuration fails fast with its label,
                    # and forked workers inherit the warm golden-run
                    # cache.
                    self.pipeline
                    self._run_supervised(chunks, todo, checkpoint)
                if any(index not in done for index in todo):
                    # The supervisor stopped early (stop_check);
                    # completed chunks are already journaled above.
                    raise CampaignStopped(completed[0], total)
        finally:
            _install_worker_trace(previous_trace)

        records: list[RunRecord] = []
        for index in range(len(chunks)):
            records.extend(done[index])
        return records

    def _note_escapes(self, escapes, base: int) -> None:
        for sub, spec in escapes:
            self._escapes[base + sub] = spec

    def _absorb(self, result, base: int):
        """Unwrap a task result, folding telemetry *and* escapes (at
        their global spec indices) into the parent-side state."""
        if isinstance(result, WorkerResult):
            obs.merge_snapshot(result.obs_snapshot)
            if result.escapes:
                self._note_escapes(result.escapes, base)
            if result.timings is not None and self.trace is not None:
                timings = dict(result.timings)
                timings["runs"] = [
                    {**run, "i": base + sub}
                    for sub, run in enumerate(timings["runs"])]
                self._trace_pieces.setdefault(
                    base // self.chunk_size, []).append(timings)
            return result.value
        return result

    def _trace_checkpoint(self, index: int) -> None:
        """Write the chunk's span (plus run child spans) to the trace
        sidecar.  A split chunk arrives as several timed pieces — the
        chunk span covers all of them; replayed chunks have no pieces
        and no span (their work happened in an earlier trace)."""
        pieces = self._trace_pieces.pop(index, None)
        if not pieces or self.trace is None or self.journal is None:
            return
        runs = sorted((run for piece in pieces
                       for run in piece["runs"]),
                      key=lambda run: run["i"])
        append_entry(
            trace_sidecar_path(self.journal),
            chunk_entry(self.trace, index,
                        t0=min(piece["t0"] for piece in pieces),
                        t1=max(piece["t1"] for piece in pieces),
                        pid=pieces[0]["pid"], runs=runs))

    def escape_specs(self) -> list[tuple[int, object]]:
        """Escape (SDC/HANG) specs of the last ``run_specs`` call, as
        ``(global_index, spec)`` pairs in campaign order — identical
        for any job count and for journal-resumed executions."""
        return sorted(self._escapes.items())

    def _run_supervised(self, chunks, todo, checkpoint) -> None:
        tasks = [self._chunk_task(index, chunks[index])
                 for index in todo]
        supervisor = PoolSupervisor(
            jobs=min(self.jobs, len(tasks)),
            mp_context=_mp_context(),
            init_fn=_worker_init_state,
            init_args=(self.program, self.config, obs.enabled(),
                       self.trace),
            task_fn=_worker_run_specs,
            serial_fn=lambda specs: _worker_run_specs(self.pipeline,
                                                      specs),
            retries=self.retries, timeout=self.timeout,
            stop_check=self.stop_check)

        # Chunks that were split into singletons check back in once
        # every piece has arrived, so the journal stays chunk-grained.
        partial: dict[int, dict[int, list[RunRecord]]] = {}

        def on_result(task: SupervisedTask, records) -> None:
            if task.key[0] == "chunk":
                index = task.key[1]
                checkpoint(index, self._absorb(
                    records, index * self.chunk_size))
                return
            _, index, sub = task.key
            records = self._absorb(records,
                                   index * self.chunk_size + sub)
            pieces = partial.setdefault(index, {})
            pieces[sub] = records
            if len(pieces) == len(chunks[index]):
                checkpoint(index, [record
                                   for sub in range(len(chunks[index]))
                                   for record in pieces[sub]])

        supervisor.run(tasks, on_result=on_result)

    def _chunk_task(self, index: int, specs: list) -> SupervisedTask:
        def fail(reason: str) -> list[RunRecord]:
            return [infra_error_record(spec, reason) for spec in specs]

        def split() -> list[SupervisedTask] | None:
            if len(specs) <= 1:
                return None
            return [SupervisedTask(
                        key=("spec", index, sub), payload=[spec],
                        fail=(lambda reason, spec=spec:
                              [infra_error_record(spec, reason)]))
                    for sub, spec in enumerate(specs)]

        return SupervisedTask(key=("chunk", index), payload=list(specs),
                              fail=fail, split=split)

    def run_campaign(self, faults: CategoryFaults) -> CampaignResult:
        """Per-category campaign with order-stable tallies."""
        flat: list = []
        labels: list = []
        for category, specs in faults.by_category.items():
            for spec in specs:
                flat.append(spec)
                labels.append(category)
        result = CampaignResult(config_label=self.config.label())
        for category, record in zip(labels, self.run_specs(flat)):
            result.record(category, record.outcome)
        return result


@dataclass(frozen=True)
class MapError:
    """Per-item failure marker returned by :func:`parallel_map`."""

    item: object
    error: str


def _apply_quarantined(payload):
    func, item = payload
    try:
        return func(item)
    except Exception as exc:
        return MapError(item=item, error=f"{type(exc).__name__}: {exc}")


def _map_worker_init(obs_enabled: bool = False):
    _install_worker_obs(obs_enabled)
    return None


def _map_task_fn(_state, payload):
    result = _apply_quarantined(payload)
    snap = obs.drain_worker_snapshot()
    if snap is not None:
        return WorkerResult(result, snap)
    return result


def parallel_map(func, items, jobs: int = 1,
                 retries: int | None = None,
                 timeout: float | None = None,
                 on_progress=None,
                 stop_check=None) -> list:
    """Order-preserving process-parallel map for picklable tasks.

    Utility used by the CLI for independent heavyweight jobs (e.g.
    verifying several techniques); falls back to a plain loop for
    ``jobs=1`` or single-item inputs.  Each item is quarantined: an
    item whose call raises — or whose worker dies, or which exceeds
    ``timeout`` seconds even after ``retries`` re-dispatches — yields a
    :class:`MapError` in its slot instead of discarding every other
    result.

    ``on_progress(completed, total)`` fires as items finish (completion
    order, not input order); ``stop_check`` polled True abandons the
    remaining items and raises :class:`CampaignStopped`.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    finished = [0]

    def progressed() -> None:
        finished[0] += 1
        if on_progress is not None:
            on_progress(finished[0], len(items))

    if jobs == 1 or len(items) <= 1:
        results = []
        for item in items:
            if stop_check is not None and stop_check():
                raise CampaignStopped(finished[0], len(items))
            results.append(_apply_quarantined((func, item)))
            progressed()
        return results
    tasks = [SupervisedTask(
                 key=(index,), payload=(func, item),
                 fail=(lambda reason, item=item:
                       MapError(item=item, error=reason)))
             for index, item in enumerate(items)]
    supervisor = PoolSupervisor(
        jobs=min(jobs, len(items)), mp_context=_mp_context(),
        init_fn=_map_worker_init, init_args=(obs.enabled(),),
        task_fn=_map_task_fn, serial_fn=_apply_quarantined,
        retries=DEFAULT_RETRIES if retries is None else retries,
        timeout=timeout, stop_check=stop_check)
    results = supervisor.run(tasks,
                             on_result=lambda task, result:
                             progressed())
    if len(results) < len(items):
        raise CampaignStopped(finished[0], len(items))
    return [_unwrap(results[(index,)]) for index in range(len(items))]
