"""Parallel campaign execution.

Fault-injection campaigns are embarrassingly parallel: every run is an
independent, deterministic function of ``(program, config, spec)``.
:class:`CampaignExecutor` exploits that by fanning fault specs out over
a :class:`~concurrent.futures.ProcessPoolExecutor` while keeping the
results **byte-identical to the serial order**:

* each worker builds its :class:`~repro.faults.campaign.Pipeline`
  exactly once (program load, static rewrite, golden run) in the pool
  initializer, then serves fault runs from it;
* specs are dispatched in fixed-size chunks cut from the serial order,
  and chunk results are merged back in submission order — so the merged
  record list (and therefore every tally derived from it) is the same
  for any worker count;
* ``jobs=1`` bypasses the pool entirely: no processes, no pickling,
  exactly the code path the serial campaign always ran.

The ``fork`` start method is preferred where available (workers inherit
the warm golden-run cache of :mod:`repro.faults.cache` for free);
``spawn`` is the fallback, under which workers rebuild their state from
the pickled ``(program, config)`` initializer arguments.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

from repro.isa.program import Program
from repro.faults.campaign import (CampaignResult, CategoryFaults,
                                   Pipeline, PipelineConfig, RunRecord)

#: Specs per work unit.  Small enough to load-balance across workers,
#: large enough to amortize the per-future round trip.
DEFAULT_CHUNK_SIZE = 8

# Per-worker-process state, installed by _worker_init.
_worker_pipeline: Pipeline | None = None


def _worker_init(program: Program, config: PipelineConfig) -> None:
    """Pool initializer: build the worker's pipeline exactly once."""
    global _worker_pipeline
    _worker_pipeline = Pipeline(program, config)


def _worker_run_chunk(specs: list) -> list[RunRecord]:
    """Run one chunk of fault specs on the worker's pipeline."""
    pipeline = _worker_pipeline
    return [pipeline.run(spec) for spec in specs]


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a --jobs value; 0/None means one per CPU."""
    if not jobs:
        return os.cpu_count() or 1
    return max(1, jobs)


class CampaignExecutor:
    """Runs fault specs for one (program, config), serially or fanned
    out over worker processes, with order-stable results."""

    def __init__(self, program: Program, config: PipelineConfig,
                 jobs: int = 1, chunk_size: int = DEFAULT_CHUNK_SIZE):
        self.program = program
        self.config = config
        self.jobs = resolve_jobs(jobs)
        self.chunk_size = max(1, chunk_size)
        self._pipeline: Pipeline | None = None

    @property
    def pipeline(self) -> Pipeline:
        """The in-process pipeline (built lazily, used when jobs=1)."""
        if self._pipeline is None:
            self._pipeline = Pipeline(self.program, self.config)
        return self._pipeline

    def run_specs(self, specs) -> list[RunRecord]:
        """Run every spec; records come back in input order regardless
        of worker count."""
        specs = list(specs)
        if self.jobs == 1 or len(specs) <= 1:
            pipeline = self.pipeline
            return [pipeline.run(spec) for spec in specs]
        chunks = [specs[start:start + self.chunk_size]
                  for start in range(0, len(specs), self.chunk_size)]
        workers = min(self.jobs, len(chunks))
        with ProcessPoolExecutor(
                max_workers=workers, mp_context=_mp_context(),
                initializer=_worker_init,
                initargs=(self.program, self.config)) as pool:
            futures = [pool.submit(_worker_run_chunk, chunk)
                       for chunk in chunks]
            records: list[RunRecord] = []
            for future in futures:
                records.extend(future.result())
        return records

    def run_campaign(self, faults: CategoryFaults) -> CampaignResult:
        """Per-category campaign with order-stable tallies."""
        flat: list = []
        labels: list = []
        for category, specs in faults.by_category.items():
            for spec in specs:
                flat.append(spec)
                labels.append(category)
        result = CampaignResult(config_label=self.config.label())
        for category, record in zip(labels, self.run_specs(flat)):
            result.record(category, record.outcome)
        return result


def parallel_map(func, items, jobs: int = 1) -> list:
    """Order-preserving process-parallel map for picklable tasks.

    Utility used by the CLI for independent heavyweight jobs (e.g.
    verifying several techniques); falls back to a plain loop for
    ``jobs=1`` or single-item inputs.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(items) <= 1:
        return [func(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(jobs, len(items)),
                             mp_context=_mp_context()) as pool:
        return list(pool.map(func, items))
