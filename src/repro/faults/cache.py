"""Process-level golden-run and profile caches.

Fault campaigns re-run the same fault-free executions over and over:
every :class:`~repro.faults.campaign.Pipeline` starts with a golden run,
and every call to ``generate_category_faults`` starts with a profiled
native run — even when the program and configuration are identical to
one already executed in this process.  For a coverage matrix over N
configurations that is N redundant golden runs per workload, and one
redundant profiling run per fault-generation call.

These caches are keyed by **content**, not identity: the program key is
a digest of the loadable image (text, data, layout, entry), so two
separately assembled copies of the same source hit the same entry.  The
cached values (``Golden``, ``BranchProfiler``) are only ever read by
their consumers, so sharing is safe; everything here is deterministic,
so a cache hit is byte-identical to a re-run.

Campaign workers spawned by the parallel executor inherit a warm cache
under the ``fork`` start method and populate their own under ``spawn``.

A second, optional **disk tier** (``set_disk_tier``) shares entries
across processes and restarts: the campaign service installs a
content-addressed :class:`~repro.service.store.ArtifactStore` here so
a job resubmitting a workload the server has already golden-run skips
the run entirely.  Lookups consult memory first, then disk (promoting
hits into memory); stores write through to both.
"""

from __future__ import annotations

import hashlib

_golden_cache: dict = {}
_profile_cache: dict = {}
_enabled = True
_disk_tier = None


def program_digest(program) -> str:
    """Content digest of a loadable program image."""
    hasher = hashlib.sha256()
    hasher.update(program.text)
    hasher.update(b"\x00")
    hasher.update(program.data)
    hasher.update(f"{program.text_base}:{program.data_base}:"
                  f"{program.entry}".encode())
    return hasher.hexdigest()


def config_key(config) -> tuple:
    """Hashable identity of a PipelineConfig.

    The recovery and multithreading components are appended only when
    their subsystem is on, so keys (and the journals they validate)
    from before each subsystem existed remain byte-identical.
    """
    key = (config.pipeline, config.technique, config.policy.value,
           config.update_style.value, config.dataflow,
           getattr(config, "backend", "interp"))
    if getattr(config, "recover", False):
        key += ("rec", config.checkpoint_interval, config.max_retries)
    if getattr(config, "threads", False):
        key += ("mt", config.quantum, config.sched_policy,
                config.sched_seed, int(config.sig_swap))
    return key


def campaign_key(program, config) -> tuple[str, tuple]:
    """Stable identity of a campaign's reference state.

    The ``(program content digest, config key)`` pair keys both the
    in-process golden cache and the on-disk campaign journal
    (:mod:`repro.faults.journal`) — two campaigns with the same pair
    are guaranteed byte-identical run-for-run, which is what makes
    journal replay safe.
    """
    return program_digest(program), config_key(config)


def set_disk_tier(store) -> None:
    """Install (or remove, with ``None``) the shared disk cache tier.

    ``store`` must provide ``get_golden/put_golden`` and
    ``get_profile/put_profile`` with the same signatures as this
    module — in practice a :class:`repro.service.store.ArtifactStore`.
    """
    global _disk_tier
    _disk_tier = store


def get_golden(digest: str, key: tuple):
    if not _enabled:
        return None
    golden = _golden_cache.get((digest, key))
    if golden is None and _disk_tier is not None:
        golden = _disk_tier.get_golden(digest, key)
        if golden is not None:
            _golden_cache[(digest, key)] = golden
    return golden


def put_golden(digest: str, key: tuple, golden) -> None:
    if _enabled:
        _golden_cache[(digest, key)] = golden
        if _disk_tier is not None:
            _disk_tier.put_golden(digest, key, golden)


def get_profile(digest: str, max_steps: int):
    if not _enabled:
        return None
    profiler = _profile_cache.get((digest, max_steps))
    if profiler is None and _disk_tier is not None:
        profiler = _disk_tier.get_profile(digest, max_steps)
        if profiler is not None:
            _profile_cache[(digest, max_steps)] = profiler
    return profiler


def put_profile(digest: str, max_steps: int, profiler) -> None:
    if _enabled:
        _profile_cache[(digest, max_steps)] = profiler
        if _disk_tier is not None:
            _disk_tier.put_profile(digest, max_steps, profiler)


def clear_caches() -> None:
    """Drop every cached golden run and profile (test isolation).

    Clears the in-process tier only — the disk tier survives
    (that is its point); remove it with ``set_disk_tier(None)``.
    """
    _golden_cache.clear()
    _profile_cache.clear()


def set_cache_enabled(enabled: bool) -> None:
    """Globally enable/disable caching (disabling also clears)."""
    global _enabled
    _enabled = enabled
    if not enabled:
        clear_caches()


def cache_stats() -> dict:
    stats = {"golden_entries": len(_golden_cache),
             "profile_entries": len(_profile_cache)}
    if _disk_tier is not None:
        stats["disk"] = _disk_tier.stats()
    return stats
