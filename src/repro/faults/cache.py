"""Process-level golden-run and profile caches.

Fault campaigns re-run the same fault-free executions over and over:
every :class:`~repro.faults.campaign.Pipeline` starts with a golden run,
and every call to ``generate_category_faults`` starts with a profiled
native run — even when the program and configuration are identical to
one already executed in this process.  For a coverage matrix over N
configurations that is N redundant golden runs per workload, and one
redundant profiling run per fault-generation call.

These caches are keyed by **content**, not identity: the program key is
a digest of the loadable image (text, data, layout, entry), so two
separately assembled copies of the same source hit the same entry.  The
cached values (``Golden``, ``BranchProfiler``) are only ever read by
their consumers, so sharing is safe; everything here is deterministic,
so a cache hit is byte-identical to a re-run.

Campaign workers spawned by the parallel executor inherit a warm cache
under the ``fork`` start method and populate their own under ``spawn``.
"""

from __future__ import annotations

import hashlib

_golden_cache: dict = {}
_profile_cache: dict = {}
_enabled = True


def program_digest(program) -> str:
    """Content digest of a loadable program image."""
    hasher = hashlib.sha256()
    hasher.update(program.text)
    hasher.update(b"\x00")
    hasher.update(program.data)
    hasher.update(f"{program.text_base}:{program.data_base}:"
                  f"{program.entry}".encode())
    return hasher.hexdigest()


def config_key(config) -> tuple:
    """Hashable identity of a PipelineConfig.

    The recovery component is appended only when recovery is on, so
    keys (and the journals they validate) from before the recovery
    subsystem existed remain byte-identical.
    """
    key = (config.pipeline, config.technique, config.policy.value,
           config.update_style.value, config.dataflow,
           getattr(config, "backend", "interp"))
    if getattr(config, "recover", False):
        key += ("rec", config.checkpoint_interval, config.max_retries)
    return key


def campaign_key(program, config) -> tuple[str, tuple]:
    """Stable identity of a campaign's reference state.

    The ``(program content digest, config key)`` pair keys both the
    in-process golden cache and the on-disk campaign journal
    (:mod:`repro.faults.journal`) — two campaigns with the same pair
    are guaranteed byte-identical run-for-run, which is what makes
    journal replay safe.
    """
    return program_digest(program), config_key(config)


def get_golden(digest: str, key: tuple):
    if not _enabled:
        return None
    return _golden_cache.get((digest, key))


def put_golden(digest: str, key: tuple, golden) -> None:
    if _enabled:
        _golden_cache[(digest, key)] = golden


def get_profile(digest: str, max_steps: int):
    if not _enabled:
        return None
    return _profile_cache.get((digest, max_steps))


def put_profile(digest: str, max_steps: int, profiler) -> None:
    if _enabled:
        _profile_cache[(digest, max_steps)] = profiler


def clear_caches() -> None:
    """Drop every cached golden run and profile (test isolation)."""
    _golden_cache.clear()
    _profile_cache.clear()


def set_cache_enabled(enabled: bool) -> None:
    """Globally enable/disable caching (disabling also clears)."""
    global _enabled
    _enabled = enabled
    if not enabled:
        clear_caches()


def cache_stats() -> dict:
    return {"golden_entries": len(_golden_cache),
            "profile_entries": len(_profile_cache)}
