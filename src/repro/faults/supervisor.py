"""Fault-tolerant supervision of campaign worker processes.

The parallel campaign engine must survive the harness's own failure
modes, not just the guest's: a worker segfaulting or ``os._exit``-ing
mid-chunk, a task that raises, and a task that never finishes in
host wall-clock time.  :class:`PoolSupervisor` owns a small pool of
worker processes it spawns itself (one duplex pipe each), so — unlike
``concurrent.futures.ProcessPoolExecutor``, whose pool breaks wholesale
and loses track of which future was running where — it always knows
*exactly* which task a dead or overdue worker was holding:

* **death** (non-zero exit, kill, OOM): the held task is penalized, the
  worker is replaced after a bounded backoff, every other worker keeps
  running;
* **timeout**: when a task exceeds the per-task wall-clock deadline the
  worker is killed and only that task is penalized (the deadline clock
  starts once the worker has finished initializing, so a slow golden
  run is never billed to the first chunk);
* **task error**: a worker that reports an exception from the task
  function stays alive and the task alone is penalized.

Penalty policy: a splittable task (a multi-spec chunk) is first split
into singleton tasks to isolate the pathological spec; a singleton is
retried up to ``retries`` times and then converted to its permanent
failure result (an ``INFRA_ERROR`` record for campaign chunks).  After
``max_pool_failures`` consecutive worker deaths with no completed task
in between, the supervisor degrades to in-process serial execution for
the remaining tasks — tasks that already caused a failure are condemned
rather than re-run in-process, so a crasher can never take down the
supervising process itself.

Worker-initializer failures (e.g. a golden run raising inside the
worker) abort the run with :class:`WorkerInitError` carrying the
initializer's own message, never an opaque broken-pool error.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection

from repro import obs

log = logging.getLogger(__name__)

#: Seconds between supervision sweeps while work is outstanding.
_TICK = 0.05

#: Default retry budget for a failing singleton task.
DEFAULT_RETRIES = 2

#: Consecutive no-progress worker deaths before serial degradation.
DEFAULT_MAX_POOL_FAILURES = 5


class WorkerInitError(RuntimeError):
    """A worker's initializer failed; the message names the cause."""


@dataclass
class SupervisedTask:
    """One unit of pool work plus its retry/split/failure policy.

    ``key`` orders and identifies results; ``payload`` is what crosses
    the process boundary.  ``split`` (optional) returns finer-grained
    subtasks used to isolate a failure inside a batch; ``fail`` builds
    the result recorded when the task permanently fails.
    """

    key: tuple
    payload: object
    fail: object                      #: (reason: str) -> result
    split: object = None              #: () -> list[SupervisedTask] | None
    attempts: int = field(default=0, compare=False)
    #: monotonic stamp of the latest queue append (telemetry only)
    enqueued_at: float | None = field(default=None, compare=False)


def _safe_send(conn, message) -> None:
    try:
        conn.send(message)
    except Exception:
        pass


def _worker_main(conn, init_fn, init_args, task_fn) -> None:
    """Worker process body: init once, then serve tasks off the pipe."""
    try:
        state = init_fn(*init_args) if init_fn is not None else None
    except BaseException as exc:
        _safe_send(conn, ("init_error", f"{type(exc).__name__}: {exc}"))
        return
    _safe_send(conn, ("ready",))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] == "stop":
            return
        _, key, payload = message
        try:
            result = task_fn(state, payload)
        except BaseException as exc:
            _safe_send(conn, ("error", key,
                              f"{type(exc).__name__}: {exc}"))
            continue
        _safe_send(conn, ("ok", key, result))


class _Worker:
    __slots__ = ("process", "conn", "task", "ready", "started")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.task: SupervisedTask | None = None
        self.ready = False              # initializer finished
        self.started: float | None = None  # deadline clock for the task


class PoolSupervisor:
    """Runs :class:`SupervisedTask` items on supervised workers.

    Results come back as a ``{task.key: result}`` dict, so merging is
    independent of scheduling — the caller's merge order alone decides
    the output order, preserving the campaign engine's byte-identical-
    for-any-job-count guarantee.
    """

    def __init__(self, jobs: int, mp_context, task_fn, serial_fn,
                 init_fn=None, init_args: tuple = (),
                 retries: int = DEFAULT_RETRIES,
                 timeout: float | None = None,
                 backoff: float = 0.1,
                 max_pool_failures: int = DEFAULT_MAX_POOL_FAILURES,
                 stop_check=None):
        self.jobs = max(1, jobs)
        self.mp_context = mp_context
        self.task_fn = task_fn
        self.serial_fn = serial_fn
        self.init_fn = init_fn
        self.init_args = init_args
        self.retries = max(0, retries)
        self.timeout = timeout
        self.backoff = backoff
        self.max_pool_failures = max(1, max_pool_failures)
        #: optional () -> bool polled between supervision sweeps; True
        #: stops dispatching, kills the pool, and returns the results
        #: collected so far (cooperative cancellation/drain — the
        #: campaign service's shutdown path)
        self.stop_check = stop_check
        self.stopped = False
        self.degraded = False
        self._workers: list[_Worker] = []
        self._queue: deque[SupervisedTask] = deque()
        self._results: dict = {}
        self._on_result = None
        self._failures = 0   # consecutive deaths without progress

    # -- public API ----------------------------------------------------------

    def run(self, tasks, on_result=None) -> dict:
        """Run every task; returns ``{key: result}`` (every key of the
        input tasks, or of their split descendants, is present)."""
        self._queue = deque(tasks)
        now = time.monotonic()
        for task in self._queue:
            task.enqueued_at = now
        self._results = {}
        self._on_result = on_result
        self._failures = 0
        self.stopped = False
        try:
            self._loop()
        finally:
            self._stop_workers()
        return self._results

    # -- event loop ----------------------------------------------------------

    def _loop(self) -> None:
        while True:
            if self.stop_check is not None and self.stop_check():
                self.stopped = True
                log.info("stop requested; abandoning %d queued and "
                         "in-flight task(s)", len(self._queue)
                         + sum(1 for w in self._workers
                               if w.task is not None))
                return
            if self.degraded:
                self._drain_serial()
                return
            busy = sum(1 for w in self._workers if w.task is not None)
            if not self._queue and not busy:
                return
            self._top_up(busy)
            self._dispatch()
            self._sweep()
            self._check_timeouts()

    def _top_up(self, busy: int) -> None:
        want = min(self.jobs, busy + len(self._queue))
        while len(self._workers) < want:
            self._workers.append(self._spawn())

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self.mp_context.Pipe()
        process = self.mp_context.Process(
            target=_worker_main,
            args=(child_conn, self.init_fn, self.init_args, self.task_fn),
            daemon=True)
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    def _dispatch(self) -> None:
        for worker in list(self._workers):
            if worker.task is not None or not self._queue:
                continue
            task = self._queue.popleft()
            if task.enqueued_at is not None:
                obs.histogram(
                    "campaign_queue_wait_seconds",
                    help="time tasks spent queued before dispatch"
                ).observe(time.monotonic() - task.enqueued_at)
            worker.task = task
            worker.started = time.monotonic() if worker.ready else None
            try:
                worker.conn.send(("task", task.key, task.payload))
            except Exception:
                self._worker_died(worker)

    def _sweep(self) -> None:
        objects = []
        owner = {}
        for worker in self._workers:
            objects.append(worker.conn)
            owner[worker.conn] = worker
            objects.append(worker.process.sentinel)
            owner[worker.process.sentinel] = worker
        if not objects:
            return
        flagged = []
        for obj in connection.wait(objects, timeout=_TICK):
            worker = owner[obj]
            if worker not in flagged:
                flagged.append(worker)
        for worker in flagged:
            if worker not in self._workers:
                continue
            alive_pipe = self._drain_conn(worker)
            if not alive_pipe or not worker.process.is_alive():
                self._worker_died(worker)

    def _drain_conn(self, worker: _Worker) -> bool:
        """Deliver pending messages; False once the pipe is dead."""
        try:
            while worker.conn.poll(0):
                self._handle_message(worker, worker.conn.recv())
        except (EOFError, OSError):
            return False
        return True

    def _handle_message(self, worker: _Worker, message) -> None:
        kind = message[0]
        if kind == "ready":
            worker.ready = True
            if worker.task is not None and worker.started is None:
                worker.started = time.monotonic()
        elif kind == "init_error":
            raise WorkerInitError(message[1])
        elif kind == "ok":
            task, started = worker.task, worker.started
            worker.task, worker.started = None, None
            if task is not None:
                self._failures = 0
                if started is not None:
                    obs.histogram(
                        "campaign_chunk_seconds",
                        help="wall time of one dispatched task"
                    ).observe(time.monotonic() - started)
                self._record(task, message[2])
        elif kind == "error":
            task, worker.task, worker.started = worker.task, None, None
            if task is not None:
                self._penalize(task, message[2])

    def _check_timeouts(self) -> None:
        if self.timeout is None:
            return
        now = time.monotonic()
        for worker in list(self._workers):
            if worker.task is None or worker.started is None:
                continue
            if now - worker.started <= self.timeout:
                continue
            task, worker.task = worker.task, None
            self._workers.remove(worker)
            log.warning("task %s exceeded the %.3gs deadline; killing "
                        "its worker", task.key, self.timeout)
            self._kill_worker(worker)
            obs.counter("campaign_timeouts_total",
                        help="tasks killed at the wall-clock deadline"
                        ).inc()
            # A slow task is not a sick pool: no _failures increment.
            self._penalize(task, f"timed out after {self.timeout:g}s")

    # -- failure policy ------------------------------------------------------

    def _worker_died(self, worker: _Worker) -> None:
        if worker not in self._workers:
            return
        self._workers.remove(worker)
        exitcode = worker.process.exitcode
        self._kill_worker(worker)
        task, worker.task = worker.task, None
        obs.counter("campaign_worker_deaths_total",
                    help="worker processes that died mid-run").inc()
        if task is not None:
            self._penalize(task, f"worker died (exit code {exitcode})")
        self._failures += 1
        if self._failures >= self.max_pool_failures:
            self.degraded = True
            log.warning("%d consecutive worker failures; degrading to "
                        "in-process serial execution for the remaining "
                        "tasks", self._failures)
        else:
            time.sleep(min(self.backoff * (2 ** (self._failures - 1)),
                           2.0))

    def _penalize(self, task: SupervisedTask, reason: str) -> None:
        parts = task.split() if task.split is not None else None
        if parts:
            log.warning("splitting task %s into %d singletons to "
                        "isolate a failure (%s)",
                        task.key, len(parts), reason)
            obs.counter("campaign_task_splits_total",
                        help="batch tasks split into singletons").inc()
            now = time.monotonic()
            for part in parts:
                part.enqueued_at = now
            self._queue.extend(parts)
            return
        task.attempts += 1
        if task.attempts > self.retries:
            log.warning("task %s permanently failed after %d attempt(s)"
                        ": %s", task.key, task.attempts, reason)
            obs.counter("campaign_task_failures_total",
                        help="tasks converted to permanent failure"
                        ).inc()
            self._record(task, task.fail(reason))
        else:
            obs.counter("campaign_retries_total",
                        help="task re-dispatches after a failure").inc()
            task.enqueued_at = time.monotonic()
            self._queue.append(task)

    def _record(self, task: SupervisedTask, result) -> None:
        self._results[task.key] = result
        if self._on_result is not None:
            self._on_result(task, result)

    # -- degraded mode -------------------------------------------------------

    def _drain_serial(self) -> None:
        self._stop_workers(requeue=True)
        while self._queue:
            if self.stop_check is not None and self.stop_check():
                self.stopped = True
                return
            task = self._queue.popleft()
            if task.key in self._results:
                continue
            if task.attempts:
                # Already took a worker down once; never re-run it in
                # the supervising process.
                self._record(task, task.fail(
                    "skipped in degraded serial mode after worker "
                    "failures"))
                continue
            try:
                result = self.serial_fn(task.payload)
            except Exception as exc:
                result = task.fail(f"{type(exc).__name__}: {exc}")
            self._record(task, result)

    # -- teardown ------------------------------------------------------------

    def _kill_worker(self, worker: _Worker) -> None:
        try:
            worker.conn.close()
        except Exception:
            pass
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=1.0)

    def _stop_workers(self, requeue: bool = False) -> None:
        for worker in self._workers:
            if requeue and worker.task is not None:
                worker.task.enqueued_at = time.monotonic()
                self._queue.append(worker.task)
                worker.task = None
            _safe_send(worker.conn, ("stop",))
        for worker in self._workers:
            worker.process.join(timeout=0.25)
            self._kill_worker(worker)
        self._workers = []
