"""Branch-error classification (paper Section 2, Figure 1).

A single-bit soft error at a direct branch sends control somewhere; the
*category* of the resulting branch-error depends on where, relative to
the program's basic-block structure:

=========  ==========================================================
category   landing
=========  ==========================================================
A          mistaken branch: the branch direction flips (flag fault),
           or an address fault lands exactly where the other
           direction would have gone
B          beginning of the branch's own basic block
C          middle (including the end) of the branch's own block
D          beginning of another basic block
E          middle of another basic block
F          a non-code memory region (caught by the execute-disable
           bit / memory protection — "detected by hardware")
NO_ERROR   the fault does not change the executed path (address fault
           on a not-taken branch; landing on the correct target; flag
           flip that does not change the condition's value)
=========  ==========================================================
"""

from __future__ import annotations

import enum

from repro.isa.flags import NUM_FLAG_BITS, evaluate_cond
from repro.isa.instruction import WORD_SIZE, Instruction
from repro.isa.opcodes import Kind
from repro.cfg.graph import ControlFlowGraph


class Category(enum.Enum):
    """Branch-error categories, plus the harmless bucket."""

    A = "A"
    B = "B"
    C = "C"
    D = "D"
    E = "E"
    F = "F"
    NO_ERROR = "no_error"


SDC_CATEGORIES = (Category.A, Category.B, Category.C, Category.D,
                  Category.E)
ALL_ERROR_CATEGORIES = SDC_CATEGORIES + (Category.F,)


def classify_landing(cfg: ControlFlowGraph, branch_pc: int,
                     landing: int, correct_target: int,
                     other_direction: int | None = None) -> Category:
    """Classify where a corrupted branch lands.

    ``correct_target`` is the logic target of this execution;
    ``other_direction`` is where the branch's *other* direction goes
    (the fallthrough of a taken conditional), if any — landing exactly
    there is a mistaken branch (category A).
    """
    if landing == correct_target:
        return Category.NO_ERROR
    if other_direction is not None and landing == other_direction:
        return Category.A
    own_block = cfg.block_containing(branch_pc)
    landing_block = cfg.block_containing(landing)
    if landing_block is None:
        return Category.F
    if own_block is not None and landing_block.start == own_block.start:
        return (Category.B if landing == landing_block.start
                else Category.C)
    return (Category.D if landing == landing_block.start
            else Category.E)


def corrupted_target(branch_pc: int, instr: Instruction, bit: int) -> int:
    """Target of a direct branch whose encoded offset bit flipped.

    The offset field is the low 16 bits of the word, so flipping
    encoded bit ``bit`` flips bit ``bit`` of the two's-complement
    offset (in words).
    """
    raw = (instr.imm & 0xFFFF) ^ (1 << bit)
    new_imm = raw - 0x10000 if raw & 0x8000 else raw
    return branch_pc + WORD_SIZE + new_imm * WORD_SIZE


def classify_offset_fault(cfg: ControlFlowGraph, branch_pc: int,
                          instr: Instruction, bit: int,
                          taken: bool) -> Category:
    """Category of a 1-bit address-offset fault at a dynamic branch
    execution.

    For a not-taken conditional, the (corrupted) target is never used:
    no error — the dominant harmless cell of the paper's Figure 2.
    """
    kind = instr.meta.kind
    two_way = kind in (Kind.BRANCH_COND, Kind.BRANCH_REG)
    if two_way and not taken:
        return Category.NO_ERROR
    intended = instr.branch_target(branch_pc)
    landing = corrupted_target(branch_pc, instr, bit)
    other = branch_pc + WORD_SIZE if two_way else None
    return classify_landing(cfg, branch_pc, landing, intended, other)


def classify_flag_fault(instr: Instruction, flags: int,
                        flag_bit: int) -> Category:
    """Category of a 1-bit FLAGS fault at a conditional branch: A when
    the evaluated direction flips, harmless otherwise."""
    cond = instr.meta.cond
    if cond is None:
        return Category.NO_ERROR
    before = evaluate_cond(cond, flags)
    after = evaluate_cond(cond, flags ^ (1 << flag_bit))
    return Category.A if before != after else Category.NO_ERROR


def flag_fault_universe(instr: Instruction) -> int:
    """Number of flag bits in a branch's fault universe.

    Only flag-reading conditionals are exposed to flag faults; a flip
    of a flag the branch does not read is counted as harmless by
    :func:`classify_flag_fault`, so the universe is all flag bits.
    """
    return NUM_FLAG_BITS if instr.meta.cond is not None else 0
