"""Fault-injection campaigns and outcome classification.

A campaign takes a guest program, a set of single-fault specs, and an
execution configuration (native / statically instrumented / DBT with a
checking technique), runs one experiment per fault, and classifies each
outcome:

==================  =====================================================
outcome             meaning
==================  =====================================================
DETECTED_SIGNATURE  a CHECK_SIG fired (or ECCA's assertion div trapped)
DETECTED_HARDWARE   a protection mechanism caught it (NX bit, alignment,
                    illegal instruction, memory protection) — the
                    paper's category-F detection path
SDC                 run completed with wrong output: silent data
                    corruption, the failure mode the techniques exist
                    to kill
BENIGN              run completed with correct output (fault masked)
HANG                exceeded the step budget (the paper: "a branch-error
                    may lead the program to an infinite loop", which
                    RET/END policies may never report)
INFRA_ERROR         the *harness* failed, not the guest: the run raised,
                    its worker died, or it blew the wall-clock deadline.
                    Infra errors are quarantined per spec, reported
                    separately, and excluded from the harmful
                    denominator of ``detection_rate`` — they say nothing
                    about the technique under test
RECOVERED           (``recover=True``) a detection triggered checkpoint
                    rollback and the re-executed run completed with
                    correct output — the fault was survived
RECOVERY_FAILED     (``recover=True``) recovery was attempted but the
                    run still ended detected/hanging/wrong: retry
                    budget exhausted, or re-execution went bad anyway
==================  =====================================================
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro import obs
from repro.isa.program import Program
from repro.machine import Cpu, StopReason
from repro.machine.faults import FaultKind
from repro.cfg import build_cfg
from repro.checking import Policy, UpdateStyle, make_technique
from repro.dbt import Dbt
from repro.instrument import InstrumentedProgram, StaticRewriter
from repro.machine.profile import BranchProfiler
from repro.faults.classify import Category
from repro.faults import cache as run_cache
from repro.faults.injector import (CacheFaultSpec, CacheLevelInjector,
                                   DbtInjector, DirectionFault, FaultSpec,
                                   NativeInjector, RedirectFault)


class Outcome(enum.Enum):
    DETECTED_SIGNATURE = "detected_signature"
    DETECTED_HARDWARE = "detected_hardware"
    SDC = "sdc"
    BENIGN = "benign"
    HANG = "hang"
    INFRA_ERROR = "infra_error"
    #: detection triggered checkpoint rollback (repro.recovery) and the
    #: re-executed run completed with correct output — the fault was
    #: survived, not just reported
    RECOVERED = "recovered"
    #: recovery was attempted but the run still ended wrong: the retry
    #: budget ran out, or re-execution produced bad output anyway
    RECOVERY_FAILED = "recovery_failed"


@dataclass
class RunRecord:
    """Result of one (possibly fault-injected) run."""

    outcome: Outcome
    stop_reason: str
    outputs: tuple
    cycles: int
    icount: int
    #: instructions executed between fault application and the error
    #: report (None when not detected or not measurable) — the
    #: detection-latency metric of the fail-stop discussion (Section 6)
    detection_latency: int | None = None
    #: same latency in model cycles (None when not detected, or for
    #: scheduled data faults, which carry no cycle stamp)
    detection_latency_cycles: int | None = None
    #: harness failure detail for INFRA_ERROR records (exception type,
    #: message, and the spec's repr); None for real outcomes
    error: str | None = None
    #: rollbacks/restarts performed by the recovery manager (0 when
    #: recovery is off or never triggered)
    attempts: int = 0
    #: total instructions discarded across rollbacks (stop - target
    #: checkpoint); None when recovery never triggered
    rollback_distance_icount: int | None = None
    #: total cycles of discarded work re-executed after rollbacks;
    #: None when recovery never triggered
    reexec_cycles: int | None = None


def infra_error_record(spec, reason: str) -> RunRecord:
    """A quarantined harness failure standing in for a real run."""
    return RunRecord(outcome=Outcome.INFRA_ERROR,
                     stop_reason=f"infra-error: {reason}",
                     outputs=((), ()), cycles=0, icount=0,
                     error=f"{reason} [spec {spec!r}]")


@dataclass
class Golden:
    """Reference (fault-free) behaviour of a configuration."""

    outputs: tuple
    exit_code: int
    icount: int
    cycles: int

    @property
    def step_budget(self) -> int:
        return self.icount * 3 + 20_000


@dataclass
class PipelineConfig:
    """How the program runs: which pipeline, technique and policy."""

    pipeline: str = "dbt"                 #: "native" | "static" | "dbt"
    technique: str | None = None          #: None = no checking
    policy: Policy = Policy.ALLBB
    update_style: UpdateStyle = UpdateStyle.JCC
    dataflow: bool = False                #: SWIFT-style duplication
    backend: str = "interp"               #: execution backend (repro.exec)
    #: checkpoint/rollback recovery (repro.recovery): detections roll
    #: the run back and re-execute instead of ending it
    recover: bool = False
    checkpoint_interval: int = 4096       #: instructions between checkpoints
    max_retries: int = 3                  #: rollbacks before giving up
    #: multithreaded guest machine (repro.threads): run under the
    #: deterministic preemptive scheduler; requires the native or
    #: static pipeline
    threads: bool = False
    quantum: int = 500                    #: retired instructions per turn
    sched_policy: str = "rr"              #: "rr" | "priority"
    sched_seed: int = 0                   #: tie-break seed
    #: context switches swap signature registers (the correct MT mode);
    #: False models a runtime without per-thread checker state and
    #: reproduces the cross-context escapes (docs/threads.md)
    sig_swap: bool = True

    def label(self) -> str:
        tech = self.technique or "none"
        label = f"{self.pipeline}/{tech}/{self.policy.value}"
        if self.dataflow:
            label += "+df"
        if self.backend != "interp":
            label += f"@{self.backend}"
        if self.recover:
            label += "+rec"
        if self.threads:
            label += f"+mt:{self.sched_policy}q{self.quantum}"
            if self.sched_seed:
                label += f"s{self.sched_seed}"
            if not self.sig_swap:
                label += "-sigswap"
        return label


class Pipeline:
    """Runs a program (optionally fault-injected) per a configuration."""

    def __init__(self, program: Program, config: PipelineConfig,
                 technique_factory=None):
        self.program = program
        self.config = config
        #: optional override producing the checking technique instance;
        #: lets the fuzzing oracle run deliberately-broken techniques
        #: (e.g. one skipped GEN_SIG update) through the stock pipeline.
        self.technique_factory = technique_factory
        if config.threads and config.pipeline == "dbt":
            raise ValueError(
                "the multithreaded machine requires the native or "
                "static pipeline (the DBT tier does not context-switch "
                "translated state)")
        self._instrumented: InstrumentedProgram | None = None
        self._mt_spawn_table: dict | None = None
        self._mt_resync: dict | None = None
        self._mt_sig_regs: tuple = ()
        if config.pipeline == "static" and config.technique:
            cfg = build_cfg(program)
            technique = self._make_technique(cfg=cfg)
            self._instrumented = StaticRewriter(
                technique, config.policy).rewrite(program)
            if config.threads:
                self._prepare_mt(technique)
        if technique_factory is not None:
            # Custom techniques must not seed (or read) the shared
            # golden-run cache keyed only on (program, config).
            self.golden = self._golden_run()
            return
        # Golden runs are deterministic per (program image, config), so
        # identical pipelines share one cached reference execution.
        digest = run_cache.program_digest(program)
        key = run_cache.config_key(config)
        golden = run_cache.get_golden(digest, key)
        if golden is None:
            obs.counter("campaign_golden_cache_total",
                        help="golden-run cache lookups",
                        result="miss").inc()
            golden = self._golden_run()
            run_cache.put_golden(digest, key, golden)
        else:
            obs.counter("campaign_golden_cache_total",
                        help="golden-run cache lookups",
                        result="hit").inc()
        self.golden = golden

    def _make_technique(self, cfg=None):
        config = self.config
        if not config.technique:
            return None
        if self.technique_factory is not None:
            return self.technique_factory(config, cfg)
        if cfg is not None:
            return make_technique(config.technique,
                                  update_style=config.update_style,
                                  cfg=cfg)
        return make_technique(config.technique,
                              update_style=config.update_style)

    # -- execution -----------------------------------------------------------

    def _golden_run(self) -> Golden:
        record = self.run(None, max_steps=50_000_000)
        if record.outcome is not Outcome.BENIGN:
            raise RuntimeError(
                f"golden run failed under {self.config.label()}: "
                f"{record.outcome} ({record.stop_reason})")
        return Golden(outputs=record.outputs, exit_code=0,
                      icount=record.icount, cycles=record.cycles)

    def run(self, fault: FaultSpec | CacheFaultSpec | None,
            max_steps: int | None = None, probe=None) -> RunRecord:
        """One run; ``fault=None`` is the golden/reference run.

        ``probe`` is an optional deep-observability attachment (a
        :class:`repro.forensics.divergence.RunProbe`): the pipeline
        binds it to the run's CPU and deposits the run internals on it.
        The campaign hot path always passes None, which costs nothing.
        """
        registry = obs.get_registry()
        if registry is None:
            return self._run(fault, max_steps, probe)
        with registry.histogram(
                "campaign_run_seconds",
                help="wall time of one pipeline run",
                pipeline=self.config.pipeline).time():
            record = self._run(fault, max_steps, probe)
        registry.counter("campaign_runs_total",
                         help="pipeline runs by classified outcome",
                         outcome=record.outcome.value).inc()
        if record.detection_latency is not None:
            policy = self.config.policy.value
            registry.histogram(
                "campaign_detection_latency_instructions",
                help="instructions from fault application to detection",
                policy=policy).observe(record.detection_latency)
            if record.detection_latency_cycles is not None:
                registry.histogram(
                    "campaign_detection_latency_cycles",
                    help="cycles from fault application to detection",
                    policy=policy).observe(
                        record.detection_latency_cycles)
        if record.outcome in (Outcome.RECOVERED, Outcome.RECOVERY_FAILED):
            policy = self.config.policy.value
            registry.counter(
                "campaign_recovery_total",
                help="recovery-triggering runs by final result",
                technique=self.config.technique or "none",
                policy=policy,
                result=("recovered"
                        if record.outcome is Outcome.RECOVERED
                        else "failed")).inc()
            if record.rollback_distance_icount is not None:
                registry.histogram(
                    "campaign_rollback_distance_instructions",
                    help="instructions discarded by rollbacks per run",
                    policy=policy).observe(
                        record.rollback_distance_icount)
            if record.reexec_cycles is not None:
                registry.histogram(
                    "campaign_reexec_cycles",
                    help="cycles of discarded work re-executed per run",
                    policy=policy).observe(record.reexec_cycles)
        return record

    def _run(self, fault: FaultSpec | CacheFaultSpec | None,
             max_steps: int | None = None, probe=None) -> RunRecord:
        if fault is not None and hasattr(fault, "chaos_run"):
            # Harness-testing specs (repro.faults.chaos) bypass real
            # injection and misbehave on purpose.
            return fault.chaos_run(self)
        if max_steps is None:
            max_steps = self.golden.step_budget
        config = self.config
        if config.pipeline == "dbt":
            return self._run_dbt(fault, max_steps, probe)
        if config.pipeline == "static" and self._instrumented is not None:
            return self._run_static(fault, max_steps, probe)
        return self._run_native(fault, max_steps, probe)

    def _finish(self, cpu: Cpu, stop, detected: bool) -> RunRecord:
        golden = getattr(self, "golden", None)
        outputs = (tuple(cpu.output), tuple(cpu.output_values))
        if detected:
            outcome = Outcome.DETECTED_SIGNATURE
        elif stop.reason is StopReason.FAULT:
            outcome = Outcome.DETECTED_HARDWARE
        elif stop.reason in (StopReason.STEP_LIMIT,
                             StopReason.CYCLE_LIMIT):
            outcome = Outcome.HANG
        elif golden is None:
            # golden run itself: HALTED with exit 0 counts as benign
            outcome = (Outcome.BENIGN if stop.exit_code == 0
                       else Outcome.SDC)
        elif outputs == golden.outputs and stop.exit_code == 0:
            outcome = Outcome.BENIGN
        else:
            outcome = Outcome.SDC
        return RunRecord(outcome=outcome, stop_reason=str(stop),
                         outputs=outputs, cycles=cpu.cycles,
                         icount=cpu.icount)

    def _install_backend(self, cpu: Cpu) -> None:
        if self.config.backend != "interp":
            from repro.exec import install_backend
            install_backend(cpu, self.config.backend)

    # -- multithreaded machine (repro.threads) -------------------------------

    def _prepare_mt(self, technique) -> None:
        """Static-pipeline MT support, built once per Pipeline:
        spawn-time signature initialization (a fresh thread must enter
        its worker with the technique's prologue invariant already
        established) and — without signature swapping — the
        statically-expected resync table the escape mode overwrites
        signature registers from at every switch-in."""
        from repro.threads import build_resync_table, build_spawn_sig_table
        ip = self._instrumented
        self._mt_sig_regs = tuple(technique.signature_registers)
        self._mt_spawn_table = build_spawn_sig_table(ip, technique)
        if not self.config.sig_swap:
            # Worker functions have no CFG predecessors: seed the
            # traversal with the spawn-time values at each potential
            # entry, mapped to instrumented addresses.
            entry_states = {ip.block_map[old]: regs
                            for old, regs in self._mt_spawn_table.items()
                            if old in ip.block_map}
            self._mt_resync = build_resync_table(
                ip, self._mt_sig_regs, entry_states=entry_states)

    def _make_machine(self, cpu: Cpu):
        from repro.threads import ThreadedMachine
        config = self.config
        ip = self._instrumented
        entry_map = None
        if ip is not None:
            # SPAWN entry immediates hold original addresses; the
            # rewriter relocated the code, so the machine plays loader.
            def entry_map(old, _ip=ip):
                return _ip.block_map.get(old, _ip.instr_map.get(old, old))
        return ThreadedMachine(
            cpu, quantum=config.quantum, policy=config.sched_policy,
            seed=config.sched_seed, sig_swap=config.sig_swap,
            sig_regs=self._mt_sig_regs,
            resync_table=self._mt_resync,
            entry_map=entry_map,
            spawn_sig_init=self._mt_spawn_table)

    # -- checkpoint/rollback recovery (repro.recovery) -----------------------

    def _recovery_manager(self, cpu, fault, injector, max_steps, step,
                          classify, epoch=None, entry_restart=None,
                          reinstall=None, machine=None):
        from repro.recovery import RecoveryManager
        config = self.config
        extra_capture = extra_restore = None
        if machine is not None:
            # Checkpoints must capture every thread, not just the one
            # occupying the CPU: saved contexts, the ready queue and
            # its RNG, mutexes, the quantum in flight.
            extra_capture = machine.snapshot_sched_state
            extra_restore = machine.restore_sched_state
        return RecoveryManager(
            cpu, step=step, classify=classify, budget=max_steps,
            interval=config.checkpoint_interval,
            max_retries=config.max_retries,
            injector=injector, reinstall=reinstall,
            persistent=getattr(fault, "persistent", False),
            epoch=epoch, entry_restart=entry_restart,
            extra_capture=extra_capture, extra_restore=extra_restore)

    def _apply_recovery(self, record: RunRecord, report,
                        probe=None) -> RunRecord:
        """Fold a RecoveryReport into the run's record and outcome.

        A run whose detections (or watchdog trips) were all absorbed by
        rollback ends BENIGN at classification time — that is a
        successful recovery.  Anything else that still triggered
        recovery machinery ends RECOVERY_FAILED: the retry budget ran
        out, or re-execution still produced wrong output.  Runs where
        recovery never triggered keep their ordinary outcome.
        """
        if probe is not None:
            probe.recovery = report
        record.attempts = report.attempts
        if report.triggers == 0:
            return record
        record.rollback_distance_icount = report.rollback_icount
        record.reexec_cycles = report.reexec_cycles
        record.outcome = (Outcome.RECOVERED
                          if record.outcome is Outcome.BENIGN
                          else Outcome.RECOVERY_FAILED)
        return record

    def _attach_fault(self, cpu: Cpu, machine, fault):
        """Bind one fault spec to the run; returns the injector-ish
        object holding fired/occurrence state (or None)."""
        from repro.faults.injector import (RegisterFaultSpec,
                                           SchedFaultSpec, SchedInjector)
        if isinstance(fault, SchedFaultSpec):
            if machine is None:
                raise ValueError(
                    "scheduler-state faults require threads=True")
            injector = SchedInjector(fault)
            machine.sched_fault = injector
            return injector
        if isinstance(fault, RegisterFaultSpec):
            fault.install(cpu)
            return None
        if fault is None:
            return None
        if self._instrumented is not None:
            ip = self._instrumented
            injector = NativeInjector(
                fault, ip.program,
                site_map=lambda pc: ip.instr_map.get(pc, -1),
                landing_map=self._static_landing,
                noncode_target=ip.program.data_base + 0x40)
        else:
            injector = NativeInjector(fault, self.program)
        injector.install(cpu)
        return injector

    def _mt_classify(self, machine, classify):
        """Wrap a recovery classifier with the deadlock rule: a starved
        machine returns STEP_LIMIT *without consuming budget*, so
        treating it as "limit" would spin the watchdog forever.  A
        deadlock is final for this schedule — roll back immediately."""
        if machine is None:
            return classify

        def classify_mt(stop):
            if machine.deadlocked:
                machine.deadlocked = False
                return "detected"
            return classify(stop)
        return classify_mt

    def _run_native(self, fault, max_steps, probe=None) -> RunRecord:
        cpu = Cpu()
        self._install_backend(cpu)
        cpu.load_program(self.program)
        machine = self._make_machine(cpu) if self.config.threads else None
        injector = self._attach_fault(cpu, machine, fault)
        if probe is not None:
            probe.bind(cpu, injector=injector)
            probe.machine = machine
        if machine is None:
            step = lambda n: cpu.run(max_steps=n)          # noqa: E731
        else:
            step = lambda n: machine.run(max_steps=n)      # noqa: E731
        if self.config.recover and fault is not None:
            def classify(stop):
                if stop.reason is StopReason.FAULT:
                    return "detected"
                if stop.reason in (StopReason.STEP_LIMIT,
                                   StopReason.CYCLE_LIMIT):
                    return "limit"
                return "done"

            reinstall = None
            if injector is not None and hasattr(injector, "install"):
                reinstall = lambda: injector.install(cpu)  # noqa: E731
            manager = self._recovery_manager(
                cpu, fault, injector, max_steps,
                step=step, classify=self._mt_classify(machine, classify),
                reinstall=reinstall, machine=machine)
            stop = manager.execute()
            record = self._finish(cpu, stop, detected=False)
            return self._apply_recovery(record, manager.report, probe)
        stop = step(max_steps)
        return self._finish(cpu, stop, detected=False)

    def _run_static(self, fault, max_steps, probe=None) -> RunRecord:
        ip = self._instrumented
        cpu = Cpu()
        self._install_backend(cpu)
        cpu.load_program(ip.program)
        machine = self._make_machine(cpu) if self.config.threads else None
        injector = self._attach_fault(cpu, machine, fault)
        if probe is not None:
            probe.bind(cpu, injector=injector, instrumented=ip)
            probe.machine = machine
        if machine is None:
            step = lambda n: cpu.run(max_steps=n)          # noqa: E731
        else:
            step = lambda n: machine.run(max_steps=n)      # noqa: E731
        report = None
        if self.config.recover and fault is not None:
            def classify(stop):
                if stop.reason is StopReason.FAULT:
                    return "detected"
                if stop.reason in (StopReason.STEP_LIMIT,
                                   StopReason.CYCLE_LIMIT):
                    return "limit"
                return "detected" if cpu.cfc_error else "done"

            reinstall = None
            if injector is not None and hasattr(injector, "install"):
                reinstall = lambda: injector.install(cpu)  # noqa: E731
            manager = self._recovery_manager(
                cpu, fault, injector, max_steps,
                step=step, classify=self._mt_classify(machine, classify),
                reinstall=reinstall, machine=machine)
            stop = manager.execute()
            report = manager.report
        else:
            stop = step(max_steps)
        detected = cpu.cfc_error or (
            stop.reason is StopReason.FAULT
            and stop.fault is FaultKind.DIV_BY_ZERO
            and stop.pc in ip.check_addresses)
        record = self._finish(cpu, stop, detected)
        if report is not None:
            return self._apply_recovery(record, report, probe)
        if (detected and injector is not None
                and injector.fired_icount is not None):
            record.detection_latency = cpu.icount - injector.fired_icount
            if injector.fired_cycles is not None:
                record.detection_latency_cycles = (
                    cpu.cycles - injector.fired_cycles)
        return record

    def _static_landing(self, guest_addr: int) -> int | None:
        ip = self._instrumented
        if guest_addr in ip.block_map:
            return ip.block_map[guest_addr]
        return ip.instr_map.get(guest_addr)

    def _run_dbt(self, fault, max_steps, probe=None) -> RunRecord:
        from repro.faults.injector import RegisterFaultSpec
        config = self.config
        technique = self._make_technique()
        dbt = Dbt(self.program, technique=technique, policy=config.policy,
                  dataflow=config.dataflow)
        self._install_backend(dbt.cpu)
        injector = None
        if isinstance(fault, CacheFaultSpec):
            injector = CacheLevelInjector(fault, dbt)
            injector.install()
        elif isinstance(fault, RegisterFaultSpec):
            fault.install(dbt.cpu)
        elif fault is not None:
            injector = DbtInjector(fault, dbt)
            injector.install()
        if probe is not None:
            probe.bind(dbt.cpu, injector=injector, dbt=dbt)
        if config.recover and fault is not None:
            return self._run_dbt_recovered(dbt, fault, injector,
                                           max_steps, probe)
        result = dbt.run(max_steps=max_steps)
        detected = result.detected_error or result.detected_dataflow
        record = self._finish(dbt.cpu, result.stop, detected)
        if (detected and injector is not None
                and injector.fired_icount is not None):
            record.detection_latency = (dbt.cpu.icount
                                        - injector.fired_icount)
            if injector.fired_cycles is not None:
                record.detection_latency_cycles = (
                    dbt.cpu.cycles - injector.fired_cycles)
        return record

    def _run_dbt_recovered(self, dbt, fault, injector, max_steps,
                           probe) -> RunRecord:
        """DBT run under the recovery manager.

        The entry stub is primed eagerly so the entry checkpoint's PC
        already points into the translation cache; checkpoints record
        the DBT's flush epoch, and an entry restart after a flush
        re-primes translation from scratch (stale-translation hazard:
        the DBT's raw-write watcher deliberately ignores cache writes,
        so a rollback that rewrites SMC-dirtied guest pages relies on
        the epoch guard, not on write monitoring).
        """
        if dbt._entry_stub is None:
            dbt._entry_stub = dbt._emit_entry_stub()
            dbt.cpu.pc = dbt._entry_stub

        def entry_restart():
            dbt._flush_translations()
            dbt._entry_stub = dbt._emit_entry_stub()
            dbt.cpu.pc = dbt._entry_stub

        def classify(result):
            if result.detected_error or result.detected_dataflow:
                return "detected"
            reason = result.stop.reason
            if reason is StopReason.FAULT:
                return "detected"
            if reason in (StopReason.STEP_LIMIT, StopReason.CYCLE_LIMIT):
                return "limit"
            return "done"

        if isinstance(injector, DbtInjector):
            def reinstall():
                # Site addresses are stale after a cache flush; force a
                # re-enumeration against the fresh translations.
                injector._sites.clear()
                injector._known_translations = -1
                injector.install()
        elif injector is not None:
            reinstall = injector.install
        else:
            reinstall = None

        manager = self._recovery_manager(
            dbt.cpu, fault, injector, max_steps,
            step=lambda n: dbt._run(n, None), classify=classify,
            epoch=lambda: dbt.flushes, entry_restart=entry_restart,
            reinstall=reinstall)
        result = manager.execute()
        detected = result.detected_error or result.detected_dataflow
        record = self._finish(dbt.cpu, result.stop, detected)
        return self._apply_recovery(record, manager.report, probe)


# -- campaign fault generation ---------------------------------------------------


@dataclass
class CategoryFaults:
    """Fault specs bucketed by intended branch-error category."""

    by_category: dict[Category, list[FaultSpec]] = field(
        default_factory=dict)

    def total(self) -> int:
        return sum(len(v) for v in self.by_category.values())


def _profile_program(program: Program, max_steps: int, mt=None):
    """Profiled reference run feeding fault generation (cached).

    ``mt`` (a :class:`PipelineConfig` with ``threads=True``, or None)
    selects a *threaded* profiling run: on an MT program the worker
    bodies only execute under the multithreaded machine, so a plain
    native profile would never see their branches and every generated
    fault would land in the main thread.  Threaded profiles are cached
    under a composite key so they never collide with the single-
    threaded profile of the same image.
    """
    from repro.machine import run_native
    digest = run_cache.program_digest(program)
    profile_key: object = max_steps
    threaded = mt is not None and getattr(mt, "threads", False)
    if threaded:
        profile_key = (max_steps, "mt", mt.quantum, mt.sched_policy,
                       mt.sched_seed)
    profiler = run_cache.get_profile(digest, profile_key)
    if profiler is not None:
        return profiler
    profiler = BranchProfiler()
    if threaded:
        from repro.threads import ThreadedMachine
        cpu = Cpu()
        cpu.load_program(program, executable_text=True)
        cpu.branch_profiler = profiler
        machine = ThreadedMachine(cpu, quantum=mt.quantum,
                                  policy=mt.sched_policy,
                                  seed=mt.sched_seed)
        stop = machine.run(max_steps=max_steps)
    else:
        _, stop = run_native(program, max_steps=max_steps,
                             profiler=profiler)
    if stop.reason is not StopReason.HALTED:
        raise RuntimeError(f"profiling run failed: {stop}")
    run_cache.put_profile(digest, profile_key, profiler)
    return profiler


def generate_category_faults(program: Program, per_category: int = 20,
                             seed: int = 2006,
                             max_steps: int = 50_000_000,
                             exclude_exit_block_middles: bool = True,
                             mt=None) -> CategoryFaults:
    """Build per-category fault specs from a profiled native run.

    Category A uses direction-inversion faults at executed conditional
    branches; B..F use forced landings chosen so the classifier agrees
    with the intended category.

    ``exclude_exit_block_middles`` (default on) keeps C/E landings out
    of the *middle of program-exit blocks*: control that lands directly
    on the exit syscall terminates before reaching any CHECK_SIG, which
    the paper's Assumption 2 ("any control-flow error must finally
    reach at least one CHECK_SIG function") explicitly excludes from
    the checkable universe.  Pass False to measure that residual.

    ``mt`` (a threaded :class:`PipelineConfig`, or None) profiles the
    program under the multithreaded machine instead, so worker-only
    branches enter the fault universe.
    """
    profiler = _profile_program(program, max_steps, mt=mt)
    cfg = build_cfg(program)
    rng = random.Random(seed)

    executed = [stats for stats in profiler.branches.values()
                if stats.executions > 0]
    if not executed:
        # a straight-line program executes no direct branches: there is
        # no branch-error universe to draw from
        return CategoryFaults()
    conditionals = [s for s in executed if s.instr.meta.cond is not None
                    or s.instr.meta.kind.value == "branch_reg"]
    blocks = [b for b in cfg.in_order()]

    def pick_occurrence(stats) -> int:
        return rng.randint(1, min(stats.executions, 40))

    result = CategoryFaults()

    # A: mistaken branches.
    specs: list[FaultSpec] = []
    for _ in range(per_category * 3):
        if not conditionals or len(specs) >= per_category:
            break
        stats = rng.choice(conditionals)
        specs.append(FaultSpec(stats.pc, pick_occurrence(stats),
                               DirectionFault(taken=None)))
    result.by_category[Category.A] = specs

    def landing_candidates(stats, want_same: bool, want_start: bool):
        own = cfg.block_containing(stats.pc)
        intended = (stats.instr.branch_target(stats.pc)
                    if stats.instr.meta.is_direct_branch else None)
        fallthrough = stats.pc + 4
        out = []
        from repro.cfg.basic_block import ExitKind
        for block in blocks:
            same = own is not None and block.start == own.start
            if same != want_same:
                continue
            if (not want_start and exclude_exit_block_middles
                    and block.exit_kind in (ExitKind.HALT, ExitKind.EXIT)):
                continue
            addrs = ([block.start] if want_start
                     else block.body_addresses()[1:])
            for addr in addrs:
                if addr in (intended, fallthrough):
                    continue
                out.append(addr)
        return out

    for category, want_same, want_start in (
            (Category.B, True, True), (Category.C, True, False),
            (Category.D, False, True), (Category.E, False, False)):
        specs = []
        attempts = 0
        while len(specs) < per_category and attempts < per_category * 20:
            attempts += 1
            stats = rng.choice(executed)
            candidates = landing_candidates(stats, want_same, want_start)
            if not candidates:
                continue
            landing = rng.choice(candidates)
            specs.append(FaultSpec(stats.pc, pick_occurrence(stats),
                                   RedirectFault(landing)))
        result.by_category[category] = specs

    # F: land outside code.
    specs = []
    noncode = [program.data_base + 0x10, program.text_end + 0x2000,
               0x100, program.text_base - 0x200]
    for index in range(per_category):
        stats = rng.choice(executed)
        specs.append(FaultSpec(stats.pc, pick_occurrence(stats),
                               RedirectFault(noncode[index % len(noncode)])))
    result.by_category[Category.F] = specs
    return result


def generate_thread_faults(program: Program, mt, tids,
                           per_thread: int = 6, seed: int = 2006,
                           max_steps: int = 50_000_000
                           ) -> list[FaultSpec]:
    """Thread-targeted direction faults, one independent seed stream
    per victim tid.

    Each tid's stream is ``derive_seed(seed, "thread", tid)``, so the
    spec list for tid t is a pure function of (program, seed, t): a
    campaign over any subset or ordering of threads — serial or fanned
    out over worker processes — draws byte-identical per-thread faults.
    The specs carry ``thread=tid``, so occurrence counting only ticks
    while the victim runs (see :class:`FaultSpec`).

    ``mt`` is the threaded :class:`PipelineConfig` the campaign will
    run under; the profiling run uses its scheduler parameters.
    """
    from repro.faults.sampling import derive_seed
    profiler = _profile_program(program, max_steps, mt=mt)
    conditionals = sorted(
        (stats for stats in profiler.branches.values()
         if stats.executions > 0
         and (stats.instr.meta.cond is not None
              or stats.instr.meta.kind.value == "branch_reg")),
        key=lambda stats: stats.pc)
    if not conditionals:
        return []
    specs: list[FaultSpec] = []
    for tid in sorted(set(tids)):
        rng = random.Random(derive_seed(seed, "thread", tid))
        for _ in range(per_thread):
            stats = rng.choice(conditionals)
            # Per-thread occurrences: the profile counts all threads,
            # so keep the index small enough that the victim plausibly
            # reaches it; a never-reached occurrence is a benign run.
            occurrence = rng.randint(1, 4)
            specs.append(FaultSpec(stats.pc, occurrence,
                                   DirectionFault(taken=None),
                                   thread=tid))
    return specs


def generate_sched_faults(count: int = 12, seed: int = 2006,
                          max_switch: int = 40, threads: int = 4,
                          sig_regs: tuple[int, ...] = ()) -> list:
    """Scheduler-state fault specs (see :class:`SchedFaultSpec`).

    Half the strikes flip a bit in a saved thread context — targeting
    the technique's signature registers when ``sig_regs`` is given,
    guest computation registers otherwise — and the rest rotate the
    ready queue.  The stream is seeded through ``derive_seed`` so it is
    independent of every other sampling stream in the campaign.
    """
    from repro.faults.injector import SchedFaultSpec
    from repro.faults.sampling import derive_seed
    rng = random.Random(derive_seed(seed, "sched"))
    specs = []
    regs = tuple(sig_regs) or tuple(range(14))
    for index in range(count):
        switch = rng.randint(2, max_switch)
        if index % 2:
            specs.append(SchedFaultSpec(switch=switch,
                                        kind="queue-rotate"))
        else:
            specs.append(SchedFaultSpec(
                switch=switch, kind="ctx-bit",
                tid=rng.randint(0, threads),
                reg=rng.choice(regs), bit=rng.randint(0, 31)))
    return specs


@dataclass
class CampaignResult:
    """Outcome tallies for one (config, category) campaign."""

    config_label: str
    outcomes: dict[Category, dict[Outcome, int]] = field(
        default_factory=dict)

    def record(self, category: Category, outcome: Outcome) -> None:
        bucket = self.outcomes.setdefault(
            category, {out: 0 for out in Outcome})
        bucket[outcome] += 1

    def detection_rate(self, category: Category) -> float:
        """Detected / (all non-benign *guest* outcomes) for a category.

        ``INFRA_ERROR`` runs are harness failures, not guest outcomes:
        they are excluded from the harmful denominator and reported
        separately (:meth:`infra_count`).
        """
        bucket = self.outcomes.get(category)
        if not bucket:
            return 0.0
        detected = (bucket[Outcome.DETECTED_SIGNATURE]
                    + bucket[Outcome.DETECTED_HARDWARE]
                    # A recovery run (successful or not) started with a
                    # detection: it counts towards coverage either way.
                    + bucket.get(Outcome.RECOVERED, 0)
                    + bucket.get(Outcome.RECOVERY_FAILED, 0))
        harmful = detected + bucket[Outcome.SDC] + bucket[Outcome.HANG]
        return detected / harmful if harmful else 1.0

    def covers(self, category: Category) -> bool:
        """No silent corruption and no unreported hang in the bucket."""
        bucket = self.outcomes.get(category)
        if not bucket:
            return True
        return bucket[Outcome.SDC] == 0 and bucket[Outcome.HANG] == 0

    def sdc_count(self, category: Category) -> int:
        bucket = self.outcomes.get(category)
        return bucket[Outcome.SDC] if bucket else 0

    def infra_count(self, category: Category) -> int:
        """Quarantined harness failures in the category's bucket."""
        bucket = self.outcomes.get(category)
        return bucket[Outcome.INFRA_ERROR] if bucket else 0

    def total_infra(self) -> int:
        return sum(bucket[Outcome.INFRA_ERROR]
                   for bucket in self.outcomes.values())


def run_campaign(program: Program, config: PipelineConfig,
                 faults: CategoryFaults, jobs: int = 1,
                 retries: int | None = None,
                 timeout: float | None = None,
                 journal: str | None = None,
                 resume: bool = False) -> CampaignResult:
    """Run every fault spec under one configuration.

    ``jobs > 1`` fans the independent runs out over worker processes
    (see :mod:`repro.faults.executor`); results are merged in the exact
    serial order, so tallies are identical for every job count.
    ``retries``/``timeout`` tune the supervisor's failure policy;
    ``journal``/``resume`` checkpoint completed chunks to a JSONL file
    and replay them (see :mod:`repro.faults.journal`).
    """
    from repro.faults.executor import CampaignExecutor
    return CampaignExecutor(
        program, config, jobs=jobs, retries=retries, timeout=timeout,
        journal=journal, resume=resume).run_campaign(faults)


# -- data-fault campaigns (the future-work extension) --------------------------


@dataclass
class DataFaultCampaignResult:
    """Outcomes of random register-bit faults under one configuration."""

    config_label: str
    outcomes: dict[Outcome, int] = field(default_factory=dict)

    def record(self, outcome: Outcome) -> None:
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1

    @property
    def sdc(self) -> int:
        return self.outcomes.get(Outcome.SDC, 0)

    @property
    def detected(self) -> int:
        return (self.outcomes.get(Outcome.DETECTED_SIGNATURE, 0)
                + self.outcomes.get(Outcome.DETECTED_HARDWARE, 0)
                + self.outcomes.get(Outcome.RECOVERED, 0)
                + self.outcomes.get(Outcome.RECOVERY_FAILED, 0))

    @property
    def infra(self) -> int:
        return self.outcomes.get(Outcome.INFRA_ERROR, 0)

    def total(self) -> int:
        return sum(self.outcomes.values())


def generate_register_faults(pipeline: Pipeline, count: int = 50,
                             seed: int = 2006) -> list:
    """Random register-bit strikes across the run's dynamic length.

    Strikes are uniform in (dynamic instruction index, guest register,
    bit) — the paper's temporal soft-error model applied to data state
    instead of branch state.
    """
    from repro.faults.injector import RegisterFaultSpec
    rng = random.Random(seed)
    horizon = max(pipeline.golden.icount - 2, 1)
    faults = []
    for _ in range(count):
        faults.append(RegisterFaultSpec(
            icount=rng.randint(1, horizon),
            reg=rng.randint(0, 13),      # guest computation registers
            bit=rng.randint(0, 31)))
    return faults


def run_data_fault_campaign(program: Program, config: PipelineConfig,
                            count: int = 50, seed: int = 2006,
                            jobs: int = 1,
                            retries: int | None = None,
                            timeout: float | None = None,
                            journal: str | None = None,
                            resume: bool = False
                            ) -> DataFaultCampaignResult:
    """Inject random register faults under one configuration."""
    from repro.faults.executor import CampaignExecutor
    # The fault generator needs the golden run's dynamic length; hand
    # the same pipeline to the executor so the program load, rewrite
    # and golden run aren't done twice on a cold cache.
    pipeline = Pipeline(program, config)
    faults = generate_register_faults(pipeline, count=count, seed=seed)
    executor = CampaignExecutor(program, config, jobs=jobs,
                                retries=retries, timeout=timeout,
                                journal=journal, resume=resume,
                                pipeline=pipeline)
    result = DataFaultCampaignResult(config_label=config.label())
    for record in executor.run_specs(faults):
        result.record(record.outcome)
    return result


# -- cache-level campaigns (the Figure-14 safety experiment) -------------------


@dataclass
class CacheCampaignResult:
    """Outcomes of offset-bit faults on *inserted* branch instructions
    (signature checks and Jcc-style updates) in translated code.

    This measures the unsafety the paper shades in Figure 14: ECF and
    EdgCF leave their inserted Jcc branches unprotected; RCF's regions
    cover them."""

    config_label: str
    outcomes: dict[Outcome, int] = field(default_factory=dict)
    sites_tested: int = 0

    def record(self, outcome: Outcome) -> None:
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1

    @property
    def sdc(self) -> int:
        return self.outcomes.get(Outcome.SDC, 0)

    @property
    def undetected(self) -> int:
        return (self.outcomes.get(Outcome.SDC, 0)
                + self.outcomes.get(Outcome.HANG, 0))


def enumerate_instrumentation_branch_sites(program: Program,
                                           config: PipelineConfig
                                           ) -> list[int]:
    """Cache addresses of inserted branch instructions after a warm run.

    Cache layout is deterministic for a given (program, config), so
    addresses remain valid across the fresh DBT instances the campaign
    runs use.
    """
    from repro.faults.injector import enumerate_cache_branch_sites
    technique = (make_technique(config.technique,
                                update_style=config.update_style)
                 if config.technique else None)
    dbt = Dbt(program, technique=technique, policy=config.policy)
    result = dbt.run()
    if not result.ok:
        raise RuntimeError(f"warm run failed: {result.stop}")
    blocks = list(dbt.blocks.values())
    sites = []
    for addr, instr in enumerate_cache_branch_sites(dbt):
        for tb in blocks:
            if tb.cache_start <= addr < tb.cache_end:
                if tb.is_instrumentation(addr):
                    sites.append(addr)
                break
    return sites


def run_cache_campaign(program: Program, config: PipelineConfig,
                       bits: tuple[int, ...] = (0, 1, 2, 3, 4, 6, 9),
                       max_sites: int = 40, seed: int = 2006,
                       force_taken: bool = True,
                       jobs: int = 1,
                       retries: int | None = None,
                       timeout: float | None = None,
                       journal: str | None = None,
                       resume: bool = False,
                       stop_check=None) -> CacheCampaignResult:
    """Flip offset bits of inserted branches, one fault per run.

    With ``force_taken`` (default) each fault is the paper's "branch to
    a random address" event at the inserted branch — the corrupted
    branch transfers.  Without it, faults on normally-not-taken check
    branches are mostly masked.
    """
    from repro.faults.executor import CampaignExecutor
    rng = random.Random(seed)
    sites = enumerate_instrumentation_branch_sites(program, config)
    if len(sites) > max_sites:
        sites = rng.sample(sites, max_sites)
    specs = [CacheFaultSpec(cache_addr=site, occurrence=1, bit=bit,
                            force_taken=force_taken)
             for site in sites for bit in bits]
    executor = CampaignExecutor(program, config, jobs=jobs,
                                retries=retries, timeout=timeout,
                                journal=journal, resume=resume,
                                stop_check=stop_check)
    result = CacheCampaignResult(config_label=config.label())
    result.sites_tested = len(sites)
    for record in executor.run_specs(specs):
        result.record(record.outcome)
    return result
