"""The control-flow graph container and queries.

Besides plain block/edge storage, the graph answers the questions the
rest of the system asks:

* "which block contains address X, and is X its beginning or its
  middle?" — the branch-error classifier (categories B/C vs D/E) is
  built on this,
* "which blocks does policy P check?" — the ALLBB/RET-BE/RET/END
  checking policies select blocks by structural properties,
* loop/back-edge facts via :mod:`repro.cfg.analysis`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.program import Program
from repro.cfg.basic_block import BasicBlock, ExitKind


@dataclass
class ControlFlowGraph:
    """Whole-program CFG over guest code."""

    program: Program
    blocks: dict[int, BasicBlock] = field(default_factory=dict)
    _starts: list[int] = field(default_factory=list, repr=False)

    def link(self) -> None:
        """Fill predecessor lists and sort the block index."""
        self._starts = sorted(self.blocks)
        for block in self.blocks.values():
            block.predecessors = []
        for block in self.blocks.values():
            for successor in block.successors:
                target = self.blocks.get(successor)
                if target is not None:
                    target.predecessors.append(block.start)

    # -- lookups -----------------------------------------------------------

    def block_at(self, start: int) -> BasicBlock:
        """Block whose first instruction is at ``start``."""
        return self.blocks[start]

    def block_containing(self, addr: int) -> BasicBlock | None:
        """Block whose address range covers ``addr`` (bisect search)."""
        starts = self._starts
        lo, hi = 0, len(starts)
        while lo < hi:
            mid = (lo + hi) // 2
            if starts[mid] <= addr:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return None
        block = self.blocks[starts[lo - 1]]
        return block if block.contains(addr) else None

    def is_block_start(self, addr: int) -> bool:
        return addr in self.blocks

    @property
    def entry_block(self) -> BasicBlock:
        return self.block_containing(self.program.entry)

    def in_order(self) -> list[BasicBlock]:
        """Blocks in address order."""
        return [self.blocks[start] for start in self._starts]

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self):
        return iter(self.in_order())

    # -- structural queries --------------------------------------------------

    def edges(self) -> list[tuple[int, int]]:
        """All statically-known (source block, target block) edges."""
        result = []
        for block in self.in_order():
            for successor in block.successors:
                if successor in self.blocks:
                    result.append((block.start, successor))
        return result

    def exit_blocks(self) -> list[BasicBlock]:
        """Blocks that terminate the program."""
        return [b for b in self.in_order()
                if b.exit_kind in (ExitKind.HALT, ExitKind.EXIT)]

    def average_block_size(self) -> float:
        """Mean instructions per block — the structural property behind
        every fp-vs-int difference in the paper's results."""
        if not self.blocks:
            return 0.0
        total = sum(block.size for block in self.blocks.values())
        return total / len(self.blocks)

    def stats(self) -> dict[str, float]:
        """Summary statistics used by the workload characterization."""
        blocks = self.in_order()
        exits = {}
        for block in blocks:
            key = block.exit_kind.value
            exits[key] = exits.get(key, 0) + 1
        return {
            "blocks": len(blocks),
            "instructions": sum(b.size for b in blocks),
            "avg_block_size": self.average_block_size(),
            **{f"exit_{kind}": count for kind, count in sorted(
                exits.items())},
        }
