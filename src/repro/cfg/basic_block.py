"""Basic blocks over R32 programs.

The control-flow checking problem is formalized over basic blocks
(paper Section 4.1): control-flow errors "happen only at the end of a
block", and each block is conceptually split into a *head* (entry point,
no original instructions — where CHECK_SIG code goes) and a *tail* (the
original instructions — whose middle is where category C/E errors land).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.isa.instruction import WORD_SIZE, Instruction
from repro.isa.opcodes import Kind, Op


class ExitKind(enum.Enum):
    """How a basic block transfers control at its end."""

    FALLTHROUGH = "fallthrough"    #: no terminator; runs into next block
    JUMP = "jump"                  #: unconditional direct jump
    COND = "cond"                  #: conditional direct branch (two-way)
    CALL = "call"                  #: direct call (returns to fallthrough)
    INDIRECT = "indirect"          #: jmpr / callr (register target)
    RET = "ret"                    #: return (implicit dynamic branch)
    HALT = "halt"                  #: halt / trap — no successors
    EXIT = "exit"                  #: exit syscall — program end


@dataclass
class BasicBlock:
    """One basic block of guest code.

    ``start`` is the block's (guest) address — which is also its
    *signature* in every address-based technique (paper Section 5:
    "we use the address of the first instruction in a basic block as
    the basic block signature").
    """

    start: int
    instructions: list[tuple[int, Instruction]] = field(default_factory=list)
    exit_kind: ExitKind = ExitKind.FALLTHROUGH
    #: successor guest addresses for statically-known edges
    successors: list[int] = field(default_factory=list)
    #: predecessor block start addresses (filled by the graph builder)
    predecessors: list[int] = field(default_factory=list)

    @property
    def end(self) -> int:
        """First address past the block."""
        if not self.instructions:
            return self.start
        return self.instructions[-1][0] + WORD_SIZE

    @property
    def signature(self) -> int:
        """The block's signature: its start address."""
        return self.start

    @property
    def size(self) -> int:
        return len(self.instructions)

    @property
    def terminator(self) -> tuple[int, Instruction] | None:
        """(pc, instruction) of the terminator, if the block has one."""
        if not self.instructions:
            return None
        pc, instr = self.instructions[-1]
        if instr.is_terminator or self.exit_kind is ExitKind.EXIT:
            return pc, instr
        return None

    @property
    def has_conditional_exit(self) -> bool:
        return self.exit_kind is ExitKind.COND

    @property
    def has_dynamic_exit(self) -> bool:
        """True when the branch target is only known at run time."""
        return self.exit_kind in (ExitKind.INDIRECT, ExitKind.RET)

    @property
    def ends_in_backward_branch(self) -> bool:
        """True when the terminator is a direct branch going backwards.

        This is the "basic blocks with back edges" criterion of the
        RET-BE checking policy (Section 6).
        """
        term = self.terminator
        if term is None:
            return False
        pc, instr = term
        if not instr.meta.is_direct_branch:
            return False
        return instr.branch_target(pc) <= pc

    @property
    def ends_in_return(self) -> bool:
        """True for blocks the RET checking policy instruments."""
        return self.exit_kind is ExitKind.RET

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def body_addresses(self) -> list[int]:
        """Addresses of the block's instructions."""
        return [pc for pc, _ in self.instructions]

    def __repr__(self) -> str:
        return (f"BasicBlock({self.start:#x}..{self.end:#x}, "
                f"{self.size} instrs, {self.exit_kind.value})")


#: Service.THREAD_EXIT (repro.machine.syscalls; duplicated here to keep
#: the CFG layer import-free of the machine).  Under the multithreaded
#: machine the syscall never returns — the thread is torn down — so its
#: block has no successors, exactly like the process-exit syscall.  The
#: kernel contract (workloads.kernels.mt) is that worker bodies only
#: run threaded, so the single-threaded no-op fallback never reaches
#: the instruction after it.
_THREAD_EXIT = 22


def classify_exit(instr: Instruction) -> ExitKind:
    """Exit kind implied by a terminator instruction."""
    kind = instr.meta.kind
    if kind is Kind.BRANCH_UNCOND:
        return ExitKind.JUMP
    if kind in (Kind.BRANCH_COND, Kind.BRANCH_REG):
        return ExitKind.COND
    if kind is Kind.CALL:
        return ExitKind.CALL
    if kind is Kind.BRANCH_IND:
        return ExitKind.INDIRECT
    if kind is Kind.RET:
        return ExitKind.RET
    if kind in (Kind.HALT, Kind.TRAP):
        return ExitKind.HALT
    if instr.op is Op.SYSCALL and instr.imm in (0, _THREAD_EXIT):
        return ExitKind.EXIT
    return ExitKind.FALLTHROUGH
