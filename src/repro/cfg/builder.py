"""Static CFG construction from an assembled program.

Leaders are: the entry point, every direct-branch target, every
instruction following a block terminator, every call-return site, and
every symbol that points into the text section (which covers function
entries reached indirectly and jump-table targets declared as labels).

Note the exit-syscall special case: ``syscall 0`` terminates the
program, so it ends a block (the END checking policy hangs its final
check there).
"""

from __future__ import annotations

from repro.isa.instruction import WORD_SIZE
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.cfg.basic_block import BasicBlock, ExitKind, classify_exit
from repro.cfg.graph import ControlFlowGraph


def find_leaders(program: Program) -> set[int]:
    """Compute the set of basic-block leader addresses."""
    leaders = {program.entry}
    for name, addr in program.symbols.items():
        if program.contains_code(addr):
            leaders.add(addr)
    for pc, instr in program.instructions():
        meta = instr.meta
        if meta.is_direct_branch:
            target = instr.branch_target(pc)
            if program.contains_code(target):
                leaders.add(target)
            leaders.add(pc + WORD_SIZE)
        elif instr.is_terminator or (
                instr.op is Op.SYSCALL and instr.imm == 0):
            leaders.add(pc + WORD_SIZE)
    leaders = {addr for addr in leaders if program.contains_code(addr)}
    return leaders


def build_cfg(program: Program) -> ControlFlowGraph:
    """Build the whole-text-section control-flow graph."""
    leaders = find_leaders(program)
    blocks: dict[int, BasicBlock] = {}
    current: BasicBlock | None = None

    for pc, instr in program.instructions():
        if pc in leaders or current is None:
            current = BasicBlock(start=pc)
            blocks[pc] = current
        current.instructions.append((pc, instr))
        exit_kind = classify_exit(instr)
        is_end = (instr.is_terminator
                  or exit_kind is ExitKind.EXIT
                  or (pc + WORD_SIZE) in leaders)
        if is_end:
            if instr.is_terminator or exit_kind is ExitKind.EXIT:
                current.exit_kind = exit_kind
                _add_static_successors(program, current, pc, instr)
            else:
                current.exit_kind = ExitKind.FALLTHROUGH
                nxt = pc + WORD_SIZE
                if program.contains_code(nxt):
                    current.successors.append(nxt)
            current = None

    graph = ControlFlowGraph(program=program, blocks=blocks)
    graph.link()
    return graph


def _add_static_successors(program: Program, block: BasicBlock, pc: int,
                           instr) -> None:
    kind = block.exit_kind
    if kind is ExitKind.JUMP:
        target = instr.branch_target(pc)
        if program.contains_code(target):
            block.successors.append(target)
    elif kind is ExitKind.COND:
        target = instr.branch_target(pc)
        if program.contains_code(target):
            block.successors.append(target)
        fallthrough = pc + WORD_SIZE
        if program.contains_code(fallthrough):
            block.successors.append(fallthrough)
    elif kind is ExitKind.CALL:
        target = instr.branch_target(pc)
        if program.contains_code(target):
            block.successors.append(target)
        # The return site is *not* a successor edge of the call — control
        # reaches it via the callee's ret — but it is a block leader.
    # INDIRECT / RET / HALT / EXIT: no static successors.
