"""CFG analyses: dominators, natural loops, reachability.

The checking policies and the ablation studies need a little classical
compiler analysis: the RET-BE policy targets loop-closing blocks, and
the reports characterize workloads by loop structure.  Dominators are
computed with the simple iterative data-flow algorithm (Cooper/Harvey/
Kennedy style, minus the engineering) — the graphs here are small.
"""

from __future__ import annotations

from repro.cfg.graph import ControlFlowGraph


def reachable_blocks(cfg: ControlFlowGraph,
                     entry: int | None = None) -> set[int]:
    """Block starts reachable from the entry via static edges.

    Dynamic edges (indirect branches, returns) are not followed, but
    call targets are, so whole functions stay reachable.
    """
    if entry is None:
        entry = cfg.entry_block.start
    seen: set[int] = set()
    stack = [entry]
    while stack:
        start = stack.pop()
        if start in seen or start not in cfg.blocks:
            continue
        seen.add(start)
        block = cfg.blocks[start]
        stack.extend(block.successors)
        # Call-return sites are reached dynamically through ret; keep the
        # traversal honest by following the textual fallthrough of calls.
        from repro.cfg.basic_block import ExitKind
        if block.exit_kind is ExitKind.CALL:
            after = block.end
            if after in cfg.blocks:
                stack.append(after)
        if block.exit_kind in (ExitKind.INDIRECT, ExitKind.RET):
            after = block.end
            if after in cfg.blocks:
                stack.append(after)
    return seen


def immediate_dominators(cfg: ControlFlowGraph,
                         entry: int | None = None) -> dict[int, int]:
    """Iterative immediate-dominator computation over static edges."""
    if entry is None:
        entry = cfg.entry_block.start
    reachable = reachable_blocks(cfg, entry)
    order = [b.start for b in cfg.in_order() if b.start in reachable]
    preds: dict[int, list[int]] = {start: [] for start in order}
    for source, target in cfg.edges():
        if source in reachable and target in reachable:
            preds[target].append(source)

    # Reverse-postorder via DFS.
    index: dict[int, int] = {}
    visited: set[int] = set()
    postorder: list[int] = []

    def dfs(start: int) -> None:
        stack = [(start, iter(sorted(cfg.blocks[start].successors)))]
        visited.add(start)
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ in reachable and succ not in visited:
                    visited.add(succ)
                    stack.append(
                        (succ, iter(sorted(cfg.blocks[succ].successors))))
                    advanced = True
                    break
            if not advanced:
                postorder.append(node)
                stack.pop()

    dfs(entry)
    rpo = list(reversed(postorder))
    for position, node in enumerate(rpo):
        index[node] = position

    idom: dict[int, int] = {entry: entry}
    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == entry:
                continue
            candidates = [p for p in preds[node] if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = _intersect(new_idom, other, idom, index)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    return idom


def _intersect(a: int, b: int, idom: dict[int, int],
               index: dict[int, int]) -> int:
    while a != b:
        while index[a] > index[b]:
            a = idom[a]
        while index[b] > index[a]:
            b = idom[b]
    return a


def dominates(idom: dict[int, int], a: int, b: int) -> bool:
    """True when block ``a`` dominates block ``b``."""
    node = b
    while True:
        if node == a:
            return True
        parent = idom.get(node)
        if parent is None or parent == node:
            return a == node
        node = parent


def back_edges(cfg: ControlFlowGraph,
               entry: int | None = None) -> list[tuple[int, int]]:
    """Edges (u, v) where v dominates u — natural-loop back edges."""
    idom = immediate_dominators(cfg, entry)
    result = []
    for source, target in cfg.edges():
        if source in idom and target in idom and dominates(
                idom, target, source):
            result.append((source, target))
    return result


def natural_loops(cfg: ControlFlowGraph,
                  entry: int | None = None) -> dict[int, set[int]]:
    """Map loop header -> set of member block starts."""
    loops: dict[int, set[int]] = {}
    preds: dict[int, list[int]] = {}
    for source, target in cfg.edges():
        preds.setdefault(target, []).append(source)
    for source, header in back_edges(cfg, entry):
        body = loops.setdefault(header, {header})
        stack = [source]
        while stack:
            node = stack.pop()
            if node in body:
                continue
            body.add(node)
            stack.extend(preds.get(node, []))
    return loops
