"""Control-flow graphs over R32 programs.

Provides basic-block discovery, the CFG container, and the classical
analyses (dominators, natural loops) that the checking policies and the
workload characterization use.
"""

from repro.cfg.basic_block import BasicBlock, ExitKind, classify_exit
from repro.cfg.builder import build_cfg, find_leaders
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.analysis import (back_edges, dominates, immediate_dominators,
                                natural_loops, reachable_blocks)

__all__ = [
    "BasicBlock", "ExitKind", "classify_exit",
    "build_cfg", "find_leaders",
    "ControlFlowGraph",
    "back_edges", "dominates", "immediate_dominators", "natural_loops",
    "reachable_blocks",
]
