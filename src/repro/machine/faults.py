"""Machine fault and stop-reason types.

The machine never raises Python exceptions for *guest* misbehaviour;
every abnormal event becomes a structured :class:`StopInfo` so the fault
-injection campaigns can classify outcomes ("detected by hardware" vs
"detected by signature" vs "silent corruption"...) without fragile
exception plumbing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class StopReason(enum.Enum):
    """Why a machine run stopped."""

    HALTED = "halted"              #: HALT or exit syscall
    TRAP = "trap"                  #: TRAP instruction (DBT exit stub)
    FAULT = "fault"                #: hardware-detected fault
    STEP_LIMIT = "step_limit"      #: executed the per-run step budget
    CYCLE_LIMIT = "cycle_limit"    #: exceeded the per-run cycle budget


class FaultKind(enum.Enum):
    """Hardware-detected faults.

    ``NX_VIOLATION`` is the execute-disable-bit mechanism the paper leans
    on for category-F branch errors; ``WRITE_PROTECT`` is the
    self-modifying-code detection mechanism of the DBT (Section 5).
    """

    NX_VIOLATION = "nx_violation"          #: fetched from a non-X page
    WRITE_PROTECT = "write_protect"        #: wrote a write-protected page
    BAD_ACCESS = "bad_access"              #: unmapped/unreadable address
    UNALIGNED = "unaligned"                #: misaligned word access / pc
    ILLEGAL_INSTRUCTION = "illegal"        #: undecodable word
    DIV_BY_ZERO = "div_by_zero"            #: div/mod with zero divisor
    STACK_OVERFLOW = "stack_overflow"      #: sp left the stack region


@dataclass
class StopInfo:
    """Terminal state of one machine run."""

    reason: StopReason
    pc: int
    fault: FaultKind | None = None
    fault_addr: int | None = None
    trap_no: int | None = None
    exit_code: int | None = None

    @property
    def is_hardware_detected(self) -> bool:
        """True when a hardware protection mechanism caught the problem."""
        return self.reason is StopReason.FAULT

    def __str__(self) -> str:
        parts = [f"{self.reason.value} at pc={self.pc:#x}"]
        if self.fault is not None:
            parts.append(f"fault={self.fault.value}")
        if self.fault_addr is not None:
            parts.append(f"addr={self.fault_addr:#x}")
        if self.trap_no is not None:
            parts.append(f"trap={self.trap_no}")
        if self.exit_code is not None:
            parts.append(f"exit={self.exit_code}")
        return " ".join(parts)


class MachineError(Exception):
    """Host-side (not guest-visible) machine misuse, e.g. loading a
    program that does not fit in memory."""
