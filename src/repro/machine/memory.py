"""Paged guest memory with R/W/X permissions.

This is the substrate for two hardware mechanisms the paper relies on:

* the execute-disable bit — executing from a page without X raises an
  ``NX_VIOLATION`` fault, which is how branch errors in category F
  ("jump to a non-code memory region") get detected "by hardware";
* write protection — the DBT write-protects guest code pages it has
  translated, so self-modifying code raises ``WRITE_PROTECT`` and the
  DBT can invalidate stale translations (Section 5).
"""

from __future__ import annotations

from repro.machine.faults import FaultKind, MachineError

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT

PERM_R = 1
PERM_W = 2
PERM_X = 4
PERM_RW = PERM_R | PERM_W
PERM_RX = PERM_R | PERM_X
PERM_RWX = PERM_R | PERM_W | PERM_X


class AccessFault(Exception):
    """Internal signal converted by the CPU into a StopInfo fault."""

    def __init__(self, kind: FaultKind, addr: int):
        super().__init__(f"{kind.value} @ {addr:#x}")
        self.kind = kind
        self.addr = addr


class Memory:
    """A flat byte-addressable memory with per-page permissions."""

    def __init__(self, size: int):
        if size % PAGE_SIZE:
            raise MachineError(f"memory size must be page-aligned: {size}")
        self.size = size
        self.data = bytearray(size)
        self.perms = bytearray(size >> PAGE_SHIFT)  # default: no access
        #: Called with (addr, length) after every successful store; the
        #: CPU uses it to invalidate its decode cache, the DBT to detect
        #: self-modifying code.  ``None`` when nobody is listening.
        self.write_watch = None
        #: Called with (start, length) after every set_perms; the block
        #: -compiling backend flushes its compiled code on permission
        #: changes (X grants/revocations).  ``None`` when unused.
        self.perm_watch = None
        #: Copy-on-write journal for checkpoint/rollback recovery
        #: (``repro.recovery``): when a dict, the pre-image of every
        #: page is captured before its first mutation since the journal
        #: was last drained.  ``None`` (the default) costs one identity
        #: check per store.
        self.cow = None
        #: Byte bound for COW tracking: pages at or above it are never
        #: preserved.  Recovery sets this below the DBT code cache so
        #: translation writes (a semantics-preserving cache, not
        #: architectural state) are not journalled.
        self.cow_bound = size

    def _cow_capture(self, addr: int) -> None:
        """Record the pre-image of ``addr``'s page (first touch only)."""
        page = addr >> PAGE_SHIFT
        if page not in self.cow and addr < self.cow_bound:
            base = page << PAGE_SHIFT
            self.cow[page] = bytes(self.data[base:base + PAGE_SIZE])

    # -- permissions ------------------------------------------------------

    def set_perms(self, start: int, length: int, perms: int) -> None:
        """Set permissions for all pages overlapping [start, start+len)."""
        if length <= 0:
            return
        first = start >> PAGE_SHIFT
        last = (start + length - 1) >> PAGE_SHIFT
        if last >= len(self.perms):
            raise MachineError(
                f"region {start:#x}+{length:#x} outside memory")
        for page in range(first, last + 1):
            self.perms[page] = perms
        if self.perm_watch is not None:
            self.perm_watch(start, length)

    def perms_at(self, addr: int) -> int:
        if not 0 <= addr < self.size:
            return 0
        return self.perms[addr >> PAGE_SHIFT]

    def pages_in(self, start: int, length: int) -> range:
        """Page indices overlapping a byte range."""
        if length <= 0:
            return range(0)
        return range(start >> PAGE_SHIFT,
                     ((start + length - 1) >> PAGE_SHIFT) + 1)

    # -- raw (host-side) access: no permission checks ----------------------

    def write_raw(self, addr: int, blob: bytes) -> None:
        """Host-side store used by loaders and the DBT code generator."""
        end = addr + len(blob)
        if not 0 <= addr <= end <= self.size:
            raise MachineError(f"raw write outside memory: {addr:#x}")
        if self.cow is not None:
            for page in self.pages_in(addr, len(blob)):
                self._cow_capture(page << PAGE_SHIFT)
        self.data[addr:end] = blob
        if self.write_watch is not None:
            self.write_watch(addr, len(blob))

    def read_raw(self, addr: int, length: int) -> bytes:
        if not 0 <= addr <= addr + length <= self.size:
            raise MachineError(f"raw read outside memory: {addr:#x}")
        return bytes(self.data[addr:addr + length])

    def write_word_raw(self, addr: int, value: int) -> None:
        self.write_raw(addr, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def read_word_raw(self, addr: int) -> int:
        return int.from_bytes(self.read_raw(addr, 4), "little")

    # -- guest access: permission-checked ----------------------------------

    def load_word(self, addr: int) -> int:
        if addr & 3:
            raise AccessFault(FaultKind.UNALIGNED, addr)
        if not (self.perms_at(addr) & PERM_R):
            raise AccessFault(FaultKind.BAD_ACCESS, addr)
        return int.from_bytes(self.data[addr:addr + 4], "little")

    def store_word(self, addr: int, value: int) -> None:
        if addr & 3:
            raise AccessFault(FaultKind.UNALIGNED, addr)
        perms = self.perms_at(addr)
        if not perms & PERM_W:
            kind = (FaultKind.WRITE_PROTECT if perms & PERM_R
                    else FaultKind.BAD_ACCESS)
            raise AccessFault(kind, addr)
        cow = self.cow
        if cow is not None and addr >> PAGE_SHIFT not in cow:
            self._cow_capture(addr)
        self.data[addr:addr + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")
        if self.write_watch is not None:
            self.write_watch(addr, 4)

    def load_byte(self, addr: int) -> int:
        if not (self.perms_at(addr) & PERM_R):
            raise AccessFault(FaultKind.BAD_ACCESS, addr)
        return self.data[addr]

    def store_byte(self, addr: int, value: int) -> None:
        perms = self.perms_at(addr)
        if not perms & PERM_W:
            kind = (FaultKind.WRITE_PROTECT if perms & PERM_R
                    else FaultKind.BAD_ACCESS)
            raise AccessFault(kind, addr)
        cow = self.cow
        if cow is not None and addr >> PAGE_SHIFT not in cow:
            self._cow_capture(addr)
        self.data[addr] = value & 0xFF
        if self.write_watch is not None:
            self.write_watch(addr, 1)

    def fetch_word(self, addr: int) -> int:
        """Instruction fetch: requires X permission (execute-disable)."""
        if addr & 3:
            raise AccessFault(FaultKind.UNALIGNED, addr)
        if not (self.perms_at(addr) & PERM_X):
            raise AccessFault(FaultKind.NX_VIOLATION, addr)
        return int.from_bytes(self.data[addr:addr + 4], "little")

    def read_cstring(self, addr: int, limit: int = 4096) -> bytes:
        """Read a NUL-terminated string (for the print-string syscall)."""
        out = bytearray()
        for index in range(limit):
            byte = self.load_byte(addr + index)
            if byte == 0:
                break
            out.append(byte)
        return bytes(out)
