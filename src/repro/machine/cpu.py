"""The R32 interpreter.

A deterministic, cycle-accounting interpreter with:

* per-page execute permission on every fetch (execute-disable bit),
* a decode cache invalidated on stores (so self-modifying code works),
* optional per-branch hooks used by the fault injector and the branch
  profiler (both gated behind ``is None`` checks so the common path
  stays fast),
* a precomputed per-opcode handler dispatch table: the fetch loop jumps
  straight to the semantics of each instruction instead of scanning an
  if/elif chain over every opcode.

Determinism is the point: the paper's performance results become exact,
reproducible cycle counts instead of noisy wall-clock measurements.
The dispatch table changes *nothing* about the cycle model — every
handler charges exactly the cycles the old chain charged.
"""

from __future__ import annotations

from repro import obs
from repro.isa.encoding import DecodeError, decode
from repro.isa.flags import (evaluate_cond, flags_from_add, flags_from_logic,
                             flags_from_sub)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OP_TABLE, Kind, Op
from repro.isa.program import MEMORY_SIZE, STACK_TOP
from repro.machine import syscalls
from repro.machine.faults import FaultKind, StopInfo, StopReason
from repro.machine.memory import (PERM_RW, PERM_RX, PERM_X, Memory,
                                  AccessFault)

_MASK = 0xFFFFFFFF
_SIGN = 0x80000000

#: Extra cycles charged when a branch is taken (front-end redirect).
TAKEN_BRANCH_PENALTY = 1


# -- opcode handlers ----------------------------------------------------------
#
# One module-level function per opcode, signature
# ``handler(cpu, instr, pc, regs) -> StopInfo | None``.  Each handler is
# responsible for setting ``cpu.pc``; fault returns leave ``cpu.pc``
# untouched (matching the old chain, which skipped the final pc update
# on every early return).  The table below is built once at import.


def _h_add(cpu, instr, pc, regs):
    a, b = regs[instr.rs], regs[instr.rt]
    regs[instr.rd] = (a + b) & _MASK
    cpu.flags = flags_from_add(a, b)
    cpu.pc = pc + 4


def _h_sub(cpu, instr, pc, regs):
    a, b = regs[instr.rs], regs[instr.rt]
    regs[instr.rd] = (a - b) & _MASK
    cpu.flags = flags_from_sub(a, b)
    cpu.pc = pc + 4


def _h_and(cpu, instr, pc, regs):
    result = regs[instr.rs] & regs[instr.rt]
    regs[instr.rd] = result
    cpu.flags = flags_from_logic(result)
    cpu.pc = pc + 4


def _h_or(cpu, instr, pc, regs):
    result = regs[instr.rs] | regs[instr.rt]
    regs[instr.rd] = result
    cpu.flags = flags_from_logic(result)
    cpu.pc = pc + 4


def _h_xor(cpu, instr, pc, regs):
    result = regs[instr.rs] ^ regs[instr.rt]
    regs[instr.rd] = result
    cpu.flags = flags_from_logic(result)
    cpu.pc = pc + 4


def _h_shl(cpu, instr, pc, regs):
    result = (regs[instr.rs] << (regs[instr.rt] & 31)) & _MASK
    regs[instr.rd] = result
    cpu.flags = flags_from_logic(result)
    cpu.pc = pc + 4


def _h_shr(cpu, instr, pc, regs):
    result = regs[instr.rs] >> (regs[instr.rt] & 31)
    regs[instr.rd] = result
    cpu.flags = flags_from_logic(result)
    cpu.pc = pc + 4


def _h_sar(cpu, instr, pc, regs):
    value = regs[instr.rs]
    if value & _SIGN:
        value -= 0x100000000
    result = (value >> (regs[instr.rt] & 31)) & _MASK
    regs[instr.rd] = result
    cpu.flags = flags_from_logic(result)
    cpu.pc = pc + 4


def _h_mul(cpu, instr, pc, regs):
    result = (regs[instr.rs] * regs[instr.rt]) & _MASK
    regs[instr.rd] = result
    cpu.flags = flags_from_logic(result)
    cpu.pc = pc + 4


def _h_div(cpu, instr, pc, regs):
    divisor = regs[instr.rt]
    if divisor == 0:
        return StopInfo(StopReason.FAULT, pc,
                        fault=FaultKind.DIV_BY_ZERO, fault_addr=pc)
    result = regs[instr.rs] // divisor
    regs[instr.rd] = result & _MASK
    cpu.flags = flags_from_logic(result)
    cpu.pc = pc + 4


def _h_mod(cpu, instr, pc, regs):
    divisor = regs[instr.rt]
    if divisor == 0:
        return StopInfo(StopReason.FAULT, pc,
                        fault=FaultKind.DIV_BY_ZERO, fault_addr=pc)
    result = regs[instr.rs] % divisor
    regs[instr.rd] = result & _MASK
    cpu.flags = flags_from_logic(result)
    cpu.pc = pc + 4


def _h_cmp(cpu, instr, pc, regs):
    cpu.flags = flags_from_sub(regs[instr.rs], regs[instr.rt])
    cpu.pc = pc + 4


def _h_test(cpu, instr, pc, regs):
    cpu.flags = flags_from_logic(regs[instr.rs] & regs[instr.rt])
    cpu.pc = pc + 4


def _h_neg(cpu, instr, pc, regs):
    a = regs[instr.rs]
    regs[instr.rd] = (-a) & _MASK
    cpu.flags = flags_from_sub(0, a)
    cpu.pc = pc + 4


def _h_not(cpu, instr, pc, regs):
    result = (~regs[instr.rs]) & _MASK
    regs[instr.rd] = result
    cpu.flags = flags_from_logic(result)
    cpu.pc = pc + 4


def _h_addi(cpu, instr, pc, regs):
    a = regs[instr.rs]
    regs[instr.rd] = (a + instr.imm) & _MASK
    cpu.flags = flags_from_add(a, instr.imm & _MASK)
    cpu.pc = pc + 4


def _h_subi(cpu, instr, pc, regs):
    a = regs[instr.rs]
    regs[instr.rd] = (a - instr.imm) & _MASK
    cpu.flags = flags_from_sub(a, instr.imm & _MASK)
    cpu.pc = pc + 4


def _h_andi(cpu, instr, pc, regs):
    result = regs[instr.rs] & (instr.imm & _MASK)
    regs[instr.rd] = result
    cpu.flags = flags_from_logic(result)
    cpu.pc = pc + 4


def _h_ori(cpu, instr, pc, regs):
    result = regs[instr.rs] | (instr.imm & _MASK)
    regs[instr.rd] = result
    cpu.flags = flags_from_logic(result)
    cpu.pc = pc + 4


def _h_xori(cpu, instr, pc, regs):
    result = regs[instr.rs] ^ (instr.imm & _MASK)
    regs[instr.rd] = result
    cpu.flags = flags_from_logic(result)
    cpu.pc = pc + 4


def _h_cmpi(cpu, instr, pc, regs):
    cpu.flags = flags_from_sub(regs[instr.rs], instr.imm & _MASK)
    cpu.pc = pc + 4


def _h_shli(cpu, instr, pc, regs):
    result = (regs[instr.rs] << (instr.imm & 31)) & _MASK
    regs[instr.rd] = result
    cpu.flags = flags_from_logic(result)
    cpu.pc = pc + 4


def _h_shri(cpu, instr, pc, regs):
    result = regs[instr.rs] >> (instr.imm & 31)
    regs[instr.rd] = result
    cpu.flags = flags_from_logic(result)
    cpu.pc = pc + 4


def _h_muli(cpu, instr, pc, regs):
    result = (regs[instr.rs] * instr.imm) & _MASK
    regs[instr.rd] = result
    cpu.flags = flags_from_logic(result)
    cpu.pc = pc + 4


def _h_mov(cpu, instr, pc, regs):
    regs[instr.rd] = regs[instr.rs]
    cpu.pc = pc + 4


def _h_movi(cpu, instr, pc, regs):
    regs[instr.rd] = instr.imm & _MASK
    cpu.pc = pc + 4


def _h_movhi(cpu, instr, pc, regs):
    regs[instr.rd] = (instr.imm & 0xFFFF) << 16
    cpu.pc = pc + 4


def _h_movlo(cpu, instr, pc, regs):
    regs[instr.rd] = (regs[instr.rd] & 0xFFFF0000) | (instr.imm & 0xFFFF)
    cpu.pc = pc + 4


def _h_lea(cpu, instr, pc, regs):
    regs[instr.rd] = (regs[instr.rs] + instr.imm) & _MASK
    cpu.pc = pc + 4


def _h_lea3(cpu, instr, pc, regs):
    regs[instr.rd] = (regs[instr.rs] + regs[instr.rt]) & _MASK
    cpu.pc = pc + 4


def _h_lsub(cpu, instr, pc, regs):
    regs[instr.rd] = (regs[instr.rs] - regs[instr.rt]) & _MASK
    cpu.pc = pc + 4


def _h_fadd(cpu, instr, pc, regs):
    regs[instr.rd] = (regs[instr.rs] + regs[instr.rt]) & _MASK
    cpu.pc = pc + 4


def _h_fsub(cpu, instr, pc, regs):
    regs[instr.rd] = (regs[instr.rs] - regs[instr.rt]) & _MASK
    cpu.pc = pc + 4


def _h_fmul(cpu, instr, pc, regs):
    regs[instr.rd] = (regs[instr.rs] * regs[instr.rt]) & _MASK
    cpu.pc = pc + 4


def _h_fdiv(cpu, instr, pc, regs):
    divisor = regs[instr.rt]
    if divisor == 0:
        return StopInfo(StopReason.FAULT, pc,
                        fault=FaultKind.DIV_BY_ZERO, fault_addr=pc)
    regs[instr.rd] = (regs[instr.rs] // divisor) & _MASK
    cpu.pc = pc + 4


def _h_ld(cpu, instr, pc, regs):
    regs[instr.rd] = cpu.memory.load_word(
        (regs[instr.rs] + instr.imm) & _MASK)
    cpu.pc = pc + 4


def _h_st(cpu, instr, pc, regs):
    cpu.memory.store_word((regs[instr.rs] + instr.imm) & _MASK,
                          regs[instr.rd])
    cpu.pc = pc + 4


def _h_ldb(cpu, instr, pc, regs):
    regs[instr.rd] = cpu.memory.load_byte(
        (regs[instr.rs] + instr.imm) & _MASK)
    cpu.pc = pc + 4


def _h_stb(cpu, instr, pc, regs):
    cpu.memory.store_byte((regs[instr.rs] + instr.imm) & _MASK,
                          regs[instr.rd])
    cpu.pc = pc + 4


def _h_push(cpu, instr, pc, regs):
    sp = (regs[15] - 4) & _MASK
    cpu.memory.store_word(sp, regs[instr.rd])
    regs[15] = sp
    cpu.pc = pc + 4


def _h_pop(cpu, instr, pc, regs):
    sp = regs[15]
    regs[instr.rd] = cpu.memory.load_word(sp)
    regs[15] = (sp + 4) & _MASK
    cpu.pc = pc + 4


def _h_jmp(cpu, instr, pc, regs):
    if cpu.branch_profiler is not None:
        cpu.branch_profiler.record(pc, instr, True, cpu.flags)
    cpu.cycles += TAKEN_BRANCH_PENALTY
    cpu.pc = pc + 4 + instr.imm * 4


def _make_cond_branch(cond):
    def handler(cpu, instr, pc, regs):
        taken = evaluate_cond(cond, cpu.flags)
        if cpu.branch_profiler is not None:
            cpu.branch_profiler.record(pc, instr, taken, cpu.flags)
        if taken:
            cpu.cycles += TAKEN_BRANCH_PENALTY
            cpu.pc = pc + 4 + instr.imm * 4
        else:
            cpu.pc = pc + 4
    return handler


def _h_jrz(cpu, instr, pc, regs):
    taken = regs[instr.rd] == 0
    if cpu.branch_profiler is not None:
        cpu.branch_profiler.record(pc, instr, taken, cpu.flags)
    if taken:
        cpu.cycles += TAKEN_BRANCH_PENALTY
        cpu.pc = pc + 4 + instr.imm * 4
    else:
        cpu.pc = pc + 4


def _h_jrnz(cpu, instr, pc, regs):
    taken = regs[instr.rd] != 0
    if cpu.branch_profiler is not None:
        cpu.branch_profiler.record(pc, instr, taken, cpu.flags)
    if taken:
        cpu.cycles += TAKEN_BRANCH_PENALTY
        cpu.pc = pc + 4 + instr.imm * 4
    else:
        cpu.pc = pc + 4


def _h_call(cpu, instr, pc, regs):
    sp = (regs[15] - 4) & _MASK
    cpu.memory.store_word(sp, pc + 4)
    regs[15] = sp
    if cpu.branch_profiler is not None:
        cpu.branch_profiler.record(pc, instr, True, cpu.flags)
    cpu.cycles += TAKEN_BRANCH_PENALTY
    cpu.pc = pc + 4 + instr.imm * 4


def _h_jmpr(cpu, instr, pc, regs):
    cpu.cycles += TAKEN_BRANCH_PENALTY
    cpu.pc = regs[instr.rd]


def _h_callr(cpu, instr, pc, regs):
    sp = (regs[15] - 4) & _MASK
    cpu.memory.store_word(sp, pc + 4)
    regs[15] = sp
    cpu.cycles += TAKEN_BRANCH_PENALTY
    cpu.pc = regs[instr.rd]


def _h_ret(cpu, instr, pc, regs):
    sp = regs[15]
    target = cpu.memory.load_word(sp)
    regs[15] = (sp + 4) & _MASK
    cpu.cycles += TAKEN_BRANCH_PENALTY
    cpu.pc = target


def _make_cmov(cond):
    def handler(cpu, instr, pc, regs):
        if evaluate_cond(cond, cpu.flags):
            regs[instr.rd] = regs[instr.rs]
        cpu.pc = pc + 4
    return handler


def _h_syscall(cpu, instr, pc, regs):
    if syscalls.handle_syscall(cpu, instr.imm):
        cpu.pc = pc + 4
        return StopInfo(StopReason.HALTED, pc, exit_code=cpu.exit_code)
    cpu.pc = pc + 4


def _h_halt(cpu, instr, pc, regs):
    cpu.pc = pc + 4
    return StopInfo(StopReason.HALTED, pc, exit_code=0)


def _h_nop(cpu, instr, pc, regs):
    cpu.pc = pc + 4


def _h_trap(cpu, instr, pc, regs):
    cpu.pc = pc + 4
    return StopInfo(StopReason.TRAP, pc, trap_no=instr.imm)


def _h_illegal(cpu, instr, pc, regs):  # pragma: no cover - decode rejects
    return StopInfo(StopReason.FAULT, pc,
                    fault=FaultKind.ILLEGAL_INSTRUCTION, fault_addr=pc)


def _build_dispatch() -> list:
    table = [_h_illegal] * 256
    fixed = {
        Op.ADD: _h_add, Op.SUB: _h_sub, Op.AND: _h_and, Op.OR: _h_or,
        Op.XOR: _h_xor, Op.SHL: _h_shl, Op.SHR: _h_shr, Op.SAR: _h_sar,
        Op.MUL: _h_mul, Op.DIV: _h_div, Op.MOD: _h_mod, Op.CMP: _h_cmp,
        Op.TEST: _h_test, Op.NEG: _h_neg, Op.NOT: _h_not,
        Op.ADDI: _h_addi, Op.SUBI: _h_subi, Op.ANDI: _h_andi,
        Op.ORI: _h_ori, Op.XORI: _h_xori, Op.CMPI: _h_cmpi,
        Op.SHLI: _h_shli, Op.SHRI: _h_shri, Op.MULI: _h_muli,
        Op.MOV: _h_mov, Op.MOVI: _h_movi, Op.MOVHI: _h_movhi,
        Op.MOVLO: _h_movlo, Op.LEA: _h_lea, Op.LEA3: _h_lea3,
        Op.LSUB: _h_lsub,
        Op.FADD: _h_fadd, Op.FSUB: _h_fsub, Op.FMUL: _h_fmul,
        Op.FDIV: _h_fdiv,
        Op.LD: _h_ld, Op.ST: _h_st, Op.LDB: _h_ldb, Op.STB: _h_stb,
        Op.PUSH: _h_push, Op.POP: _h_pop,
        Op.JMP: _h_jmp, Op.JRZ: _h_jrz, Op.JRNZ: _h_jrnz,
        Op.CALL: _h_call, Op.JMPR: _h_jmpr, Op.CALLR: _h_callr,
        Op.RET: _h_ret,
        Op.SYSCALL: _h_syscall, Op.HALT: _h_halt, Op.NOP: _h_nop,
        Op.TRAP: _h_trap,
    }
    for op, handler in fixed.items():
        table[op] = handler
    # Jcc and CMOVcc get per-condition specialized handlers, so the
    # condition is bound at table-build time instead of re-read per step.
    for op, info in OP_TABLE.items():
        if info.kind is Kind.BRANCH_COND:
            table[op] = _make_cond_branch(info.cond)
        elif info.cond is not None:  # CMOVcc (R2 format)
            table[op] = _make_cmov(info.cond)
    return table


#: Per-opcode handler table, indexed by the 8-bit opcode value.
DISPATCH: list = _build_dispatch()


class _ObsBranchCounter:
    """Branch-mix tally installed in the profiler slot while a metrics
    registry is active and the slot is otherwise free.  ``check_sites``
    (the DBT's set of emitted CHECK_SIG branch addresses) additionally
    counts signature checks actually executed."""

    __slots__ = ("taken", "not_taken", "checks", "check_sites")

    def __init__(self, check_sites: set | None):
        self.taken = 0
        self.not_taken = 0
        self.checks = 0
        self.check_sites = check_sites

    def record(self, pc, instr, taken, flags) -> None:
        if taken:
            self.taken += 1
        else:
            self.not_taken += 1
        sites = self.check_sites
        if sites is not None and pc in sites:
            self.checks += 1


class Cpu:
    """One R32 hardware thread plus its memory."""

    def __init__(self, memory: Memory | None = None):
        self.memory = memory if memory is not None else Memory(MEMORY_SIZE)
        self.regs: list[int] = [0] * 32
        self.flags: int = 0
        self.pc: int = 0
        self.cycles: int = 0
        self.icount: int = 0
        self.output: list[str] = []
        self.output_values: list[int] = []
        self.exit_code: int | None = None
        #: optional syscall trace: set to a list to capture every
        #: executed service as ``(number, r1)`` — the differential
        #: fuzzing oracle diffs this against the golden run.  None
        #: (the default) records nothing.
        self.syscall_trace: list | None = None
        #: set by the CFC_ERROR syscall when an instrumented check fires
        self.cfc_error: bool = False
        #: fault-injection hook: called as hook(cpu, pc, instr) before a
        #: branch executes; may return a replacement Instruction.
        self.pre_branch_hook = None
        #: profiling hook: called as profiler.record(pc, instr, taken,
        #: flags) after every direct branch resolves.
        self.branch_profiler = None
        #: chained external write watcher (the DBT's SMC detector)
        self._external_write_watch = None
        #: execution backend (repro.exec); None means the reference
        #: interpreter loop runs directly with zero added overhead.
        self.backend = None
        #: backend's write watcher (block invalidation on SMC stores)
        self._backend_write_watch = None
        #: set by the DBT: cache addresses of emitted CHECK_SIG branch
        #: instructions, so the observability branch counter can report
        #: signature checks *executed* (only consulted when a metrics
        #: registry is installed).
        self.obs_check_sites: set[int] | None = None
        #: one-shot scheduled event: (icount, callable) applied just
        #: before the instruction with that dynamic index executes —
        #: the data-fault injection primitive.
        self.scheduled_fault: tuple[int, object] | None = None
        #: guest-thread support (repro.threads): set to the owning
        #: ThreadedMachine to activate syscalls 16..22.  None (the
        #: default) keeps those services no-ops — single-threaded runs
        #: behave exactly as before the threads subsystem existed.
        self.thread_api = None
        #: pending thread-service request: ``(service_number,)`` set by
        #: handle_syscall when a thread syscall traps to the scheduler.
        #: The run loop stops (HALTED) with the pc already past the
        #: syscall; the machine consumes the request and resumes.
        self.thread_request: int | None = None
        #: guest thread id currently executing (0 outside MT runs) —
        #: read by thread-targeted fault injectors and forensics.
        self.current_tid: int = 0
        #: pc -> (instr, meta, handler, is_branch)
        self._dcache: dict[int, tuple] = {}
        self.memory.write_watch = self._on_write

    # -- setup -------------------------------------------------------------

    def load_program(self, program, executable_text: bool = True) -> None:
        """Load a :class:`~repro.isa.program.Program` image.

        ``executable_text=False`` is the DBT configuration: guest code is
        data to the translator and only the code cache is executable.
        """
        mem = self.memory
        mem.write_raw(program.text_base, program.text)
        if program.data:
            mem.write_raw(program.data_base, program.data)
        text_perm = PERM_RX if executable_text else PERM_RW
        mem.set_perms(program.text_base, max(len(program.text), 1),
                      text_perm)
        data_len = max(len(program.data), 1)
        mem.set_perms(program.data_base, max(data_len, 0x8000), PERM_RW)
        # Stack: grows down from STACK_TOP.
        mem.set_perms(STACK_TOP - 0x10000, 0x10000, PERM_RW)
        self.pc = program.entry
        self.regs[15] = STACK_TOP - 16  # sp
        self._dcache.clear()

    def set_external_write_watch(self, watch) -> None:
        """Chain a second write watcher (used by the DBT for SMC)."""
        self._external_write_watch = watch

    def _on_write(self, addr: int, length: int) -> None:
        if self._dcache:
            for word_addr in range(addr & ~3, addr + length, 4):
                self._dcache.pop(word_addr, None)
        if self._backend_write_watch is not None:
            self._backend_write_watch(addr, length)
        if self._external_write_watch is not None:
            self._external_write_watch(addr, length)

    # -- helpers -----------------------------------------------------------

    def snapshot_state(self) -> tuple[int, int, int, tuple[int, ...], int]:
        """Architectural-state snapshot ``(pc, icount, cycles, regs,
        flags)`` — a point-in-time copy, safe to keep across further
        execution (used by the forensics flight recorder)."""
        return (self.pc, self.icount, self.cycles,
                tuple(self.regs), self.flags)

    def signed(self, reg: int) -> int:
        value = self.regs[reg]
        return value - 0x100000000 if value & _SIGN else value

    @staticmethod
    def _cache_entry(instr: Instruction) -> tuple:
        meta = instr.meta
        return (instr, meta, DISPATCH[instr.op], meta.is_branch)

    def _decode_at(self, pc: int) -> Instruction:
        cached = self._dcache.get(pc)
        if cached is None:
            word = int.from_bytes(self.memory.data[pc:pc + 4], "little")
            instr = decode(word)  # may raise DecodeError
            self._dcache[pc] = self._cache_entry(instr)
            return instr
        return cached[0]

    # -- main loop -----------------------------------------------------------

    def run(self, max_steps: int = 50_000_000,
            max_cycles: int | None = None) -> StopInfo:
        """Execute until halt, trap, fault, or a budget limit.

        When a metrics registry is installed this delegates to the
        observed wrapper; otherwise it enters the hot loop directly —
        the disabled cost of observability is this one ``None`` check
        per ``run`` call, never anything per instruction.
        """
        registry = obs.get_registry()
        if registry is None:
            if self.backend is None:
                return self._run_loop(max_steps, max_cycles)
            return self.backend.run(self, max_steps, max_cycles)
        return self._run_observed(registry, max_steps, max_cycles)

    def _run_observed(self, registry, max_steps: int,
                      max_cycles: int | None) -> StopInfo:
        """Hot loop plus instruction/cycle/branch-mix accounting."""
        branch_counter = None
        if self.branch_profiler is None:
            branch_counter = _ObsBranchCounter(self.obs_check_sites)
            self.branch_profiler = branch_counter
        icount_before = self.icount
        cycles_before = self.cycles
        try:
            if self.backend is None:
                return self._run_loop(max_steps, max_cycles)
            return self.backend.run(self, max_steps, max_cycles)
        finally:
            registry.counter(
                "interp_instructions_total",
                help="guest instructions retired").inc(
                self.icount - icount_before)
            registry.counter(
                "interp_cycles_total",
                help="model cycles charged").inc(
                self.cycles - cycles_before)
            if branch_counter is not None:
                self.branch_profiler = None
                if branch_counter.taken:
                    registry.counter(
                        "interp_branches_total",
                        help="direct branches executed",
                        direction="taken").inc(branch_counter.taken)
                if branch_counter.not_taken:
                    registry.counter(
                        "interp_branches_total",
                        help="direct branches executed",
                        direction="not_taken").inc(
                        branch_counter.not_taken)
                if branch_counter.checks:
                    registry.counter(
                        "dbt_checks_executed_total",
                        help="signature-check branches executed").inc(
                        branch_counter.checks)

    def _run_loop(self, max_steps: int,
                  max_cycles: int | None) -> StopInfo:
        regs = self.regs
        mem = self.memory
        perms = mem.perms
        data = mem.data
        dcache = self._dcache
        size = mem.size
        dispatch = DISPATCH
        steps = 0
        cycle_cap = max_cycles if max_cycles is not None else None
        try:
            while True:
                if steps >= max_steps:
                    return StopInfo(StopReason.STEP_LIMIT, self.pc)
                if cycle_cap is not None and self.cycles >= cycle_cap:
                    return StopInfo(StopReason.CYCLE_LIMIT, self.pc)
                steps += 1
                pc = self.pc
                if pc & 3:
                    return StopInfo(StopReason.FAULT, pc,
                                    fault=FaultKind.UNALIGNED,
                                    fault_addr=pc)
                if not 0 <= pc < size or not (perms[pc >> 12] & PERM_X):
                    return StopInfo(StopReason.FAULT, pc,
                                    fault=FaultKind.NX_VIOLATION,
                                    fault_addr=pc)
                cached = dcache.get(pc)
                if cached is None:
                    word = int.from_bytes(data[pc:pc + 4], "little")
                    try:
                        instr = decode(word)
                    except DecodeError:
                        return StopInfo(
                            StopReason.FAULT, pc,
                            fault=FaultKind.ILLEGAL_INSTRUCTION,
                            fault_addr=pc)
                    meta = instr.meta
                    handler = dispatch[instr.op]
                    is_branch = meta.is_branch
                    dcache[pc] = (instr, meta, handler, is_branch)
                else:
                    instr, meta, handler, is_branch = cached
                if is_branch and self.pre_branch_hook is not None:
                    replacement = self.pre_branch_hook(self, pc, instr)
                    if replacement is not None:
                        instr = replacement
                        meta = instr.meta
                        handler = dispatch[instr.op]
                if (self.scheduled_fault is not None
                        and self.icount >= self.scheduled_fault[0]):
                    apply_fault = self.scheduled_fault[1]
                    self.scheduled_fault = None
                    apply_fault(self)
                self.icount += 1
                self.cycles += meta.cycles
                stop = handler(self, instr, pc, regs)
                if stop is not None:
                    return stop
        except AccessFault as fault:
            return StopInfo(StopReason.FAULT, self.pc, fault=fault.kind,
                            fault_addr=fault.addr)

    def step(self) -> StopInfo | None:
        """Execute exactly one instruction; None means 'keep going'."""
        result = self.run(max_steps=1)
        return None if result.reason is StopReason.STEP_LIMIT else result

    # -- execution ------------------------------------------------------------

    def _execute(self, instr: Instruction, pc: int,
                 regs: list[int]) -> StopInfo | None:
        """Execute one decoded instruction (dispatch-table lookup).

        Kept as the single-instruction entry point for tests and tools;
        the hot loop in :meth:`run` inlines the same dispatch.
        """
        return DISPATCH[instr.op](self, instr, pc, regs)
