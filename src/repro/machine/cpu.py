"""The R32 interpreter.

A deterministic, cycle-accounting interpreter with:

* per-page execute permission on every fetch (execute-disable bit),
* a decode cache invalidated on stores (so self-modifying code works),
* optional per-branch hooks used by the fault injector and the branch
  profiler (both gated behind ``is None`` checks so the common path
  stays fast).

Determinism is the point: the paper's performance results become exact,
reproducible cycle counts instead of noisy wall-clock measurements.
"""

from __future__ import annotations

from repro.isa.encoding import DecodeError, decode
from repro.isa.flags import (evaluate_cond, flags_from_add, flags_from_logic,
                             flags_from_sub)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Kind, Op
from repro.isa.program import MEMORY_SIZE, STACK_TOP
from repro.machine import syscalls
from repro.machine.faults import FaultKind, StopInfo, StopReason
from repro.machine.memory import (PERM_RW, PERM_RX, PERM_X, Memory,
                                  AccessFault)

_MASK = 0xFFFFFFFF
_SIGN = 0x80000000

#: Extra cycles charged when a branch is taken (front-end redirect).
TAKEN_BRANCH_PENALTY = 1


class Cpu:
    """One R32 hardware thread plus its memory."""

    def __init__(self, memory: Memory | None = None):
        self.memory = memory if memory is not None else Memory(MEMORY_SIZE)
        self.regs: list[int] = [0] * 32
        self.flags: int = 0
        self.pc: int = 0
        self.cycles: int = 0
        self.icount: int = 0
        self.output: list[str] = []
        self.output_values: list[int] = []
        self.exit_code: int | None = None
        #: set by the CFC_ERROR syscall when an instrumented check fires
        self.cfc_error: bool = False
        #: fault-injection hook: called as hook(cpu, pc, instr) before a
        #: branch executes; may return a replacement Instruction.
        self.pre_branch_hook = None
        #: profiling hook: called as profiler.record(pc, instr, taken,
        #: flags) after every direct branch resolves.
        self.branch_profiler = None
        #: chained external write watcher (the DBT's SMC detector)
        self._external_write_watch = None
        #: one-shot scheduled event: (icount, callable) applied just
        #: before the instruction with that dynamic index executes —
        #: the data-fault injection primitive.
        self.scheduled_fault: tuple[int, object] | None = None
        self._dcache: dict[int, Instruction] = {}
        self.memory.write_watch = self._on_write

    # -- setup -------------------------------------------------------------

    def load_program(self, program, executable_text: bool = True) -> None:
        """Load a :class:`~repro.isa.program.Program` image.

        ``executable_text=False`` is the DBT configuration: guest code is
        data to the translator and only the code cache is executable.
        """
        mem = self.memory
        mem.write_raw(program.text_base, program.text)
        if program.data:
            mem.write_raw(program.data_base, program.data)
        text_perm = PERM_RX if executable_text else PERM_RW
        mem.set_perms(program.text_base, max(len(program.text), 1),
                      text_perm)
        data_len = max(len(program.data), 1)
        mem.set_perms(program.data_base, max(data_len, 0x8000), PERM_RW)
        # Stack: grows down from STACK_TOP.
        mem.set_perms(STACK_TOP - 0x10000, 0x10000, PERM_RW)
        self.pc = program.entry
        self.regs[15] = STACK_TOP - 16  # sp
        self._dcache.clear()

    def set_external_write_watch(self, watch) -> None:
        """Chain a second write watcher (used by the DBT for SMC)."""
        self._external_write_watch = watch

    def _on_write(self, addr: int, length: int) -> None:
        if self._dcache:
            for word_addr in range(addr & ~3, addr + length, 4):
                self._dcache.pop(word_addr, None)
        if self._external_write_watch is not None:
            self._external_write_watch(addr, length)

    # -- helpers -----------------------------------------------------------

    def signed(self, reg: int) -> int:
        value = self.regs[reg]
        return value - 0x100000000 if value & _SIGN else value

    def _decode_at(self, pc: int) -> Instruction:
        cached = self._dcache.get(pc)
        if cached is None:
            word = int.from_bytes(self.memory.data[pc:pc + 4], "little")
            instr = decode(word)  # may raise DecodeError
            self._dcache[pc] = (instr, instr.meta)
            return instr
        return cached[0]

    # -- main loop -----------------------------------------------------------

    def run(self, max_steps: int = 50_000_000,
            max_cycles: int | None = None) -> StopInfo:
        """Execute until halt, trap, fault, or a budget limit."""
        regs = self.regs
        mem = self.memory
        perms = mem.perms
        data = mem.data
        dcache = self._dcache
        size = mem.size
        execute = self._execute
        steps = 0
        cycle_cap = max_cycles if max_cycles is not None else None
        try:
            while True:
                if steps >= max_steps:
                    return StopInfo(StopReason.STEP_LIMIT, self.pc)
                if cycle_cap is not None and self.cycles >= cycle_cap:
                    return StopInfo(StopReason.CYCLE_LIMIT, self.pc)
                steps += 1
                pc = self.pc
                if pc & 3:
                    return StopInfo(StopReason.FAULT, pc,
                                    fault=FaultKind.UNALIGNED,
                                    fault_addr=pc)
                if not 0 <= pc < size or not (perms[pc >> 12] & PERM_X):
                    return StopInfo(StopReason.FAULT, pc,
                                    fault=FaultKind.NX_VIOLATION,
                                    fault_addr=pc)
                cached = dcache.get(pc)
                if cached is None:
                    word = int.from_bytes(data[pc:pc + 4], "little")
                    try:
                        instr = decode(word)
                    except DecodeError:
                        return StopInfo(
                            StopReason.FAULT, pc,
                            fault=FaultKind.ILLEGAL_INSTRUCTION,
                            fault_addr=pc)
                    meta = instr.meta
                    dcache[pc] = (instr, meta)
                else:
                    instr, meta = cached
                if meta.is_branch and self.pre_branch_hook is not None:
                    replacement = self.pre_branch_hook(self, pc, instr)
                    if replacement is not None:
                        instr = replacement
                        meta = instr.meta
                if (self.scheduled_fault is not None
                        and self.icount >= self.scheduled_fault[0]):
                    apply_fault = self.scheduled_fault[1]
                    self.scheduled_fault = None
                    apply_fault(self)
                self.icount += 1
                self.cycles += meta.cycles
                stop = execute(instr, pc, regs)
                if stop is not None:
                    return stop
        except AccessFault as fault:
            return StopInfo(StopReason.FAULT, self.pc, fault=fault.kind,
                            fault_addr=fault.addr)

    def step(self) -> StopInfo | None:
        """Execute exactly one instruction; None means 'keep going'."""
        result = self.run(max_steps=1)
        return None if result.reason is StopReason.STEP_LIMIT else result

    # -- execution ------------------------------------------------------------

    def _execute(self, instr: Instruction, pc: int,
                 regs: list[int]) -> StopInfo | None:
        op = instr.op
        next_pc = pc + 4

        # ALU register-register -------------------------------------------
        if op is Op.ADD:
            a, b = regs[instr.rs], regs[instr.rt]
            result = (a + b) & _MASK
            regs[instr.rd] = result
            self.flags = flags_from_add(a, b)
        elif op is Op.SUB:
            a, b = regs[instr.rs], regs[instr.rt]
            regs[instr.rd] = (a - b) & _MASK
            self.flags = flags_from_sub(a, b)
        elif op is Op.AND:
            result = regs[instr.rs] & regs[instr.rt]
            regs[instr.rd] = result
            self.flags = flags_from_logic(result)
        elif op is Op.OR:
            result = regs[instr.rs] | regs[instr.rt]
            regs[instr.rd] = result
            self.flags = flags_from_logic(result)
        elif op is Op.XOR:
            result = regs[instr.rs] ^ regs[instr.rt]
            regs[instr.rd] = result
            self.flags = flags_from_logic(result)
        elif op is Op.SHL:
            result = (regs[instr.rs] << (regs[instr.rt] & 31)) & _MASK
            regs[instr.rd] = result
            self.flags = flags_from_logic(result)
        elif op is Op.SHR:
            result = regs[instr.rs] >> (regs[instr.rt] & 31)
            regs[instr.rd] = result
            self.flags = flags_from_logic(result)
        elif op is Op.SAR:
            value = regs[instr.rs]
            if value & _SIGN:
                value -= 0x100000000
            result = (value >> (regs[instr.rt] & 31)) & _MASK
            regs[instr.rd] = result
            self.flags = flags_from_logic(result)
        elif op is Op.MUL:
            result = (regs[instr.rs] * regs[instr.rt]) & _MASK
            regs[instr.rd] = result
            self.flags = flags_from_logic(result)
        elif op in (Op.DIV, Op.MOD):
            divisor = regs[instr.rt]
            if divisor == 0:
                return StopInfo(StopReason.FAULT, pc,
                                fault=FaultKind.DIV_BY_ZERO, fault_addr=pc)
            a = regs[instr.rs]
            result = a // divisor if op is Op.DIV else a % divisor
            regs[instr.rd] = result & _MASK
            self.flags = flags_from_logic(result)
        elif op is Op.CMP:
            self.flags = flags_from_sub(regs[instr.rs], regs[instr.rt])
        elif op is Op.TEST:
            self.flags = flags_from_logic(regs[instr.rs] & regs[instr.rt])
        elif op is Op.NEG:
            a = regs[instr.rs]
            regs[instr.rd] = (-a) & _MASK
            self.flags = flags_from_sub(0, a)
        elif op is Op.NOT:
            result = (~regs[instr.rs]) & _MASK
            regs[instr.rd] = result
            self.flags = flags_from_logic(result)

        # ALU register-immediate --------------------------------------------
        elif op is Op.ADDI:
            a = regs[instr.rs]
            regs[instr.rd] = (a + instr.imm) & _MASK
            self.flags = flags_from_add(a, instr.imm & _MASK)
        elif op is Op.SUBI:
            a = regs[instr.rs]
            regs[instr.rd] = (a - instr.imm) & _MASK
            self.flags = flags_from_sub(a, instr.imm & _MASK)
        elif op is Op.ANDI:
            result = regs[instr.rs] & (instr.imm & _MASK)
            regs[instr.rd] = result
            self.flags = flags_from_logic(result)
        elif op is Op.ORI:
            result = regs[instr.rs] | (instr.imm & _MASK)
            regs[instr.rd] = result
            self.flags = flags_from_logic(result)
        elif op is Op.XORI:
            result = regs[instr.rs] ^ (instr.imm & _MASK)
            regs[instr.rd] = result
            self.flags = flags_from_logic(result)
        elif op is Op.CMPI:
            self.flags = flags_from_sub(regs[instr.rs], instr.imm & _MASK)
        elif op is Op.SHLI:
            result = (regs[instr.rs] << (instr.imm & 31)) & _MASK
            regs[instr.rd] = result
            self.flags = flags_from_logic(result)
        elif op is Op.SHRI:
            result = regs[instr.rs] >> (instr.imm & 31)
            regs[instr.rd] = result
            self.flags = flags_from_logic(result)
        elif op is Op.MULI:
            result = (regs[instr.rs] * instr.imm) & _MASK
            regs[instr.rd] = result
            self.flags = flags_from_logic(result)

        # Flagless moves / lea family ---------------------------------------
        elif op is Op.MOV:
            regs[instr.rd] = regs[instr.rs]
        elif op is Op.MOVI:
            regs[instr.rd] = instr.imm & _MASK
        elif op is Op.MOVHI:
            regs[instr.rd] = (instr.imm & 0xFFFF) << 16
        elif op is Op.MOVLO:
            regs[instr.rd] = (regs[instr.rd] & 0xFFFF0000) | (
                instr.imm & 0xFFFF)
        elif op is Op.LEA:
            regs[instr.rd] = (regs[instr.rs] + instr.imm) & _MASK
        elif op is Op.LEA3:
            regs[instr.rd] = (regs[instr.rs] + regs[instr.rt]) & _MASK
        elif op is Op.LSUB:
            regs[instr.rd] = (regs[instr.rs] - regs[instr.rt]) & _MASK

        # FP-class -----------------------------------------------------------
        elif op is Op.FADD:
            regs[instr.rd] = (regs[instr.rs] + regs[instr.rt]) & _MASK
        elif op is Op.FSUB:
            regs[instr.rd] = (regs[instr.rs] - regs[instr.rt]) & _MASK
        elif op is Op.FMUL:
            regs[instr.rd] = (regs[instr.rs] * regs[instr.rt]) & _MASK
        elif op is Op.FDIV:
            divisor = regs[instr.rt]
            if divisor == 0:
                return StopInfo(StopReason.FAULT, pc,
                                fault=FaultKind.DIV_BY_ZERO, fault_addr=pc)
            regs[instr.rd] = (regs[instr.rs] // divisor) & _MASK

        # Memory ---------------------------------------------------------------
        elif op is Op.LD:
            regs[instr.rd] = self.memory.load_word(
                (regs[instr.rs] + instr.imm) & _MASK)
        elif op is Op.ST:
            self.memory.store_word((regs[instr.rs] + instr.imm) & _MASK,
                                   regs[instr.rd])
        elif op is Op.LDB:
            regs[instr.rd] = self.memory.load_byte(
                (regs[instr.rs] + instr.imm) & _MASK)
        elif op is Op.STB:
            self.memory.store_byte((regs[instr.rs] + instr.imm) & _MASK,
                                   regs[instr.rd])
        elif op is Op.PUSH:
            sp = (regs[15] - 4) & _MASK
            self.memory.store_word(sp, regs[instr.rd])
            regs[15] = sp
        elif op is Op.POP:
            sp = regs[15]
            regs[instr.rd] = self.memory.load_word(sp)
            regs[15] = (sp + 4) & _MASK

        # Control flow ------------------------------------------------------------
        elif op is Op.JMP:
            target = pc + 4 + instr.imm * 4
            if self.branch_profiler is not None:
                self.branch_profiler.record(pc, instr, True, self.flags)
            self.cycles += TAKEN_BRANCH_PENALTY
            next_pc = target
        elif instr.meta.kind is Kind.BRANCH_COND:
            taken = evaluate_cond(instr.meta.cond, self.flags)
            if self.branch_profiler is not None:
                self.branch_profiler.record(pc, instr, taken, self.flags)
            if taken:
                self.cycles += TAKEN_BRANCH_PENALTY
                next_pc = pc + 4 + instr.imm * 4
        elif op is Op.JRZ:
            taken = regs[instr.rd] == 0
            if self.branch_profiler is not None:
                self.branch_profiler.record(pc, instr, taken, self.flags)
            if taken:
                self.cycles += TAKEN_BRANCH_PENALTY
                next_pc = pc + 4 + instr.imm * 4
        elif op is Op.JRNZ:
            taken = regs[instr.rd] != 0
            if self.branch_profiler is not None:
                self.branch_profiler.record(pc, instr, taken, self.flags)
            if taken:
                self.cycles += TAKEN_BRANCH_PENALTY
                next_pc = pc + 4 + instr.imm * 4
        elif op is Op.CALL:
            sp = (regs[15] - 4) & _MASK
            self.memory.store_word(sp, pc + 4)
            regs[15] = sp
            if self.branch_profiler is not None:
                self.branch_profiler.record(pc, instr, True, self.flags)
            self.cycles += TAKEN_BRANCH_PENALTY
            next_pc = pc + 4 + instr.imm * 4
        elif op is Op.JMPR:
            self.cycles += TAKEN_BRANCH_PENALTY
            next_pc = regs[instr.rd]
        elif op is Op.CALLR:
            sp = (regs[15] - 4) & _MASK
            self.memory.store_word(sp, pc + 4)
            regs[15] = sp
            self.cycles += TAKEN_BRANCH_PENALTY
            next_pc = regs[instr.rd]
        elif op is Op.RET:
            sp = regs[15]
            next_pc = self.memory.load_word(sp)
            regs[15] = (sp + 4) & _MASK
            self.cycles += TAKEN_BRANCH_PENALTY

        # Conditional moves -------------------------------------------------------
        elif instr.meta.cond is not None:  # CMOVcc (Jcc handled above)
            if evaluate_cond(instr.meta.cond, self.flags):
                regs[instr.rd] = regs[instr.rs]

        # System -----------------------------------------------------------------
        elif op is Op.SYSCALL:
            if syscalls.handle_syscall(self, instr.imm):
                self.pc = next_pc
                return StopInfo(StopReason.HALTED, pc,
                                exit_code=self.exit_code)
        elif op is Op.HALT:
            self.pc = next_pc
            return StopInfo(StopReason.HALTED, pc, exit_code=0)
        elif op is Op.NOP:
            pass
        elif op is Op.TRAP:
            self.pc = next_pc
            return StopInfo(StopReason.TRAP, pc, trap_no=instr.imm)
        else:  # pragma: no cover - table is exhaustive
            return StopInfo(StopReason.FAULT, pc,
                            fault=FaultKind.ILLEGAL_INSTRUCTION,
                            fault_addr=pc)

        self.pc = next_pc
        return None
