"""Guest system services.

The machine exposes a tiny deterministic syscall interface — enough for
the workloads to produce *observable output*, which is what the fault
campaigns diff to decide whether an undetected error was benign or
silent data corruption (SDC).

Calling convention: service number is the ``syscall`` immediate,
argument in ``r1``, result (if any) in ``r0``.
"""

from __future__ import annotations

import enum

from repro import obs


class Service(enum.IntEnum):
    EXIT = 0         #: terminate; exit code in r1
    PRINT_INT = 1    #: append signed decimal of r1 to the output
    PRINT_CHAR = 2   #: append chr(r1 & 0xff)
    PRINT_STR = 3    #: append NUL-terminated string at address r1
    EMIT_WORD = 4    #: append raw 32-bit value of r1 (fast checksum sink)
    CYCLES_LO = 5    #: r0 = low 32 bits of the cycle counter
    CFC_ERROR = 6    #: control-flow-check error report (static-mode sink)
    # -- guest-thread services (repro.threads) -------------------------
    # Active only when ``cpu.thread_api`` is set (an MT run under the
    # ThreadedMachine); otherwise they stay no-ops like any unknown
    # service, preserving single-threaded behaviour exactly.
    SPAWN = 16        #: r1=entry, r2=arg, r3=priority -> r0 = new tid
    JOIN = 17         #: r1=tid; blocks, then r0 = that thread's retval
    YIELD = 18        #: surrender the rest of the quantum
    MUTEX_LOCK = 19   #: r1=mutex id; blocks while held elsewhere
    MUTEX_UNLOCK = 20  #: r1=mutex id; wakes the first FIFO waiter
    TID = 21          #: r0 = calling thread's id
    THREAD_EXIT = 22  #: r1=retval; ends the calling thread


#: Exit code of a run stopped by a control-flow-check error report.
CFC_ERROR_EXIT_CODE = 0xCFCE


def handle_syscall(cpu, number: int) -> bool:
    """Execute service ``number``.  Returns True when the CPU must halt."""
    regs = cpu.regs
    if cpu.syscall_trace is not None:
        cpu.syscall_trace.append((number, regs[1] & 0xFFFFFFFF))
    if number == Service.EXIT:
        cpu.exit_code = regs[1] & 0xFFFFFFFF
        return True
    if number == Service.PRINT_INT:
        value = regs[1]
        if value >= 0x80000000:
            value -= 0x100000000
        cpu.output.append(str(value))
        return False
    if number == Service.PRINT_CHAR:
        cpu.output.append(chr(regs[1] & 0xFF))
        return False
    if number == Service.PRINT_STR:
        text = cpu.memory.read_cstring(regs[1])
        cpu.output.append(text.decode("latin-1"))
        return False
    if number == Service.EMIT_WORD:
        cpu.output_values.append(regs[1] & 0xFFFFFFFF)
        return False
    if number == Service.CYCLES_LO:
        regs[0] = cpu.cycles & 0xFFFFFFFF
        return False
    if number == Service.CFC_ERROR:
        # A statically-instrumented checking technique reports an error:
        # halt immediately with the well-known exit code.
        cpu.cfc_error = True
        cpu.exit_code = CFC_ERROR_EXIT_CODE
        obs.counter("interp_cfc_reports_total",
                    help="CFC_ERROR syscall detections").inc()
        return True
    if (Service.SPAWN <= number <= Service.THREAD_EXIT
            and cpu.thread_api is not None):
        # Thread services trap to the scheduler: the run loop stops
        # (HALTED, pc already advanced past the syscall) and the
        # ThreadedMachine consumes ``thread_request`` — on both
        # execution backends, because a syscall always terminates a
        # compiled trace too.
        cpu.thread_request = number
        return True
    # Unknown service: treated as a no-op so corrupted control flow that
    # lands on a syscall does not crash the host.
    return False
