"""Execution tracing for debugging translated and instrumented code.

A :class:`Tracer` records the last N executed branch events (the
interesting control-flow skeleton — tracing every instruction through
the pre-branch hook would miss non-branches anyway, and full tracing
belongs in a debugger, not a hot loop).  For full instruction-level
traces over short windows, :func:`trace_run` single-steps a CPU and
captures everything.

Typical debugging session::

    tracer = Tracer(capacity=64)
    dbt = Dbt(program, technique=EdgCF())
    tracer.attach(dbt.cpu)
    result = dbt.run()
    print(tracer.format(symbols=program.symbols))
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.isa.disassembler import format_instruction
from repro.isa.instruction import Instruction
from repro.machine.cpu import Cpu
from repro.machine.faults import StopInfo


@dataclass(frozen=True)
class BranchEvent:
    """One recorded branch execution."""

    pc: int
    instr: Instruction

    def format(self, by_address: dict[int, str] | None = None) -> str:
        where = (by_address or {}).get(self.pc)
        prefix = f"{where}: " if where else ""
        return (f"{prefix}{self.pc:#08x}  "
                f"{format_instruction(self.instr, self.pc)}")


class Tracer:
    """Ring buffer of the most recent branch executions."""

    def __init__(self, capacity: int = 64):
        self.events: deque[BranchEvent] = deque(maxlen=capacity)
        self._chained_hook = None

    def attach(self, cpu: Cpu) -> None:
        """Install on a CPU; chains any existing pre-branch hook (e.g.
        a fault injector) so both observe the stream."""
        self._chained_hook = cpu.pre_branch_hook
        cpu.pre_branch_hook = self._hook

    def _hook(self, cpu: Cpu, pc: int, instr: Instruction):
        self.events.append(BranchEvent(pc=pc, instr=instr))
        if self._chained_hook is not None:
            return self._chained_hook(cpu, pc, instr)
        return None

    def format(self, symbols: dict[str, int] | None = None) -> str:
        by_address = {}
        if symbols:
            by_address = {addr: name for name, addr in symbols.items()}
        return "\n".join(event.format(by_address)
                         for event in self.events)

    def __len__(self) -> int:
        return len(self.events)


@dataclass
class TraceRecord:
    """One instruction of a full trace."""

    pc: int
    instr: Instruction
    regs_after: tuple[int, ...]


def trace_run(cpu: Cpu, max_steps: int = 1000,
              watch_regs: tuple[int, ...] = ()
              ) -> tuple[list[TraceRecord], StopInfo | None]:
    """Single-step ``cpu`` capturing every executed instruction.

    ``watch_regs`` limits the captured register state (empty = none).
    Returns the trace and the stop info (None if the step budget ran
    out first).
    """
    records: list[TraceRecord] = []
    for _ in range(max_steps):
        pc = cpu.pc
        try:
            instr = cpu._decode_at(pc)
        except Exception:
            instr = Instruction.__new__(Instruction)
            object.__setattr__(instr, "op", None)
        stop = cpu.step()
        regs = tuple(cpu.regs[r] for r in watch_regs)
        if getattr(instr, "op", None) is not None:
            records.append(TraceRecord(pc=pc, instr=instr,
                                       regs_after=regs))
        if stop is not None:
            return records, stop
    return records, None


def format_trace(records: list[TraceRecord],
                 watch_regs: tuple[int, ...] = ()) -> str:
    from repro.isa.registers import register_name
    lines = []
    for record in records:
        line = (f"{record.pc:#08x}  "
                f"{format_instruction(record.instr, record.pc)}")
        if watch_regs:
            state = " ".join(
                f"{register_name(reg)}={value:#x}"
                for reg, value in zip(watch_regs, record.regs_after))
            line = f"{line:50s} | {state}"
        lines.append(line)
    return "\n".join(lines)
