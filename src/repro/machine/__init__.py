"""The R32 machine: paged memory, interpreter, syscalls, profiling.

This is the hardware substrate of the reproduction — the stand-in for
the paper's Intel Xeon.  It provides the two protection mechanisms the
paper's detection story needs (execute-disable and write protection) and
a deterministic cycle model for the performance figures.
"""

from repro import obs
from repro.machine.cpu import TAKEN_BRANCH_PENALTY, Cpu
from repro.machine.faults import (FaultKind, MachineError, StopInfo,
                                  StopReason)
from repro.machine.memory import (PAGE_SIZE, PERM_R, PERM_RW, PERM_RWX,
                                  PERM_RX, PERM_W, PERM_X, Memory)
from repro.machine.profile import BranchProfiler, BranchStats
from repro.machine.syscalls import Service

__all__ = [
    "TAKEN_BRANCH_PENALTY", "Cpu",
    "FaultKind", "MachineError", "StopInfo", "StopReason",
    "PAGE_SIZE", "PERM_R", "PERM_RW", "PERM_RWX", "PERM_RX", "PERM_W",
    "PERM_X", "Memory",
    "BranchProfiler", "BranchStats",
    "Service",
]


def run_native(program, max_steps: int = 50_000_000,
               profiler: BranchProfiler | None = None,
               backend: str = "interp"):
    """Run a program directly on the machine (no DBT).

    Returns ``(cpu, stop_info)``.  This is the paper's "native code"
    baseline configuration.  ``backend`` selects the execution
    strategy (see :mod:`repro.exec`).
    """
    # Local import: repro.exec imports machine modules at load time.
    from repro.exec import install_backend
    cpu = Cpu()
    install_backend(cpu, backend)
    cpu.load_program(program, executable_text=True)
    if profiler is not None:
        cpu.branch_profiler = profiler
    with obs.span("interp.run",
                  program=getattr(program, "source_name", "?")):
        stop = cpu.run(max_steps=max_steps)
    return cpu, stop
