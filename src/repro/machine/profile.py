"""Branch execution profiling.

The paper's error model (Section 2) weights every branch-error category
by *dynamic execution frequency*: "Given that soft-errors are temporal
errors, we have to take into account the execution frequency of each
instruction.  The taken and not taken ratio is also important."

:class:`BranchProfiler` collects exactly the statistics the analytic
model needs:

* per static branch: taken and not-taken execution counts,
* per (static branch, FLAGS value): execution counts, split by outcome —
  the flag-fault analysis depends on the concrete flag values at each
  execution (flipping SF under ``jle`` only matters when ZF is clear...).

FLAGS only has 16 possible values, so the histogram stays tiny and the
whole Figure 2 table can be computed analytically after one profiled
run, instead of re-executing the program once per candidate fault.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Kind


@dataclass
class BranchStats:
    """Dynamic statistics for one static direct branch."""

    pc: int
    instr: Instruction
    taken: int = 0
    not_taken: int = 0
    #: (flags, taken) -> count; only populated for conditional branches.
    flags_hist: Counter = field(default_factory=Counter)

    @property
    def executions(self) -> int:
        return self.taken + self.not_taken

    @property
    def is_conditional(self) -> bool:
        return self.instr.meta.kind is Kind.BRANCH_COND


class BranchProfiler:
    """Accumulates per-branch dynamic statistics during a run.

    Install on a CPU via ``cpu.branch_profiler = profiler``.  Only direct
    branches with an encoded offset are recorded; indirect branches are
    excluded from the error model exactly as in the paper ("we simplify
    the analysis by not accounting the errors in these branches").
    """

    def __init__(self) -> None:
        self.branches: dict[int, BranchStats] = {}

    def record(self, pc: int, instr: Instruction, taken: bool,
               flags: int) -> None:
        stats = self.branches.get(pc)
        if stats is None:
            stats = BranchStats(pc=pc, instr=instr)
            self.branches[pc] = stats
        if taken:
            stats.taken += 1
        else:
            stats.not_taken += 1
        if instr.meta.kind is Kind.BRANCH_COND:
            stats.flags_hist[(flags, taken)] += 1

    @property
    def total_executions(self) -> int:
        return sum(stats.executions for stats in self.branches.values())

    def taken_ratio(self) -> float:
        """Fraction of dynamic direct-branch executions that were taken."""
        total = self.total_executions
        if total == 0:
            return 0.0
        taken = sum(stats.taken for stats in self.branches.values())
        return taken / total
