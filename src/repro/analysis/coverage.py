"""Coverage-matrix builders: the paper's qualitative claims table.

Produces, per technique, the detection behaviour for each branch-error
category (guest-level campaigns) and for faults on the inserted
branches themselves (cache-level campaigns — the Figure-14 safety
column and RCF's headline advantage).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.program import Program
from repro.faults import (CacheCampaignResult, CampaignExecutor,
                          CampaignResult, Category, Outcome,
                          PipelineConfig, generate_category_faults,
                          run_cache_campaign)
from repro.analysis.report import format_table

#: The default comparison set: the paper's DBT techniques plus the
#: static whole-CFG baselines.
DEFAULT_CONFIGS = (
    PipelineConfig("dbt", None),
    PipelineConfig("static", "cfcss"),
    PipelineConfig("static", "ecca"),
    PipelineConfig("dbt", "ecf"),
    PipelineConfig("dbt", "edgcf"),
    PipelineConfig("dbt", "rcf"),
)


@dataclass
class CoverageMatrix:
    """Per-(config, category) campaign outcomes."""

    program_name: str
    results: dict[str, CampaignResult] = field(default_factory=dict)
    cache_results: dict[str, CacheCampaignResult] = field(
        default_factory=dict)
    #: per-config forensics bundle entries (``--forensics`` only)
    forensics: dict[str, list[dict]] = field(default_factory=dict)

    def covered(self, label: str, category: Category) -> bool:
        return self.results[label].covers(category)

    def table(self) -> str:
        categories = (Category.A, Category.B, Category.C, Category.D,
                      Category.E, Category.F)
        headers = ["configuration"] + [c.value for c in categories]
        if self.cache_results:
            headers.append("inserted-branches")
        rows = []
        for label, result in self.results.items():
            cells: list[object] = [label]
            for category in categories:
                bucket = result.outcomes.get(category, {})
                sdc = bucket.get(Outcome.SDC, 0)
                hang = bucket.get(Outcome.HANG, 0)
                cell = ("covered" if (sdc + hang) == 0
                        else f"MISS({sdc + hang})")
                infra = bucket.get(Outcome.INFRA_ERROR, 0)
                if infra:
                    # Harness failures: counted apart from coverage.
                    cell += f" !{infra}infra"
                cells.append(cell)
            if self.cache_results:
                cache = self.cache_results.get(label)
                if cache is None:
                    cells.append("-")
                else:
                    cells.append("covered" if cache.undetected == 0
                                 else f"MISS({cache.undetected})")
            rows.append(cells)
        return format_table(
            headers, rows,
            title=f"Coverage matrix — {self.program_name} "
                  "(MISS(n) = n undetected harmful errors)")


def compute_coverage_matrix(program: Program,
                            configs=DEFAULT_CONFIGS,
                            per_category: int = 10,
                            seed: int = 2006,
                            include_cache_level: bool = True,
                            cache_max_sites: int = 20,
                            jobs: int = 1,
                            retries: int | None = None,
                            timeout: float | None = None,
                            journal: str | None = None,
                            resume: bool = False,
                            forensics: int | None = None,
                            forensics_path=None,
                            backend: str = "interp",
                            on_progress=None,
                            stop_check=None) -> CoverageMatrix:
    """Run guest-level (and optionally cache-level) campaigns for each
    configuration.  ``jobs > 1`` parallelizes each campaign's runs;
    ``retries``/``timeout``/``journal``/``resume`` configure the
    fault-tolerant runtime (one journal file serves the whole matrix —
    entries are keyed by config and spec content, so the campaigns
    cannot contaminate each other).  ``forensics=N`` replays up to N
    sampled escapes per configuration through the golden-divergence
    analyzer, appending the entries to ``forensics_path``.
    ``backend`` selects the execution tier every campaign runs on
    (the matrix itself is backend-invariant — digests match across
    tiers — so this only changes wall-clock).
    ``on_progress(completed, total)`` aggregates spec progress across
    every configuration's campaign; ``stop_check`` stops between chunks
    (see :class:`repro.faults.executor.CampaignExecutor`)."""
    faults = generate_category_faults(program, per_category=per_category,
                                      seed=seed)
    matrix = CoverageMatrix(program_name=program.source_name)
    if backend != "interp":
        from dataclasses import replace
        configs = tuple(replace(config, backend=backend)
                        for config in configs)
    guest_total = faults.total() * len(configs)
    guest_done = [0]
    for config in configs:
        def campaign_progress(completed, total,
                              base=guest_done[0]):
            if on_progress is not None:
                on_progress(base + completed, guest_total)
        executor = CampaignExecutor(program, config, jobs=jobs,
                                    retries=retries, timeout=timeout,
                                    journal=journal, resume=resume,
                                    on_progress=campaign_progress,
                                    stop_check=stop_check)
        result = executor.run_campaign(faults)
        guest_done[0] += faults.total()
        matrix.results[config.label()] = result
        if forensics:
            from repro.forensics import write_campaign_forensics
            matrix.forensics[config.label()] = write_campaign_forensics(
                program, config, executor.escape_specs(),
                max_samples=forensics, path=forensics_path)
        if include_cache_level and config.pipeline == "dbt" \
                and config.technique:
            matrix.cache_results[config.label()] = run_cache_campaign(
                program, config, max_sites=cache_max_sites, seed=seed,
                jobs=jobs, retries=retries, timeout=timeout,
                journal=journal, resume=resume,
                stop_check=stop_check)
    return matrix
