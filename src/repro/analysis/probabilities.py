"""Figure 2 / Figure 3 builders: branch-error probability tables.

Figure 2 reports, for SPEC-Int and SPEC-Fp separately, the probability
of a single-bit branch fault landing in each category, split by
taken/not-taken and address/flags.  Figure 3 restricts to the
silent-data-corruption-capable categories A..E and renormalizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.classify import Category, SDC_CATEGORIES
from repro.faults.model import (COLUMNS, ErrorModelResult,
                                compute_suite_error_model)
from repro.workloads import suite as workload_suite
from repro.analysis.report import format_table, percent

#: Figure-2 row order.
ROW_ORDER = (Category.A, Category.B, Category.C, Category.D, Category.E,
             Category.F, Category.NO_ERROR)


@dataclass
class Figure2:
    """The full branch-error probability table for both suites."""

    int_model: ErrorModelResult
    fp_model: ErrorModelResult

    def rows(self, suite: str) -> list[list[object]]:
        model = self.int_model if suite == "int" else self.fp_model
        rows = []
        for category in ROW_ORDER:
            label = ("No Error" if category is Category.NO_ERROR
                     else category.value)
            cells: list[object] = [label]
            for taken, kind in COLUMNS:
                cells.append(percent(model.probability(category, taken,
                                                       kind)))
            cells.append(percent(model.probability(category)))
            rows.append(cells)
        return rows

    def render(self) -> str:
        headers = ["Category", "Taken/Addr", "Taken/Flags",
                   "NotTaken/Addr", "NotTaken/Flags", "Total"]
        parts = []
        for suite in ("int", "fp"):
            parts.append(format_table(
                headers, self.rows(suite),
                title=f"Figure 2 — branch-error probabilities, "
                      f"SPEC-{suite.capitalize()} 2000 (synthetic)"))
        return "\n\n".join(parts)

    def figure3_rows(self) -> list[list[object]]:
        rows = []
        int_dist = self.int_model.sdc_distribution()
        fp_dist = self.fp_model.sdc_distribution()
        for category in SDC_CATEGORIES:
            rows.append([category.value, percent(int_dist[category]),
                         percent(fp_dist[category])])
        rows.append(["Total", percent(sum(int_dist.values())),
                     percent(sum(fp_dist.values()))])
        return rows

    def render_figure3(self) -> str:
        return format_table(
            ["Category", "SPEC-Int", "SPEC-Fp"], self.figure3_rows(),
            title="Figure 3 — error probabilities over categories A-E")


def compute_figure2(scale: str = "small") -> Figure2:
    """Profile both suites and evaluate the error model."""
    int_programs = [workload_suite.load(name, scale)
                    for name in workload_suite.suite_names("int")]
    fp_programs = [workload_suite.load(name, scale)
                   for name in workload_suite.suite_names("fp")]
    return Figure2(
        int_model=compute_suite_error_model(int_programs, "SPEC-Int"),
        fp_model=compute_suite_error_model(fp_programs, "SPEC-Fp"))
