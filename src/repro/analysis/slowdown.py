"""Performance-figure builders: Figures 12, 14, 15 and the DBT
baseline.

Slowdown is deterministic-cycles(configuration) / cycles(native run).
The paper's baseline for the technique figures is "the applications
running on the DBT with no instrumentation"; both normalizations are
exposed (``vs_native`` / ``vs_dbt``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.checking import Policy, UpdateStyle, make_technique
from repro.dbt import Dbt
from repro.machine import run_native
from repro.workloads import suite as workload_suite
from repro.analysis.report import format_table, geomean


@dataclass
class RunCost:
    cycles: int
    icount: int


@dataclass
class SlowdownSweep:
    """Cycle measurements for a set of configurations over the suite."""

    scale: str
    #: benchmark name -> native cost
    native: dict[str, RunCost] = field(default_factory=dict)
    #: config label -> benchmark name -> cost
    configs: dict[str, dict[str, RunCost]] = field(default_factory=dict)

    def slowdown(self, label: str, name: str,
                 versus: str = "native") -> float:
        base = (self.native[name] if versus == "native"
                else self.configs["dbt-base"][name])
        return self.configs[label][name].cycles / base.cycles

    def geomeans(self, label: str, versus: str = "native"
                 ) -> dict[str, float]:
        """fp / int / all geometric means of a configuration."""
        result = {}
        for suite in ("fp", "int"):
            names = workload_suite.suite_names(suite)
            result[suite] = geomean(
                self.slowdown(label, n, versus) for n in names)
        result["all"] = geomean(
            self.slowdown(label, n, versus)
            for n in workload_suite.suite_names())
        return result

    def table(self, labels: list[str], versus: str = "native") -> str:
        headers = ["benchmark"] + labels
        rows = []
        for suite in ("fp", "int"):
            for name in workload_suite.suite_names(suite):
                rows.append([name] + [self.slowdown(lb, name, versus)
                                      for lb in labels])
            means = {lb: self.geomeans(lb, versus)[suite]
                     for lb in labels}
            rows.append([f"geomean-{suite}"] + [means[lb]
                                                for lb in labels])
        rows.append(["geomean-all"]
                    + [self.geomeans(lb, versus)["all"] for lb in labels])
        return format_table(headers, rows)


def _measure_native(name: str, scale: str) -> RunCost:
    program = workload_suite.load(name, scale)
    cpu, stop = run_native(program)
    if stop.reason.value != "halted":
        raise RuntimeError(f"native run of {name} failed: {stop}")
    return RunCost(cycles=cpu.cycles, icount=cpu.icount)


def _measure_dbt(name: str, scale: str, technique: str | None,
                 policy: Policy, update_style: UpdateStyle,
                 optimize: bool = False) -> RunCost:
    program = workload_suite.load(name, scale)
    tech = (make_technique(technique, update_style=update_style)
            if technique else None)
    dbt = Dbt(program, technique=tech, policy=policy, optimize=optimize)
    result = dbt.run()
    if not result.ok:
        raise RuntimeError(
            f"DBT run of {name} under {technique} failed: {result.stop}")
    return RunCost(cycles=dbt.cpu.cycles, icount=dbt.cpu.icount)


def sweep(scale: str = "small",
          techniques: tuple[str, ...] = ("rcf", "edgcf", "ecf"),
          policies: tuple[Policy, ...] = (Policy.ALLBB,),
          update_styles: tuple[UpdateStyle, ...] = (UpdateStyle.JCC,),
          include_baseline: bool = True,
          names: list[str] | None = None,
          optimize: bool = False) -> SlowdownSweep:
    """Measure every requested configuration over the suite."""
    result = SlowdownSweep(scale=scale)
    if names is None:
        names = workload_suite.suite_names()
    for name in names:
        result.native[name] = _measure_native(name, scale)
    if include_baseline:
        result.configs["dbt-base"] = {
            name: _measure_dbt(name, scale, None, Policy.ALLBB,
                               UpdateStyle.JCC) for name in names}
    for style in update_styles:
        for policy in policies:
            for technique in techniques:
                label = config_label(technique, policy, style)
                result.configs[label] = {
                    name: _measure_dbt(name, scale, technique, policy,
                                       style, optimize=optimize)
                    for name in names}
    return result


def config_label(technique: str, policy: Policy,
                 style: UpdateStyle) -> str:
    label = technique
    if style is not UpdateStyle.JCC:
        label += f"-{style.value}"
    if policy is not Policy.ALLBB:
        label += f"-{policy.value}"
    return label


def figure12(scale: str = "small") -> SlowdownSweep:
    """Per-benchmark RCF/EdgCF/ECF slowdown (Jcc updates, ALLBB)."""
    return sweep(scale=scale)


def figure14(scale: str = "small") -> SlowdownSweep:
    """Jcc vs CMOVcc update-instruction comparison (geomeans)."""
    return sweep(scale=scale,
                 update_styles=(UpdateStyle.JCC, UpdateStyle.CMOV))


def figure15(scale: str = "small") -> SlowdownSweep:
    """RCF under the four signature checking policies."""
    return sweep(scale=scale, techniques=("rcf",),
                 policies=(Policy.ALLBB, Policy.RET_BE, Policy.RET,
                           Policy.END))


def dbt_baseline(scale: str = "small") -> SlowdownSweep:
    """Native vs uninstrumented DBT (the paper's ~12% baseline)."""
    return sweep(scale=scale, techniques=())
